//! Workspace automation (`cargo xtask <task>`).
//!
//! Tasks:
//!
//! * `lint-unsafe` — the unsafe-code audit. Scans every first-party
//!   `.rs` file (workspace crates, `src/`, `tests/`, `examples/`;
//!   `vendor/` and `target/` are excluded) and fails when
//!
//!   1. a file outside the allowlist contains any `unsafe` code, or
//!   2. an `unsafe { .. }` block or `unsafe impl` lacks a
//!      `// SAFETY:` comment in the lines directly above it.
//!
//!   The allowlist is the parallel engine's synchronization layer
//!   (`par_sync.rs`, `sync_shim.rs`, `par_engine.rs` in `crates/sim`),
//!   matching the module-level `#![allow(unsafe_code)]` grants under
//!   the workspace-wide `unsafe_code = "deny"` lint. `unsafe fn`
//!   declarations are exempt from the comment rule — their obligation
//!   is the `# Safety` doc section, which `missing_docs` keeps honest.
//!
//! The scan tokenizes just enough Rust to ignore `unsafe` appearing in
//! comments, strings, and doc text, so prose about unsafety does not
//! trip the audit.
//!
//! * `lint-allow` — lint-suppression audit. Scans the same first-party
//!   file set and fails when an `#[allow(...)]` / `#![allow(...)]`
//!   attribute carries no justification: a plain `//` comment (doc
//!   comments describe the item, not the suppression) on the same
//!   line or within the two lines directly above. Suppressing a lint
//!   is fine; suppressing one silently is how dead `allow`s
//!   accumulate.
//!
//! * `bench-diff [--band PCT]` — perf-regression gate. Finds the two
//!   newest versioned `BENCH_<N>.json` snapshots in the workspace
//!   root, compares the metrics both schemas share (per-circuit serial
//!   `events_per_second`, whole-run `peak_rss_kb`), and exits nonzero
//!   when any regresses beyond the noise band (default 10%). The
//!   comparison is schema-drift tolerant: v1 snapshots lack `metadata`
//!   and per-circuit `parallel[]` rows, so only the common subset is
//!   diffed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files allowed to contain `unsafe` code, relative to the workspace
/// root. Keep in sync with the module-level `#![allow(unsafe_code)]`
/// attributes and DESIGN.md's safety argument.
const ALLOWLIST: &[&str] = &[
    "crates/sim/src/par_engine.rs",
    "crates/sim/src/par_sync.rs",
    "crates/sim/src/sync_shim.rs",
];

/// How many lines above an `unsafe` occurrence may hold its
/// `// SAFETY:` comment. Generous enough for a multi-line statement
/// between the comment and the keyword, small enough that a comment
/// cannot "cover" unrelated blocks further down.
const SAFETY_WINDOW: usize = 8;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-unsafe") => lint_unsafe(),
        Some("lint-allow") => lint_allow(),
        Some("bench-diff") => bench_diff(&args.collect::<Vec<_>>()),
        Some(other) => {
            eprintln!(
                "xtask: unknown task `{other}` (available: lint-unsafe, lint-allow, bench-diff)"
            );
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask <task>\n\ntasks:\n  \
                 lint-unsafe             audit unsafe code\n  \
                 lint-allow              audit lint suppressions\n  \
                 bench-diff [--band PCT] compare the two newest BENCH_N.json snapshots"
            );
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask is always invoked via cargo from somewhere in the
    // workspace; its own manifest dir is `<root>/xtask`.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn lint_unsafe() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "xtask"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        findings.extend(
            audit_source(&source, ALLOWLIST.contains(&rel.as_str()))
                .into_iter()
                .map(|f| (rel.clone(), f)),
        );
    }

    if findings.is_empty() {
        println!(
            "xtask lint-unsafe: OK — unsafe code confined to {} allowlisted files, \
             every block/impl has a SAFETY comment ({} files scanned)",
            ALLOWLIST.len(),
            files.len()
        );
        return ExitCode::SUCCESS;
    }
    for (rel, f) in &findings {
        eprintln!("{rel}:{}: {}", f.line, f.message);
    }
    eprintln!("xtask lint-unsafe: {} finding(s)", findings.len());
    ExitCode::FAILURE
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` holds intentionally-failing inputs for the
            // audit's own tests; `target`/`vendor` are third-party.
            if name != "target" && name != "vendor" && name != "fixtures" {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// One audit finding, with a 1-based line number.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    line: usize,
    message: String,
}

/// What follows an `unsafe` keyword, determining which rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnsafeKind {
    /// `unsafe { .. }` — needs a SAFETY comment.
    Block,
    /// `unsafe impl` — needs a SAFETY comment.
    Impl,
    /// `unsafe fn`/`unsafe extern` — obligation lives in `# Safety`
    /// docs; allowlist rule still applies.
    Decl,
}

/// Audits one file's source; `allowlisted` grants rule 1.
fn audit_source(source: &str, allowlisted: bool) -> Vec<Finding> {
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    for (line, kind) in find_unsafe_tokens(source) {
        if !allowlisted {
            findings.push(Finding {
                line,
                message: "unsafe code outside the audited allowlist (see xtask/src/main.rs)"
                    .to_owned(),
            });
            continue;
        }
        if matches!(kind, UnsafeKind::Block | UnsafeKind::Impl) && !has_safety_comment(&lines, line)
        {
            let what = if kind == UnsafeKind::Block {
                "unsafe block"
            } else {
                "unsafe impl"
            };
            findings.push(Finding {
                line,
                message: format!(
                    "{what} without a `// SAFETY:` comment in the {SAFETY_WINDOW} lines above"
                ),
            });
        }
    }
    findings
}

/// How far above an `#[allow(...)]` attribute its justification
/// comment may sit. Two lines keeps the reason adjacent to the
/// suppression it excuses, unlike the wider [`SAFETY_WINDOW`] — an
/// `allow` is one line, not a multi-statement block.
const ALLOW_WINDOW: usize = 2;

fn lint_allow() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "xtask"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        findings.extend(audit_allows(&source).into_iter().map(|f| (rel.clone(), f)));
    }

    if findings.is_empty() {
        println!(
            "xtask lint-allow: OK — every `#[allow(...)]` carries a justification \
             comment ({} files scanned)",
            files.len()
        );
        return ExitCode::SUCCESS;
    }
    for (rel, f) in &findings {
        eprintln!("{rel}:{}: {}", f.line, f.message);
    }
    eprintln!("xtask lint-allow: {} finding(s)", findings.len());
    ExitCode::FAILURE
}

/// Audits one file for `#[allow(...)]` / `#![allow(...)]` attributes
/// that lack a justification: a plain `//` comment — doc comments
/// describe the item, not the suppression — on the attribute's own
/// line or within [`ALLOW_WINDOW`] lines above it.
fn audit_allows(source: &str) -> Vec<Finding> {
    let stripped = strip_noncode(source);
    let orig_lines: Vec<&str> = source.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let mut findings = Vec::new();
    for (idx, sline) in stripped_lines.iter().enumerate() {
        if !opens_allow_attribute(sline) {
            continue;
        }
        let start = idx.saturating_sub(ALLOW_WINDOW);
        let justified = (start..=idx).any(|j| has_plain_comment(orig_lines[j], stripped_lines[j]));
        if !justified {
            findings.push(Finding {
                line: idx + 1,
                message: format!(
                    "`#[allow(...)]` without a justification comment within \
                     {ALLOW_WINDOW} lines"
                ),
            });
        }
    }
    findings
}

/// True if the stripped line opens an outer (`#[allow(...)]`) or
/// inner (`#![allow(...)]`) allow attribute. Operating on stripped
/// source means `"#[allow("` inside a string or comment never trips.
fn opens_allow_attribute(stripped_line: &str) -> bool {
    for pat in ["#[allow", "#![allow"] {
        if let Some(p) = stripped_line.find(pat) {
            if stripped_line[p + pat.len()..].trim_start().starts_with('(') {
                return true;
            }
        }
    }
    false
}

/// True if the line carries a plain `//` comment. `strip_noncode` is
/// byte-for-byte, so a real line comment is a `//` in the original
/// whose stripped tail is *all* spaces — it runs to end of line,
/// which a `//` inside a string literal (stripped, but followed by
/// surviving code) does not. Doc comments (`///` and `//!`) don't
/// count — they document the item, not the suppression — but `////`
/// and deeper are plain.
fn has_plain_comment(orig: &str, stripped: &str) -> bool {
    let ob = orig.as_bytes();
    let sb = stripped.as_bytes();
    let mut p = 0usize;
    while p + 1 < ob.len() {
        if ob[p] == b'/' && ob[p + 1] == b'/' && sb[p..].iter().all(|&c| c == b' ') {
            let rest = &orig[p..];
            let doc =
                (rest.starts_with("///") && !rest.starts_with("////")) || rest.starts_with("//!");
            return !doc;
        }
        p += 1;
    }
    false
}

/// True if a `// SAFETY:` line comment sits within the window above
/// 1-based `line`.
fn has_safety_comment(lines: &[&str], line: usize) -> bool {
    let end = line - 1; // 0-based index of the unsafe line itself
    let start = end.saturating_sub(SAFETY_WINDOW);
    lines[start..end].iter().any(|l| {
        let t = l.trim_start();
        (t.starts_with("//")
            && t.trim_start_matches(['/', '!'])
                .trim_start()
                .starts_with("SAFETY:"))
            || t.contains("// SAFETY:")
    })
}

/// Yields `(1-based line, kind)` for every `unsafe` keyword in real
/// code — comments, strings, char literals, and lifetimes are skipped
/// by a lightweight lexer.
fn find_unsafe_tokens(source: &str) -> Vec<(usize, UnsafeKind)> {
    let stripped = strip_noncode(source);
    let mut out = Vec::new();
    let bytes = stripped.as_bytes();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            if &stripped[start..i] == "unsafe" {
                // Classify by the next non-whitespace character/token.
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                    j += 1;
                }
                let kind = if j < bytes.len() && bytes[j] == b'{' {
                    UnsafeKind::Block
                } else {
                    let mut k = j;
                    while k < bytes.len() && is_ident_byte(bytes[k]) {
                        k += 1;
                    }
                    if &stripped[j..k] == "impl" {
                        UnsafeKind::Impl
                    } else {
                        UnsafeKind::Decl
                    }
                };
                out.push((line, kind));
            }
            continue;
        }
        i += 1;
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replaces comments, string literals, and char literals with spaces
/// (newlines preserved, so line numbers survive). Handles `//`, block
/// comments with nesting, `"…"` with escapes, raw strings `r#"…"#`,
/// char literals, and leaves lifetimes (`'a`) alone.
// One lexer, one loop: splitting the state machine would obscure it.
#[allow(clippy::too_many_lines)]
fn strip_noncode(source: &str) -> String {
    let b = source.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if is_raw_string_start(b, i) => {
                // r"…" / r#"…"# (optionally preceded by `b`, handled
                // below since `br` hits the `b'b'` arm first).
                i = skip_raw_string(b, i, &mut out);
            }
            b'b' if i + 1 < b.len() && (b[i + 1] == b'"' || is_raw_string_start(b, i + 1)) => {
                out.push(b' ');
                i += 1; // the `b` prefix; the next loop turn eats the rest
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' if i + 1 < b.len() => {
                            // A line-continuation escape (`\` before a
                            // newline) swallows the newline in the
                            // literal's value, but the stripped text
                            // must keep it so line numbers survive.
                            out.push(b' ');
                            out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                            i += 2;
                        }
                        b'"' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        c => {
                            out.push(if c == b'\n' { b'\n' } else { b' ' });
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is `'` + ident
                // not followed by a closing `'`.
                let is_char = (i + 1 < b.len() && b[i + 1] == b'\\')
                    || (i + 2 < b.len() && b[i + 2] == b'\'');
                if is_char {
                    out.push(b' ');
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' if i + 1 < b.len() => {
                                out.extend_from_slice(b"  ");
                                i += 2;
                            }
                            b'\'' => {
                                out.push(b' ');
                                i += 1;
                                break;
                            }
                            _ => {
                                out.push(b' ');
                                i += 1;
                            }
                        }
                    }
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("stripped source stays ASCII-compatible")
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    if b[i] != b'r' {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn skip_raw_string(b: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    out.push(b' ');
    i += 1; // `r`
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        out.push(b' ');
        i += 1;
    }
    out.push(b' ');
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            out.push(b' ');
            i += 1;
            for _ in 0..hashes {
                out.push(b' ');
                i += 1;
            }
            break;
        }
        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
        i += 1;
    }
    i
}

/// One comparable metric row extracted from a snapshot, keyed by
/// circuit name (`None` for whole-process metrics like peak RSS).
#[derive(Debug)]
struct Metric {
    circuit: Option<String>,
    name: &'static str,
    value: f64,
    /// `true` when larger is better (throughput); `false` when smaller
    /// is better (memory).
    higher_is_better: bool,
}

/// Extracts the metrics shared by every snapshot schema so far:
/// per-circuit serial `events_per_second` (v1 onward), per-circuit
/// `bitpar.aggregate_speedup` (v4 onward), per-scale-row build/sim
/// metrics (v5 onward, keyed `family@scale`), and top-level
/// `peak_rss_kb`. Schema-specific extras (v2's `metadata`, per-circuit
/// `parallel[]` rows) are deliberately ignored — the diff only compares
/// what both snapshot generations can provide, so new metric families
/// (like v5's `scale` array) never produce false regressions against
/// an older snapshot: a metric present only in the newer file is
/// skipped, and gating starts with the first same-generation pair. The
/// peak-RSS metric is qualified by the schema tag because each schema
/// generation changes the workload the snapshot process runs (v4 added
/// the 64-lane bit-plane race, v5 the 1M-component corpus builds), so
/// its footprint is only comparable within one generation.
fn snapshot_metrics(doc: &serde_json::Value) -> Result<Vec<Metric>, String> {
    let mut out = Vec::new();
    let circuits = doc
        .get("circuits")
        .and_then(|c| c.as_array())
        .ok_or("snapshot has no `circuits` array")?;
    for row in circuits {
        let circuit = row
            .get("circuit")
            .and_then(|v| v.as_str())
            .ok_or("circuit row has no `circuit` name")?;
        let eps = row
            .get("events_per_second")
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("{circuit}: no `events_per_second`"))?;
        out.push(Metric {
            circuit: Some(circuit.to_string()),
            name: "events_per_second",
            value: eps,
            higher_is_better: true,
        });
        if let Some(speedup) = row
            .get("bitpar")
            .and_then(|b| b.get("aggregate_speedup"))
            .and_then(serde_json::Value::as_f64)
        {
            out.push(Metric {
                circuit: Some(circuit.to_string()),
                name: "bitpar.aggregate_speedup",
                value: speedup,
                higher_is_better: true,
            });
        }
    }
    // v5 scale rows: keyed by `family@scale` so a new family or a new
    // scale in a later snapshot simply has no partner and is skipped.
    if let Some(scale_rows) = doc.get("scale").and_then(|s| s.as_array()) {
        for row in scale_rows {
            let (Some(circuit), Some(scale)) = (
                row.get("circuit").and_then(|v| v.as_str()),
                row.get("scale").and_then(|v| v.as_str()),
            ) else {
                return Err("scale row has no `circuit`/`scale` labels".into());
            };
            let key = format!("{circuit}@{scale}");
            if let Some(build) = row
                .get("build_components_per_second")
                .and_then(serde_json::Value::as_f64)
            {
                out.push(Metric {
                    circuit: Some(key.clone()),
                    name: "scale.build_components_per_second",
                    value: build,
                    higher_is_better: true,
                });
            }
            if let Some(bytes) = row
                .get("memory_footprint_bytes")
                .and_then(serde_json::Value::as_f64)
            {
                out.push(Metric {
                    circuit: Some(key.clone()),
                    name: "scale.memory_footprint_bytes",
                    value: bytes,
                    higher_is_better: false,
                });
            }
            if let Some(eps) = row
                .get("event")
                .and_then(|e| e.get("events_per_second"))
                .and_then(serde_json::Value::as_f64)
            {
                out.push(Metric {
                    circuit: Some(key),
                    name: "scale.events_per_second",
                    value: eps,
                    higher_is_better: true,
                });
            }
        }
    }
    if let Some(rss) = doc.get("peak_rss_kb").and_then(serde_json::Value::as_f64) {
        if rss > 0.0 {
            let schema = doc
                .get("schema")
                .and_then(serde_json::Value::as_str)
                .unwrap_or("v1");
            out.push(Metric {
                circuit: Some(schema.to_string()),
                name: "peak_rss_kb",
                value: rss,
                higher_is_better: false,
            });
        }
    }
    Ok(out)
}

/// `cargo xtask bench-diff [--band PCT]`: find the two newest
/// `BENCH_<N>.json` snapshots in the workspace root, compare the
/// metrics they share, and fail when any regresses beyond the noise
/// band (default 10%). Handles the v1 → v2 schema drift by comparing
/// only the common subset; improvements and in-band noise pass.
fn bench_diff(args: &[String]) -> ExitCode {
    let mut band = 10.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--band" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(pct)) if pct >= 0.0 => band = pct,
                _ => {
                    eprintln!("xtask bench-diff: --band needs a non-negative percentage");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask bench-diff: unknown option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let mut snapshots: Vec<(u64, PathBuf)> = Vec::new();
    let Ok(entries) = std::fs::read_dir(&root) else {
        eprintln!("xtask bench-diff: cannot read workspace root");
        return ExitCode::FAILURE;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            snapshots.push((n, entry.path()));
        }
    }
    snapshots.sort_by_key(|&(n, _)| n);
    if snapshots.len() < 2 {
        println!(
            "xtask bench-diff: only {} BENCH_N.json snapshot(s) in {}; nothing to compare",
            snapshots.len(),
            root.display()
        );
        return ExitCode::SUCCESS;
    }
    let (old_n, old_path) = &snapshots[snapshots.len() - 2];
    let (new_n, new_path) = &snapshots[snapshots.len() - 1];

    let load = |path: &Path| -> Result<Vec<Metric>, String> {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc: serde_json::Value =
            serde_json::from_str(&source).map_err(|e| format!("{}: {e}", path.display()))?;
        snapshot_metrics(&doc).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("xtask bench-diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("xtask bench-diff: BENCH_{old_n}.json -> BENCH_{new_n}.json (noise band {band}%)");
    let mut regressions = 0u32;
    let mut compared = 0u32;
    for m in &new {
        let Some(base) = old
            .iter()
            .find(|o| o.circuit == m.circuit && o.name == m.name)
        else {
            continue; // metric only in the newer snapshot: nothing to diff
        };
        compared += 1;
        let label = match &m.circuit {
            Some(c) => format!("{c}.{}", m.name),
            None => m.name.to_string(),
        };
        let change = (m.value - base.value) / base.value * 100.0;
        let regressed = if m.higher_is_better {
            change < -band
        } else {
            change > band
        };
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        println!(
            "  {label:<38} {:>14.1} -> {:>14.1}  {change:+7.2}%  {verdict}",
            base.value, m.value
        );
        if regressed {
            regressions += 1;
        }
    }
    if compared == 0 {
        eprintln!("xtask bench-diff: snapshots share no comparable metrics");
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!("xtask bench-diff: {regressions} metric(s) regressed beyond the {band}% band");
        return ExitCode::FAILURE;
    }
    println!("xtask bench-diff: OK — {compared} metric(s) within the band");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = include_str!("../fixtures/good_safety_comment.rs");
    const BAD: &str = include_str!("../fixtures/bad_missing_comment.rs");

    #[test]
    fn good_fixture_passes_when_allowlisted() {
        assert_eq!(audit_source(GOOD, true), Vec::new());
    }

    #[test]
    fn bad_fixture_fails_on_missing_safety_comment() {
        let findings = audit_source(BAD, true);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("SAFETY"));
    }

    #[test]
    fn any_unsafe_outside_allowlist_fails() {
        let findings = audit_source(GOOD, false);
        assert!(!findings.is_empty());
        assert!(findings[0].message.contains("allowlist"));
    }

    const GOOD_ALLOW: &str = include_str!("../fixtures/good_allow_comment.rs");
    const BAD_ALLOW: &str = include_str!("../fixtures/bad_allow_missing.rs");

    #[test]
    fn good_allow_fixture_passes() {
        assert_eq!(audit_allows(GOOD_ALLOW), Vec::new());
    }

    #[test]
    fn bad_allow_fixture_flags_each_unjustified_suppression() {
        let findings = audit_allows(BAD_ALLOW);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.message.contains("justification")));
    }

    #[test]
    fn inner_allow_attributes_are_audited_too() {
        let bare = "#![allow(dead_code)]\nfn f() {}\n";
        assert_eq!(audit_allows(bare).len(), 1);
        let excused = "// The module is scaffolding for the next stage.\n#![allow(dead_code)]\n";
        assert_eq!(audit_allows(excused), Vec::new());
    }

    #[test]
    fn string_mentioning_a_comment_is_not_a_justification() {
        // The `//` lives inside a string literal on the line above the
        // attribute; the stripped tail still holds code, so it must
        // not pass for a comment.
        let src = "fn f() { let _ = \"// not a reason\"; }\n#[allow(dead_code)]\nfn g() {}\n";
        assert_eq!(audit_allows(src).len(), 1);
    }

    #[test]
    fn prose_and_strings_do_not_count_as_unsafe() {
        let src = r#"
// unsafe in a comment
/* unsafe in a block comment */
fn f() -> &'static str {
    let _c = 'u';
    "unsafe in a string"
}
"#;
        assert_eq!(find_unsafe_tokens(src), Vec::new());
        assert_eq!(audit_source(src, false), Vec::new());
    }

    #[test]
    fn classification_distinguishes_blocks_impls_and_decls() {
        let src = "unsafe fn f() {}\nunsafe impl Sync for X {}\nfn g() { unsafe { h() } }\n";
        let kinds: Vec<UnsafeKind> = find_unsafe_tokens(src)
            .into_iter()
            .map(|(_, k)| k)
            .collect();
        assert_eq!(
            kinds,
            vec![UnsafeKind::Decl, UnsafeKind::Impl, UnsafeKind::Block]
        );
    }

    #[test]
    fn safety_comment_window_is_bounded() {
        let far = format!(
            "// SAFETY: too far away\n{}unsafe {{ x() }}\n",
            "\n".repeat(9)
        );
        let findings = audit_source(&far, true);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "fn f() { let _ = r#\"unsafe { }\"#; }";
        assert_eq!(find_unsafe_tokens(src), Vec::new());
    }

    #[test]
    fn line_continuation_strings_keep_line_numbers() {
        // A `\` before the newline joins the literal's value but must
        // not join the stripped text's lines, or every finding below
        // it would be reported one line early.
        let src =
            "fn f() -> &'static str {\n    \"a \\\n     b\"\n}\n#[allow(dead_code)]\nfn g() {}\n";
        assert_eq!(strip_noncode(src).lines().count(), src.lines().count());
        let findings = audit_allows(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn v1_and_v2_snapshots_share_comparable_metrics() {
        // Minimal replicas of the two snapshot generations: v1 has no
        // metadata or parallel rows, v2 has both. Throughput metrics
        // compare across generations; peak RSS is schema-qualified (the
        // snapshot workload changes each generation) so it must NOT
        // pair up between v1 and v2.
        let v1: serde_json::Value = serde_json::from_str(
            r#"{"schema":"logicsim-perf-snapshot-v1","peak_rss_kb":1000,
                "circuits":[{"circuit":"stopwatch","events_per_second":100.0}]}"#,
        )
        .unwrap();
        let v2: serde_json::Value = serde_json::from_str(
            r#"{"schema":"logicsim-perf-snapshot-v2","peak_rss_kb":1100,
                "metadata":{"git_commit":"abc","host_cores":8,"lsim_threads":null},
                "circuits":[{"circuit":"stopwatch","events_per_second":95.0,
                             "parallel":[{"workers":2,"events_per_second":50.0}]}]}"#,
        )
        .unwrap();
        let m1 = snapshot_metrics(&v1).unwrap();
        let m2 = snapshot_metrics(&v2).unwrap();
        assert_eq!(m1.len(), 2);
        assert_eq!(m2.len(), 2);
        assert_eq!(m1[0].circuit, m2[0].circuit);
        assert_eq!(m1[0].name, "events_per_second");
        assert_eq!(m2[0].name, "events_per_second");
        assert_eq!(m1[1].name, "peak_rss_kb");
        assert_eq!(m2[1].name, "peak_rss_kb");
        assert_ne!(
            m1[1].circuit, m2[1].circuit,
            "cross-schema RSS must not be compared"
        );
    }

    #[test]
    fn v4_snapshots_compare_bitpar_speedup_and_rss() {
        // Two v4-generation snapshots: the bit-parallel aggregate
        // speedup and the (same-schema) peak RSS both become
        // comparable metrics.
        let make = |speedup: f64, rss: u32| -> serde_json::Value {
            serde_json::from_str(&format!(
                r#"{{"schema":"logicsim-perf-snapshot-v4","peak_rss_kb":{rss},
                    "circuits":[{{"circuit":"stopwatch","events_per_second":100.0,
                                 "bitpar":{{"lanes":64,"aggregate_speedup":{speedup}}}}}]}}"#
            ))
            .unwrap()
        };
        let old = snapshot_metrics(&make(40.0, 1000)).unwrap();
        let new = snapshot_metrics(&make(44.0, 1010)).unwrap();
        assert_eq!(old.len(), 3);
        for (a, b) in old.iter().zip(&new) {
            assert_eq!(a.circuit, b.circuit);
            assert_eq!(a.name, b.name);
        }
        let speedup = new
            .iter()
            .find(|m| m.name == "bitpar.aggregate_speedup")
            .expect("v4 exposes the lane-throughput metric");
        assert!(speedup.higher_is_better);
        assert_eq!(speedup.circuit.as_deref(), Some("stopwatch"));
    }

    #[test]
    fn v5_scale_metrics_do_not_regress_against_v4() {
        // A v4 -> v5 diff must gate only what both generations share:
        // the v5-only `scale` rows have no v4 partner (so they cannot
        // produce false regressions), the throughput metrics still pair
        // up, and peak RSS stays schema-qualified.
        let v4: serde_json::Value = serde_json::from_str(
            r#"{"schema":"logicsim-perf-snapshot-v4","peak_rss_kb":1000,
                "circuits":[{"circuit":"stopwatch","events_per_second":100.0,
                             "bitpar":{"lanes":64,"aggregate_speedup":40.0}}]}"#,
        )
        .unwrap();
        let v5: serde_json::Value = serde_json::from_str(
            r#"{"schema":"logicsim-perf-snapshot-v5","peak_rss_kb":90000,
                "circuits":[{"circuit":"stopwatch","events_per_second":99.0,
                             "bitpar":{"lanes":64,"aggregate_speedup":41.0}}],
                "scale":[{"circuit":"stopwatch","scale":"100k",
                          "build_components_per_second":4.0e6,
                          "memory_footprint_bytes":10000000,
                          "event":{"events_per_second":2.0e6}}]}"#,
        )
        .unwrap();
        let old = snapshot_metrics(&v4).unwrap();
        let new = snapshot_metrics(&v5).unwrap();
        let shared: Vec<&Metric> = new
            .iter()
            .filter(|m| {
                old.iter()
                    .any(|o| o.circuit == m.circuit && o.name == m.name)
            })
            .collect();
        // Exactly the two throughput metrics survive: no scale metric
        // pairs up (they are v5-only) and the RSS keys differ by
        // schema, so the 90x RSS growth cannot be flagged.
        let names: Vec<&str> = shared.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["events_per_second", "bitpar.aggregate_speedup"]);
    }

    #[test]
    fn v5_to_v5_gates_scale_rows_and_skips_new_families() {
        // Same-generation diffs gate the scale rows; a family or scale
        // that only the newer snapshot measured is skipped, not failed.
        let make = |extra: &str| -> serde_json::Value {
            serde_json::from_str(&format!(
                r#"{{"schema":"logicsim-perf-snapshot-v5","peak_rss_kb":90000,
                    "circuits":[{{"circuit":"stopwatch","events_per_second":100.0}}],
                    "scale":[{{"circuit":"stopwatch","scale":"100k",
                              "build_components_per_second":4.0e6,
                              "memory_footprint_bytes":10000000,
                              "event":{{"events_per_second":2.0e6}}}}{extra}]}}"#
            ))
            .unwrap()
        };
        let old = snapshot_metrics(&make("")).unwrap();
        let new = snapshot_metrics(&make(
            r#",{"circuit":"crossbar_switch","scale":"1m",
                "build_components_per_second":3.0e6,
                "memory_footprint_bytes":100000000,
                "event":{"events_per_second":1.0e6}}"#,
        ))
        .unwrap();
        let shared = new
            .iter()
            .filter(|m| {
                old.iter()
                    .any(|o| o.circuit == m.circuit && o.name == m.name)
            })
            .count();
        // serial eps + RSS + the three stopwatch@100k scale metrics;
        // the crossbar_switch@1m row is new-only and skipped.
        assert_eq!(shared, 5);
        assert!(new
            .iter()
            .any(|m| m.circuit.as_deref() == Some("stopwatch@100k")
                && m.name == "scale.memory_footprint_bytes"
                && !m.higher_is_better));
    }

    #[test]
    fn snapshot_without_circuits_is_rejected() {
        let doc: serde_json::Value = serde_json::from_str(r#"{"peak_rss_kb": 5}"#).unwrap();
        assert!(snapshot_metrics(&doc).is_err());
    }
}
