//! Audit fixture: well-formed unsafe code (passes when allowlisted).

/// Reads the first element.
///
/// # Safety
///
/// `p` must point to at least one readable `u32`.
unsafe fn first(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is readable.
    unsafe { *p }
}

struct Wrapper(*mut u32);

// SAFETY: the wrapped pointer is only dereferenced on one thread.
unsafe impl Sync for Wrapper {}

fn main() {
    let x = 7u32;
    // SAFETY: `&x` is valid for the duration of the call.
    let y = unsafe { first(&x) };
    assert_eq!(y, 7);
}
