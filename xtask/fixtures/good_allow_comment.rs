//! Lint-allow fixture: every suppression carries a nearby reason.

// Retained for the follow-up decoder work; the wiring lands next.
#[allow(dead_code)]
fn parked_helper() {}

#[allow(clippy::needless_pass_by_value)] // signature mirrors the Codec trait
fn mirrored(v: Vec<u32>) -> usize {
    v.len()
}

fn shadowing() {
    // The handle is deliberately unused until the bus model grows.
    #[allow(unused_variables)]
    let handle = 0u32;
    let _ = handle;
}

fn not_an_attribute() {
    // A string mentioning #[allow(dead_code)] must not trip the scan.
    let doc = "#[allow(dead_code)]";
    let _ = doc;
}
