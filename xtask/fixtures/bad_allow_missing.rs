//! Lint-allow fixture: suppressions with no justification in reach.

/// Doc comments describe the item, not the suppression.
#[allow(dead_code)]
fn unexplained() {}

fn body() {
    #[allow(unused_variables)]
    let x = 0u32;
    let _ = x;
}

// This comment sits three lines above the attribute, one past the
// window's reach, so it does not excuse the suppression below.


#[allow(dead_code)]
fn out_of_reach() {}
