//! Audit fixture: an unsafe block with no SAFETY comment (must fail).

fn main() {
    let x = 7u32;
    let p: *const u32 = &x;
    let y = unsafe { *p };
    assert_eq!(y, 7);
}
