//! The headline reproduction assertions: every number the paper prints
//! that the model should regenerate, checked through the public facade.

use logicsim::core::bounds::{comm_limit, ideal_speedup};
use logicsim::core::design::{table9, DesignSpace};
use logicsim::core::paper_data::{average_workload_table8, five_circuits, table6_as_printed};
use logicsim::core::speedup::speedup;
use logicsim::core::{BaseMachine, MachineDesign};
use logicsim::stats::average_workload;

#[test]
fn table9_full_grid_against_printed_values() {
    // The printed Table 9, row by row: (H, W, L, [tm3 P, tm3 S, tm2 P,
    // tm2 S]). `None` marks cells the model disagrees with (documented
    // paper typos / curve-reading artifacts; see EXPERIMENTS.md).
    #[allow(clippy::type_complexity)]
    let printed: Vec<(f64, f64, u32, Option<(u32, f64)>, Option<(u32, f64)>)> = vec![
        (1.0, 1.0, 1, Some((50, 50.0)), Some((50, 50.0))),
        (1.0, 1.0, 5, Some((50, 216.0)), Some((50, 216.0))),
        (1.0, 2.0, 1, Some((50, 50.0)), Some((50, 50.0))),
        (1.0, 2.0, 5, Some((50, 216.0)), Some((50, 216.0))),
        (1.0, 3.0, 1, Some((50, 50.0)), Some((50, 50.0))),
        (1.0, 3.0, 5, Some((50, 216.0)), Some((50, 216.0))),
        // H=10, L=1 rows: the paper prints S=50 except the tM=2/W=1
        // cell (500); the model gives ~500 everywhere. Typos.
        (10.0, 1.0, 1, None, Some((50, 500.0))),
        (10.0, 1.0, 5, Some((15, 680.0)), None), // tm2: curve-read (50,970) vs true max (21,987)
        (10.0, 2.0, 1, None, None),
        (10.0, 2.0, 5, Some((29, 1_313.0)), None),
        (10.0, 3.0, 1, None, None),
        (10.0, 3.0, 5, Some((45, 1_943.0)), Some((50, 2_155.0))),
        (100.0, 1.0, 1, Some((8, 725.0)), Some((11, 1_046.0))),
        (100.0, 1.0, 5, Some((2, 992.0)), Some((3, 1_426.0))),
        (100.0, 2.0, 1, Some((14, 1_365.0)), Some((20, 1_994.0))),
        (100.0, 2.0, 5, Some((4, 1_689.0)), Some((5, 2_373.0))),
        (100.0, 3.0, 1, Some((20, 1_994.0)), Some((30, 2_943.0))),
        (100.0, 3.0, 5, Some((5, 2_373.0)), Some((7, 3_317.0))),
    ];
    let rows = table9(
        &average_workload_table8(),
        &BaseMachine::vax_11_750(),
        &DesignSpace::paper_table7(),
    );
    assert_eq!(rows.len(), printed.len());
    let mut checked = 0;
    for (row, (h, w, l, tm3, tm2)) in rows.iter().zip(&printed) {
        assert_eq!((row.h, row.w, row.l), (*h, *w, *l), "row order");
        for (op, expect) in [(row.tm3, tm3), (row.tm2, tm2)] {
            if let Some((p, s)) = expect {
                // The speed-up surface is flat around the knee; accept
                // +-1 processor against the printed optimum.
                assert!(
                    op.processors.abs_diff(*p) <= 1,
                    "H={h} W={w} L={l}: P {} vs printed {p}",
                    op.processors
                );
                assert!(
                    (op.speedup - s).abs() / s < 0.015,
                    "H={h} W={w} L={l}: S {} vs printed {s}",
                    op.speedup
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 27, "only {checked} printed cells verified");
}

#[test]
fn section6_worked_examples() {
    // "A special-purpose machine with H=10 and a five-stage pipeline
    // will yield a speed-up of approximately 50" (S_1* ~ HL).
    let s = ideal_speedup(10.0, 1e6, 5, 1);
    assert!((s - 50.0).abs() / 50.0 < 0.001);
    // "with L=5 and H=100 the speed-up becomes S_1* = 500, or 1.25M
    // events/sec" at 2,500 ev/s base.
    let s = ideal_speedup(100.0, 1e6, 5, 1);
    assert!((s - 500.0).abs() / 500.0 < 0.001);
    assert!((s * 2_500.0 - 1.25e6).abs() < 5e3);
    // Crossbar switch: HN = 8,000 at P >= 80.
    assert!((ideal_speedup(100.0, 80.0, 5, 80) - 8_000.0).abs() < 1e-9);
}

#[test]
fn ten_processor_claim_holds_for_four_of_five_circuits() {
    // "All of the 100,000-component circuits except the crossbar switch
    // have values of N large enough to keep the processors in a
    // 10-processor system with a five-stage pipeline heavily loaded"
    // (N/P >> L-1).
    for c in five_circuits() {
        let n = c.workload.simultaneity();
        let load = n / 10.0;
        if c.name == "CB Switch" {
            assert!(load < 4.0 * 4.0, "{}: N/P = {load}", c.name);
        } else {
            assert!(load > 10.0 * 4.0, "{}: N/P = {load}", c.name);
        }
    }
}

#[test]
fn communication_cap_is_about_8m_events_per_second() {
    // Section 8: "a moderate performance communication network limits
    // the speed ... to around 8 million events/sec".
    let rows = table9(
        &average_workload_table8(),
        &BaseMachine::vax_11_750(),
        &DesignSpace::paper_table7(),
    );
    let best = rows
        .iter()
        .flat_map(|r| [r.tm2.speedup, r.tm3.speedup])
        .fold(0.0f64, f64::max);
    let evps = best * 2_500.0;
    assert!(
        (7.5e6..9.0e6).contains(&evps),
        "cap = {evps:.2e} events/sec"
    );
}

#[test]
fn comm_limit_matches_eq16_for_every_width() {
    let w = average_workload_table8();
    for width in [1.0, 2.0, 3.0] {
        let lim = comm_limit(&w, width, 4_000.0, 3.0);
        let expect = w.events * width * (4_000.0 / 3.0) / w.messages_inf;
        assert!((lim - expect).abs() < 1e-9);
    }
}

#[test]
fn average_workload_derivation_is_stable() {
    let w = average_workload(&table6_as_printed(), 60_000.0);
    let printed = average_workload_table8();
    assert!((w.events - printed.events).abs() / printed.events < 0.002);
}

#[test]
fn figure3_w_insensitivity_and_figure5_l_insensitivity() {
    let w = average_workload_table8();
    let base = BaseMachine::vax_11_750();
    let s = |h: f64, width: f64, l: u32, p: u32| {
        let d = MachineDesign::new(p, l, width, base.t_eval / h, 3.0, 1.0);
        speedup(&w, &d, &base, 1.0)
    };
    // Figure 3 (H=1): W irrelevant through P=50.
    for p in [10u32, 30, 50] {
        assert!((s(1.0, 1.0, 5, p) - s(1.0, 3.0, 5, p)).abs() < 1e-6);
    }
    // Figure 5 (H=100): L irrelevant for moderate P (>10).
    for p in [15u32, 30, 50] {
        let rel = (s(100.0, 1.0, 1, p) - s(100.0, 1.0, 5, p)).abs() / s(100.0, 1.0, 1, p);
        assert!(rel < 0.01, "P={p}: rel={rel}");
    }
}
