//! Measurement-methodology tests: the paper ran vectors "until
//! aggregate statistics remained stable"; these tests verify that our
//! measured statistics are in fact stable — across stimulus seeds and
//! across window lengths — and that the warm-up window removes the
//! power-up transient.

use logicsim::circuits::Benchmark;
use logicsim::{measure_benchmark, MeasureOptions};

fn opts(seed: u64, window: u64) -> MeasureOptions {
    MeasureOptions {
        warmup_periods: 8,
        window_ticks: window,
        seed,
        collect_trace: false,
    }
}

/// Relative difference helper.
fn rel(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        0.0
    } else {
        (a - b).abs() / a.abs().max(b.abs())
    }
}

#[test]
fn statistics_stable_across_seeds() {
    // Different random vectors, same circuit: aggregate ratios should
    // agree within a modest tolerance (they are properties of the
    // circuit, not of the vector set).
    for bench in [Benchmark::RtpChip, Benchmark::CrossbarSwitch] {
        let a = measure_benchmark(bench, &opts(11, 16_000));
        let b = measure_benchmark(bench, &opts(97, 16_000));
        assert!(
            rel(a.workload.busy_fraction(), b.workload.busy_fraction()) < 0.35,
            "{}: busy fraction {:.4} vs {:.4}",
            a.name,
            a.workload.busy_fraction(),
            b.workload.busy_fraction()
        );
        assert!(
            rel(a.workload.average_fanout(), b.workload.average_fanout()) < 0.15,
            "{}: fanout {:.2} vs {:.2}",
            a.name,
            a.workload.average_fanout(),
            b.workload.average_fanout()
        );
        assert!(
            rel(a.workload.simultaneity(), b.workload.simultaneity()) < 0.5,
            "{}: N {:.1} vs {:.1}",
            a.name,
            a.workload.simultaneity(),
            b.workload.simultaneity()
        );
    }
}

#[test]
fn statistics_stable_across_window_lengths() {
    // Doubling the window should roughly double E while leaving the
    // ratios alone — the "aggregate statistics remained stable"
    // criterion.
    let short = measure_benchmark(Benchmark::AssocMem, &opts(5, 4_000));
    let long = measure_benchmark(Benchmark::AssocMem, &opts(5, 8_000));
    let e_ratio = long.workload.events / short.workload.events;
    assert!(
        (1.5..=2.5).contains(&e_ratio),
        "E ratio {e_ratio} not ~2 for a doubled window"
    );
    assert!(
        rel(
            short.workload.busy_fraction(),
            long.workload.busy_fraction()
        ) < 0.15,
        "busy fraction drifted: {:.4} vs {:.4}",
        short.workload.busy_fraction(),
        long.workload.busy_fraction()
    );
    assert!(
        rel(
            short.workload.average_fanout(),
            long.workload.average_fanout()
        ) < 0.1
    );
}

#[test]
fn warmup_removes_powerup_transient() {
    // Without warm-up, the first ticks carry the power-up X-resolution
    // wave and the reset pulse; with warm-up, the measured rate is the
    // steady state. The two must differ for a circuit with a reset
    // (proving the warm-up does something) while the steady-state runs
    // agree with each other.
    let cold = measure_benchmark(
        Benchmark::PriorityQueue,
        &MeasureOptions {
            warmup_periods: 0,
            window_ticks: 2_000,
            seed: 3,
            collect_trace: false,
        },
    );
    let warm1 = measure_benchmark(
        Benchmark::PriorityQueue,
        &MeasureOptions {
            warmup_periods: 10,
            window_ticks: 8_000,
            seed: 3,
            collect_trace: false,
        },
    );
    let warm2 = measure_benchmark(
        Benchmark::PriorityQueue,
        &MeasureOptions {
            warmup_periods: 14,
            window_ticks: 8_000,
            seed: 3,
            collect_trace: false,
        },
    );
    // Steady-state windows agree (the random insert/extract mix gives
    // the per-window rate real variance, hence the loose band)...
    assert!(
        rel(warm1.workload.events, warm2.workload.events) < 0.35,
        "steady windows disagree: {} vs {}",
        warm1.workload.events,
        warm2.workload.events
    );
    // ...and the cold window is measurably different (reset pulse holds
    // the datapath, so activity differs).
    assert!(
        rel(cold.workload.events, warm1.workload.events) > 0.02,
        "cold window indistinguishable: {} vs {}",
        cold.workload.events,
        warm1.workload.events
    );
}

#[test]
fn coverage_grows_with_window() {
    // "most components experienced at least one output change": longer
    // runs cover more of the circuit, monotonically.
    let short = measure_benchmark(Benchmark::StopWatch, &opts(9, 2_000));
    let long = measure_benchmark(Benchmark::StopWatch, &opts(9, 12_000));
    assert!(
        long.coverage >= short.coverage,
        "coverage shrank: {} -> {}",
        short.coverage,
        long.coverage
    );
    assert!(long.coverage > 0.15, "coverage {} too low", long.coverage);
}
