//! Differential proof for the bit-parallel compiled backend.
//!
//! Both engines are driven by the identical **vector-synchronous
//! quiescence protocol**: at vector `v`, compute every input's stimulus
//! level at role-tick `v`, apply it, run the engine until the circuit
//! is fully settled, then sample the primary outputs. For the 64-lane
//! [`BitParSim`] batch, lane `i` draws its stimulus from seed
//! [`Stimulus64::lane_seed`]`(0x1987, i)`; the serial event-driven
//! reference replays each lane with a scalar [`RandomStimulus`] built
//! from the same per-lane seed. Settled values of the settled output
//! trajectory are folded into one FNV-1a digest per lane, and every
//! lane must be **bit-identical** to its serial replay — on all five
//! paper benchmarks, including the switch-heavy ones that exercise the
//! hybrid's event-driven fallback region.
//!
//! Lane count defaults to 64 and can be overridden with the
//! `LSIM_BITPAR_LANES` environment variable (CI runs {1, 7, 64}).

use logicsim::circuits::Benchmark;
use logicsim::sim::{BitParSim, Simulator, Stimulus64};

/// FNV-1a 64-bit over a byte slice, continuing from `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Vectors applied per benchmark (each fully settled before sampling).
const VECTORS: u64 = 48;

/// Tick budget per quiescence run (generous; the benchmarks settle in
/// well under this per vector).
const CAP: u64 = 50_000;

fn lanes_under_test() -> usize {
    match std::env::var("LSIM_BITPAR_LANES") {
        Ok(s) => {
            let n: usize = s
                .parse()
                .unwrap_or_else(|_| panic!("LSIM_BITPAR_LANES must be 1..=64, got `{s}`"));
            assert!((1..=64).contains(&n), "LSIM_BITPAR_LANES out of range");
            n
        }
        Err(_) => 64,
    }
}

/// Serial reference: the event-driven engine replaying one lane's
/// stimulus under the vector-synchronous quiescence protocol.
fn serial_lane_digest(bench: Benchmark, lane: usize) -> u64 {
    let inst = bench.build_default();
    let mut stim = inst
        .stimulus
        .build(&inst.netlist, Stimulus64::lane_seed(0x1987, lane))
        .expect("benchmark stimulus resolves");
    let mut sim = Simulator::new(&inst.netlist).expect("pre-flight");
    let mut h = FNV_OFFSET;
    for v in 0..VECTORS {
        stim.apply_with(v, |net, level| sim.set_input(net, level));
        let target = sim.now() + CAP;
        let end = sim.run_to_quiescence(target);
        assert!(
            end < target,
            "{bench:?} lane {lane}: no quiescence at v={v}"
        );
        fnv1a(&mut h, &v.to_le_bytes());
        for &out in inst.netlist.outputs() {
            fnv1a(&mut h, &[sim.level(out) as u8]);
        }
    }
    h
}

/// Batch run: all lanes at once on the bit-parallel backend; returns
/// one digest per lane plus the backend's stats.
fn bitpar_lane_digests(bench: Benchmark, lanes: usize) -> (Vec<u64>, logicsim::sim::BitParStats) {
    let inst = bench.build_default();
    let mut stim = Stimulus64::new(&inst.stimulus, &inst.netlist, 0x1987, lanes)
        .expect("benchmark stimulus resolves");
    let mut sim = BitParSim::new(&inst.netlist, lanes).expect("pre-flight");
    let mut digests = vec![FNV_OFFSET; lanes];
    for v in 0..VECTORS {
        stim.apply_with(v, |net, plane| sim.set_input_plane(net, plane));
        assert!(sim.settle_vector(), "{bench:?}: vector {v} did not settle");
        for (lane, h) in digests.iter_mut().enumerate() {
            fnv1a(h, &v.to_le_bytes());
            for &out in inst.netlist.outputs() {
                fnv1a(h, &[sim.level(out, lane) as u8]);
            }
        }
    }
    (digests, sim.stats())
}

fn check(bench: Benchmark) {
    let lanes = lanes_under_test();
    let (got, stats) = bitpar_lane_digests(bench, lanes);
    for (lane, &digest) in got.iter().enumerate() {
        let want = serial_lane_digest(bench, lane);
        assert_eq!(
            digest,
            want,
            "{}: lane {lane}/{lanes} diverged from the event-driven engine \
             (stats: {stats:?})",
            bench.paper_name()
        );
    }
    assert_eq!(stats.unconverged_vectors, 0, "{}", bench.paper_name());
}

#[test]
fn stop_watch_lanes_match_event_engine() {
    check(Benchmark::StopWatch);
}

#[test]
fn assoc_mem_lanes_match_event_engine() {
    check(Benchmark::AssocMem);
}

#[test]
fn priority_queue_lanes_match_event_engine() {
    check(Benchmark::PriorityQueue);
}

#[test]
fn rtp_chip_lanes_match_event_engine() {
    check(Benchmark::RtpChip);
}

#[test]
fn crossbar_switch_lanes_match_event_engine() {
    check(Benchmark::CrossbarSwitch);
}

/// The hybrid split itself is part of the contract: the switch-heavy
/// benchmarks must compile their channel groups into vectorized solver
/// cells (no event-driven replay on the hot path), and the all-gate
/// crossbar must compile (nearly) everything.
#[test]
fn hybrid_split_matches_benchmark_structure() {
    let inst = Benchmark::PriorityQueue.build_default();
    let sim = BitParSim::new(&inst.netlist, 1).expect("pre-flight");
    let st = sim.stats();
    assert!(
        st.solver_cells > 0 && st.compiled_switches > 0,
        "priority queue is switch-heavy; cells must be populated: {st:?}"
    );
    assert_eq!(
        st.fallback_components, 0,
        "priority queue switches all compile: {st:?}"
    );
    let inst = Benchmark::CrossbarSwitch.build_default();
    let sim = BitParSim::new(&inst.netlist, 1).expect("pre-flight");
    let st = sim.stats();
    assert!(
        st.compiled_gates > 0,
        "crossbar is pure gates; compiled region must be populated"
    );
}

/// Differential proof for the event-driven **fallback** path: a shared
/// tristate bus (live enables never compile) feeding a pass gate with
/// a charge-storage node, read back by a compiled inverter. Stimulus
/// covers 0/1/X per input per lane via an LCG; every lane must match
/// the serial event-driven engine on every settled vector.
#[test]
fn live_tristate_bus_exercises_fallback_and_matches() {
    use logicsim::netlist::{Delay, GateKind, Level, NetlistBuilder, Plane, SwitchKind};

    let mut b = NetlistBuilder::new("tribus");
    let d0 = b.input("d0");
    let d1 = b.input("d1");
    let en0 = b.input("en0");
    let en1 = b.input("en1");
    let c = b.input("c");
    let y = b.net("y");
    b.gate(GateKind::Tristate, &[d0, en0], y, Delay::uniform(1));
    b.gate(GateKind::Tristate, &[d1, en1], y, Delay::uniform(2));
    let z = b.net("z");
    b.switch(SwitchKind::Nmos, c, y, z);
    let q = b.net("q");
    b.gate(GateKind::Not, &[z], q, Delay::uniform(1));
    b.mark_output(y);
    b.mark_output(z);
    b.mark_output(q);
    let n = b.finish().expect("valid netlist");

    let lanes = 8;
    let inputs = [d0, d1, en0, en1, c];
    let mut sim = BitParSim::new(&n, lanes).expect("pre-flight");
    let st = sim.stats();
    assert!(
        st.fallback_components >= 3,
        "bus tristates and switch must fall back: {st:?}"
    );
    let mut serial: Vec<Simulator<'_>> = (0..lanes)
        .map(|_| Simulator::new(&n).expect("pre-flight"))
        .collect();

    // Deterministic 0/1/X stimulus (plain LCG; no external RNG).
    let mut state = 0x1987_u64;
    let mut next_level = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        match (state >> 33) % 4 {
            0 => Level::Zero,
            1 | 2 => Level::One,
            _ => Level::X,
        }
    };
    for v in 0..24_u64 {
        for &net in &inputs {
            let mut plane = Plane::ALL_X;
            for (lane, sim) in serial.iter_mut().enumerate() {
                let lvl = next_level();
                plane = plane.with_lane(lane, lvl);
                sim.set_input(net, lvl);
            }
            sim.set_input_plane(net, plane);
        }
        assert!(sim.settle_vector(), "vector {v} did not settle");
        for (lane, ssim) in serial.iter_mut().enumerate() {
            let target = ssim.now() + CAP;
            assert!(ssim.run_to_quiescence(target) < target, "lane {lane} v={v}");
            for &out in n.outputs() {
                assert_eq!(
                    sim.level(out, lane),
                    ssim.level(out),
                    "net {} lane {lane} vector {v}",
                    n.net_name(out)
                );
            }
        }
    }
}
