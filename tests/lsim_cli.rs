//! Integration tests for the `lsim` command-line front end.

use std::io::Write as _;
use std::process::Command;

fn lsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsim"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("logicsim_test_{name}_{}.lsim", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp netlist");
    f.write_all(contents.as_bytes())
        .expect("write temp netlist");
    path
}

const TOGGLE: &str = "\
circuit toggle
input clk
input d
gate XOR y clk d
output y
";

#[test]
fn stats_subcommand_reports_workload() {
    let path = write_temp("stats", TOGGLE);
    let out = lsim()
        .args(["stats", path.to_str().unwrap(), "--until", "200"])
        .args(["--clock", "clk:10", "--const", "d=1"])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("circuit     : toggle"), "{stdout}");
    assert!(stdout.contains("events E"), "{stdout}");
    // A 10-tick clock over 200 ticks produces ~20 clk events + ~20 y
    // events.
    let events: u64 = stdout
        .lines()
        .find(|l| l.starts_with("events E"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("events line");
    assert!((30..=45).contains(&events), "events = {events}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn sim_subcommand_prints_outputs() {
    let path = write_temp("sim", TOGGLE);
    let out = lsim()
        .args(["sim", path.to_str().unwrap(), "--until", "50"])
        .args(["--const", "clk=0", "--const", "d=1"])
        .output()
        .expect("run lsim");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("y = 1"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn dot_subcommand_emits_graphviz() {
    let path = write_temp("dot", TOGGLE);
    let out = lsim()
        .args(["dot", path.to_str().unwrap()])
        .output()
        .expect("run lsim");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("XOR"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn bench_subcommand_round_trips_through_parser() {
    let out = lsim().args(["bench", "rtp"]).output().expect("run lsim");
    assert!(out.status.success());
    let source = String::from_utf8_lossy(&out.stdout);
    let netlist = logicsim::netlist::text::parse(&source).expect("parseable");
    assert!(netlist.num_simulated_components() > 500);
    assert!(netlist.num_switches() > 0);
}

#[test]
fn usage_text_pins_every_subcommand_and_option() {
    let out = lsim().output().expect("run lsim");
    assert!(!out.status.success(), "no arguments must print usage");
    let usage = String::from_utf8_lossy(&out.stderr);
    // One line per front-end surface; a missing line here means the
    // usage text drifted from the implemented commands/options.
    for needle in [
        "usage: lsim <stats|sim|machine|dot|lint|analyze|opt|trace> <netlist-file|bench:NAME[@scale]> [options]",
        "lsim bench <stopwatch|assoc_mem|priority_queue|rtp|crossbar>",
        "lsim gen <family[@scale]> [--seed N] [--out FILE]   (e.g. stopwatch@100k)",
        "lsim lint <netlist-file|bench:NAME> [--json] [--format text|json|sarif] [--deny warnings]",
        "lsim analyze <netlist-file|bench:NAME> [--format text|json|sarif] [--deny warnings] [stimulus options]",
        "lsim opt <netlist-file|bench:NAME> [--report] [--emit FILE]",
        "lsim trace <netlist-file|bench:NAME> [--p N] [--out FILE]",
        "options: --until T --warmup T --seed N --vcd FILE",
        "--clock NET:HALF --random NET:PERIOD:PROB --const NET=0|1 --pulse NET:WIDTH",
        "--backend event|bitpar --lanes N (64; bitpar runs --until T vectors)",
        "machine options: --p N (8) --l N (5) --w N (1) --h X (100) --tm X (3)",
    ] {
        assert!(usage.contains(needle), "usage lost `{needle}`:\n{usage}");
    }
}

#[test]
fn bitpar_backend_simulates_vectors_per_lane() {
    let path = write_temp("bitpar", TOGGLE);
    let out = lsim()
        .args(["sim", path.to_str().unwrap(), "--until", "8"])
        .args(["--backend", "bitpar", "--lanes", "4"])
        .args(["--clock", "clk:1", "--const", "d=1"])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lanes       : 4"), "{stdout}");
    assert!(
        stdout.contains("vectors     : 8"),
        "bitpar --until counts vectors: {stdout}"
    );
    // XOR of an alternating clock (tick parity) against constant 1 is
    // identical in every lane: vector 7 has clk=1, so y=0 in all lanes.
    assert!(stdout.contains("y = 0000"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn bitpar_backend_rejects_tick_based_options() {
    let path = write_temp("bitpar_vcd", TOGGLE);
    let out = lsim()
        .args(["sim", path.to_str().unwrap(), "--backend", "bitpar"])
        .args(["--vcd", "/tmp/never_written.vcd"])
        .output()
        .expect("run lsim");
    assert!(!out.status.success(), "--vcd is event-only");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--backend event"));
    let out = lsim()
        .args(["sim", path.to_str().unwrap(), "--lanes", "65"])
        .output()
        .expect("run lsim");
    assert!(!out.status.success(), "lanes are capped at the word width");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--lanes must be 1..=64"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn bad_input_fails_with_message() {
    let out = lsim()
        .args(["stats", "/nonexistent.lsim"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    let out = lsim().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn vcd_option_writes_waveforms() {
    let path = write_temp("vcd_src", TOGGLE);
    let vcd_path =
        std::env::temp_dir().join(format!("logicsim_test_wave_{}.vcd", std::process::id()));
    let out = lsim()
        .args(["sim", path.to_str().unwrap(), "--until", "100"])
        .args(["--clock", "clk:10", "--const", "d=1"])
        .args(["--vcd", vcd_path.to_str().unwrap()])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let vcd = std::fs::read_to_string(&vcd_path).expect("vcd written");
    assert!(vcd.starts_with("$version"));
    assert!(vcd.contains("$var wire 1 ! y $end"));
    // The clock drives y, so the waveform must contain both states.
    assert!(vcd.contains("\n1!") || vcd.contains("\n0!"));
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(vcd_path);
}

#[test]
fn machine_subcommand_compares_model_and_machine() {
    let path = write_temp("machine", TOGGLE);
    let out = lsim()
        .args(["machine", path.to_str().unwrap(), "--until", "400"])
        .args(["--clock", "clk:10", "--random", "d:16:0.5"])
        .args(["--p", "4", "--l", "1", "--w", "1", "--h", "10"])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UI/GC/Q=4/P=4/L=1"), "{stdout}");
    assert!(stdout.contains("model R_P"), "{stdout}");
    assert!(stdout.contains("speed-up"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn lint_subcommand_flags_zero_delay_loop() {
    let path = write_temp(
        "lint_loop",
        "\
circuit livelock
input s
input r
net q
net qn
gate NAND d=0,0 q s qn
gate NAND d=0,0 qn r q
output q
",
    );
    let out = lsim()
        .args(["lint", path.to_str().unwrap()])
        .output()
        .expect("run lsim");
    assert!(!out.status.success(), "zero-delay loop must fail lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[LS0001]"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn lint_deny_warnings_rejects_drive_fight() {
    let path = write_temp(
        "lint_fight",
        "\
circuit fight
input a
input b
gate NOT y a
gate BUF y b
output y
",
    );
    // Without --deny: warning reported, exit 0.
    let out = lsim()
        .args(["lint", path.to_str().unwrap()])
        .output()
        .expect("run lsim");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("warning[LS0002]"));
    // With --deny warnings: same report, nonzero exit.
    let out = lsim()
        .args(["lint", path.to_str().unwrap(), "--deny", "warnings"])
        .output()
        .expect("run lsim");
    assert!(!out.status.success(), "--deny warnings must fail on LS0002");
    let _ = std::fs::remove_file(path);
}

#[cfg(feature = "obs")]
#[test]
fn trace_subcommand_writes_chrome_trace_and_prints_params() {
    let trace_path =
        std::env::temp_dir().join(format!("logicsim_test_trace_{}.json", std::process::id()));
    let out = lsim()
        .args(["trace", "bench:stopwatch", "--until", "600", "--p", "2"])
        .args(["--out", trace_path.to_str().unwrap()])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("measured"), "{stdout}");
    assert!(stdout.contains("calibrated"), "{stdout}");
    assert!(stdout.contains("eval"), "{stdout}");
    // The written file is a Chrome-loadable trace: valid JSON with a
    // traceEvents array that actually contains phase slices.
    let body = std::fs::read_to_string(&trace_path).expect("trace written");
    let value: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
    let events = value
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 3, "expected metadata + samples");
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn opt_subcommand_reports_and_emits_optimized_netlist() {
    let path = write_temp(
        "opt_src",
        "\
circuit redundant
input a
net n1
net n2
net y
gate NOT n1 a
gate NOT n2 a
gate AND y n1 n2
output y
",
    );
    let emit_path =
        std::env::temp_dir().join(format!("logicsim_test_opt_{}.lsim", std::process::id()));
    let out = lsim()
        .args(["opt", path.to_str().unwrap()])
        .args(["--emit", emit_path.to_str().unwrap()])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The duplicate inverter merges: 3 -> 2 gates.
    assert!(stdout.contains("info[LS0007]"), "{stdout}");
    assert!(stdout.contains("4 -> 3 components"), "{stdout}");
    // The emitted netlist re-parses and is the smaller circuit.
    let emitted = std::fs::read_to_string(&emit_path).expect("emitted netlist");
    let netlist = logicsim::netlist::text::parse(&emitted).expect("parseable");
    assert_eq!(netlist.num_gates(), 2);
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(emit_path);
}

#[test]
fn opt_report_json_is_machine_readable() {
    let out = lsim()
        .args(["opt", "bench:stopwatch", "--report"])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let value: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        value
            .get("schema_version")
            .and_then(serde_json::Value::as_u64),
        Some(1)
    );
    assert_eq!(
        value.get("circuit").and_then(serde_json::Value::as_str),
        Some("stopwatch")
    );
    let before = value
        .get("components_before")
        .and_then(serde_json::Value::as_u64)
        .expect("before");
    let after = value
        .get("components_after")
        .and_then(serde_json::Value::as_u64)
        .expect("after");
    assert!(after < before, "stopwatch must shrink: {before} -> {after}");
    let findings = value
        .get("findings")
        .and_then(serde_json::Value::as_array)
        .expect("findings array");
    assert!(!findings.is_empty());
}

#[test]
fn lint_json_on_stopwatch_matches_golden_file() {
    let out = lsim()
        .args(["lint", "bench:stopwatch", "--json"])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8_lossy(&out.stdout);
    let golden = include_str!("golden/lint_stopwatch.json");
    // Compare normalized line endings so the golden file stays
    // byte-for-byte meaningful on every platform.
    assert_eq!(
        got.trim().replace("\r\n", "\n"),
        golden.trim().replace("\r\n", "\n"),
        "lsim lint --json output drifted from tests/golden/lint_stopwatch.json; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn lint_sarif_on_stopwatch_matches_golden_file() {
    let out = lsim()
        .args(["lint", "bench:stopwatch", "--format", "sarif"])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8_lossy(&out.stdout);
    let golden = include_str!("golden/lint_stopwatch.sarif");
    assert_eq!(
        got.trim().replace("\r\n", "\n"),
        golden.trim().replace("\r\n", "\n"),
        "lsim lint --format sarif output drifted from tests/golden/lint_stopwatch.sarif; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn analyze_subcommand_uses_stimulus_seeds() {
    // Under the stopwatch's shipped stimulus plan the dataflow passes
    // run with real periodicity seeds; the sequential core still has
    // feedback, so LS0011 (unbounded arrival) must be among the facts,
    // and info-only findings must not affect the exit status.
    let out = lsim()
        .args(["analyze", "bench:stopwatch"])
        .output()
        .expect("run lsim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("info[LS0011]"), "{stdout}");
    // SARIF output parses and names the analyzed artifact.
    let out = lsim()
        .args(["analyze", "bench:stopwatch", "--format", "sarif"])
        .output()
        .expect("run lsim");
    assert!(out.status.success());
    let value: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid SARIF JSON");
    assert_eq!(
        value.get("version").and_then(serde_json::Value::as_str),
        Some("2.1.0")
    );
    let pretty = serde_json::to_string_pretty(&value).unwrap();
    assert!(pretty.contains("bench:stopwatch"), "{pretty}");
}
