//! Proof-of-equivalence harness for the static netlist optimizer.
//!
//! For each benchmark circuit, the original and the optimized netlist
//! are driven with the identical random stimulus (seed 0x1987, 8
//! vector-period warm-up, 3000-tick window) and the per-tick levels of
//! every declared output net are folded into an FNV-1a digest. The
//! optimizer preserves net ids for inputs and outputs, so the same
//! `NetId`s are sampled on both sides; any divergence in any observed
//! net at any tick is a digest mismatch.
//!
//! The optimized run goes through the engine-integrated
//! [`SimConfig::optimize`] path — the same path `par_study` and the
//! model-validation harness use — on both the serial [`Simulator`] and
//! the [`ParSimulator`] at P ∈ {1, 2, 4}, with the partition computed
//! on the **original** graph and remapped through the optimizer's
//! component map, exactly as production callers do.
//!
//! A final test pins the headline claim of `lsim opt --report`: the
//! optimizer must find actual reductions on at least three of the five
//! paper benchmarks (it currently reduces all five).

use logicsim::circuits::{Benchmark, BenchmarkInstance};
use logicsim::netlist::Level;
use logicsim::partition::{Partitioner, RandomPartitioner};
use logicsim::sim::stimulus::Stimulus;
use logicsim::sim::{ParSimulator, SimConfig, Simulator};

/// FNV-1a 64-bit over a byte slice, continuing from `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Encodes a level as one byte for digesting.
fn level_byte(l: Level) -> u8 {
    match l {
        Level::Zero => 0,
        Level::One => 1,
        Level::X => 2,
    }
}

/// Measurement window for one instance: warm-up end and run end.
fn window(inst: &BenchmarkInstance) -> (u64, u64) {
    let warmup = 8 * inst.vector_period.max(1);
    (warmup, warmup + 3_000)
}

/// Digests the observed-output waveform of a serial run.
fn digest_serial(inst: &BenchmarkInstance, optimize: bool) -> u64 {
    let mut stim = inst
        .stimulus
        .build(&inst.netlist, 0x1987)
        .expect("benchmark stimulus resolves");
    let mut sim = Simulator::with_config(
        &inst.netlist,
        SimConfig {
            optimize,
            ..SimConfig::default()
        },
    )
    .expect("pre-flight");
    let (warmup, end) = window(inst);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for t in 0..end {
        stim.apply(&mut sim, t);
        sim.step();
        if t >= warmup {
            for &o in inst.netlist.outputs() {
                fnv1a(&mut h, &[level_byte(sim.level(o))]);
            }
        }
    }
    h
}

/// Digests the observed-output waveform of a parallel run at `workers`
/// evaluator threads, partition computed on the original graph.
fn digest_par(inst: &BenchmarkInstance, optimize: bool, workers: usize) -> u64 {
    let mut stim = inst
        .stimulus
        .build(&inst.netlist, 0x1987)
        .expect("benchmark stimulus resolves");
    let part = RandomPartitioner::new(0x1987).partition(&inst.netlist, workers as u32);
    let mut sim = ParSimulator::with_config(
        &inst.netlist,
        part.as_slice(),
        workers,
        SimConfig {
            optimize,
            ..SimConfig::default()
        },
    )
    .expect("pre-flight");
    let (warmup, end) = window(inst);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    sim.run_with(warmup, |tick, frame| {
        stim.apply_with(tick, |net, level| frame.set(net, level));
    });
    for t in warmup..end {
        sim.run_with(t + 1, |tick, frame| {
            stim.apply_with(tick, |net, level| frame.set(net, level));
        });
        for &o in inst.netlist.outputs() {
            fnv1a(&mut h, &[level_byte(sim.level(o))]);
        }
    }
    h
}

/// Original-vs-optimized equivalence on one benchmark, serial plus the
/// parallel engine at P ∈ {1, 2, 4}.
fn check(bench: Benchmark) {
    let inst = bench.build_default();
    let reference = digest_serial(&inst, false);
    assert_eq!(
        digest_serial(&inst, true),
        reference,
        "{}: optimized serial run diverged on an observed output",
        bench.paper_name()
    );
    for workers in [1usize, 2, 4] {
        assert_eq!(
            digest_par(&inst, true, workers),
            reference,
            "{}: optimized ParSimulator at P={workers} diverged on an observed output",
            bench.paper_name()
        );
    }
}

#[test]
fn stop_watch_optimized_is_equivalent() {
    check(Benchmark::StopWatch);
}

#[test]
fn assoc_mem_optimized_is_equivalent() {
    check(Benchmark::AssocMem);
}

#[test]
fn priority_queue_optimized_is_equivalent() {
    check(Benchmark::PriorityQueue);
}

#[test]
fn rtp_chip_optimized_is_equivalent() {
    check(Benchmark::RtpChip);
}

#[test]
fn crossbar_switch_optimized_is_equivalent() {
    check(Benchmark::CrossbarSwitch);
}

#[test]
fn optimizer_reduces_most_benchmarks() {
    let mut reduced = 0;
    for bench in Benchmark::ALL {
        let (opt, report) = bench.build_default().optimized();
        assert_eq!(
            report.reduction(),
            opt.netlist
                .num_components()
                .abs_diff(report.components_before),
            "{}: report disagrees with the emitted netlist",
            bench.paper_name()
        );
        if report.reduction() > 0 {
            reduced += 1;
        }
    }
    assert!(
        reduced >= 3,
        "optimizer reduced only {reduced}/5 benchmarks; expected at least 3"
    );
}
