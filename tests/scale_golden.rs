//! Golden-digest equivalence for the tiled 10k corpus.
//!
//! A scaled instance is only a valid benchmark if every engine tells
//! the same story about it. For each family's `@10k` instance this
//! suite checks two protocols:
//!
//! * **Tick window** — the serial event-driven engine and the
//!   thread-parallel [`ParSimulator`] at `P` in {1, 2, 4} (under
//!   multilevel partitions, so the new partitioner is exercised on the
//!   simulation path, not just in cut-size studies) replay the same
//!   stimulus window; workload counters must match *exactly* and the
//!   final settled levels of every observable output must fold to the
//!   same FNV-1a digest.
//! * **Vector quiescence** — the serial engine replaying lane 0's
//!   stimulus and lane 0 of the bit-parallel compiled backend settle
//!   the same vectors; the sampled output trajectory must be
//!   bit-identical.
//!
//! Together these pin the 10k instances as cross-engine golden: any
//! generator change that perturbs simulated behavior (not just
//! structure) trips one of the digests.

use logicsim::circuits::{scaled, Benchmark, BenchmarkInstance, ScaledParams};
use logicsim::partition::multilevel_assignment;
use logicsim::sim::stimulus::run_with_stimulus;
use logicsim::sim::{BitParSim, ParSimulator, Simulator, Stimulus64};

/// FNV-1a 64-bit over a byte slice, continuing from `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Stimulus window for the tick-protocol comparison.
const WINDOW: u64 = 200;

/// Settled vectors for the quiescence-protocol comparison.
const VECTORS: u64 = 6;

/// Tick budget per quiescence run.
const CAP: u64 = 50_000;

fn instance_10k(bench: Benchmark) -> BenchmarkInstance {
    let inst = scaled::build(&ScaledParams {
        base: bench,
        target_components: 10_000,
        seed: scaled::DEFAULT_SEED,
    });
    assert!(inst.netlist.num_simulated_components() >= 10_000);
    inst
}

/// Digest of every observable output's settled level.
fn output_digest(
    netlist: &logicsim::netlist::Netlist,
    level: impl Fn(logicsim::netlist::NetId) -> logicsim::netlist::Level,
) -> u64 {
    let mut h = FNV_OFFSET;
    for &out in netlist.outputs() {
        fnv1a(&mut h, &[level(out) as u8]);
    }
    h
}

/// Serial and parallel engines replay the same tick window; returns
/// (counters, output digest) per engine configuration.
fn tick_protocol_matches(bench: Benchmark) {
    let inst = instance_10k(bench);
    let nl = &inst.netlist;

    let mut stim = inst.stimulus.build(nl, 0x1987).expect("stimulus");
    let mut sim = Simulator::new(nl).expect("pre-flight");
    run_with_stimulus(&mut sim, &mut stim, WINDOW);
    let serial_counters = sim.counters().clone();
    let serial_digest = output_digest(nl, |net| sim.level(net));
    assert!(
        serial_counters.events > 0,
        "{bench:?}: window saw no events"
    );

    for workers in [1usize, 2, 4] {
        let assignment = multilevel_assignment(nl, workers as u32, 11);
        let mut pstim = inst.stimulus.build(nl, 0x1987).expect("stimulus");
        let mut psim = ParSimulator::new(nl, &assignment, workers).expect("pre-flight");
        psim.run_with(WINDOW, |tick, frame| {
            pstim.apply_with(tick, |net, level| frame.set(net, level));
        });
        assert_eq!(
            psim.counters(),
            &serial_counters,
            "{bench:?} P={workers}: parallel counters diverged"
        );
        let digest = output_digest(nl, |net| psim.level(net));
        assert_eq!(
            digest, serial_digest,
            "{bench:?} P={workers}: settled outputs diverged from serial"
        );
    }
}

/// Serial lane-0 replay and bit-parallel lane 0 settle the same
/// vectors; trajectories must fold to the same digest.
fn vector_protocol_matches(bench: Benchmark) {
    let inst = instance_10k(bench);
    let nl = &inst.netlist;

    let mut stim = inst
        .stimulus
        .build(nl, Stimulus64::lane_seed(0x1987, 0))
        .expect("stimulus");
    let mut sim = Simulator::new(nl).expect("pre-flight");
    let mut serial = FNV_OFFSET;
    for v in 0..VECTORS {
        stim.apply_with(v, |net, level| sim.set_input(net, level));
        let target = sim.now() + CAP;
        assert!(
            sim.run_to_quiescence(target) < target,
            "{bench:?}: serial v={v} did not settle"
        );
        fnv1a(&mut serial, &v.to_le_bytes());
        for &out in nl.outputs() {
            fnv1a(&mut serial, &[sim.level(out) as u8]);
        }
    }

    let mut stim64 = Stimulus64::new(&inst.stimulus, nl, 0x1987, 2).expect("stimulus");
    let mut bp = BitParSim::new(nl, 2).expect("pre-flight");
    let mut lane0 = FNV_OFFSET;
    for v in 0..VECTORS {
        stim64.apply_with(v, |net, plane| bp.set_input_plane(net, plane));
        assert!(bp.settle_vector(), "{bench:?}: bitpar v={v} did not settle");
        fnv1a(&mut lane0, &v.to_le_bytes());
        for &out in nl.outputs() {
            fnv1a(&mut lane0, &[bp.level(out, 0) as u8]);
        }
    }
    assert_eq!(
        lane0,
        serial,
        "{}@10k: bitpar lane 0 diverged from the event-driven engine",
        bench.paper_name()
    );
}

macro_rules! golden {
    ($tick:ident, $vec:ident, $bench:expr) => {
        #[test]
        fn $tick() {
            tick_protocol_matches($bench);
        }
        #[test]
        fn $vec() {
            vector_protocol_matches($bench);
        }
    };
}

golden!(
    stopwatch_10k_tick_window_golden,
    stopwatch_10k_vector_quiescence_golden,
    Benchmark::StopWatch
);
golden!(
    assoc_mem_10k_tick_window_golden,
    assoc_mem_10k_vector_quiescence_golden,
    Benchmark::AssocMem
);
golden!(
    priority_queue_10k_tick_window_golden,
    priority_queue_10k_vector_quiescence_golden,
    Benchmark::PriorityQueue
);
golden!(
    rtp_chip_10k_tick_window_golden,
    rtp_chip_10k_vector_quiescence_golden,
    Benchmark::RtpChip
);
golden!(
    crossbar_10k_tick_window_golden,
    crossbar_10k_vector_quiescence_golden,
    Benchmark::CrossbarSwitch
);
