//! Overhead regression for the `obs` phase-timing layer.
//!
//! The observability design brief promises "no allocation or locking on
//! the hot path" and a runtime cost small enough to leave armed in
//! normal runs. This test holds it to that: the same binary runs the
//! same serial measurement window with the recorders disarmed and
//! armed, and the armed run must stay within 1.10x of the disarmed one
//! in optimized builds — CI runs this suite with `--release` — with
//! min-of-trials stopwatches on both sides plus a bounded re-measure
//! loop to shed scheduler noise (see [`BUDGET`] for the debug-build
//! slack).
//!
//! The companion invariant — that arming changes no simulation state —
//! is pinned bit-exactly by `golden_trace.rs`, which runs every golden
//! digest with `observe: true` at P in {1, 2, 4, 8}.

#![cfg(feature = "obs")]

use logicsim::circuits::Benchmark;
use logicsim::sim::stimulus::run_with_stimulus;
use logicsim::sim::{SimConfig, Simulator};
use std::time::Instant;

const SEED: u64 = 0x1987;
const WINDOW: u64 = 8_000;
const TRIALS: usize = 5;

/// Overhead budget. The 1.10x promise is about the optimized recorder
/// (CI runs this suite with `--release`); unoptimized builds inline
/// nothing, so the same structural cost shows up larger and gets a
/// little slack — enough to catch a regression to per-sample
/// allocation or locking, which costs integer multiples either way.
const BUDGET: f64 = if cfg!(debug_assertions) { 1.25 } else { 1.10 };

/// Wall time of the standard stopwatch-benchmark window with the
/// recorder armed or not; returns the fastest of `TRIALS` runs.
fn best_wall_seconds(observe: bool) -> f64 {
    let inst = Benchmark::StopWatch.build_default();
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let mut stim = inst
            .stimulus
            .build(&inst.netlist, SEED)
            .expect("stimulus resolves");
        let mut sim = Simulator::with_config(
            &inst.netlist,
            SimConfig {
                observe,
                ..SimConfig::default()
            },
        )
        .expect("pre-flight");
        let warmup = 8 * inst.vector_period.max(1);
        run_with_stimulus(&mut sim, &mut stim, warmup);
        sim.reset_measurements();
        let t0 = Instant::now();
        run_with_stimulus(&mut sim, &mut stim, warmup + WINDOW);
        best = best.min(t0.elapsed().as_secs_f64());
        assert!(sim.counters().events > 0, "window must do real work");
    }
    best
}

#[test]
fn armed_run_is_within_overhead_budget_of_disarmed() {
    // Interleave a throwaway warm-up of each configuration so neither
    // side pays the first-touch cost.
    let _ = best_wall_seconds(false);
    let _ = best_wall_seconds(true);
    // A loaded host can still hand one side a descheduling spike that
    // min-of-trials does not fully shed; re-measure before declaring a
    // regression. A real regression (allocation or locking on the hot
    // path) fails every attempt by a wide margin.
    let mut last = (f64::NAN, f64::NAN, f64::NAN);
    for _ in 0..3 {
        let off = best_wall_seconds(false);
        let on = best_wall_seconds(true);
        let ratio = on / off.max(1e-12);
        if ratio <= BUDGET {
            return;
        }
        last = (ratio, on, off);
    }
    let (ratio, on, off) = last;
    panic!(
        "obs overhead {ratio:.3}x exceeds the {BUDGET:.2}x budget \
         (armed {on:.6}s vs disarmed {off:.6}s, 3 attempts)"
    );
}

#[test]
fn armed_run_actually_recorded_something() {
    let inst = Benchmark::StopWatch.build_default();
    let mut stim = inst
        .stimulus
        .build(&inst.netlist, SEED)
        .expect("stimulus resolves");
    let mut sim = Simulator::with_config(
        &inst.netlist,
        SimConfig {
            observe: true,
            ..SimConfig::default()
        },
    )
    .expect("pre-flight");
    run_with_stimulus(&mut sim, &mut stim, WINDOW);
    let report = sim.obs_report();
    assert!(report.executed_ticks() > 0, "no ticks observed");
    assert!(
        report.total(logicsim::sim::Phase::Eval).items > 0,
        "no evaluations observed"
    );
}
