//! End-to-end integration: circuit generation -> event-driven
//! simulation -> workload statistics -> analytical model -> machine
//! simulation, across crate boundaries.

use logicsim::circuits::Benchmark;
use logicsim::core::runtime::{max_useful_processors, run_time};
use logicsim::core::speedup::speedup;
use logicsim::core::{BaseMachine, MachineDesign};
use logicsim::machine::{validate_against_model, MachineConfig, NetworkKind};
use logicsim::partition::{measured_messages, PartitionQuality, Partitioner, RandomPartitioner};
use logicsim::{measure_benchmark, MeasureOptions};

fn quick_trace_opts() -> MeasureOptions {
    MeasureOptions {
        collect_trace: true,
        ..MeasureOptions::quick()
    }
}

#[test]
fn full_pipeline_stopwatch() {
    let m = measure_benchmark(Benchmark::StopWatch, &quick_trace_opts());
    assert!(m.workload.events > 50.0, "stopwatch produced no activity");
    // Feed the measured workload to the model.
    let base = BaseMachine::vax_11_750();
    let design = MachineDesign::new(4, 5, 1.0, base.t_eval / 10.0, 3.0, 1.0);
    let s = speedup(&m.normalized, &design, &base, 1.0);
    assert!(s > 1.0, "a 4-processor specialized machine must win: {s}");
    // The model's validity bound: P <= N.
    assert!(max_useful_processors(&m.normalized) >= 4);
}

#[test]
fn measured_messages_respect_eq6_bound() {
    // Random partitioning is the upper bound: no strategy's measured
    // M_P may exceed M_inf, and random should be within 25% of Eq. 6
    // even on a short window.
    let m = measure_benchmark(Benchmark::CrossbarSwitch, &quick_trace_opts());
    let inst = Benchmark::CrossbarSwitch.build_default();
    let m_inf = m.trace.total_messages_inf();
    for p in [2u32, 4, 8] {
        let part = RandomPartitioner::new(5).partition(&inst.netlist, p);
        let measured = measured_messages(&m.trace, &part);
        assert!(measured <= m_inf, "M_P {measured} > M_inf {m_inf}");
        let predicted = m_inf as f64 * (1.0 - 1.0 / f64::from(p));
        let err = (measured as f64 - predicted).abs() / predicted;
        assert!(
            err < 0.25,
            "P={p}: measured {measured} vs Eq.6 {predicted} (err {err:.2})"
        );
    }
}

#[test]
fn machine_simulation_of_real_trace_brackets_model() {
    let m = measure_benchmark(Benchmark::AssocMem, &quick_trace_opts());
    let inst = Benchmark::AssocMem.build_default();
    let base = BaseMachine::vax_11_750();
    let cfg = MachineConfig::paper_design(4, 5, NetworkKind::BusSet { width: 2 }, 10.0, 3.0);
    let part = RandomPartitioner::new(9).partition(&inst.netlist, 4);
    let v = validate_against_model(&cfg, &m.trace, &part, &base);
    // The machine can never beat the model by much (the model's
    // assumptions are optimistic), and on real traces the model should
    // stay within a factor-2 envelope.
    assert!(
        v.model_runtime <= v.machine_runtime * 1.10,
        "model pessimistic beyond tolerance: {v}"
    );
    assert!(
        v.model_runtime >= v.machine_runtime * 0.5,
        "model wildly optimistic: {v}"
    );
}

#[test]
fn partition_quality_report_is_self_consistent() {
    let m = measure_benchmark(Benchmark::RtpChip, &quick_trace_opts());
    let inst = Benchmark::RtpChip.build_default();
    let part = RandomPartitioner::new(2).partition(&inst.netlist, 8);
    let q = PartitionQuality::evaluate("random", &m.trace, &part);
    assert_eq!(q.parts, 8);
    assert!(q.beta >= 1.0 && q.beta <= 8.0, "beta = {}", q.beta);
    assert!(q.messages as f64 <= m.trace.total_messages_inf() as f64);
    assert!(q.reduction_vs_random() > 0.0);
}

#[test]
fn model_components_decompose_consistently() {
    // run_time total = sync + max(eval, comm) at every point of the
    // Table 7 sweep on a measured workload.
    let m = measure_benchmark(Benchmark::PriorityQueue, &MeasureOptions::quick());
    let base = BaseMachine::vax_11_750();
    for p in [1u32, 5, 20, 50] {
        for l in [1u32, 5] {
            let d = MachineDesign::new(p, l, 2.0, base.t_eval / 10.0, 3.0, 1.0);
            let rt = run_time(&m.normalized, &d, 1.0);
            assert!(
                (rt.total - (rt.sync + rt.eval.max(rt.comm))).abs() < 1e-6,
                "decomposition broken at P={p} L={l}"
            );
        }
    }
}
