//! Golden differential tests for the event-driven engine.
//!
//! Each benchmark circuit is measured over a short window with trace
//! collection on, and the full [`TickTrace`] (every tick, every event,
//! every fanout destination, in order) is folded into an FNV-1a digest
//! that is compared against a value recorded from the engine *before*
//! the data-oriented kernel rewrite. Together with the exact workload
//! counters this proves the optimized hot path is tick-for-tick and
//! event-for-event identical to the reference semantics: any change in
//! event ordering, inertial cancellation, switch-group settling, or
//! counter accounting shows up as a digest mismatch.
//!
//! The same golden rows also pin the **parallel** engine: `ParSimulator`
//! under a random partition must reproduce the identical trace digest
//! and counters for every worker count `P` in {1, 2, 4, 8} — the
//! determinism contract of `logicsim::sim::par_engine`.
//!
//! Both engines run with the `obs` phase-timing layer **armed** (the
//! root crate's default feature), so these digests additionally pin
//! that observation is pure measurement: any timing side effect on
//! event ordering or counters would break every row at every `P`.
//!
//! Regenerate the table with
//! `cargo test --test golden_trace -- --ignored --nocapture`.

use logicsim::circuits::Benchmark;
use logicsim::partition::{Partitioner, RandomPartitioner};
use logicsim::sim::stimulus::run_with_stimulus;
use logicsim::sim::{ParSimulator, SimConfig, Simulator, TickTrace, WorkloadCounters};

/// FNV-1a 64-bit over a byte slice, continuing from `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn fold_u64(h: &mut u64, v: u64) {
    fnv1a(h, &v.to_le_bytes());
}

/// Digests the complete trace structure: span, tick numbers, event
/// order, sources, and fanout destination lists.
fn trace_digest(trace: &TickTrace) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fold_u64(&mut h, trace.start);
    fold_u64(&mut h, trace.end);
    fold_u64(&mut h, trace.ticks.len() as u64);
    for tick in &trace.ticks {
        fold_u64(&mut h, tick.tick);
        fold_u64(&mut h, tick.events.len() as u64);
        for ev in &tick.events {
            fold_u64(&mut h, u64::from(ev.source));
            fold_u64(&mut h, ev.dests.len() as u64);
            for &d in &ev.dests {
                fold_u64(&mut h, u64::from(d));
            }
        }
    }
    h
}

/// One golden row: the trace digest plus every workload counter.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    digest: u64,
    busy_ticks: u64,
    idle_ticks: u64,
    events: u64,
    messages_inf: u64,
    evaluations: u64,
    group_resolutions: u64,
    event_list_peak: u64,
    event_list_sum: u64,
}

/// Runs the standard measurement recipe (seed 0x1987, 8 warm-up vector
/// periods, 3000-tick window) with trace collection.
fn measure(bench: Benchmark) -> Golden {
    let inst = bench.build_default();
    let mut stim = inst
        .stimulus
        .build(&inst.netlist, 0x1987)
        .expect("benchmark stimulus resolves");
    let mut sim = Simulator::with_config(
        &inst.netlist,
        SimConfig {
            collect_trace: true,
            // Observation armed: the digests below prove phase timing
            // never perturbs simulation state.
            observe: cfg!(feature = "obs"),
            ..SimConfig::default()
        },
    )
    .expect("pre-flight");
    let warmup = 8 * inst.vector_period.max(1);
    run_with_stimulus(&mut sim, &mut stim, warmup);
    sim.reset_measurements();
    run_with_stimulus(&mut sim, &mut stim, warmup + 3_000);
    let c: WorkloadCounters = sim.counters().clone();
    let trace = sim.take_trace();
    Golden {
        digest: trace_digest(&trace),
        busy_ticks: c.busy_ticks,
        idle_ticks: c.idle_ticks,
        events: c.events,
        messages_inf: c.messages_inf,
        evaluations: c.evaluations,
        group_resolutions: c.group_resolutions,
        event_list_peak: c.event_list_peak,
        event_list_sum: c.event_list_sum,
    }
}

/// Runs the identical measurement recipe on the parallel engine with a
/// seeded random partition over `workers` parts.
fn measure_par(bench: Benchmark, workers: usize) -> Golden {
    let inst = bench.build_default();
    let mut stim = inst
        .stimulus
        .build(&inst.netlist, 0x1987)
        .expect("benchmark stimulus resolves");
    let part = RandomPartitioner::new(0x1987).partition(&inst.netlist, workers as u32);
    let mut sim = ParSimulator::with_config(
        &inst.netlist,
        part.as_slice(),
        workers,
        SimConfig {
            collect_trace: true,
            // Same digests must come out with per-phase timing armed.
            observe: cfg!(feature = "obs"),
            ..SimConfig::default()
        },
    )
    .expect("pre-flight");
    let warmup = 8 * inst.vector_period.max(1);
    sim.run_with(warmup, |tick, frame| {
        stim.apply_with(tick, |net, level| frame.set(net, level));
    });
    sim.reset_measurements();
    sim.run_with(warmup + 3_000, |tick, frame| {
        stim.apply_with(tick, |net, level| frame.set(net, level));
    });
    let c: WorkloadCounters = sim.counters().clone();
    let trace = sim.take_trace();
    Golden {
        digest: trace_digest(&trace),
        busy_ticks: c.busy_ticks,
        idle_ticks: c.idle_ticks,
        events: c.events,
        messages_inf: c.messages_inf,
        evaluations: c.evaluations,
        group_resolutions: c.group_resolutions,
        event_list_peak: c.event_list_peak,
        event_list_sum: c.event_list_sum,
    }
}

fn check(bench: Benchmark, expect: Golden) {
    let got = measure(bench);
    assert_eq!(
        got,
        expect,
        "{}: trace/counters diverged from the pre-refactor engine",
        bench.paper_name()
    );
    for workers in [1usize, 2, 4, 8] {
        let par = measure_par(bench, workers);
        assert_eq!(
            par,
            expect,
            "{}: ParSimulator at P={workers} diverged from the serial golden trace",
            bench.paper_name()
        );
    }
}

#[test]
#[ignore = "regeneration helper: prints the golden table"]
fn print_golden() {
    for bench in Benchmark::ALL {
        let g = measure(bench);
        println!("{}: {g:#x?}", bench.paper_name());
    }
}

#[test]
fn stop_watch_trace_is_golden() {
    check(
        Benchmark::StopWatch,
        Golden {
            digest: 0xff79_702d_dbd2_3878,
            busy_ticks: 0x3e,
            idle_ticks: 0xb7a,
            events: 0x149,
            messages_inf: 0x3df,
            evaluations: 0x3dd,
            group_resolutions: 0,
            event_list_peak: 0x14,
            event_list_sum: 0x149,
        },
    );
}

#[test]
fn assoc_mem_trace_is_golden() {
    check(
        Benchmark::AssocMem,
        Golden {
            digest: 0xccbc_0bb4_d77c_2494,
            busy_ticks: 0x3a6,
            idle_ticks: 0x812,
            events: 0x114c,
            messages_inf: 0x2602,
            evaluations: 0x25ce,
            group_resolutions: 0x493,
            event_list_peak: 0x1a,
            event_list_sum: 0xece,
        },
    );
}

#[test]
fn priority_queue_trace_is_golden() {
    check(
        Benchmark::PriorityQueue,
        Golden {
            digest: 0xfdcf_bb4e_9709_ee5f,
            busy_ticks: 0x3fa,
            idle_ticks: 0x7be,
            events: 0xd640,
            messages_inf: 0x3_3e2c,
            evaluations: 0x2_d33a,
            group_resolutions: 0x1_071d,
            event_list_peak: 0x15c,
            event_list_sum: 0x745b,
        },
    );
}

#[test]
fn rtp_chip_trace_is_golden() {
    check(
        Benchmark::RtpChip,
        Golden {
            digest: 0xf3b8_8056_0922_9a80,
            busy_ticks: 0x22c,
            idle_ticks: 0x98c,
            events: 0x3fee,
            messages_inf: 0xcf41,
            evaluations: 0xcd36,
            group_resolutions: 0xcdd,
            event_list_peak: 0x5c,
            event_list_sum: 0x3572,
        },
    );
}

#[test]
fn crossbar_switch_trace_is_golden() {
    check(
        Benchmark::CrossbarSwitch,
        Golden {
            digest: 0xbe5f_f4c2_f313_bbb4,
            busy_ticks: 0x19f,
            idle_ticks: 0xa19,
            events: 0x6c3,
            messages_inf: 0xe66,
            evaluations: 0xe63,
            group_resolutions: 0,
            event_list_peak: 0x64,
            event_list_sum: 0x7db,
        },
    );
}
