//! Golden test for the Chrome `trace_event` exporter.
//!
//! A hand-built [`ObsReport`] with two worker lanes and a master lane
//! is rendered and compared byte-for-byte against
//! `tests/golden/chrome_trace_small.json`, pinning the exporter's
//! field ordering, microsecond formatting, metadata events, and lane
//! numbering. Structural invariants (valid JSON shape, monotone
//! timestamps per lane, one `tid` per lane) are asserted on top so a
//! regeneration of the golden file cannot silently bless a malformed
//! trace.
//!
//! Regenerate with `cargo test --test chrome_trace_golden -- --ignored
//! --nocapture` and paste the printed JSON into the golden file.

#![cfg(feature = "obs")]

use logicsim::sim::{LaneReport, ObsReport, Phase, PhaseSample};

fn sample(phase: Phase, tick: u64, start_ns: u64, dur_ns: u64, items: u64) -> PhaseSample {
    PhaseSample {
        phase,
        tick,
        start_ns,
        dur_ns,
        items,
    }
}

/// A small deterministic report shaped like a real 2-worker run: two
/// ticks of apply/eval on the workers, start/exchange/done/barrier on
/// the master.
fn small_report() -> ObsReport {
    let worker0 = LaneReport {
        samples: vec![
            sample(Phase::Apply, 100, 1_000, 250, 2),
            sample(Phase::Eval, 100, 1_250, 1_500, 3),
            sample(Phase::Apply, 101, 10_000, 200, 1),
            sample(Phase::Eval, 101, 10_200, 900, 2),
        ],
        dropped: 0,
        totals: Default::default(),
    };
    let worker1 = LaneReport {
        samples: vec![
            sample(Phase::Apply, 100, 1_100, 300, 1),
            sample(Phase::Resolve, 100, 1_400, 450, 1),
            sample(Phase::Eval, 100, 1_850, 1_200, 2),
        ],
        dropped: 0,
        totals: Default::default(),
    };
    let master = LaneReport {
        samples: vec![
            sample(Phase::Start, 100, 500, 400, 2),
            sample(Phase::Exchange, 100, 3_100, 800, 5),
            sample(Phase::Done, 100, 3_900, 350, 4),
            sample(Phase::Barrier, 100, 4_250, 2_750, 0),
            sample(Phase::Start, 101, 9_500, 380, 2),
        ],
        dropped: 1,
        totals: Default::default(),
    };
    ObsReport {
        lanes: vec![worker0, worker1, master],
        lane_names: vec![
            "worker 0".to_string(),
            "worker 1".to_string(),
            "master".to_string(),
        ],
    }
}

#[test]
fn chrome_trace_matches_golden() {
    let json = small_report().chrome_trace();
    let golden = include_str!("golden/chrome_trace_small.json");
    assert_eq!(
        json.replace("\r\n", "\n"),
        golden.replace("\r\n", "\n"),
        "Chrome trace output drifted from tests/golden/chrome_trace_small.json; \
         if the change is intentional, regenerate with \
         `cargo test --test chrome_trace_golden -- --ignored --nocapture`"
    );
}

#[test]
fn chrome_trace_is_structurally_sound() {
    let report = small_report();
    let json = report.chrome_trace();

    // Parses as JSON with the documented top-level shape.
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let serde_json::Value::Object(top) = &value else {
        panic!("top level must be an object");
    };
    assert!(top.contains_key("displayTimeUnit"));
    let serde_json::Value::Array(events) = &top["traceEvents"] else {
        panic!("traceEvents must be an array");
    };

    // One process_name, one thread_name per lane, then the samples.
    let meta = 1 + report.lanes.len();
    let samples: usize = report.lanes.iter().map(|l| l.samples.len()).sum();
    assert_eq!(events.len(), meta + samples);

    // Per lane: one tid, timestamps monotone non-decreasing (lanes
    // record in wall order), every event complete ("ph":"X").
    for (tid, lane) in report.lanes.iter().enumerate() {
        let mut last_ts = f64::MIN;
        let mut seen = 0;
        for ev in events {
            let serde_json::Value::Object(ev) = ev else {
                panic!("every event must be an object");
            };
            if ev["ph"].as_str() != Some("X") {
                continue; // metadata
            }
            let ev_tid = ev["tid"].as_u64().expect("tid number") as usize;
            if ev_tid != tid {
                continue;
            }
            let ts = ev["ts"].as_f64().expect("ts number");
            assert!(ts >= last_ts, "lane {tid}: ts went backwards");
            last_ts = ts;
            seen += 1;
            let tick = ev["args"].get("tick").expect("args.tick");
            assert!(tick.as_u64().is_some());
        }
        assert_eq!(seen, lane.samples.len(), "lane {tid} event count");
    }
}

#[test]
#[ignore = "regeneration helper: prints the golden JSON"]
fn print_golden() {
    print!("{}", small_report().chrome_trace());
}
