//! Property tests for the arithmetic cells: hardware vs integer
//! arithmetic over random operands and widths.

use logicsim_circuits::cells;
use logicsim_netlist::{Level, NetId, NetlistBuilder};
use logicsim_sim::Simulator;
use proptest::prelude::*;

fn drive_bits(sim: &mut Simulator<'_>, nets: &[NetId], value: u64) {
    for (i, &net) in nets.iter().enumerate() {
        sim.set_input(net, Level::from_bool(value >> i & 1 == 1));
    }
}

fn read_bits(sim: &Simulator<'_>, nets: &[NetId]) -> Option<u64> {
    let mut v = 0u64;
    for (i, &net) in nets.iter().enumerate() {
        match sim.level(net).to_bool() {
            Some(true) => v |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ripple-carry adder == integer addition for every width 1..=8.
    #[test]
    fn adder_matches_integer_addition(
        width in 1usize..=8,
        a in any::<u64>(),
        b in any::<u64>(),
        cin in any::<bool>(),
    ) {
        let mask = (1u64 << width) - 1;
        let (av, bv) = (a & mask, b & mask);
        let mut builder = NetlistBuilder::new("adder");
        let an: Vec<NetId> = (0..width).map(|i| builder.input(format!("a{i}"))).collect();
        let bn: Vec<NetId> = (0..width).map(|i| builder.input(format!("b{i}"))).collect();
        let cn = builder.input("cin");
        let (sum, cout) = cells::ripple_adder(&mut builder, &an, &bn, cn, "add");
        let netlist = builder.finish().expect("valid");
        let mut sim = Simulator::new(&netlist).expect("pre-flight");
        drive_bits(&mut sim, &an, av);
        drive_bits(&mut sim, &bn, bv);
        sim.set_input(cn, Level::from_bool(cin));
        sim.run_to_quiescence(100_000);
        let mut got = read_bits(&sim, &sum).expect("known sum");
        if sim.level(cout) == Level::One {
            got |= 1 << width;
        }
        prop_assert_eq!(got, av + bv + u64::from(cin), "{}+{}+{} @ width {}", av, bv, cin, width);
    }

    /// Comparators == integer comparison.
    #[test]
    fn comparators_match_integer_compare(
        width in 1usize..=8,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let mask = (1u64 << width) - 1;
        let (av, bv) = (a & mask, b & mask);
        let mut builder = NetlistBuilder::new("cmp");
        let an: Vec<NetId> = (0..width).map(|i| builder.input(format!("a{i}"))).collect();
        let bn: Vec<NetId> = (0..width).map(|i| builder.input(format!("b{i}"))).collect();
        let eq = cells::eq_comparator(&mut builder, &an, &bn, "eq");
        let lt = cells::lt_comparator(&mut builder, &an, &bn, "lt");
        let netlist = builder.finish().expect("valid");
        let mut sim = Simulator::new(&netlist).expect("pre-flight");
        drive_bits(&mut sim, &an, av);
        drive_bits(&mut sim, &bn, bv);
        sim.run_to_quiescence(100_000);
        prop_assert_eq!(sim.level(eq), Level::from_bool(av == bv));
        prop_assert_eq!(sim.level(lt), Level::from_bool(av < bv));
    }

    /// Decoder output is exactly one-hot at the selected code.
    #[test]
    fn decoder_is_one_hot_for_all_codes(
        bits in 1usize..=4,
        code in any::<u64>(),
    ) {
        let code = code & ((1 << bits) - 1);
        let mut builder = NetlistBuilder::new("dec");
        let sel: Vec<NetId> = (0..bits).map(|i| builder.input(format!("s{i}"))).collect();
        let outs = cells::decoder(&mut builder, &sel, "d");
        let netlist = builder.finish().expect("valid");
        let mut sim = Simulator::new(&netlist).expect("pre-flight");
        drive_bits(&mut sim, &sel, code);
        sim.run_to_quiescence(100_000);
        for (i, &o) in outs.iter().enumerate() {
            prop_assert_eq!(sim.level(o), Level::from_bool(i as u64 == code), "out {}", i);
        }
    }

    /// The synchronous counter counts modulo 2^bits under random
    /// enable patterns.
    #[test]
    fn counter_counts_modulo(
        bits in 1usize..=4,
        enables in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        let mut builder = NetlistBuilder::new("cnt");
        let clk = builder.input("clk");
        let en = builder.input("en");
        let rst = builder.input("rst");
        let qs = cells::counter(&mut builder, clk, en, rst, bits, "c");
        let netlist = builder.finish().expect("valid");
        let mut sim = Simulator::new(&netlist).expect("pre-flight");
        let clock = |sim: &mut Simulator<'_>| {
            sim.set_input(clk, Level::One);
            let t = sim.now();
            sim.run_until(t + 64);
            sim.set_input(clk, Level::Zero);
            let t = sim.now();
            sim.run_until(t + 64);
        };
        // Reset.
        sim.set_input(rst, Level::One);
        sim.set_input(en, Level::One);
        sim.set_input(clk, Level::Zero);
        let t = sim.now();
        sim.run_until(t + 64);
        clock(&mut sim);
        sim.set_input(rst, Level::Zero);
        let t = sim.now();
        sim.run_until(t + 64);
        let mut expected: u64 = 0;
        let modulo = 1u64 << bits;
        for e in enables {
            sim.set_input(en, Level::from_bool(e));
            let t = sim.now();
            sim.run_until(t + 64);
            clock(&mut sim);
            if e {
                expected = (expected + 1) % modulo;
            }
            prop_assert_eq!(read_bits(&sim, &qs), Some(expected));
        }
    }
}
