//! Tile-boundary lint checks at the 100k corpus scale.
//!
//! Building and analyzing a 100k-component instance is release-speed
//! work, so this test is `#[ignore]`d by default; the CI `scale` job
//! runs it explicitly with `cargo test --release -- --ignored`.

use logicsim_circuits::{scaled, Benchmark, ScaledParams};
use logicsim_netlist::analyze::{analyze, Severity};

#[test]
#[ignore = "release-speed: run via `cargo test --release -- --ignored` (CI scale job)"]
fn hundred_k_instances_are_lint_clean() {
    for bench in Benchmark::ALL {
        let inst = scaled::build(&ScaledParams {
            base: bench,
            target_components: 100_000,
            seed: scaled::DEFAULT_SEED,
        });
        let size = inst.netlist.num_simulated_components();
        assert!(size >= 100_000, "{}: {size}", bench.paper_name());
        let report = analyze(&inst.netlist);
        assert!(
            !report.has_errors() && report.count(Severity::Warning) == 0,
            "{}@100k lints dirty:\n{}",
            bench.paper_name(),
            report.render(&inst.netlist)
        );
    }
}
