//! Behavioral property tests: the benchmark circuits against software
//! reference models — the priority queue against a sorted list, the
//! RTP multiplier against `u64` arithmetic, the CAM against a `Vec`,
//! and the crossbar's data plane against direct routing.

use logicsim_circuits::assoc_mem::{build as build_am, AssocMemParams};
use logicsim_circuits::crossbar::{build as build_cb, CrossbarParams};
use logicsim_circuits::priority_queue::{build as build_pq, PriorityQueueParams};
use logicsim_circuits::rtp::{build as build_rtp, RtpParams};
use logicsim_netlist::{Level, NetId, Netlist};
use logicsim_sim::Simulator;
use proptest::prelude::*;

fn settle(sim: &mut Simulator<'_>, ticks: u64) {
    let t = sim.now();
    sim.run_until(t + ticks);
}

fn set_bits(sim: &mut Simulator<'_>, n: &Netlist, prefix: &str, width: usize, value: u64) {
    for i in 0..width {
        let net = n.find_net(&format!("{prefix}{i}")).expect("data net");
        sim.set_input(net, Level::from_bool(value >> i & 1 == 1));
    }
}

fn read_bits(sim: &Simulator<'_>, nets: &[NetId]) -> Option<u64> {
    let mut v = 0u64;
    for (i, &net) in nets.iter().enumerate() {
        match sim.level(net).to_bool() {
            Some(true) => v |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(v)
}

proptest! {
    // These drive full circuits; keep the case counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The hardware priority queue returns the same heads as a software
    /// sorted list, for arbitrary insert/extract scripts.
    #[test]
    fn priority_queue_matches_reference(
        script in proptest::collection::vec((any::<bool>(), 0u64..15), 1..10)
    ) {
        let params = PriorityQueueParams {
            records: 4,
            bits: 4,
            fields: 1,
            clock_half_period: 64,
        };
        let inst = build_pq(&params);
        let n = &inst.netlist;
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(n).expect("pre-flight");
        let clock = |sim: &mut Simulator<'_>| {
            sim.set_input(net("clk"), Level::One);
            settle(sim, 200);
            sim.set_input(net("clk"), Level::Zero);
            settle(sim, 200);
        };
        // Reset.
        for s in ["insert", "extract", "clk"] {
            sim.set_input(net(s), Level::Zero);
        }
        sim.set_input(net("rst"), Level::One);
        settle(&mut sim, 200);
        clock(&mut sim);
        clock(&mut sim);
        sim.set_input(net("rst"), Level::Zero);
        settle(&mut sim, 200);

        let mut reference: Vec<u64> = Vec::new();
        for (is_insert, value) in script {
            if is_insert && reference.len() < 4 {
                set_bits(&mut sim, n, "data", 4, value);
                sim.set_input(net("insert"), Level::One);
                settle(&mut sim, 200);
                clock(&mut sim);
                sim.set_input(net("insert"), Level::Zero);
                settle(&mut sim, 200);
                reference.push(value);
                reference.sort_unstable();
            } else if !reference.is_empty() {
                sim.set_input(net("extract"), Level::One);
                settle(&mut sim, 200);
                clock(&mut sim);
                sim.set_input(net("extract"), Level::Zero);
                settle(&mut sim, 200);
                reference.remove(0);
            }
            let expect = reference.first().copied().unwrap_or(0b1111);
            let head = read_bits(&sim, n.outputs());
            prop_assert_eq!(head, Some(expect), "reference {:?}", reference);
        }
    }

    /// The RTP chip's dose accumulator equals the software sum of
    /// products for arbitrary beam lists.
    #[test]
    fn rtp_dose_matches_reference(
        beams in proptest::collection::vec((0u64..16, 0u64..16), 1..4)
    ) {
        let params = RtpParams {
            bits: 4,
            accum_bits: 10,
            clock_half_period: 64,
        };
        let inst = build_rtp(&params);
        let n = &inst.netlist;
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(n).expect("pre-flight");
        let clock = |sim: &mut Simulator<'_>| {
            sim.set_input(net("clk"), Level::One);
            settle(sim, 200);
            sim.set_input(net("clk"), Level::Zero);
            settle(sim, 200);
        };
        for s in ["clk", "load"] {
            sim.set_input(net(s), Level::Zero);
        }
        sim.set_input(net("rst"), Level::One);
        settle(&mut sim, 200);
        clock(&mut sim);
        clock(&mut sim);
        sim.set_input(net("rst"), Level::Zero);
        settle(&mut sim, 200);
        clock(&mut sim);

        let mut expected: u64 = 0;
        for (w, d) in beams {
            set_bits(&mut sim, n, "w", 4, w);
            set_bits(&mut sim, n, "dist", 4, d);
            sim.set_input(net("load"), Level::One);
            settle(&mut sim, 200);
            clock(&mut sim);
            sim.set_input(net("load"), Level::Zero);
            settle(&mut sim, 200);
            for _ in 0..8 {
                clock(&mut sim);
            }
            expected = (expected + w * d) % (1 << 10);
            // Dose register outputs are outputs[1..] (output[0] = done).
            let dose = read_bits(&sim, &n.outputs()[1..]);
            prop_assert_eq!(dose, Some(expected), "after beam {}x{}", w, d);
        }
    }

    /// CAM: after writing distinct values to all words, searching for
    /// each value matches exactly its word.
    #[test]
    fn cam_matches_reference(perm in Just(()).prop_perturb(|(), mut rng| {
        // A random permutation of 4 distinct 4-bit values.
        let mut vals = [0b0001u64, 0b0110, 0b1010, 0b1111];
        for i in (1..4).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            vals.swap(i, j);
        }
        vals
    })) {
        let params = AssocMemParams {
            words: 4,
            bits: 4,
            vector_period: 32,
        };
        let inst = build_am(&params);
        let n = &inst.netlist;
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(n).expect("pre-flight");
        sim.set_input(net("write_en"), Level::Zero);
        sim.set_input(net("search_req"), Level::Zero);
        for (w, &value) in perm.iter().enumerate() {
            set_bits(&mut sim, n, "addr", 2, w as u64);
            set_bits(&mut sim, n, "data", 4, value);
            settle(&mut sim, 96);
            sim.set_input(net("write_en"), Level::One);
            settle(&mut sim, 96);
            sim.set_input(net("write_en"), Level::Zero);
            settle(&mut sim, 96);
        }
        for (w, &value) in perm.iter().enumerate() {
            set_bits(&mut sim, n, "key", 4, value);
            settle(&mut sim, 96);
            for (other, _) in perm.iter().enumerate() {
                let ml = net(&format!("match{other}"));
                let expect = Level::from_bool(other == w);
                prop_assert_eq!(sim.level(ml), expect,
                    "search {:#06b}: match line {}", value, other);
            }
        }
    }

    /// Crossbar: a single requester always gets its data to the
    /// requested output, for arbitrary (input, output, data) triples.
    #[test]
    fn crossbar_routes_arbitrary_requests(
        input in 0u32..4,
        output in 0u32..4,
        data in 0u64..256,
    ) {
        let inst = build_cb(&CrossbarParams {
            ports: 4,
            width: 8,
            vector_period: 32,
        });
        let n = &inst.netlist;
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(n).expect("pre-flight");
        for i in 0..4 {
            sim.set_input(net(&format!("req{i}")), Level::Zero);
            sim.set_input(net(&format!("ack_out{i}")), Level::Zero);
            set_bits(&mut sim, n, &format!("dst{i}_"), 2, 0);
            set_bits(&mut sim, n, &format!("data{i}_"), 8, 0);
        }
        settle(&mut sim, 128);
        set_bits(&mut sim, n, &format!("data{input}_"), 8, data);
        set_bits(&mut sim, n, &format!("dst{input}_"), 2, u64::from(output));
        settle(&mut sim, 128);
        sim.set_input(net(&format!("req{input}")), Level::One);
        settle(&mut sim, 128);
        let out_nets: Vec<NetId> = (0..8)
            .map(|k| net(&format!("out{output}_{k}")))
            .collect();
        prop_assert_eq!(read_bits(&sim, &out_nets), Some(data));
        prop_assert_eq!(sim.level(net(&format!("req_out{output}"))), Level::One);
        // Handshake completes.
        sim.set_input(net(&format!("ack_out{output}")), Level::One);
        settle(&mut sim, 128);
        prop_assert_eq!(sim.level(net(&format!("ack_in{input}"))), Level::One);
    }
}
