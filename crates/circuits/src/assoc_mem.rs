//! The associative memory benchmark (nmos, asynchronous).
//!
//! "The associative memory functions like a normal random access memory
//! as well as a memory in which records can be retrieved by content."
//! Structure: a CAM array of dynamic nmos storage cells with
//! switch-level match-line pulldowns, a gate-level read plane, a
//! priority encoder over the match lines, and a four-phase asynchronous
//! search handshake built from a delay line and a C-element.

use crate::cells::{self, Rails};
use crate::BenchmarkInstance;
use logicsim_netlist::{Clocking, Technology};
use logicsim_netlist::{Level, NetId, NetlistBuilder, SwitchKind};
use logicsim_sim::{SignalRole, StimulusSpec};

/// Associative memory generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssocMemParams {
    /// Number of words.
    pub words: usize,
    /// Bits per word.
    pub bits: usize,
    /// Stimulus vector period in ticks.
    pub vector_period: u64,
}

impl Default for AssocMemParams {
    fn default() -> AssocMemParams {
        AssocMemParams {
            words: 12,
            bits: 8,
            vector_period: 96,
        }
    }
}

/// Builds the associative memory.
#[must_use]
pub fn build(params: &AssocMemParams) -> BenchmarkInstance {
    assert!(params.words >= 2 && params.bits >= 1, "CAM too small");
    let mut b = NetlistBuilder::new("assoc_mem");
    let rails = Rails::new(&mut b);

    // Interface.
    let write_en = b.input("write_en");
    let search_req = b.input("search_req");
    let addr_bits = (params.words as f64).log2().ceil() as usize;
    let addr: Vec<NetId> = (0..addr_bits)
        .map(|i| b.input(format!("addr{i}")))
        .collect();
    let data: Vec<NetId> = (0..params.bits)
        .map(|i| b.input(format!("data{i}")))
        .collect();
    let key: Vec<NetId> = (0..params.bits)
        .map(|i| b.input(format!("key{i}")))
        .collect();

    // Word-write decode. Only the first `words` codes are populated;
    // the rest of the decode space would be dead logic (LS0003).
    let word_sel = cells::decoder_limited(&mut b, &addr, params.words, "wsel");
    let word_write: Vec<NetId> = word_sel
        .iter()
        .enumerate()
        .map(|(w, &sel)| cells::and2(&mut b, sel, write_en, &format!("ww{w}")))
        .collect();

    // CAM array. Per cell: a pass-transistor write port into a dynamic
    // storage node, a gate-level mismatch XOR, and one nmos pulldown on
    // the word's precharged (pulled-up) match line.
    let mut stored: Vec<Vec<NetId>> = Vec::with_capacity(params.words);
    let mut match_lines: Vec<NetId> = Vec::with_capacity(params.words);
    for (w, &ww) in word_write.iter().enumerate() {
        let ml = b.net(format!("match{w}"));
        b.pull(ml, Level::One);
        let mut word_bits = Vec::with_capacity(params.bits);
        for bit in 0..params.bits {
            let hint = format!("c{w}_{bit}");
            // Write port: stored node charged from the data line.
            let stored_raw = cells::nmos_pass(&mut b, ww, data[bit], &hint);
            // Restore to a driven level for the read plane and XOR.
            let stored_n = cells::nmos_inv(&mut b, rails, stored_raw, &hint);
            let stored_bit = cells::nmos_inv(&mut b, rails, stored_n, &hint);
            // Mismatch pulls the match line low.
            let mm = cells::xor2(&mut b, stored_bit, key[bit], &hint);
            b.switch(SwitchKind::Nmos, mm, ml, rails.gnd);
            word_bits.push(stored_bit);
        }
        stored.push(word_bits);
        match_lines.push(ml);
    }

    // Read plane: read_bit = OR over words of (word_sel AND stored).
    for bit in 0..params.bits {
        let terms: Vec<NetId> = word_sel
            .iter()
            .zip(&stored)
            .enumerate()
            .map(|(w, (&sel, word))| cells::and2(&mut b, sel, word[bit], &format!("rd{w}_{bit}")))
            .collect();
        let read = cells::or_n(&mut b, &terms, &format!("read{bit}"));
        b.mark_output(read);
    }

    // Priority encoder over match lines (lowest matching word wins)
    // plus a match-found flag.
    let found_raw = cells::or_n(&mut b, &match_lines, "found_raw");
    let found = b.net("found");
    b.gate(
        logicsim_netlist::GateKind::Buf,
        &[found_raw],
        found,
        cells::d1(),
    );
    b.mark_output(found);
    let mut blocked = Vec::with_capacity(params.words);
    let mut grant = Vec::with_capacity(params.words);
    for w in 0..params.words {
        let g = if w == 0 {
            cells::and2(&mut b, match_lines[0], match_lines[0], "g0")
        } else {
            let none_above = cells::inv(&mut b, blocked[w - 1], &format!("na{w}"));
            cells::and2(&mut b, match_lines[w], none_above, &format!("g{w}"))
        };
        // The last word's block term has no consumer (nothing below it
        // to block), so building it would be dead logic (LS0003).
        let blk = if w == 0 {
            g
        } else if w + 1 < params.words {
            cells::or2(&mut b, blocked[w - 1], match_lines[w], &format!("blk{w}"))
        } else {
            blocked[w - 1]
        };
        blocked.push(blk);
        grant.push(g);
    }
    for a in 0..addr_bits {
        let terms: Vec<NetId> = (0..params.words)
            .filter(|w| w >> a & 1 == 1)
            .map(|w| grant[w])
            .collect();
        let bit = if terms.is_empty() {
            cells::xor2(&mut b, grant[0], grant[0], &format!("ma{a}"))
        } else {
            cells::or_n(&mut b, &terms, &format!("ma{a}"))
        };
        b.mark_output(bit);
    }

    // Asynchronous search handshake: the request ripples down a delay
    // line sized to cover match-line settling; the ack rises only when
    // both the request and the delayed completion agree (C-element).
    let mut delayed = search_req;
    for i in 0..6 {
        let next = b.fresh(&format!("dl{i}"));
        b.gate(
            logicsim_netlist::GateKind::Buf,
            &[delayed],
            next,
            cells::d1(),
        );
        delayed = next;
    }
    let ack = cells::c_element(&mut b, search_req, delayed, "ack");
    b.mark_output(ack);

    let vp = params.vector_period;
    let mut stimulus = StimulusSpec::new()
        .with(
            "write_en",
            SignalRole::Random {
                period: vp,
                phase: 3,
                toggle_prob: 0.5,
            },
        )
        .with(
            "search_req",
            SignalRole::Random {
                period: vp / 2,
                phase: 11,
                toggle_prob: 0.6,
            },
        );
    for i in 0..addr_bits {
        stimulus = stimulus.with(
            format!("addr{i}"),
            SignalRole::Random {
                period: vp,
                phase: 5 * i as u64 + 1,
                toggle_prob: 0.4,
            },
        );
    }
    for i in 0..params.bits {
        stimulus = stimulus
            .with(
                format!("data{i}"),
                SignalRole::Random {
                    period: vp,
                    phase: 7 * i as u64 + 2,
                    toggle_prob: 0.3,
                },
            )
            .with(
                format!("key{i}"),
                SignalRole::Random {
                    period: vp / 2,
                    phase: 3 * i as u64,
                    toggle_prob: 0.3,
                },
            );
    }

    BenchmarkInstance {
        netlist: b.finish().expect("assoc_mem netlist is valid"),
        stimulus,
        technology: Technology::Nmos,
        clocking: Clocking::Asynchronous,
        vector_period: params.vector_period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_sim::Simulator;

    fn settle(sim: &mut Simulator<'_>) {
        let t = sim.now();
        sim.run_until(t + 96);
    }

    #[test]
    fn write_then_search_matches_only_that_word() {
        let params = AssocMemParams {
            words: 4,
            bits: 4,
            vector_period: 32,
        };
        let inst = build(&params);
        let n = &inst.netlist;
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(n).expect("pre-flight");

        let write_word = |sim: &mut Simulator<'_>, w: u32, value: u32| {
            for i in 0..2 {
                sim.set_input(net(&format!("addr{i}")), Level::from_bool(w >> i & 1 == 1));
            }
            for i in 0..4 {
                sim.set_input(
                    net(&format!("data{i}")),
                    Level::from_bool(value >> i & 1 == 1),
                );
            }
            settle(sim);
            sim.set_input(net("write_en"), Level::One);
            settle(sim);
            sim.set_input(net("write_en"), Level::Zero);
            settle(sim);
        };

        sim.set_input(net("write_en"), Level::Zero);
        sim.set_input(net("search_req"), Level::Zero);
        write_word(&mut sim, 0, 0b0101);
        write_word(&mut sim, 1, 0b0011);
        write_word(&mut sim, 2, 0b1100);
        write_word(&mut sim, 3, 0b1111);

        // Search for 0b1100: only word 2 should match.
        for i in 0..4 {
            sim.set_input(
                net(&format!("key{i}")),
                Level::from_bool(0b1100 >> i & 1 == 1),
            );
        }
        settle(&mut sim);
        for w in 0..4 {
            let expect = Level::from_bool(w == 2);
            assert_eq!(
                sim.level(net(&format!("match{w}"))),
                expect,
                "match line {w}"
            );
        }
        // The encoded match address reads 2 and found=1.
        let found = n.find_net("found").unwrap();
        assert_eq!(sim.level(found), Level::One);

        // Async handshake: ack (the last marked output) rises only after
        // the request has rippled down the delay line, and falls with it.
        let ack = *n.outputs().last().unwrap();
        assert_eq!(sim.level(ack), Level::Zero);
        sim.set_input(net("search_req"), Level::One);
        settle(&mut sim);
        assert_eq!(sim.level(ack), Level::One);
        sim.set_input(net("search_req"), Level::Zero);
        settle(&mut sim);
        assert_eq!(sim.level(ack), Level::Zero);
    }

    #[test]
    fn read_back_by_address() {
        let params = AssocMemParams {
            words: 4,
            bits: 4,
            vector_period: 32,
        };
        let inst = build(&params);
        let n = &inst.netlist;
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(n).expect("pre-flight");
        sim.set_input(net("search_req"), Level::Zero);
        // Write 0b1010 to word 3.
        for i in 0..2 {
            sim.set_input(net(&format!("addr{i}")), Level::One);
        }
        for i in 0..4 {
            sim.set_input(
                net(&format!("data{i}")),
                Level::from_bool(0b1010 >> i & 1 == 1),
            );
        }
        for i in 0..4 {
            sim.set_input(net(&format!("key{i}")), Level::Zero);
        }
        let t = sim.now();
        sim.run_until(t + 64);
        sim.set_input(net("write_en"), Level::One);
        let t = sim.now();
        sim.run_until(t + 64);
        sim.set_input(net("write_en"), Level::Zero);
        let t = sim.now();
        sim.run_until(t + 64);
        // Address still 3: read plane should show the stored value.
        for (i, &out) in n.outputs().iter().enumerate().take(4) {
            let expect = Level::from_bool(0b1010 >> i & 1 == 1);
            assert_eq!(sim.level(out), expect, "read bit {i}");
        }
    }

    #[test]
    fn default_size_in_paper_range() {
        let inst = build(&AssocMemParams::default());
        let total = inst.netlist.num_simulated_components();
        // Paper: 750 components (296 switches + 454 gates).
        assert!((400..=1500).contains(&total), "total={total}");
        assert!(inst.netlist.num_switches() > 100);
        assert!(inst.netlist.num_gates() > 150);
    }
}
