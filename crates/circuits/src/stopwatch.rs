//! The stop watch benchmark (nmos, synchronous).
//!
//! "The stop watch circuit determines the elapsed time between a start
//! and a stop signal." Structure: a start/stop control latch, a
//! prescaler, a chain of synchronous counter stages, and an nmos
//! dynamic display latch that freezes the count when the watch stops.
//! The paper notes its clock period "was much larger than necessary and
//! led to a large number of idle time points" — the default stimulus
//! reproduces that (a slow clock relative to gate delays), which is what
//! makes its `B/(B+I)` an order of magnitude below the other circuits.

use crate::cells::{self, Rails};
use crate::BenchmarkInstance;
use logicsim_netlist::{Clocking, GateKind, NetlistBuilder, Technology};
use logicsim_sim::{SignalRole, StimulusSpec};

/// Stop watch generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StopwatchParams {
    /// Prescaler bits (divides the input clock).
    pub prescaler_bits: usize,
    /// Number of cascaded count stages.
    pub stages: usize,
    /// Bits per count stage.
    pub bits_per_stage: usize,
    /// Stimulus clock half-period in ticks (large, per the paper's
    /// remark about the oversized clock period).
    pub clock_half_period: u64,
}

impl Default for StopwatchParams {
    fn default() -> StopwatchParams {
        StopwatchParams {
            prescaler_bits: 4,
            stages: 4,
            bits_per_stage: 4,
            clock_half_period: 320,
        }
    }
}

/// Builds the stop watch.
#[must_use]
pub fn build(params: &StopwatchParams) -> BenchmarkInstance {
    let mut b = NetlistBuilder::new("stopwatch");
    let rails = Rails::new(&mut b);
    let clk = b.input("clk");
    let start = b.input("start");
    let stop = b.input("stop");
    let reset = b.input("reset");

    // Start/stop control: NAND SR latch; `run` is set by start, cleared
    // by stop or reset.
    let start_n = cells::inv(&mut b, start, "ctl");
    let stop_or_rst = cells::or2(&mut b, stop, reset, "ctl");
    let clr_n = cells::inv(&mut b, stop_or_rst, "ctl");
    let run = b.net("run");
    let run_n = b.net("run_n");
    b.gate(GateKind::Nand, &[start_n, run_n], run, cells::d1());
    b.gate(GateKind::Nand, &[clr_n, run], run_n, cells::d1());

    // Prescaler: free-running counter; its terminal count enables the
    // elapsed-time chain once per 2^prescaler_bits clocks.
    let always = cells::inv(&mut b, reset, "en"); // enable unless reset
    let pre = cells::counter(&mut b, clk, always, reset, params.prescaler_bits, "pre");
    let tick = cells::and_n(&mut b, &pre, "tick");

    // Elapsed-time counter chain, gated by `run`.
    let mut enable = cells::and2(&mut b, run, tick, "chain_en");
    let mut count_bits = Vec::new();
    for s in 0..params.stages {
        let stage = cells::counter(
            &mut b,
            clk,
            enable,
            reset,
            params.bits_per_stage,
            &format!("st{s}"),
        );
        // Next stage counts when this one rolls over. The last stage
        // has no successor, so its terminal-count logic would be dead
        // (LS0003) — skip it.
        if s + 1 < params.stages {
            let tc = cells::and_n(&mut b, &stage, &format!("tc{s}"));
            enable = cells::and2(&mut b, enable, tc, &format!("en{s}"));
        }
        count_bits.extend(stage);
    }

    // Display: nmos dynamic latches freeze the count while stopped
    // (latch transparent while running). This is the switch-level part
    // of the design.
    let mut display = Vec::new();
    for (i, &bit) in count_bits.iter().enumerate() {
        let q = cells::nmos_dyn_latch(&mut b, rails, run, bit, &format!("disp{i}"));
        // nmos inverter inverts; invert back at switch level.
        let qq = cells::nmos_inv(&mut b, rails, q, &format!("disp{i}"));
        display.push(qq);
    }
    for &d in &display {
        b.mark_output(d);
    }
    b.mark_output(run);

    let hp = params.clock_half_period;
    let stimulus = StimulusSpec::new()
        .with(
            "clk",
            SignalRole::Clock {
                half_period: hp,
                phase: 0,
            },
        )
        .with(
            "reset",
            SignalRole::Pulse {
                active: logicsim_netlist::Level::One,
                width: 4 * hp,
            },
        )
        .with(
            "start",
            SignalRole::Random {
                period: 64 * hp,
                phase: 17,
                toggle_prob: 0.7,
            },
        )
        .with(
            "stop",
            SignalRole::Random {
                period: 96 * hp,
                phase: 41,
                toggle_prob: 0.5,
            },
        );

    BenchmarkInstance {
        netlist: b.finish().expect("stopwatch netlist is valid"),
        stimulus,
        technology: Technology::Nmos,
        clocking: Clocking::Synchronous,
        vector_period: 2 * hp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::Level;
    use logicsim_sim::Simulator;

    fn clock_cycle(sim: &mut Simulator<'_>, clk: logicsim_netlist::NetId) {
        sim.set_input(clk, Level::One);
        let t = sim.now();
        sim.run_until(t + 64);
        sim.set_input(clk, Level::Zero);
        let t = sim.now();
        sim.run_until(t + 64);
    }

    #[test]
    fn counts_only_while_running() {
        let params = StopwatchParams {
            prescaler_bits: 1,
            stages: 1,
            bits_per_stage: 3,
            clock_half_period: 8,
        };
        let inst = build(&params);
        let n = &inst.netlist;
        let nets = |s: &str| n.find_net(s).unwrap();
        let (clk, start, stop, reset) = (nets("clk"), nets("start"), nets("stop"), nets("reset"));
        let run = nets("run");
        let mut sim = Simulator::new(n).expect("pre-flight");
        // Reset with a few clocks.
        for (net, l) in [
            (reset, Level::One),
            (start, Level::Zero),
            (stop, Level::Zero),
            (clk, Level::Zero),
        ] {
            sim.set_input(net, l);
        }
        let t = sim.now();
        sim.run_until(t + 64);
        for _ in 0..3 {
            clock_cycle(&mut sim, clk);
        }
        sim.set_input(reset, Level::Zero);
        let t = sim.now();
        sim.run_until(t + 64);
        assert_eq!(sim.level(run), Level::Zero, "not running after reset");

        // Press start: run latch sets.
        sim.set_input(start, Level::One);
        let t = sim.now();
        sim.run_until(t + 64);
        assert_eq!(sim.level(run), Level::One);
        sim.set_input(start, Level::Zero);

        // Clock while running: display eventually becomes known and
        // changes (prescaler_bits=1 -> chain enabled every other clock).
        let read_display = |sim: &Simulator<'_>| -> Vec<Level> {
            n.outputs().iter().take(3).map(|&o| sim.level(o)).collect()
        };
        for _ in 0..6 {
            clock_cycle(&mut sim, clk);
        }
        let d1 = read_display(&sim);
        for _ in 0..4 {
            clock_cycle(&mut sim, clk);
        }
        let d2 = read_display(&sim);
        assert!(d1.iter().all(|l| l.is_known()), "display known: {d1:?}");
        assert_ne!(d1, d2, "display advances while running");

        // Press stop: run clears, display freezes.
        sim.set_input(stop, Level::One);
        let t = sim.now();
        sim.run_until(t + 64);
        assert_eq!(sim.level(run), Level::Zero);
        let frozen = read_display(&sim);
        for _ in 0..4 {
            clock_cycle(&mut sim, clk);
        }
        assert_eq!(read_display(&sim), frozen, "display frozen after stop");
    }

    #[test]
    fn default_size_in_paper_range() {
        let inst = build(&StopwatchParams::default());
        let total = inst.netlist.num_simulated_components();
        // Paper: 347 components (216 switches + 131 gates).
        assert!((150..=900).contains(&total), "total={total}");
        assert!(inst.netlist.num_switches() > 30);
    }
}
