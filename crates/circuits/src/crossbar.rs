//! The crossbar switch benchmark (nmos technology, but an all-gate
//! design — the only circuit in the paper's Table 4 with zero
//! bidirectional switches — and asynchronous).
//!
//! "The crossbar switch provides an interconnection network between
//! four input and four output ports." Structure: per input port a
//! request latch and destination decoder; per output port a
//! fixed-priority arbiter, an AND-OR data plane, and a four-phase
//! handshake (request out, ack in) whose completion is detected with
//! C-elements and a delay line.

use crate::cells;
use crate::BenchmarkInstance;
use logicsim_netlist::{Clocking, GateKind, NetId, NetlistBuilder, Technology};
use logicsim_sim::{SignalRole, StimulusSpec};

/// Crossbar generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossbarParams {
    /// Number of input and output ports (the paper's chip was 4x4).
    pub ports: usize,
    /// Data path width in bits.
    pub width: usize,
    /// Stimulus vector period in ticks.
    pub vector_period: u64,
}

impl Default for CrossbarParams {
    fn default() -> CrossbarParams {
        CrossbarParams {
            ports: 4,
            width: 64,
            vector_period: 480,
        }
    }
}

/// Builds the crossbar switch.
#[must_use]
pub fn build(params: &CrossbarParams) -> BenchmarkInstance {
    assert!(params.ports >= 2, "crossbar needs at least two ports");
    assert!(
        params.ports.is_power_of_two(),
        "ports must be a power of two"
    );
    let mut b = NetlistBuilder::new("crossbar");
    let ports = params.ports;
    let width = params.width;
    let sel_bits = ports.trailing_zeros() as usize;

    // Per-input interface.
    let mut req = Vec::with_capacity(ports);
    let mut data: Vec<Vec<NetId>> = Vec::with_capacity(ports);
    let mut dst_onehot: Vec<Vec<NetId>> = Vec::with_capacity(ports);
    for i in 0..ports {
        let r = b.input(format!("req{i}"));
        req.push(r);
        let d: Vec<NetId> = (0..width)
            .map(|k| b.input(format!("data{i}_{k}")))
            .collect();
        let dst: Vec<NetId> = (0..sel_bits)
            .map(|k| b.input(format!("dst{i}_{k}")))
            .collect();
        // Latch data and destination while the request is low (input
        // register, transparent when idle, frozen during a transaction).
        let rn = cells::inv(&mut b, r, &format!("rn{i}"));
        let latched_d: Vec<NetId> = d
            .iter()
            .enumerate()
            .map(|(k, &bit)| latch(&mut b, rn, bit, &format!("ld{i}_{k}")))
            .collect();
        let latched_dst: Vec<NetId> = dst
            .iter()
            .enumerate()
            .map(|(k, &bit)| latch(&mut b, rn, bit, &format!("la{i}_{k}")))
            .collect();
        data.push(latched_d);
        dst_onehot.push(cells::decoder(&mut b, &latched_dst, &format!("dec{i}")));
    }

    // Ack inputs from downstream consumers.
    let ack_out: Vec<NetId> = (0..ports).map(|j| b.input(format!("ack_out{j}"))).collect();

    // Per-output arbitration and data plane.
    let mut grant: Vec<Vec<NetId>> = vec![Vec::new(); ports];
    for j in 0..ports {
        // Requests for output j.
        let r_j: Vec<NetId> = (0..ports)
            .map(|i| {
                let want = dst_onehot[i][j];
                cells::and2(&mut b, req[i], want, &format!("r{i}_{j}"))
            })
            .collect();
        // Fixed-priority arbiter (input 0 highest).
        let mut any_above: Option<NetId> = None;
        let mut g_j = Vec::with_capacity(ports);
        for (i, &r) in r_j.iter().enumerate() {
            let g = match any_above {
                None => cells::and2(&mut b, r, r, &format!("g{i}_{j}")),
                Some(above) => {
                    let free = cells::inv(&mut b, above, &format!("f{i}_{j}"));
                    cells::and2(&mut b, r, free, &format!("g{i}_{j}"))
                }
            };
            // The lowest-priority input has no successor to block, so
            // its `any_above` OR would be dead logic (LS0003).
            if i + 1 < r_j.len() {
                any_above = Some(match any_above {
                    None => r,
                    Some(above) => cells::or2(&mut b, above, r, &format!("ab{i}_{j}")),
                });
            }
            g_j.push(g);
        }
        // Data plane: out bit = OR_i (g_ij AND data_i).
        for k in 0..width {
            let terms: Vec<NetId> = g_j
                .iter()
                .zip(&data)
                .enumerate()
                .map(|(i, (&g, di))| cells::and2(&mut b, g, di[k], &format!("dp{i}_{j}_{k}")))
                .collect();
            let out = b.net(format!("out{j}_{k}"));
            b.gate(GateKind::Or, &terms, out, cells::d1());
            b.mark_output(out);
        }
        // Output request with completion detection: the grant must have
        // propagated through the data plane before req_out rises, so the
        // raw request is delayed and combined with a C-element.
        let raw = cells::or_n(&mut b, &g_j, &format!("oreq{j}"));
        let mut delayed = raw;
        for s in 0..4 {
            let nxt = b.fresh(&format!("odl{j}_{s}"));
            b.gate(GateKind::Buf, &[delayed], nxt, cells::d1());
            delayed = nxt;
        }
        let req_out = cells::c_element(&mut b, raw, delayed, &format!("reqo{j}"));
        let named = b.net(format!("req_out{j}"));
        b.gate(GateKind::Buf, &[req_out], named, cells::d1());
        b.mark_output(named);
        grant[j] = g_j;
    }

    // Input acks: ack_i = OR_j (g_ij AND ack_out_j).
    for i in 0..ports {
        let terms: Vec<NetId> = grant
            .iter()
            .zip(&ack_out)
            .enumerate()
            .map(|(j, (gj, &ack))| cells::and2(&mut b, gj[i], ack, &format!("ak{i}_{j}")))
            .collect();
        let ack = cells::or_n(&mut b, &terms, &format!("aterm{i}"));
        let named = b.net(format!("ack_in{i}"));
        b.gate(GateKind::Buf, &[ack], named, cells::d1());
        b.mark_output(named);
    }

    // Asynchronous traffic: every input runs on its own coprime-ish
    // period and phase, so events spread thinly over time — the paper's
    // async circuits show a higher busy fraction but far lower
    // simultaneity than the clocked designs.
    let vp = params.vector_period;
    let mut stimulus = StimulusSpec::new();
    for i in 0..ports {
        let pi = i as u64;
        stimulus = stimulus
            .with(
                format!("req{i}"),
                SignalRole::Random {
                    period: vp + 7 * pi,
                    phase: 13 * pi,
                    toggle_prob: 0.3,
                },
            )
            .with(
                format!("ack_out{i}"),
                SignalRole::Random {
                    period: vp + 5 * pi + 3,
                    phase: 29 * pi + 7,
                    toggle_prob: 0.3,
                },
            );
        for k in 0..sel_bits {
            stimulus = stimulus.with(
                format!("dst{i}_{k}"),
                SignalRole::Random {
                    period: 2 * vp + 11 * pi,
                    phase: 17 * pi + 3 * k as u64,
                    toggle_prob: 0.4,
                },
            );
        }
        for k in 0..width {
            stimulus = stimulus.with(
                format!("data{i}_{k}"),
                SignalRole::Random {
                    period: vp + 3 * (k as u64 % 13),
                    phase: 31 * pi + 5 * k as u64,
                    toggle_prob: 0.08,
                },
            );
        }
    }

    BenchmarkInstance {
        netlist: b.finish().expect("crossbar netlist is valid"),
        stimulus,
        technology: Technology::Nmos,
        clocking: Clocking::Asynchronous,
        vector_period: vp,
    }
}

/// Gate-level transparent latch: output follows `d` while `en` is high,
/// holds while low. Two hazards are designed out:
///
/// * the consensus term `d AND q` covers the enable hand-off (without
///   it the output glitches low between `pass` falling and `hold`
///   rising);
/// * the feedback gates are **slower (2 ticks) than the forward path
///   (1 tick)**. With delay-matched feedback the loop `q -> hold -> q`
///   merely shifts its own history, so a glitch pulse injected by an
///   input race circulates forever (a marginal period-2 oscillation —
///   observed under some stimulus seeds before this fix). With the
///   2-tick feedback, `q(t+1) = q(t-2)`, and any alternating pattern
///   collapses to a constant in one step.
fn latch(b: &mut NetlistBuilder, en: NetId, d: NetId, hint: &str) -> NetId {
    let q = b.fresh(hint);
    let slow = logicsim_netlist::Delay::uniform(2);
    let en_n = cells::inv(b, en, hint);
    let pass = cells::and2(b, d, en, hint);
    let hold = b.fresh(hint);
    b.gate(GateKind::And, &[q, en_n], hold, slow);
    let keep = b.fresh(hint);
    b.gate(GateKind::And, &[d, q], keep, slow);
    b.gate(GateKind::Or, &[pass, hold, keep], q, cells::d1());
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::Level;
    use logicsim_sim::Simulator;

    fn settle(sim: &mut Simulator<'_>) {
        let t = sim.now();
        sim.run_until(t + 96);
    }

    fn small() -> BenchmarkInstance {
        build(&CrossbarParams {
            ports: 4,
            width: 4,
            vector_period: 32,
        })
    }

    #[test]
    fn routes_data_to_requested_output() {
        let inst = small();
        let n = &inst.netlist;
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(n).expect("pre-flight");
        // Quiesce all inputs.
        for i in 0..4 {
            sim.set_input(net(&format!("req{i}")), Level::Zero);
            sim.set_input(net(&format!("ack_out{i}")), Level::Zero);
            for k in 0..2 {
                sim.set_input(net(&format!("dst{i}_{k}")), Level::Zero);
            }
            for k in 0..4 {
                sim.set_input(net(&format!("data{i}_{k}")), Level::Zero);
            }
        }
        settle(&mut sim);
        // Input 1 sends 0b1010 to output 2.
        for k in 0..4 {
            sim.set_input(
                net(&format!("data1_{k}")),
                Level::from_bool(0b1010 >> k & 1 == 1),
            );
        }
        sim.set_input(net("dst1_0"), Level::Zero);
        sim.set_input(net("dst1_1"), Level::One); // dst = 2
        settle(&mut sim);
        sim.set_input(net("req1"), Level::One);
        settle(&mut sim);
        for k in 0..4 {
            let expect = Level::from_bool(0b1010 >> k & 1 == 1);
            assert_eq!(sim.level(net(&format!("out2_{k}"))), expect, "out2 bit {k}");
        }
        assert_eq!(sim.level(net("req_out2")), Level::One);
        assert_eq!(sim.level(net("req_out0")), Level::Zero);
        // Downstream ack completes the handshake back to input 1.
        sim.set_input(net("ack_out2"), Level::One);
        settle(&mut sim);
        assert_eq!(sim.level(net("ack_in1")), Level::One);
        assert_eq!(sim.level(net("ack_in0")), Level::Zero);
        // Release.
        sim.set_input(net("req1"), Level::Zero);
        sim.set_input(net("ack_out2"), Level::Zero);
        settle(&mut sim);
        assert_eq!(sim.level(net("req_out2")), Level::Zero);
    }

    #[test]
    fn arbiter_prefers_lower_input_on_conflict() {
        let inst = small();
        let n = &inst.netlist;
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(n).expect("pre-flight");
        for i in 0..4 {
            sim.set_input(net(&format!("req{i}")), Level::Zero);
            sim.set_input(net(&format!("ack_out{i}")), Level::Zero);
            for k in 0..2 {
                sim.set_input(net(&format!("dst{i}_{k}")), Level::Zero);
            }
            for k in 0..4 {
                sim.set_input(net(&format!("data{i}_{k}")), Level::Zero);
            }
        }
        settle(&mut sim);
        // Inputs 0 and 3 both target output 0 with different data.
        for k in 0..4 {
            sim.set_input(
                net(&format!("data0_{k}")),
                Level::from_bool(0b0110 >> k & 1 == 1),
            );
            sim.set_input(
                net(&format!("data3_{k}")),
                Level::from_bool(0b1001 >> k & 1 == 1),
            );
        }
        settle(&mut sim);
        sim.set_input(net("req0"), Level::One);
        sim.set_input(net("req3"), Level::One);
        settle(&mut sim);
        for k in 0..4 {
            let expect = Level::from_bool(0b0110 >> k & 1 == 1);
            assert_eq!(sim.level(net(&format!("out0_{k}"))), expect);
        }
        // Only input 0 gets an ack.
        sim.set_input(net("ack_out0"), Level::One);
        settle(&mut sim);
        assert_eq!(sim.level(net("ack_in0")), Level::One);
        assert_eq!(sim.level(net("ack_in3")), Level::Zero);
    }

    #[test]
    fn default_is_all_gates_near_paper_size() {
        let inst = build(&CrossbarParams::default());
        let nl = &inst.netlist;
        assert_eq!(nl.num_switches(), 0, "crossbar must be all-gate");
        let gates = nl.num_gates();
        // Paper: 2,648 gates.
        assert!((1_200..=5_000).contains(&gates), "gates={gates}");
    }
}
