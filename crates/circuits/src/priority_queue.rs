//! The priority queue benchmark (cmos, synchronous).
//!
//! "The priority queue stores 48-bit records, each divided into four
//! fields, and retrieves the record whose first field contains the
//! smallest value." Structure: a linear insertion array. Each cell
//! holds one record in CMOS transmission-gate flip-flops; on insert the
//! incoming record ripples down the array, displacing the first stored
//! record it is smaller than (so the array stays sorted, minimum at the
//! head); on extract every record shifts up by one. The datapath
//! steering is all TG muxes, which is what makes this the
//! switch-dominated cmos design of the benchmark (2,960 switches vs 720
//! gates in the paper's Table 4).

use crate::cells;
use crate::BenchmarkInstance;
use logicsim_netlist::{Clocking, NetId, NetlistBuilder, Technology};
use logicsim_sim::{SignalRole, StimulusSpec};

/// Priority queue generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriorityQueueParams {
    /// Number of records stored.
    pub records: usize,
    /// Bits per record (the paper's chip used 48, divided into four
    /// fields; ordering uses the low `bits / fields` field).
    pub bits: usize,
    /// Number of fields per record.
    pub fields: usize,
    /// Stimulus clock half-period in ticks.
    pub clock_half_period: u64,
}

impl Default for PriorityQueueParams {
    fn default() -> PriorityQueueParams {
        PriorityQueueParams {
            records: 8,
            bits: 20,
            fields: 4,
            clock_half_period: 96,
        }
    }
}

/// Builds the priority queue.
#[must_use]
pub fn build(params: &PriorityQueueParams) -> BenchmarkInstance {
    assert!(params.records >= 2, "queue needs at least two records");
    assert!(
        params.bits >= params.fields && params.bits.is_multiple_of(params.fields),
        "bits must be a positive multiple of fields"
    );
    let key_bits = params.bits / params.fields;
    let mut b = NetlistBuilder::new("priority_queue");

    let clk = b.input("clk");
    let clk_n = cells::inv(&mut b, clk, "clkn");
    let rst = b.input("rst");
    let insert = b.input("insert");
    let extract = b.input("extract");
    let data: Vec<NetId> = (0..params.bits)
        .map(|i| b.input(format!("data{i}")))
        .collect();

    // Gate insert/extract so they are mutually exclusive (insert wins).
    let rst_n = cells::inv(&mut b, rst, "ri");
    let ins_en = cells::and2(&mut b, insert, rst_n, "ins_en");
    let not_ins = cells::inv(&mut b, ins_en, "ni");
    let ext_en = cells::and2(&mut b, extract, not_ins, "ext_en");
    let ins_n = cells::inv(&mut b, ins_en, "insn");

    // Incoming record for cell 0: the new data when inserting, all-ones
    // otherwise (all-ones never displaces anything).
    let mut incoming: Vec<NetId> = data
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            // in = (d AND insert) OR NOT(insert): 1 when idle, d when
            // inserting.
            let gated = cells::and2(&mut b, d, ins_en, &format!("ind{i}"));
            cells::or2(&mut b, gated, ins_n, &format!("in{i}"))
        })
        .collect();
    // Correction: `d AND ins OR NOT ins` = d when ins else 1. Good.

    let mut stored: Vec<Vec<NetId>> = Vec::with_capacity(params.records);
    // First pass: create storage flip-flops with placeholder D nets so
    // the shift-up path (which needs the *next* record's outputs) can be
    // wired after all records exist.
    let mut d_nets: Vec<Vec<NetId>> = Vec::with_capacity(params.records);
    for r in 0..params.records {
        let mut qs = Vec::with_capacity(params.bits);
        let mut ds = Vec::with_capacity(params.bits);
        for i in 0..params.bits {
            let d = b.net(format!("d_{r}_{i}"));
            let q = cells::tg_dff(&mut b, clk, clk_n, d, &format!("q{r}_{i}"));
            ds.push(d);
            qs.push(q);
        }
        d_nets.push(ds);
        stored.push(qs);
    }

    // Second pass: insertion ripple and extraction shift.
    for r in 0..params.records {
        let hint = format!("cell{r}");
        // Compare the incoming record's key field (low key_bits) with
        // the stored record's.
        let lt = cells::lt_comparator(&mut b, &incoming[..key_bits], &stored[r][..key_bits], &hint);
        let lt_n = cells::inv(&mut b, lt, &hint);
        let mut next_incoming = Vec::with_capacity(params.bits);
        for i in 0..params.bits {
            // Keep the smaller record: new stored = lt ? incoming : stored.
            let kept = cells::tg_mux2_buf(&mut b, lt, lt_n, stored[r][i], incoming[i], &hint);
            // Pass the larger one down: out = lt ? stored : incoming.
            // The last cell's passed record falls off the end of the
            // array, so building its mux would be dead logic (LS0003).
            if r + 1 < params.records {
                let passed = cells::tg_mux2_buf(&mut b, lt, lt_n, incoming[i], stored[r][i], &hint);
                next_incoming.push(passed);
            }
            // Extraction shift: pull from the record below (all-ones at
            // the tail).
            let from_below = if r + 1 < params.records {
                stored[r + 1][i]
            } else {
                // Tail refills with all-ones = NOT rst OR rst = const 1.
                // Reuse ins_n's complement trick: OR(rst, NOT rst).
                let rn = cells::inv(&mut b, rst, &hint);
                cells::or2(&mut b, rst, rn, &hint)
            };
            let ext_n = cells::inv(&mut b, ext_en, &hint);
            let shifted = cells::tg_mux2_buf(&mut b, ext_en, ext_n, kept, from_below, &hint);
            // Reset forces all-ones (also flushes power-up X).
            let d = cells::or2(&mut b, shifted, rst, &hint);
            b.gate(
                logicsim_netlist::GateKind::Buf,
                &[d],
                d_nets[r][i],
                cells::d1(),
            );
        }
        incoming = next_incoming;
    }

    // Head record is the retrieval port.
    for &head_bit in &stored[0] {
        b.mark_output(head_bit);
    }

    let hp = params.clock_half_period;
    let mut stimulus = StimulusSpec::new()
        .with(
            "clk",
            SignalRole::Clock {
                half_period: hp,
                phase: 0,
            },
        )
        .with(
            "rst",
            SignalRole::Pulse {
                active: logicsim_netlist::Level::One,
                width: 6 * hp,
            },
        )
        .with(
            "insert",
            SignalRole::Random {
                period: 2 * hp,
                phase: 1,
                toggle_prob: 0.6,
            },
        )
        .with(
            "extract",
            SignalRole::Random {
                period: 2 * hp,
                phase: 1,
                toggle_prob: 0.4,
            },
        );
    for i in 0..params.bits {
        stimulus = stimulus.with(
            format!("data{i}"),
            SignalRole::Random {
                period: 2 * hp,
                phase: 1,
                toggle_prob: 0.3,
            },
        );
    }

    BenchmarkInstance {
        netlist: b.finish().expect("priority queue netlist is valid"),
        stimulus,
        technology: Technology::Cmos,
        clocking: Clocking::Synchronous,
        vector_period: 2 * hp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::Level;
    use logicsim_sim::Simulator;

    struct Pq<'a> {
        sim: Simulator<'a>,
        n: &'a logicsim_netlist::Netlist,
        bits: usize,
    }

    impl<'a> Pq<'a> {
        fn net(&self, s: &str) -> NetId {
            self.n.find_net(s).unwrap()
        }
        fn settle(&mut self) {
            let t = self.sim.now();
            self.sim.run_until(t + 200);
        }
        fn clock(&mut self) {
            self.sim.set_input(self.net("clk"), Level::One);
            self.settle();
            self.sim.set_input(self.net("clk"), Level::Zero);
            self.settle();
        }
        fn head(&self) -> Option<u32> {
            let mut v = 0;
            for (i, &o) in self.n.outputs().iter().enumerate() {
                match self.sim.level(o).to_bool() {
                    Some(true) => v |= 1 << i,
                    Some(false) => {}
                    None => return None,
                }
            }
            Some(v)
        }
        fn insert(&mut self, value: u32) {
            for i in 0..self.bits {
                self.sim.set_input(
                    self.net(&format!("data{i}")),
                    Level::from_bool(value >> i & 1 == 1),
                );
            }
            self.sim.set_input(self.net("insert"), Level::One);
            self.settle();
            self.clock();
            self.sim.set_input(self.net("insert"), Level::Zero);
            self.settle();
        }
        fn extract(&mut self) {
            self.sim.set_input(self.net("extract"), Level::One);
            self.settle();
            self.clock();
            self.sim.set_input(self.net("extract"), Level::Zero);
            self.settle();
        }
    }

    fn setup(params: &PriorityQueueParams, n: &'static logicsim_netlist::Netlist) -> Pq<'static> {
        let mut pq = Pq {
            sim: Simulator::new(n).expect("pre-flight"),
            n,
            bits: params.bits,
        };
        for name in ["insert", "extract", "clk"] {
            let net = pq.net(name);
            pq.sim.set_input(net, Level::Zero);
        }
        let rst = pq.net("rst");
        pq.sim.set_input(rst, Level::One);
        pq.settle();
        for _ in 0..2 {
            pq.clock();
        }
        pq.sim.set_input(rst, Level::Zero);
        pq.settle();
        pq
    }

    #[test]
    fn returns_minimum_first() {
        let params = PriorityQueueParams {
            records: 4,
            bits: 4,
            fields: 1,
            clock_half_period: 64,
        };
        let netlist = Box::leak(Box::new(build(&params).netlist));
        let mut pq = setup(&params, netlist);
        // Empty queue reads all-ones.
        assert_eq!(pq.head(), Some(0b1111));
        pq.insert(9);
        assert_eq!(pq.head(), Some(9));
        pq.insert(3);
        assert_eq!(pq.head(), Some(3), "smaller record displaces head");
        pq.insert(5);
        assert_eq!(pq.head(), Some(3), "larger record files behind");
        pq.extract();
        assert_eq!(pq.head(), Some(5));
        pq.extract();
        assert_eq!(pq.head(), Some(9));
        pq.extract();
        assert_eq!(pq.head(), Some(0b1111), "queue drains to all-ones");
    }

    #[test]
    fn ordering_uses_first_field_only() {
        // Two fields: key is the low 2 bits; payload the high 2.
        let params = PriorityQueueParams {
            records: 3,
            bits: 4,
            fields: 2,
            clock_half_period: 64,
        };
        let netlist = Box::leak(Box::new(build(&params).netlist));
        let mut pq = setup(&params, netlist);
        pq.insert(0b11_01); // key 1, payload 3
        pq.insert(0b00_10); // key 2, payload 0
                            // Head must be the key-1 record even though its full value is
                            // numerically larger.
        assert_eq!(pq.head(), Some(0b1101));
    }

    #[test]
    fn default_size_in_paper_range() {
        let inst = build(&PriorityQueueParams::default());
        let nl = &inst.netlist;
        // Paper: 3,680 components (2,960 switches + 720 gates) —
        // switch-dominated.
        assert!(
            nl.num_switches() > nl.num_gates(),
            "switches {} should dominate gates {}",
            nl.num_switches(),
            nl.num_gates()
        );
        let total = nl.num_simulated_components();
        assert!((1_500..=6_000).contains(&total), "total={total}");
    }
}
