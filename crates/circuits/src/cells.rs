//! Structural macro-cell library.
//!
//! Three implementation styles coexist, mirroring the mixed
//! gate/switch-level designs in the paper's benchmark:
//!
//! * **gate-level** cells (plain [`GateKind`] networks) — used by the
//!   all-gate crossbar switch and for control logic everywhere;
//! * **nmos switch-level** cells (pull-ups plus NMOS pull-down
//!   networks and pass transistors) — used by the nmos chips;
//! * **CMOS transmission-gate** cells (TG muxes and TG dynamic
//!   flip-flops) — used by the cmos priority queue.

use logicsim_netlist::SwitchKind;
use logicsim_netlist::{Delay, GateKind, Level, NetId, NetlistBuilder};

/// Power and ground rails for switch-level cells.
#[derive(Debug, Clone, Copy)]
pub struct Rails {
    /// VDD (supply 1).
    pub vdd: NetId,
    /// GND (supply 0).
    pub gnd: NetId,
}

impl Rails {
    /// Creates the rails once per netlist.
    pub fn new(b: &mut NetlistBuilder) -> Rails {
        let vdd = b.net("vdd!");
        let gnd = b.net("gnd!");
        b.supply(vdd, Level::One);
        b.supply(gnd, Level::Zero);
        Rails { vdd, gnd }
    }
}

/// Default gate delay used by the cell library (1 tick rise/fall).
#[must_use]
pub fn d1() -> Delay {
    Delay::uniform(1)
}

// ---------------------------------------------------------------------
// Gate-level cells
// ---------------------------------------------------------------------

/// Inverter.
pub fn inv(b: &mut NetlistBuilder, a: NetId, hint: &str) -> NetId {
    let y = b.fresh(hint);
    b.gate(GateKind::Not, &[a], y, d1());
    y
}

/// 2-input NAND.
pub fn nand2(b: &mut NetlistBuilder, x: NetId, y: NetId, hint: &str) -> NetId {
    let out = b.fresh(hint);
    b.gate(GateKind::Nand, &[x, y], out, d1());
    out
}

/// 2-input AND.
pub fn and2(b: &mut NetlistBuilder, x: NetId, y: NetId, hint: &str) -> NetId {
    let out = b.fresh(hint);
    b.gate(GateKind::And, &[x, y], out, d1());
    out
}

/// 2-input OR.
pub fn or2(b: &mut NetlistBuilder, x: NetId, y: NetId, hint: &str) -> NetId {
    let out = b.fresh(hint);
    b.gate(GateKind::Or, &[x, y], out, d1());
    out
}

/// 2-input XOR.
pub fn xor2(b: &mut NetlistBuilder, x: NetId, y: NetId, hint: &str) -> NetId {
    let out = b.fresh(hint);
    b.gate(GateKind::Xor, &[x, y], out, d1());
    out
}

/// 2-input XNOR.
pub fn xnor2(b: &mut NetlistBuilder, x: NetId, y: NetId, hint: &str) -> NetId {
    let out = b.fresh(hint);
    b.gate(GateKind::Xnor, &[x, y], out, d1());
    out
}

/// Wide AND over any number of inputs (single wide gate, like lsim).
pub fn and_n(b: &mut NetlistBuilder, inputs: &[NetId], hint: &str) -> NetId {
    assert!(!inputs.is_empty(), "and_n needs inputs");
    if inputs.len() == 1 {
        let y = b.fresh(hint);
        b.gate(GateKind::Buf, &[inputs[0]], y, d1());
        return y;
    }
    let y = b.fresh(hint);
    b.gate(GateKind::And, inputs, y, d1());
    y
}

/// Wide OR.
pub fn or_n(b: &mut NetlistBuilder, inputs: &[NetId], hint: &str) -> NetId {
    assert!(!inputs.is_empty(), "or_n needs inputs");
    if inputs.len() == 1 {
        let y = b.fresh(hint);
        b.gate(GateKind::Buf, &[inputs[0]], y, d1());
        return y;
    }
    let y = b.fresh(hint);
    b.gate(GateKind::Or, inputs, y, d1());
    y
}

/// Gate-level 2:1 mux (`sel = 1` selects `a1`).
pub fn mux2(b: &mut NetlistBuilder, sel: NetId, a0: NetId, a1: NetId, hint: &str) -> NetId {
    let sel_n = inv(b, sel, hint);
    let t0 = and2(b, a0, sel_n, hint);
    let t1 = and2(b, a1, sel, hint);
    or2(b, t0, t1, hint)
}

/// Positive-edge-triggered D flip-flop (classic 6-NAND structure).
pub fn dff(b: &mut NetlistBuilder, clk: NetId, d: NetId, hint: &str) -> NetId {
    // Nets of the 6-NAND edge-triggered DFF.
    let n1 = b.fresh(hint);
    let n2 = b.fresh(hint);
    let n3 = b.fresh(hint);
    let n4 = b.fresh(hint);
    let q = b.fresh(hint);
    let qn = b.fresh(hint);
    b.gate(GateKind::Nand, &[n4, n2], n1, d1());
    b.gate(GateKind::Nand, &[n1, clk], n2, d1());
    b.gate(GateKind::Nand, &[n2, clk, n4], n3, d1());
    b.gate(GateKind::Nand, &[n3, d], n4, d1());
    b.gate(GateKind::Nand, &[n2, qn], q, d1());
    b.gate(GateKind::Nand, &[n3, q], qn, d1());
    q
}

/// DFF with synchronous load-enable (`en = 0` holds).
pub fn dff_en(b: &mut NetlistBuilder, clk: NetId, en: NetId, d: NetId, hint: &str) -> NetId {
    // Feedback mux: next = en ? d : q. Declare q's net first.
    let din = b.fresh(hint);
    let q = dff(b, clk, din, hint);
    let sel_n = inv(b, en, hint);
    let hold = and2(b, q, sel_n, hint);
    let load = and2(b, d, en, hint);
    let next = or2(b, hold, load, hint);
    b.gate(GateKind::Buf, &[next], din, d1());
    q
}

/// Full adder: returns `(sum, carry_out)`.
pub fn full_adder(
    b: &mut NetlistBuilder,
    a: NetId,
    bb: NetId,
    cin: NetId,
    hint: &str,
) -> (NetId, NetId) {
    let axb = xor2(b, a, bb, hint);
    let sum = xor2(b, axb, cin, hint);
    let t1 = and2(b, a, bb, hint);
    let t2 = and2(b, axb, cin, hint);
    let cout = or2(b, t1, t2, hint);
    (sum, cout)
}

/// Ripple-carry adder over equal-width operands; returns
/// `(sum_bits, carry_out)`.
///
/// # Panics
///
/// Panics if operand widths differ or are zero.
pub fn ripple_adder(
    b: &mut NetlistBuilder,
    a: &[NetId],
    bb: &[NetId],
    cin: NetId,
    hint: &str,
) -> (Vec<NetId>, NetId) {
    assert!(!a.is_empty() && a.len() == bb.len(), "width mismatch");
    let mut carry = cin;
    let mut sums = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(bb) {
        let (s, c) = full_adder(b, ai, bi, carry, hint);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// Ripple-carry adder that drops the final carry-out — for saturating or
/// modular accumulators where the carry chain's last gates would be dead
/// logic (LS0003). Returns only the sum bits.
///
/// # Panics
///
/// Panics if operand widths differ or are zero.
pub fn ripple_adder_mod(
    b: &mut NetlistBuilder,
    a: &[NetId],
    bb: &[NetId],
    cin: NetId,
    hint: &str,
) -> Vec<NetId> {
    assert!(!a.is_empty() && a.len() == bb.len(), "width mismatch");
    let mut carry = cin;
    let mut sums = Vec::with_capacity(a.len());
    let last = a.len() - 1;
    for (i, (&ai, &bi)) in a.iter().zip(bb).enumerate() {
        if i == last {
            // Sum only: the carry-out of the top bit is discarded.
            let axb = xor2(b, ai, bi, hint);
            sums.push(xor2(b, axb, carry, hint));
        } else {
            let (s, c) = full_adder(b, ai, bi, carry, hint);
            sums.push(s);
            carry = c;
        }
    }
    sums
}

/// N-bit register of edge-triggered DFFs; returns the `q` bits.
pub fn register(b: &mut NetlistBuilder, clk: NetId, d: &[NetId], hint: &str) -> Vec<NetId> {
    d.iter().map(|&di| dff(b, clk, di, hint)).collect()
}

/// Synchronous binary counter with enable and synchronous reset;
/// returns the count bits, LSB first.
///
/// The reset is what lets the counter escape the all-`X` power-up
/// state: `next = (q XOR carry) AND NOT rst` forces known zeros in.
pub fn counter(
    b: &mut NetlistBuilder,
    clk: NetId,
    en: NetId,
    rst: NetId,
    bits: usize,
    hint: &str,
) -> Vec<NetId> {
    assert!(bits >= 1, "counter needs at least one bit");
    let rst_n = inv(b, rst, hint);
    let mut qs = Vec::with_capacity(bits);
    let mut carry = en;
    for i in 0..bits {
        let din = b.fresh(hint);
        let q = dff(b, clk, din, hint);
        let toggled = xor2(b, q, carry, hint);
        let next = and2(b, toggled, rst_n, hint);
        b.gate(GateKind::Buf, &[next], din, d1());
        // The MSB's carry-out would be dead logic (LS0003): no caller
        // consumes it, so don't build it.
        if i + 1 < bits {
            carry = and2(b, carry, q, hint);
        }
        qs.push(q);
    }
    qs
}

/// Equality comparator over equal-width operands.
pub fn eq_comparator(b: &mut NetlistBuilder, a: &[NetId], bb: &[NetId], hint: &str) -> NetId {
    assert!(!a.is_empty() && a.len() == bb.len(), "width mismatch");
    let bits: Vec<NetId> = a
        .iter()
        .zip(bb)
        .map(|(&ai, &bi)| xnor2(b, ai, bi, hint))
        .collect();
    and_n(b, &bits, hint)
}

/// Less-than comparator (`a < b`, unsigned, LSB-first operands) via a
/// ripple borrow chain.
pub fn lt_comparator(b: &mut NetlistBuilder, a: &[NetId], bb: &[NetId], hint: &str) -> NetId {
    assert!(!a.is_empty() && a.len() == bb.len(), "width mismatch");
    // borrow_{i+1} = (~a_i & b_i) | ((a_i XNOR b_i) & borrow_i)
    let zero = b.fresh(hint);
    // A constant 0 from a gate: NOT of a fresh... use XOR(a0, a0) = 0.
    b.gate(GateKind::Xor, &[a[0], a[0]], zero, d1());
    let mut borrow = zero;
    for (&ai, &bi) in a.iter().zip(bb) {
        let na = inv(b, ai, hint);
        let gen = and2(b, na, bi, hint);
        let eq = xnor2(b, ai, bi, hint);
        let prop = and2(b, eq, borrow, hint);
        borrow = or2(b, gen, prop, hint);
    }
    borrow
}

/// n-to-2^n decoder; returns the one-hot outputs.
pub fn decoder(b: &mut NetlistBuilder, sel: &[NetId], hint: &str) -> Vec<NetId> {
    decoder_limited(b, sel, 1usize << sel.len(), hint)
}

/// Decoder emitting only the first `count` one-hot outputs — for
/// non-power-of-two structures, where the trailing codes would be dead
/// logic (LS0003).
pub fn decoder_limited(
    b: &mut NetlistBuilder,
    sel: &[NetId],
    count: usize,
    hint: &str,
) -> Vec<NetId> {
    assert!(!sel.is_empty(), "decoder needs select bits");
    assert!(
        count >= 1 && count <= 1usize << sel.len(),
        "bad decoder count"
    );
    let sel_n: Vec<NetId> = sel.iter().map(|&s| inv(b, s, hint)).collect();
    (0..count)
        .map(|code| {
            let terms: Vec<NetId> = sel
                .iter()
                .enumerate()
                .map(|(i, &s)| if code >> i & 1 == 1 { s } else { sel_n[i] })
                .collect();
            and_n(b, &terms, hint)
        })
        .collect()
}

/// Gate-level Muller C-element: output follows the inputs when they
/// agree, holds otherwise. `y = ab + y(a + b)` with feedback.
pub fn c_element(b: &mut NetlistBuilder, a: NetId, bb: NetId, hint: &str) -> NetId {
    let y = b.fresh(hint);
    let both = and2(b, a, bb, hint);
    let either = or2(b, a, bb, hint);
    let hold = and2(b, y, either, hint);
    b.gate(GateKind::Or, &[both, hold], y, d1());
    y
}

// ---------------------------------------------------------------------
// nmos switch-level cells
// ---------------------------------------------------------------------

/// nmos inverter: depletion pull-up plus an NMOS pull-down.
/// One switch, one pull.
pub fn nmos_inv(b: &mut NetlistBuilder, rails: Rails, a: NetId, hint: &str) -> NetId {
    let y = b.fresh(hint);
    b.pull(y, Level::One);
    b.switch(SwitchKind::Nmos, a, y, rails.gnd);
    y
}

/// nmos 2-input NAND: pull-up plus two series NMOS transistors.
pub fn nmos_nand2(b: &mut NetlistBuilder, rails: Rails, x: NetId, y: NetId, hint: &str) -> NetId {
    let out = b.fresh(hint);
    let mid = b.fresh(hint);
    b.pull(out, Level::One);
    b.switch(SwitchKind::Nmos, x, out, mid);
    b.switch(SwitchKind::Nmos, y, mid, rails.gnd);
    out
}

/// nmos 2-input NOR: pull-up plus two parallel NMOS transistors.
pub fn nmos_nor2(b: &mut NetlistBuilder, rails: Rails, x: NetId, y: NetId, hint: &str) -> NetId {
    let out = b.fresh(hint);
    b.pull(out, Level::One);
    b.switch(SwitchKind::Nmos, x, out, rails.gnd);
    b.switch(SwitchKind::Nmos, y, out, rails.gnd);
    out
}

/// NMOS pass transistor: `y` is connected to `a` while `ctl` is high
/// (charge-stored otherwise).
pub fn nmos_pass(b: &mut NetlistBuilder, ctl: NetId, a: NetId, hint: &str) -> NetId {
    let y = b.fresh(hint);
    b.switch(SwitchKind::Nmos, ctl, a, y);
    y
}

/// Dynamic nmos latch: pass transistor into an nmos inverter; the
/// stored node keeps its charge while the clock is low. Returns the
/// (inverting) output.
pub fn nmos_dyn_latch(
    b: &mut NetlistBuilder,
    rails: Rails,
    clk: NetId,
    d: NetId,
    hint: &str,
) -> NetId {
    let stored = nmos_pass(b, clk, d, hint);
    nmos_inv(b, rails, stored, hint)
}

/// Two-phase dynamic nmos D flip-flop; `phi1`/`phi2` are
/// non-overlapping clock phases. Non-inverting (two latch stages).
pub fn nmos_dyn_dff(
    b: &mut NetlistBuilder,
    rails: Rails,
    phi1: NetId,
    phi2: NetId,
    d: NetId,
    hint: &str,
) -> NetId {
    let m = nmos_dyn_latch(b, rails, phi1, d, hint);
    nmos_dyn_latch(b, rails, phi2, m, hint)
}

// ---------------------------------------------------------------------
// CMOS transmission-gate cells
// ---------------------------------------------------------------------

/// CMOS transmission-gate 2:1 mux (`sel = 1` selects `a1`); 4 switches.
/// `sel_n` must be the complement of `sel`.
pub fn tg_mux2(
    b: &mut NetlistBuilder,
    sel: NetId,
    sel_n: NetId,
    a0: NetId,
    a1: NetId,
    hint: &str,
) -> NetId {
    let y = b.fresh(hint);
    b.transmission_gate(sel, sel_n, a1, y);
    b.transmission_gate(sel_n, sel, a0, y);
    y
}

/// CMOS transmission-gate 2:1 mux with a restoring output buffer.
///
/// The buffer is not cosmetic: a bare TG junction is bidirectional, so
/// an `X` on the select (power-up, or a glitch) leaks `X` *backward*
/// into the mux's input nets at pass strength. When those inputs feed
/// the logic that computes the select, the whole structure can lock
/// into a self-consistent `X` fixpoint. The strong gate drive of the
/// buffer blocks the backward path, exactly like the level restorer in
/// a real TG mux standard cell.
pub fn tg_mux2_buf(
    b: &mut NetlistBuilder,
    sel: NetId,
    sel_n: NetId,
    a0: NetId,
    a1: NetId,
    hint: &str,
) -> NetId {
    let junction = tg_mux2(b, sel, sel_n, a0, a1, hint);
    let y = b.fresh(hint);
    b.gate(GateKind::Buf, &[junction], y, d1());
    y
}

/// Dynamic CMOS TG flip-flop (master-slave, positive edge): two TGs and
/// two inverters; 4 switches + 2 gates. Non-inverting.
pub fn tg_dff(b: &mut NetlistBuilder, clk: NetId, clk_n: NetId, d: NetId, hint: &str) -> NetId {
    let m = b.fresh(hint);
    b.transmission_gate(clk_n, clk, d, m);
    let mi = inv(b, m, hint);
    let s = b.fresh(hint);
    b.transmission_gate(clk, clk_n, mi, s);
    inv(b, s, hint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::Netlist;
    use logicsim_sim::Simulator;

    fn finish(b: NetlistBuilder) -> Netlist {
        b.finish().expect("cell circuit must validate")
    }

    /// Drives inputs and runs long enough for combinational settling.
    fn settle(sim: &mut Simulator<'_>, assignments: &[(NetId, Level)]) {
        for &(n, l) in assignments {
            sim.set_input(n, l);
        }
        let t = sim.now();
        sim.run_until(t + 64);
    }

    #[test]
    fn mux2_selects() {
        let mut b = NetlistBuilder::new("t");
        let (s, a0, a1) = (b.input("s"), b.input("a0"), b.input("a1"));
        let y = mux2(&mut b, s, a0, a1, "m");
        b.mark_output(y);
        let n = finish(b);
        let y = n.outputs()[0];
        let mut sim = Simulator::new(&n).expect("pre-flight");
        settle(
            &mut sim,
            &[(s, Level::Zero), (a0, Level::One), (a1, Level::Zero)],
        );
        assert_eq!(sim.level(y), Level::One);
        settle(&mut sim, &[(s, Level::One)]);
        assert_eq!(sim.level(y), Level::Zero);
    }

    #[test]
    fn dff_captures_on_rising_edge() {
        let mut b = NetlistBuilder::new("t");
        let (clk, d) = (b.input("clk"), b.input("d"));
        let q = dff(&mut b, clk, d, "ff");
        b.mark_output(q);
        let n = finish(b);
        let q = n.outputs()[0];
        let mut sim = Simulator::new(&n).expect("pre-flight");
        settle(&mut sim, &[(clk, Level::Zero), (d, Level::One)]);
        settle(&mut sim, &[(clk, Level::One)]); // rising edge: capture 1
        assert_eq!(sim.level(q), Level::One);
        settle(&mut sim, &[(clk, Level::Zero), (d, Level::Zero)]);
        assert_eq!(sim.level(q), Level::One, "q must hold while clk low");
        settle(&mut sim, &[(clk, Level::One)]); // capture 0
        assert_eq!(sim.level(q), Level::Zero);
    }

    #[test]
    fn ripple_adder_adds() {
        let mut b = NetlistBuilder::new("t");
        let a: Vec<NetId> = (0..4).map(|i| b.input(format!("a{i}"))).collect();
        let bb: Vec<NetId> = (0..4).map(|i| b.input(format!("b{i}"))).collect();
        let cin = b.input("cin");
        let (sum, cout) = ripple_adder(&mut b, &a, &bb, cin, "add");
        for s in &sum {
            b.mark_output(*s);
        }
        b.mark_output(cout);
        let n = finish(b);
        let mut sim = Simulator::new(&n).expect("pre-flight");
        // 11 + 6 + 1 = 18 = 0b10010.
        let mut drives = vec![(cin, Level::One)];
        for (i, &ai) in a.iter().enumerate() {
            drives.push((ai, Level::from_bool(11 >> i & 1 == 1)));
        }
        for (i, &bi) in bb.iter().enumerate() {
            drives.push((bi, Level::from_bool(6 >> i & 1 == 1)));
        }
        settle(&mut sim, &drives);
        let mut got = 0u32;
        for (i, &s) in sum.iter().enumerate() {
            if sim.level(s) == Level::One {
                got |= 1 << i;
            }
        }
        if sim.level(cout) == Level::One {
            got |= 1 << 4;
        }
        assert_eq!(got, 18);
    }

    #[test]
    fn counter_counts() {
        let mut b = NetlistBuilder::new("t");
        let (clk, en, rst) = (b.input("clk"), b.input("en"), b.input("rst"));
        let qs = counter(&mut b, clk, en, rst, 3, "cnt");
        for q in &qs {
            b.mark_output(*q);
        }
        let n = finish(b);
        let mut sim = Simulator::new(&n).expect("pre-flight");
        // Synchronous reset flushes the all-X power-up state.
        settle(
            &mut sim,
            &[(en, Level::One), (rst, Level::One), (clk, Level::Zero)],
        );
        for _ in 0..2 {
            settle(&mut sim, &[(clk, Level::One)]);
            settle(&mut sim, &[(clk, Level::Zero)]);
        }
        settle(&mut sim, &[(rst, Level::Zero)]);
        let read = |sim: &Simulator<'_>| -> Option<u32> {
            let mut v = 0;
            for (i, &q) in qs.iter().enumerate() {
                match sim.level(q).to_bool() {
                    Some(true) => v |= 1 << i,
                    Some(false) => {}
                    None => return None,
                }
            }
            Some(v)
        };
        let v0 = read(&sim);
        settle(&mut sim, &[(clk, Level::One)]);
        settle(&mut sim, &[(clk, Level::Zero)]);
        let v1 = read(&sim);
        if let (Some(v0), Some(v1)) = (v0, v1) {
            assert_eq!(v1, (v0 + 1) % 8, "count {v0} -> {v1}");
        } else {
            panic!("counter bits still unknown after clocking: {v0:?} {v1:?}");
        }
        // Enable low: holds.
        settle(&mut sim, &[(en, Level::Zero)]);
        let held = read(&sim);
        settle(&mut sim, &[(clk, Level::One)]);
        settle(&mut sim, &[(clk, Level::Zero)]);
        assert_eq!(read(&sim), held);
    }

    #[test]
    fn comparators_compare() {
        let mut b = NetlistBuilder::new("t");
        let a: Vec<NetId> = (0..4).map(|i| b.input(format!("a{i}"))).collect();
        let bb: Vec<NetId> = (0..4).map(|i| b.input(format!("b{i}"))).collect();
        let eq = eq_comparator(&mut b, &a, &bb, "eq");
        let lt = lt_comparator(&mut b, &a, &bb, "lt");
        b.mark_output(eq);
        b.mark_output(lt);
        let n = finish(b);
        let mut sim = Simulator::new(&n).expect("pre-flight");
        let set = |sim: &mut Simulator<'_>, av: u32, bv: u32| {
            let mut drives = Vec::new();
            for i in 0..4 {
                drives.push((a[i], Level::from_bool(av >> i & 1 == 1)));
                drives.push((bb[i], Level::from_bool(bv >> i & 1 == 1)));
            }
            settle(sim, &drives);
        };
        set(&mut sim, 5, 5);
        assert_eq!(sim.level(eq), Level::One);
        assert_eq!(sim.level(lt), Level::Zero);
        set(&mut sim, 3, 9);
        assert_eq!(sim.level(eq), Level::Zero);
        assert_eq!(sim.level(lt), Level::One);
        set(&mut sim, 12, 7);
        assert_eq!(sim.level(eq), Level::Zero);
        assert_eq!(sim.level(lt), Level::Zero);
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = NetlistBuilder::new("t");
        let sel: Vec<NetId> = (0..2).map(|i| b.input(format!("s{i}"))).collect();
        let outs = decoder(&mut b, &sel, "dec");
        for o in &outs {
            b.mark_output(*o);
        }
        let n = finish(b);
        let mut sim = Simulator::new(&n).expect("pre-flight");
        for code in 0..4u32 {
            settle(
                &mut sim,
                &[
                    (sel[0], Level::from_bool(code & 1 == 1)),
                    (sel[1], Level::from_bool(code >> 1 & 1 == 1)),
                ],
            );
            for (i, &o) in outs.iter().enumerate() {
                let expect = Level::from_bool(i as u32 == code);
                assert_eq!(sim.level(o), expect, "code {code} out {i}");
            }
        }
    }

    #[test]
    fn c_element_holds_on_disagreement() {
        let mut b = NetlistBuilder::new("t");
        let (x, y) = (b.input("x"), b.input("y"));
        let c = c_element(&mut b, x, y, "c");
        b.mark_output(c);
        let n = finish(b);
        let mut sim = Simulator::new(&n).expect("pre-flight");
        settle(&mut sim, &[(x, Level::Zero), (y, Level::Zero)]);
        assert_eq!(sim.level(c), Level::Zero);
        settle(&mut sim, &[(x, Level::One)]);
        assert_eq!(sim.level(c), Level::Zero, "disagreement holds");
        settle(&mut sim, &[(y, Level::One)]);
        assert_eq!(sim.level(c), Level::One, "agreement switches");
        settle(&mut sim, &[(x, Level::Zero)]);
        assert_eq!(sim.level(c), Level::One, "disagreement holds high");
        settle(&mut sim, &[(y, Level::Zero)]);
        assert_eq!(sim.level(c), Level::Zero);
    }

    #[test]
    fn nmos_gates_compute() {
        let mut b = NetlistBuilder::new("t");
        let rails = Rails::new(&mut b);
        let (x, y) = (b.input("x"), b.input("y"));
        let ni = nmos_inv(&mut b, rails, x, "ni");
        let nn = nmos_nand2(&mut b, rails, x, y, "nn");
        let nr = nmos_nor2(&mut b, rails, x, y, "nr");
        for o in [ni, nn, nr] {
            b.mark_output(o);
        }
        let n = finish(b);
        let mut sim = Simulator::new(&n).expect("pre-flight");
        settle(&mut sim, &[(x, Level::One), (y, Level::Zero)]);
        assert_eq!(sim.level(ni), Level::Zero);
        assert_eq!(sim.level(nn), Level::One);
        assert_eq!(sim.level(nr), Level::Zero);
        settle(&mut sim, &[(x, Level::One), (y, Level::One)]);
        assert_eq!(sim.level(nn), Level::Zero);
        assert_eq!(sim.level(nr), Level::Zero);
        settle(&mut sim, &[(x, Level::Zero), (y, Level::Zero)]);
        assert_eq!(sim.level(ni), Level::One);
        assert_eq!(sim.level(nn), Level::One);
        assert_eq!(sim.level(nr), Level::One);
    }

    #[test]
    fn nmos_dyn_dff_stores() {
        let mut b = NetlistBuilder::new("t");
        let rails = Rails::new(&mut b);
        let (phi1, phi2, d) = (b.input("phi1"), b.input("phi2"), b.input("d"));
        let q = nmos_dyn_dff(&mut b, rails, phi1, phi2, d, "ff");
        b.mark_output(q);
        let n = finish(b);
        let mut sim = Simulator::new(&n).expect("pre-flight");
        // Load 0 through phi1, transfer through phi2 (q is double
        // inverted -> follows d).
        settle(
            &mut sim,
            &[(d, Level::Zero), (phi1, Level::One), (phi2, Level::Zero)],
        );
        settle(&mut sim, &[(phi1, Level::Zero)]);
        settle(&mut sim, &[(phi2, Level::One)]);
        settle(&mut sim, &[(phi2, Level::Zero)]);
        assert_eq!(sim.level(q), Level::Zero);
        // Change d with both phases low: q holds (dynamic storage).
        settle(&mut sim, &[(d, Level::One)]);
        assert_eq!(sim.level(q), Level::Zero);
        // Clock it through.
        settle(&mut sim, &[(phi1, Level::One)]);
        settle(&mut sim, &[(phi1, Level::Zero)]);
        settle(&mut sim, &[(phi2, Level::One)]);
        settle(&mut sim, &[(phi2, Level::Zero)]);
        assert_eq!(sim.level(q), Level::One);
    }

    #[test]
    fn tg_mux_and_tg_dff() {
        let mut b = NetlistBuilder::new("t");
        let (sel, a0, a1) = (b.input("sel"), b.input("a0"), b.input("a1"));
        let sel_n = inv(&mut b, sel, "sn");
        let y = tg_mux2(&mut b, sel, sel_n, a0, a1, "tm");
        let (clk, d) = (b.input("clk"), b.input("d"));
        let clk_n = inv(&mut b, clk, "cn");
        let q = tg_dff(&mut b, clk, clk_n, d, "tf");
        b.mark_output(y);
        b.mark_output(q);
        let n = finish(b);
        let mut sim = Simulator::new(&n).expect("pre-flight");
        settle(
            &mut sim,
            &[(sel, Level::One), (a0, Level::Zero), (a1, Level::One)],
        );
        assert_eq!(sim.level(y), Level::One);
        settle(&mut sim, &[(sel, Level::Zero)]);
        assert_eq!(sim.level(y), Level::Zero);
        // TG DFF: load on rising edge.
        settle(&mut sim, &[(clk, Level::Zero), (d, Level::One)]);
        settle(&mut sim, &[(clk, Level::One)]);
        assert_eq!(sim.level(q), Level::One);
        settle(&mut sim, &[(clk, Level::Zero), (d, Level::Zero)]);
        assert_eq!(sim.level(q), Level::One, "holds while master open");
        settle(&mut sim, &[(clk, Level::One)]);
        assert_eq!(sim.level(q), Level::Zero);
    }

    #[test]
    fn dff_en_holds_and_loads() {
        let mut b = NetlistBuilder::new("t");
        let (clk, en, d) = (b.input("clk"), b.input("en"), b.input("d"));
        let q = dff_en(&mut b, clk, en, d, "fe");
        b.mark_output(q);
        let n = finish(b);
        let mut sim = Simulator::new(&n).expect("pre-flight");
        settle(
            &mut sim,
            &[(clk, Level::Zero), (en, Level::One), (d, Level::One)],
        );
        settle(&mut sim, &[(clk, Level::One)]);
        settle(&mut sim, &[(clk, Level::Zero)]);
        assert_eq!(sim.level(q), Level::One);
        settle(&mut sim, &[(en, Level::Zero), (d, Level::Zero)]);
        settle(&mut sim, &[(clk, Level::One)]);
        settle(&mut sim, &[(clk, Level::Zero)]);
        assert_eq!(sim.level(q), Level::One, "disabled: holds");
        settle(&mut sim, &[(en, Level::One)]);
        settle(&mut sim, &[(clk, Level::One)]);
        assert_eq!(sim.level(q), Level::Zero, "enabled: loads");
    }
}
