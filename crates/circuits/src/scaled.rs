//! Tiled scaling of the five benchmarks to 10k–1M+ components.
//!
//! The paper notes its circuits "could be scaled to larger versions";
//! this module does so mechanically: a target size is met by
//! instantiating `ceil(target / base_size)` **tiles** of a base
//! benchmark and wiring them together so the result behaves like one
//! large chip rather than a disconnected forest:
//!
//! * **Tile 0 is the base instance verbatim** — identical net names and
//!   component order — so the benchmark's stimulus plan (which resolves
//!   inputs by name) drives the scaled circuit unchanged.
//! * **Global signals** (inputs with `Clock`, `Const`, or `Pulse` roles
//!   in the base stimulus) are distributed, not replicated: tile `t>0`
//!   receives a local buffered copy of tile 0's net — a one-level clock
//!   tree, exactly how real chips ship a clock across a die.
//! * **Data inputs** (random-role or unassigned) of tile `t>0` are
//!   rewired to *outputs of earlier tiles* through a 2-tick buffer:
//!   mostly the neighboring tile `t-1`, with every fourth input
//!   reaching back to the head of the tile's column — short local
//!   wires plus occasional long hops, like a placed-and-routed
//!   floorplan. Tiles are grouped into *columns* of a height chosen
//!   from the base circuit's logic depth so that the longest
//!   combinational chain through the array stays below the LS0005
//!   lint threshold; column heads draw their data from tile 0. The
//!   donor output is chosen by a seeded RNG, so the wiring (and the
//!   netlist's [structural digest]) is a pure function of
//!   `(benchmark, target, seed)`.
//! * Every tile's copy of the base outputs is observable, so the
//!   LS0003 liveness cone covers each tile exactly as it covers the
//!   base circuit: a lint-clean base scales to a lint-clean tile array.
//!
//! Tiles are connected into a DAG (donors always have a smaller tile
//! index), so scaling can never introduce a combinational cycle that
//! the base circuit did not have.
//!
//! [structural digest]: logicsim_netlist::Netlist::structural_digest

use crate::{Benchmark, BenchmarkInstance};
use logicsim_netlist::analyze::Levelization;
use logicsim_netlist::{Component, Delay, GateKind, NetId, NetlistBuilder};
use logicsim_sim::SignalRole;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters for [`build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaledParams {
    /// The base benchmark to tile.
    pub base: Benchmark,
    /// Minimum number of simulated components in the result.
    pub target_components: usize,
    /// Seed for the inter-tile wiring choices.
    pub seed: u64,
}

/// The default wiring seed (the paper's year, like the stimulus seed).
pub const DEFAULT_SEED: u64 = 0x1987;

/// Builds a scaled benchmark instance by tiling (see module docs).
///
/// Targets at or below the base size return the base instance
/// unchanged; otherwise the result has at least `target_components`
/// simulated components.
#[must_use]
pub fn build(params: &ScaledParams) -> BenchmarkInstance {
    let base = params.base.build_default();
    let base_size = base.netlist.num_simulated_components();
    let tiles = params.target_components.div_ceil(base_size.max(1));
    if tiles <= 1 {
        return base;
    }
    let nl = &base.netlist;
    let n = nl.num_nets();
    let comps = nl.components();

    // Classify base input nets: global (clock/const/pulse) vs data.
    let mut global = vec![false; n];
    for (name, role) in &base.stimulus.assignments {
        if let Some(net) = nl.find_net(name) {
            if !matches!(role, SignalRole::Random { .. }) {
                global[net.index()] = true;
            }
        }
    }

    let name_bytes: usize = (0..n).map(|i| nl.net_name(NetId(i as u32)).len() + 6).sum();
    let mut b = NetlistBuilder::new(format!("{}x{tiles}", nl.name()));
    b.reserve(
        tiles * n,
        name_bytes * tiles,
        tiles * comps.len() + tiles * nl.inputs().len(),
    );

    // All nets, tile-major: net (t, i) has id t*n + i. Tile 0 keeps the
    // base names (interned, so the stimulus spec still resolves);
    // later tiles get prefixed arena-only names.
    for i in 0..n {
        b.net(nl.net_name(NetId(i as u32)));
    }
    for t in 1..tiles {
        for i in 0..n {
            b.bulk_net(format_args!("t{t}|{}", nl.net_name(NetId(i as u32))));
        }
    }

    // Column height: every hop through a tile adds at most
    // `base_depth + 1` combinational levels (the buffer plus the
    // deepest input-to-output path), and a column chains `height`
    // tiles off tile 0, so `(height + 1) * (depth + 2)` is kept under
    // the LS0005 threshold (512) with margin.
    let base_depth = Levelization::compute(nl).max_depth() as usize;
    let height = (480 / (base_depth + 2)).saturating_sub(1).max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let exports = nl.outputs();
    assert!(
        !exports.is_empty(),
        "base benchmark has no outputs to export"
    );

    for t in 0..tiles {
        let at = |net: NetId| NetId((t * n + net.index()) as u32);
        let mut data_inputs = 0usize;
        for comp in comps {
            match comp {
                Component::Input { net } if t > 0 => {
                    let (source, delay) = if global[net.index()] {
                        // Local copy of the shared global: one buffer
                        // level off tile 0's net.
                        (*net, Delay::uniform(1))
                    } else {
                        // Data input: wired to an exported output of an
                        // earlier tile. Within a column tiles chain off
                        // their neighbor; column heads (and every fourth
                        // input, as a long hop) draw from the column
                        // head or tile 0.
                        let pos = (t - 1) % height;
                        let head = t - pos;
                        let donor = if pos == 0 {
                            0
                        } else if data_inputs % 4 == 3 {
                            head
                        } else {
                            t - 1
                        };
                        data_inputs += 1;
                        let out = exports[rng.gen_range(0..exports.len())];
                        (NetId((donor * n + out.index()) as u32), Delay::uniform(2))
                    };
                    b.add_component(Component::Gate {
                        kind: GateKind::Buf,
                        inputs: vec![source],
                        output: at(*net),
                        delay,
                    });
                }
                Component::Input { net } => {
                    b.add_component(Component::Input { net: at(*net) });
                }
                Component::Gate {
                    kind,
                    inputs,
                    output,
                    delay,
                } => {
                    b.add_component(Component::Gate {
                        kind: *kind,
                        inputs: inputs.iter().map(|&i| at(i)).collect(),
                        output: at(*output),
                        delay: *delay,
                    });
                }
                Component::Switch {
                    kind,
                    control,
                    a,
                    b: bb,
                } => {
                    b.add_component(Component::Switch {
                        kind: *kind,
                        control: at(*control),
                        a: at(*a),
                        b: at(*bb),
                    });
                }
                Component::Pull { net, level } => {
                    b.add_component(Component::Pull {
                        net: at(*net),
                        level: *level,
                    });
                }
                Component::Supply { net, level } => {
                    b.add_component(Component::Supply {
                        net: at(*net),
                        level: *level,
                    });
                }
            }
        }
        for &out in exports {
            b.mark_output(at(out));
        }
    }

    let netlist = b.finish().expect("tiled netlist is valid by construction");
    BenchmarkInstance {
        netlist,
        stimulus: base.stimulus,
        technology: base.technology,
        clocking: base.clocking,
        vector_period: base.vector_period,
    }
}

/// Parses a human scale suffix: `2500`, `10k`, `100K`, `1m`, `1M`
/// (k = 1 000, m = 1 000 000).
#[must_use]
pub fn parse_scale(s: &str) -> Option<usize> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1_000usize),
        b'm' | b'M' => (&s[..s.len() - 1], 1_000_000usize),
        _ => (s, 1),
    };
    if digits.is_empty() {
        return None;
    }
    digits.parse::<usize>().ok()?.checked_mul(mult)
}

/// Parses a benchmark spec `family` or `family@scale` (e.g.
/// `stopwatch@100k`) into the benchmark and optional component target.
#[must_use]
pub fn parse_spec(spec: &str) -> Option<(Benchmark, Option<usize>)> {
    match spec.split_once('@') {
        None => Some((Benchmark::from_slug(spec)?, None)),
        Some((family, scale)) => Some((Benchmark::from_slug(family)?, Some(parse_scale(scale)?))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::analyze::{analyze, Severity};

    #[test]
    fn parse_scale_understands_suffixes() {
        assert_eq!(parse_scale("2500"), Some(2500));
        assert_eq!(parse_scale("10k"), Some(10_000));
        assert_eq!(parse_scale("100K"), Some(100_000));
        assert_eq!(parse_scale("1m"), Some(1_000_000));
        assert_eq!(parse_scale("1M"), Some(1_000_000));
        assert_eq!(parse_scale(""), None);
        assert_eq!(parse_scale("k"), None);
        assert_eq!(parse_scale("12q"), None);
    }

    #[test]
    fn parse_spec_handles_families_and_scales() {
        assert_eq!(
            parse_spec("stopwatch@100k"),
            Some((Benchmark::StopWatch, Some(100_000)))
        );
        assert_eq!(
            parse_spec("crossbar"),
            Some((Benchmark::CrossbarSwitch, None))
        );
        assert_eq!(
            parse_spec("rtp_chip@10k"),
            Some((Benchmark::RtpChip, Some(10_000)))
        );
        assert_eq!(parse_spec("nope@10k"), None);
        assert_eq!(parse_spec("stopwatch@"), None);
    }

    #[test]
    fn meets_target_and_keeps_base_below_it() {
        for bench in Benchmark::ALL {
            let base = bench.build_default();
            let small = build(&ScaledParams {
                base: bench,
                target_components: 10,
                seed: DEFAULT_SEED,
            });
            assert_eq!(
                small.netlist.structural_digest(),
                base.netlist.structural_digest(),
                "{}: tiny targets must return the base instance",
                bench.paper_name()
            );
            let scaled = build(&ScaledParams {
                base: bench,
                target_components: 10_000,
                seed: DEFAULT_SEED,
            });
            let size = scaled.netlist.num_simulated_components();
            assert!(size >= 10_000, "{}: {size}", bench.paper_name());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_scale() {
        for bench in [Benchmark::StopWatch, Benchmark::CrossbarSwitch] {
            let d = |seed| {
                build(&ScaledParams {
                    base: bench,
                    target_components: 10_000,
                    seed,
                })
                .netlist
                .structural_digest()
            };
            assert_eq!(d(1), d(1), "{}", bench.paper_name());
            assert_ne!(
                d(1),
                d(2),
                "{}: wiring seed must matter",
                bench.paper_name()
            );
        }
    }

    #[test]
    fn stimulus_still_resolves_by_name() {
        for bench in Benchmark::ALL {
            let scaled = build(&ScaledParams {
                base: bench,
                target_components: 10_000,
                seed: DEFAULT_SEED,
            });
            assert!(
                scaled.stimulus.build(&scaled.netlist, 1).is_ok(),
                "{}: stimulus no longer resolves",
                bench.paper_name()
            );
        }
    }

    #[test]
    fn tiled_instances_stay_lint_clean() {
        // Tile-boundary wiring must not introduce warnings the base
        // does not have (dead logic, floating groups, drive fights).
        for bench in Benchmark::ALL {
            let base_report = analyze(&bench.build_default().netlist);
            let scaled = build(&ScaledParams {
                base: bench,
                target_components: 10_000,
                seed: DEFAULT_SEED,
            });
            let report = analyze(&scaled.netlist);
            assert!(
                !report.has_errors(),
                "{}: scaled instance has lint errors",
                bench.paper_name()
            );
            assert!(
                report.count(Severity::Warning) == 0
                    || report.count(Severity::Warning) <= base_report.count(Severity::Warning),
                "{}: scaling added warnings ({} vs base {})",
                bench.paper_name(),
                report.count(Severity::Warning),
                base_report.count(Severity::Warning)
            );
        }
    }
}
