//! The Radiation Treatment Planning (RTP) chip benchmark (nmos, sync).
//!
//! "The RTP chip implements an algorithm used in cancer treatment
//! planning which calculates the radiation dosage at a specified
//! point." The dominant computation is multiply-accumulate: the dose at
//! a point is a weighted sum of per-beam contributions. This generator
//! builds a serial-parallel shift-add multiplier with a dose
//! accumulator and a small control FSM — registers and operand steering
//! use nmos pass-transistor muxes (the switch-level part), while the
//! adders and control are gate-level, giving the mixed switch/gate
//! profile of the paper's chip (1,422 switches / 1,746 gates).

use crate::cells::{self, Rails};
use crate::BenchmarkInstance;
use logicsim_netlist::{Clocking, GateKind, Level, NetId, NetlistBuilder, Technology};
use logicsim_sim::{SignalRole, StimulusSpec};

/// RTP chip generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpParams {
    /// Operand width in bits (the multiplier runs `bits` cycles).
    pub bits: usize,
    /// Width of the dose accumulator.
    pub accum_bits: usize,
    /// Stimulus clock half-period in ticks.
    pub clock_half_period: u64,
}

impl Default for RtpParams {
    fn default() -> RtpParams {
        RtpParams {
            bits: 14,
            accum_bits: 28,
            clock_half_period: 26,
        }
    }
}

/// An nmos pass-transistor 2:1 mux with restored output:
/// `sel ? a1 : a0`. Two pass switches plus a two-inverter buffer.
fn nmos_mux2(
    b: &mut NetlistBuilder,
    rails: Rails,
    sel: NetId,
    sel_n: NetId,
    a0: NetId,
    a1: NetId,
    hint: &str,
) -> NetId {
    let junction = b.fresh(hint);
    b.switch(logicsim_netlist::SwitchKind::Nmos, sel, a1, junction);
    b.switch(logicsim_netlist::SwitchKind::Nmos, sel_n, a0, junction);
    let inv1 = cells::nmos_inv(b, rails, junction, hint);
    cells::nmos_inv(b, rails, inv1, hint)
}

/// Builds the RTP chip.
#[must_use]
pub fn build(params: &RtpParams) -> BenchmarkInstance {
    assert!(params.bits >= 2, "multiplier needs at least 2 bits");
    assert!(
        params.accum_bits >= 2 * params.bits,
        "accumulator must hold a full product"
    );
    let mut b = NetlistBuilder::new("rtp");
    let rails = Rails::new(&mut b);
    let bits = params.bits;

    let clk = b.input("clk");
    let rst = b.input("rst");
    let load = b.input("load"); // start a new beam: load W and D
    let w_in: Vec<NetId> = (0..bits).map(|i| b.input(format!("w{i}"))).collect();
    let d_in: Vec<NetId> = (0..bits).map(|i| b.input(format!("dist{i}"))).collect();

    let rst_n = cells::inv(&mut b, rst, "rstn");
    let load_gated = cells::and2(&mut b, load, rst_n, "ld");
    let load_n = cells::inv(&mut b, load_gated, "ldn");

    // Cycle counter: counts `bits` multiply steps after a load. It
    // resets on chip reset too, so the power-up X state flushes (the
    // dry run it triggers multiplies 0*0 and accumulates nothing).
    let step_bits = bits.next_power_of_two().trailing_zeros() as usize + 1;
    let busy = b.net("busy");
    let step_rst = cells::or2(&mut b, load_gated, rst, "srst");
    let steps = cells::counter(&mut b, clk, busy, step_rst, step_bits, "step");
    // busy while step < bits: compare against the constant `bits`.
    let const_bits: Vec<NetId> = (0..step_bits)
        .map(|i| {
            let n = b.fresh("cb");
            if bits >> i & 1 == 1 {
                // Constant one: OR(rst, NOT rst).
                let rn = cells::inv(&mut b, rst, "c1");
                b.gate(GateKind::Or, &[rst, rn], n, cells::d1());
            } else {
                b.gate(GateKind::Xor, &[rst, rst], n, cells::d1());
            }
            n
        })
        .collect();
    let running = cells::lt_comparator(&mut b, &steps, &const_bits, "run");
    let not_rst_busy = cells::and2(&mut b, running, rst_n, "busy_and");
    b.gate(GateKind::Buf, &[not_rst_busy], busy, cells::d1());
    let done = cells::inv(&mut b, running, "done");
    b.mark_output(done);

    // Multiplicand register M (loaded on `load`, held otherwise) using
    // nmos mux feedback into gate DFFs.
    let mut m_q = Vec::with_capacity(bits);
    for (i, &w) in w_in.iter().enumerate() {
        let d = b.net(format!("m_d{i}"));
        let q = cells::dff(&mut b, clk, d, &format!("m{i}"));
        let next = nmos_mux2(&mut b, rails, load_gated, load_n, q, w, &format!("mx{i}"));
        // Reset clears (AND with rst_n) so power-up X flushes.
        let cleared = cells::and2(&mut b, next, rst_n, &format!("mc{i}"));
        b.gate(GateKind::Buf, &[cleared], d, cells::d1());
        m_q.push(q);
    }

    // Multiplier register Q (loaded with the distance operand, shifts
    // right each busy cycle). q0 selects the addend.
    let mut q_q: Vec<NetId> = Vec::with_capacity(bits);
    let mut q_d: Vec<NetId> = Vec::with_capacity(bits);
    for i in 0..bits {
        let d = b.net(format!("q_d{i}"));
        let q = cells::dff(&mut b, clk, d, &format!("qr{i}"));
        q_d.push(d);
        q_q.push(q);
    }

    // Accumulator register A (bits+1 wide working register).
    let mut a_q: Vec<NetId> = Vec::with_capacity(bits + 1);
    let mut a_d: Vec<NetId> = Vec::with_capacity(bits + 1);
    for i in 0..=bits {
        let d = b.net(format!("a_d{i}"));
        let q = cells::dff(&mut b, clk, d, &format!("ar{i}"));
        a_d.push(d);
        a_q.push(q);
    }

    // Addend = q0 ? M : 0, with nmos pass transistors and pull-downs.
    let q0 = q_q[0];
    let addend: Vec<NetId> = (0..bits)
        .map(|i| {
            let n = cells::nmos_pass(&mut b, q0, m_q[i], &format!("ad{i}"));
            b.pull(n, Level::Zero);
            n
        })
        .collect();

    // Sum = A[0..bits] + addend.
    let zero = b.fresh("c0");
    b.gate(GateKind::Xor, &[rst, rst], zero, cells::d1());
    let (sum, carry) = cells::ripple_adder(&mut b, &a_q[..bits], &addend, zero, "add");

    // Next state (shift right): A' = (carry, sum) >> 1, Q' = (sum0, Q>>1).
    for i in 0..=bits {
        let shifted = if i < bits - 1 {
            sum[i + 1]
        } else if i == bits - 1 {
            carry
        } else {
            zero
        };
        // Hold when not busy, clear on load (new product starts at 0).
        let bn = cells::inv(&mut b, busy, &format!("bn{i}"));
        let held = nmos_mux2(&mut b, rails, busy, bn, a_q[i], shifted, &format!("as{i}"));
        let not_load = cells::and2(&mut b, held, load_n, &format!("al{i}"));
        let cleared = cells::and2(&mut b, not_load, rst_n, &format!("ac{i}"));
        b.gate(GateKind::Buf, &[cleared], a_d[i], cells::d1());
    }
    for i in 0..bits {
        let shifted = if i < bits - 1 { q_q[i + 1] } else { sum[0] };
        let busy_n = cells::inv(&mut b, busy, &format!("qbn{i}"));
        let held = nmos_mux2(
            &mut b,
            rails,
            busy,
            busy_n,
            q_q[i],
            shifted,
            &format!("qs{i}"),
        );
        let loaded = nmos_mux2(
            &mut b,
            rails,
            load_gated,
            load_n,
            held,
            d_in[i],
            &format!("ql{i}"),
        );
        let cleared = cells::and2(&mut b, loaded, rst_n, &format!("qc{i}"));
        b.gate(GateKind::Buf, &[cleared], q_d[i], cells::d1());
    }

    // Product = (A[0..bits], Q) when done. Dose accumulator adds the
    // product's low accum_bits on the `done` edge (enable = done rising:
    // approximate with done AND previous-not-done DFF).
    let done_d = cells::dff(&mut b, clk, done, "done_d");
    let done_d_n = cells::inv(&mut b, done_d, "done_dn");
    let accum_en = cells::and2(&mut b, done, done_d_n, "acc_en");

    let mut product = q_q.clone();
    product.extend_from_slice(&a_q[..bits]);
    // Zero-extend product to accum width.
    while product.len() < params.accum_bits {
        product.push(zero);
    }
    product.truncate(params.accum_bits);

    let mut dose_q = Vec::with_capacity(params.accum_bits);
    let mut dose_d = Vec::with_capacity(params.accum_bits);
    for i in 0..params.accum_bits {
        let d = b.net(format!("dose_d{i}"));
        let q = cells::dff(&mut b, clk, d, &format!("dose{i}"));
        dose_d.push(d);
        dose_q.push(q);
    }
    let dose_sum = cells::ripple_adder_mod(&mut b, &dose_q, &product, zero, "dacc");
    for i in 0..params.accum_bits {
        let en_n = cells::inv(&mut b, accum_en, &format!("den{i}"));
        let held = nmos_mux2(
            &mut b,
            rails,
            accum_en,
            en_n,
            dose_q[i],
            dose_sum[i],
            &format!("dm{i}"),
        );
        let cleared = cells::and2(&mut b, held, rst_n, &format!("dc{i}"));
        b.gate(GateKind::Buf, &[cleared], dose_d[i], cells::d1());
        b.mark_output(dose_q[i]);
    }

    let hp = params.clock_half_period;
    let mut stimulus = StimulusSpec::new()
        .with(
            "clk",
            SignalRole::Clock {
                half_period: hp,
                phase: 0,
            },
        )
        .with(
            "rst",
            SignalRole::Pulse {
                active: Level::One,
                width: 6 * hp,
            },
        )
        .with(
            "load",
            SignalRole::Random {
                period: 2 * hp * (params.bits as u64 + 4),
                phase: 1,
                toggle_prob: 0.8,
            },
        );
    for i in 0..params.bits {
        let period = 2 * hp * (params.bits as u64 + 4);
        stimulus = stimulus
            .with(
                format!("w{i}"),
                SignalRole::Random {
                    period,
                    phase: 1,
                    toggle_prob: 0.5,
                },
            )
            .with(
                format!("dist{i}"),
                SignalRole::Random {
                    period,
                    phase: 1,
                    toggle_prob: 0.5,
                },
            );
    }

    BenchmarkInstance {
        netlist: b.finish().expect("rtp netlist is valid"),
        stimulus,
        technology: Technology::Nmos,
        clocking: Clocking::Synchronous,
        vector_period: 2 * hp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_sim::Simulator;

    struct Rig<'a> {
        sim: Simulator<'a>,
        n: &'a logicsim_netlist::Netlist,
        bits: usize,
    }

    impl<'a> Rig<'a> {
        fn net(&self, s: &str) -> NetId {
            self.n.find_net(s).unwrap()
        }
        fn settle(&mut self) {
            let t = self.sim.now();
            self.sim.run_until(t + 200);
        }
        fn clock(&mut self) {
            self.sim.set_input(self.net("clk"), Level::One);
            self.settle();
            self.sim.set_input(self.net("clk"), Level::Zero);
            self.settle();
        }
        fn read_reg(&self, prefix: &str, width: usize) -> Option<u64> {
            let mut v = 0u64;
            for i in 0..width {
                let q = self.n.find_net(&format!("{prefix}{i}"))?;
                // Registers named via fresh nets; read the DFF q by
                // searching the d-net driver is complex — instead the
                // test reads the marked outputs (dose) and named d nets.
                match self.sim.level(q).to_bool() {
                    Some(true) => v |= 1 << i,
                    Some(false) => {}
                    None => return None,
                }
            }
            Some(v)
        }
        fn dose(&self) -> Option<u64> {
            let mut v = 0u64;
            for (i, &o) in self.n.outputs().iter().skip(1).enumerate() {
                match self.sim.level(o).to_bool() {
                    Some(true) => v |= 1 << i,
                    Some(false) => {}
                    None => return None,
                }
            }
            Some(v)
        }
    }

    fn mac_once(rig: &mut Rig<'_>, w: u64, d: u64) {
        for i in 0..rig.bits {
            let wi = rig.net(&format!("w{i}"));
            let di = rig.net(&format!("dist{i}"));
            rig.sim.set_input(wi, Level::from_bool(w >> i & 1 == 1));
            rig.sim.set_input(di, Level::from_bool(d >> i & 1 == 1));
        }
        let load = rig.net("load");
        rig.sim.set_input(load, Level::One);
        rig.settle();
        rig.clock();
        rig.sim.set_input(load, Level::Zero);
        rig.settle();
        // Run the multiply: bits cycles plus slack.
        for _ in 0..(rig.bits + 3) {
            rig.clock();
        }
        // One more clock so the accumulator latches the product.
        rig.clock();
    }

    #[test]
    fn dose_accumulates_products() {
        let params = RtpParams {
            bits: 4,
            accum_bits: 8,
            clock_half_period: 64,
        };
        let inst = build(&params);
        let netlist = Box::leak(Box::new(inst.netlist));
        let mut rig = Rig {
            sim: Simulator::new(netlist).expect("pre-flight"),
            n: netlist,
            bits: 4,
        };
        // Reset.
        for s in ["clk", "load"] {
            let net = rig.net(s);
            rig.sim.set_input(net, Level::Zero);
        }
        let rst = rig.net("rst");
        rig.sim.set_input(rst, Level::One);
        rig.settle();
        for _ in 0..2 {
            rig.clock();
        }
        rig.sim.set_input(rst, Level::Zero);
        rig.settle();
        rig.clock();
        assert_eq!(rig.dose(), Some(0), "dose cleared by reset");

        // 5 * 3 = 15.
        mac_once(&mut rig, 5, 3);
        assert_eq!(rig.dose(), Some(15), "first beam: 5*3");
        // Accumulate 2 * 6 = 12 -> 27.
        mac_once(&mut rig, 2, 6);
        assert_eq!(rig.dose(), Some(27), "second beam accumulates");
        let _ = rig.read_reg("nonexistent", 0);
    }

    #[test]
    fn default_size_in_paper_range() {
        let inst = build(&RtpParams::default());
        let nl = &inst.netlist;
        // Paper: 3,169 components (1,422 switches + 1,746 gates).
        let total = nl.num_simulated_components();
        assert!((1_200..=6_000).contains(&total), "total={total}");
        assert!(nl.num_switches() > 200, "switches={}", nl.num_switches());
        assert!(nl.num_gates() > 400, "gates={}", nl.num_gates());
    }
}
