#![forbid(unsafe_code)]

//! Parameterizable generators for the five WUCS-86-19 benchmark
//! circuits.
//!
//! The paper's workload data came from five student-designed VLSI chips
//! (Table 4): a stop watch, an associative memory, a priority queue, a
//! radiation-treatment-planning (RTP) chip, and a crossbar switch. The
//! original designs are not available, so this crate provides structural
//! generators with the same technology mix (nmos/cmos), clocking
//! disciplines (sync/async), size range, and architectural flavor —
//! including the paper's signature structural fact that the crossbar
//! switch is the only all-gate (zero-switch) design.
//!
//! Every generator is scalable: the paper itself scaled its circuits
//! ("the priority queue, associative memory, and crossbar switch were
//! designed so that they could be scaled to larger versions").
//!
//! # Example
//!
//! ```
//! use logicsim_circuits::{Benchmark, BenchmarkInstance};
//!
//! let inst = Benchmark::CrossbarSwitch.build_default();
//! assert_eq!(inst.netlist.num_switches(), 0); // all-gate, like the paper
//! assert!(inst.netlist.num_gates() > 500);
//! ```

pub mod assoc_mem;
pub mod cells;
pub mod crossbar;
pub mod priority_queue;
pub mod rtp;
pub mod scaled;
pub mod stopwatch;

pub use scaled::{parse_scale, parse_spec, ScaledParams};

use logicsim_netlist::analyze::opt::{self, OptReport};
use logicsim_netlist::{CircuitCharacteristics, Clocking, Netlist, Technology};
use logicsim_sim::StimulusSpec;

/// The five benchmark circuits of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Elapsed-time stop watch (nmos, synchronous).
    StopWatch,
    /// Content-addressable memory (nmos, asynchronous).
    AssocMem,
    /// Smallest-first priority queue over 48-bit records (cmos, sync).
    PriorityQueue,
    /// Radiation-treatment-planning MAC datapath (nmos, synchronous).
    RtpChip,
    /// 4x4 crossbar interconnection switch (nmos, asynchronous).
    CrossbarSwitch,
}

impl Benchmark {
    /// All five benchmarks in the paper's Table 4 order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::StopWatch,
        Benchmark::AssocMem,
        Benchmark::PriorityQueue,
        Benchmark::RtpChip,
        Benchmark::CrossbarSwitch,
    ];

    /// The paper's printed circuit name.
    #[must_use]
    pub fn paper_name(self) -> &'static str {
        match self {
            Benchmark::StopWatch => "Stop Watch",
            Benchmark::AssocMem => "Assoc. Mem.",
            Benchmark::PriorityQueue => "Priority Q.",
            Benchmark::RtpChip => "RTP Chip",
            Benchmark::CrossbarSwitch => "CB Switch",
        }
    }

    /// The machine-readable name used by `lsim` (`bench:NAME`),
    /// perf-snapshot families, and the scaled-corpus specs
    /// (`stopwatch@100k`).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Benchmark::StopWatch => "stopwatch",
            Benchmark::AssocMem => "assoc_mem",
            Benchmark::PriorityQueue => "priority_queue",
            Benchmark::RtpChip => "rtp",
            Benchmark::CrossbarSwitch => "crossbar",
        }
    }

    /// Parses a benchmark slug ([`Benchmark::slug`]), also accepting
    /// the longer aliases `rtp_chip` and `crossbar_switch`.
    #[must_use]
    pub fn from_slug(slug: &str) -> Option<Benchmark> {
        Some(match slug {
            "stopwatch" => Benchmark::StopWatch,
            "assoc_mem" => Benchmark::AssocMem,
            "priority_queue" => Benchmark::PriorityQueue,
            "rtp" | "rtp_chip" => Benchmark::RtpChip,
            "crossbar" | "crossbar_switch" => Benchmark::CrossbarSwitch,
            _ => return None,
        })
    }

    /// Builds the benchmark tiled up to at least `target_components`
    /// simulated components (see [`scaled`]); targets at or below the
    /// base size return the default instance.
    #[must_use]
    pub fn build_at(self, target_components: usize) -> BenchmarkInstance {
        scaled::build(&ScaledParams {
            base: self,
            target_components,
            seed: scaled::DEFAULT_SEED,
        })
    }

    /// Builds the benchmark at its default scale (sized to land in the
    /// paper's hundreds-to-thousands component range).
    #[must_use]
    pub fn build_default(self) -> BenchmarkInstance {
        match self {
            Benchmark::StopWatch => stopwatch::build(&stopwatch::StopwatchParams::default()),
            Benchmark::AssocMem => assoc_mem::build(&assoc_mem::AssocMemParams::default()),
            Benchmark::PriorityQueue => {
                priority_queue::build(&priority_queue::PriorityQueueParams::default())
            }
            Benchmark::RtpChip => rtp::build(&rtp::RtpParams::default()),
            Benchmark::CrossbarSwitch => crossbar::build(&crossbar::CrossbarParams::default()),
        }
    }
}

/// A built benchmark: the netlist, its measurement stimulus, and its
/// declared technology/clocking for Table 4.
#[derive(Debug, Clone)]
pub struct BenchmarkInstance {
    /// The circuit.
    pub netlist: Netlist,
    /// The stimulus plan used for workload measurement (random vectors
    /// plus clocks, mirroring the paper's methodology).
    pub stimulus: StimulusSpec,
    /// Fabrication technology (Table 4).
    pub technology: Technology,
    /// Clocking discipline (Table 4).
    pub clocking: Clocking,
    /// Ticks of one "vector period" — the natural unit for choosing
    /// warm-up and measurement windows.
    pub vector_period: u64,
}

impl BenchmarkInstance {
    /// The Table 4 row for this instance.
    #[must_use]
    pub fn characteristics(&self) -> CircuitCharacteristics {
        CircuitCharacteristics::measure(&self.netlist, self.technology, self.clocking)
    }

    /// Runs the static optimizer over this instance's netlist and
    /// returns the rewritten instance along with the optimizer's
    /// report. The optimizer preserves net ids, net names, and the
    /// input/output declarations, so the original stimulus plan and
    /// observation points carry over unchanged.
    #[must_use]
    pub fn optimized(&self) -> (BenchmarkInstance, OptReport) {
        let o = opt::optimize(&self.netlist);
        (
            BenchmarkInstance {
                netlist: o.netlist,
                stimulus: self.stimulus.clone(),
                technology: self.technology,
                clocking: self.clocking,
                vector_period: self.vector_period,
            },
            o.report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build() {
        for b in Benchmark::ALL {
            let inst = b.build_default();
            assert!(
                inst.netlist.num_simulated_components() > 100,
                "{}: only {} components",
                b.paper_name(),
                inst.netlist.num_simulated_components()
            );
        }
    }

    #[test]
    fn technology_mix_matches_table4() {
        use Benchmark::*;
        let tech = |b: Benchmark| b.build_default().technology;
        assert_eq!(tech(PriorityQueue), Technology::Cmos);
        for b in [StopWatch, AssocMem, RtpChip, CrossbarSwitch] {
            assert_eq!(tech(b), Technology::Nmos, "{}", b.paper_name());
        }
        let clk = |b: Benchmark| b.build_default().clocking;
        assert_eq!(clk(AssocMem), Clocking::Asynchronous);
        assert_eq!(clk(CrossbarSwitch), Clocking::Asynchronous);
        assert_eq!(clk(StopWatch), Clocking::Synchronous);
    }

    #[test]
    fn crossbar_is_the_only_switchless_design() {
        for b in Benchmark::ALL {
            let inst = b.build_default();
            if b == Benchmark::CrossbarSwitch {
                assert_eq!(inst.netlist.num_switches(), 0);
            } else {
                assert!(
                    inst.netlist.num_switches() > 0,
                    "{} should use switches",
                    b.paper_name()
                );
            }
        }
    }

    #[test]
    fn stimulus_resolves_against_netlist() {
        for b in Benchmark::ALL {
            let inst = b.build_default();
            assert!(
                inst.stimulus.build(&inst.netlist, 1).is_ok(),
                "{}: stimulus references unknown nets",
                b.paper_name()
            );
        }
    }
}
