//! Distribution summaries for per-phase timing measurements.
//!
//! The observability layer in `logicsim-sim` records the duration of
//! every engine phase (START fan-out, evaluation, message exchange,
//! DONE collection, barrier wait) into per-worker ring buffers. A
//! [`PhaseSummary`] condenses one phase's merged [`Histogram`] into the
//! handful of numbers the calibration bridge and `perf_snapshot`
//! consume: count, total, mean, and the p50/p95/p99 tail.
//!
//! Values are unit-agnostic `u64`s; the simulator records nanoseconds.

use crate::histogram::Histogram;
use serde::{Deserialize, Serialize};

/// Five-number condensation of one phase's duration distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples (same unit as the samples, e.g. ns).
    pub total: u64,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Median (nearest-rank p50).
    pub p50: u64,
    /// 95th percentile (nearest rank).
    pub p95: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl PhaseSummary {
    /// Summarizes a histogram of phase durations; `None` when empty.
    #[must_use]
    pub fn from_histogram(h: &Histogram) -> Option<PhaseSummary> {
        if h.is_empty() {
            return None;
        }
        let total: u64 = h.iter().map(|(v, c)| v * c).sum();
        Some(PhaseSummary {
            count: h.len(),
            total,
            mean: h.mean(),
            p50: h.quantile(0.5).expect("non-empty"),
            p95: h.quantile(0.95).expect("non-empty"),
            p99: h.quantile(0.99).expect("non-empty"),
            max: h.max().expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_uniform_stream() {
        let h: Histogram = (1..=100u64).collect();
        let s = PhaseSummary::from_histogram(&h).expect("non-empty");
        assert_eq!(s.count, 100);
        assert_eq!(s.total, 5050);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert_eq!(PhaseSummary::from_histogram(&Histogram::new()), None);
    }

    #[test]
    fn summary_survives_merge_order() {
        let mut a: Histogram = [5u64, 5, 80].into_iter().collect();
        let b: Histogram = [1u64, 80, 80].into_iter().collect();
        let mut c = b.clone();
        c.merge(&a);
        a.merge(&b);
        assert_eq!(
            PhaseSummary::from_histogram(&a),
            PhaseSummary::from_histogram(&c)
        );
    }
}
