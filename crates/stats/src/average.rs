//! The Table 8 "average workload" derivation.

use crate::workload::{NatureRow, Workload};

/// Derives the paper's average workload (Table 8) from per-circuit
/// nature rows (Table 6), normalized to `run_length` total ticks.
///
/// The procedure is exactly the paper's: average `B/(B+I)` across the
/// circuits to fix `B` (and so `I = run_length - B`), average `N = E/B`
/// to fix `E = N * B`, average `F = M_inf/E` to fix `M_inf = F * E`.
/// With the paper's Table 6 rows and `run_length = 60_000` this yields
/// `B = 8,106`, `I = 51,894`, `E = 10.37e6`, `M_inf = 21.77e6`.
///
/// The choice of run length is arbitrary and cancels out of every
/// speed-up result (the paper makes the same remark).
///
/// # Panics
///
/// Panics if `rows` is empty.
#[must_use]
pub fn average_workload(rows: &[NatureRow], run_length: f64) -> Workload {
    assert!(!rows.is_empty(), "need at least one circuit to average");
    let n = rows.len() as f64;
    let mean = |f: fn(&NatureRow) -> f64| rows.iter().map(f).sum::<f64>() / n;
    let busy_fraction = mean(|r| r.busy_fraction);
    let simultaneity = mean(|r| r.simultaneity);
    let fanout = mean(|r| r.fanout);
    let busy = (busy_fraction * run_length).round();
    let idle = run_length - busy;
    let events = (simultaneity * busy).round();
    let messages = (fanout * events).round();
    Workload::new(busy, idle, events, messages)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The five Table 6 rows as published.
    pub(crate) fn paper_rows() -> Vec<NatureRow> {
        let mk = |bf, n, act, f| NatureRow {
            busy_fraction: bf,
            simultaneity: n,
            activity: act,
            fanout: f,
        };
        vec![
            mk(0.0088, 3_294.0, 0.033, 2.2),
            mk(0.1113, 938.0, 0.009, 3.7),
            mk(0.1556, 1_517.0, 0.015, 1.5),
            mk(0.1561, 567.0, 0.006, 1.3),
            mk(0.2440, 80.0, 0.001, 2.0),
        ]
    }

    #[test]
    fn reproduces_table8() {
        let w = average_workload(&paper_rows(), 60_000.0);
        // Paper: B=8,106 I=51,894 E=10,367,574 M_inf=21,771,905.
        // The paper rounded the intermediate means (.1351, 1,279, 2.1);
        // we keep full precision, so allow sub-percent slack.
        assert!(
            (w.busy_ticks - 8_106.0).abs() <= 5.0,
            "B = {}",
            w.busy_ticks
        );
        assert!(
            (w.idle_ticks - 51_894.0).abs() <= 5.0,
            "I = {}",
            w.idle_ticks
        );
        assert!(
            (w.events - 10_367_574.0).abs() / 10_367_574.0 < 0.002,
            "E = {}",
            w.events
        );
        assert!(
            (w.messages_inf - 21_771_905.0).abs() / 21_771_905.0 < 0.025,
            "M_inf = {}",
            w.messages_inf
        );
    }

    #[test]
    fn run_length_scales_linearly() {
        let rows = paper_rows();
        let w1 = average_workload(&rows, 60_000.0);
        let w2 = average_workload(&rows, 120_000.0);
        assert!((w2.busy_ticks / w1.busy_ticks - 2.0).abs() < 1e-3);
        assert!((w2.events / w1.events - 2.0).abs() < 1e-3);
        // Ratios are invariant.
        assert!((w2.simultaneity() - w1.simultaneity()).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one circuit")]
    fn empty_rows_rejected() {
        let _ = average_workload(&[], 60_000.0);
    }
}
