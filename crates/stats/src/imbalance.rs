//! The load-imbalance factor `beta`.
//!
//! The paper's Table 3 defines `beta` as "a measure of the degree to
//! which work is unevenly distributed across processors": during each
//! busy tick the most heavily loaded processor performs `beta * N/P`
//! evaluations instead of the ideal `N/P`. `beta = 1` is perfect
//! balance; `beta = P` means one processor does everything.

/// The per-tick maximum-load factor: `max_p(load_p) / (total / P)`.
///
/// Returns 1.0 for an idle tick (no work is perfectly balanced work).
///
/// # Panics
///
/// Panics if `loads` is empty.
#[must_use]
pub fn max_load_factor(loads: &[u64]) -> f64 {
    assert!(!loads.is_empty(), "need at least one processor");
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = *loads.iter().max().expect("non-empty");
    let ideal = total as f64 / loads.len() as f64;
    max as f64 / ideal
}

/// Estimates `beta` from per-busy-tick per-processor evaluation counts,
/// weighting each busy tick by its total work (ticks with more events
/// contribute proportionally to total run time, which is what `beta`
/// scales in the model's Eq. 2).
///
/// Returns 1.0 when there are no busy ticks.
#[must_use]
pub fn beta_from_tick_loads(tick_loads: &[Vec<u64>]) -> f64 {
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for loads in tick_loads {
        let total: u64 = loads.iter().sum();
        if total == 0 {
            continue;
        }
        weighted += max_load_factor(loads) * total as f64;
        weight += total as f64;
    }
    if weight == 0.0 {
        1.0
    } else {
        weighted / weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_balance_is_one() {
        assert!((max_load_factor(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_on_one_processor_is_p() {
        assert!((max_load_factor(&[12, 0, 0, 0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn intermediate_imbalance() {
        // total 8 over 4 procs, max 4: beta = 4 / 2 = 2.
        assert!((max_load_factor(&[4, 2, 1, 1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn idle_tick_counts_as_balanced() {
        assert_eq!(max_load_factor(&[0, 0]), 1.0);
    }

    #[test]
    fn beta_weights_by_work() {
        // Tick 1: 2 events, perfectly balanced. Tick 2: 8 events, all on
        // one of two processors (factor 2). Weighted: (1*2 + 2*8)/10 = 1.8.
        let loads = vec![vec![1, 1], vec![8, 0]];
        assert!((beta_from_tick_loads(&loads) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn beta_of_no_work_is_one() {
        assert_eq!(beta_from_tick_loads(&[]), 1.0);
        assert_eq!(beta_from_tick_loads(&[vec![0, 0]]), 1.0);
    }

    #[test]
    fn beta_bounds() {
        // beta is always in [1, P].
        let loads = vec![vec![3, 1, 0], vec![1, 1, 1], vec![0, 0, 9]];
        let b = beta_from_tick_loads(&loads);
        assert!((1.0..=3.0).contains(&b), "beta={b}");
    }
}
