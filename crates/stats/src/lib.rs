#![forbid(unsafe_code)]

//! Workload characterization for logic-simulation traces.
//!
//! This crate turns raw measurements from the event-driven simulator into
//! the quantities the paper's architecture model consumes:
//!
//! * [`Workload`] — the `(B, I, E, M_inf)` tuple of Table 3/5, with the
//!   linear size-normalization of Table 5 and the derived "nature of
//!   logic simulation" ratios of Table 6 ([`NatureRow`]);
//! * [`average_workload`] — the Table 8 procedure that folds several
//!   circuits into one average workload at a chosen run length;
//! * [`beta_from_tick_loads`] — the load-imbalance factor `beta`;
//! * [`Histogram`] / [`Summary`] — distribution summaries used for the
//!   event-simultaneity and fanout distributions.
//!
//! The crate is deliberately independent of the simulator: it consumes
//! plain numbers, so the paper's *published* data and our *measured*
//! data flow through identical code paths.

pub mod average;
pub mod histogram;
pub mod imbalance;
pub mod phase;
pub mod summary;
pub mod workload;

pub use average::average_workload;
pub use histogram::Histogram;
pub use imbalance::{beta_from_tick_loads, max_load_factor};
pub use phase::PhaseSummary;
pub use summary::Summary;
pub use workload::{NatureRow, ParallelWorkload, WorkerLoad, Workload};
