//! Five-number summaries of floating-point samples.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (nearest rank).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` for an empty sample.
    #[must_use]
    pub fn of(sample: &[f64]) -> Option<Summary> {
        if sample.is_empty() {
            return None;
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: sorted[n / 2],
            max: sorted[n - 1],
        })
    }

    /// Coefficient of variation (`std_dev / mean`), 0 for zero mean.
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} med={:.3} max={:.3}",
            self.n, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 3.0); // nearest-rank at index n/2
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert!((s.cv() - s.std_dev / 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = Summary::of(&[7.0; 10]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, s.max);
    }
}
