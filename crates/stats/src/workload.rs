//! The `(B, I, E, M_inf)` workload tuple and its derived ratios.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simulation workload in the paper's input variables (Table 3):
/// busy ticks `B`, idle ticks `I`, event count `E`, and message volume
/// `M_inf` (messages in the limit of one component per processor).
///
/// Counts are `f64` because the paper's Table 5 numbers are linear
/// rescalings of measured data (e.g. `X = 27.2` for the priority queue)
/// and need not be integral.
///
/// ```
/// use logicsim_stats::Workload;
/// let w = Workload::new(8_106.0, 51_894.0, 10_367_574.0, 21_771_905.0);
/// assert!((w.simultaneity() - 1_279.0).abs() < 1.0);   // N = E/B
/// assert!((w.average_fanout() - 2.1).abs() < 0.01);    // F = M/E
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Busy ticks: simulation time points with at least one event.
    pub busy_ticks: f64,
    /// Idle ticks: time points with no events (still cost a START/DONE
    /// cycle on the modeled machine).
    pub idle_ticks: f64,
    /// Event/function evaluations `E`.
    pub events: f64,
    /// Message volume `M_inf`.
    pub messages_inf: f64,
}

impl Workload {
    /// Creates a workload from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if any count is negative or not finite.
    #[must_use]
    pub fn new(busy_ticks: f64, idle_ticks: f64, events: f64, messages_inf: f64) -> Workload {
        for (name, v) in [
            ("busy_ticks", busy_ticks),
            ("idle_ticks", idle_ticks),
            ("events", events),
            ("messages_inf", messages_inf),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and >= 0, got {v}"
            );
        }
        Workload {
            busy_ticks,
            idle_ticks,
            events,
            messages_inf,
        }
    }

    /// Total simulated ticks `B + I`.
    #[must_use]
    pub fn total_ticks(&self) -> f64 {
        self.busy_ticks + self.idle_ticks
    }

    /// Fraction of busy time points `B/(B+I)` (Table 6).
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        let t = self.total_ticks();
        if t == 0.0 {
            0.0
        } else {
            self.busy_ticks / t
        }
    }

    /// Average event simultaneity `N = E/B`, the maximum useful degree
    /// of processor parallelism (Table 6 "Sim. Ev.").
    #[must_use]
    pub fn simultaneity(&self) -> f64 {
        if self.busy_ticks == 0.0 {
            0.0
        } else {
            self.events / self.busy_ticks
        }
    }

    /// Average fanout `F = M_inf / E` (Table 6 "Fan Out").
    #[must_use]
    pub fn average_fanout(&self) -> f64 {
        if self.events == 0.0 {
            0.0
        } else {
            self.messages_inf / self.events
        }
    }

    /// The paper's Table 5 normalization: linearly scale event and
    /// message counts to represent a circuit of `target_components`
    /// components, given the measured circuit had `measured_components`.
    ///
    /// Per the paper, only `E` and `M_inf` scale (event density per tick
    /// grows with circuit size); the tick counts `B`, `I` describe the
    /// same simulated interval.
    ///
    /// # Panics
    ///
    /// Panics if `measured_components == 0`.
    #[must_use]
    pub fn normalized_to(&self, measured_components: usize, target_components: usize) -> Workload {
        assert!(measured_components > 0, "component count must be positive");
        let x = target_components as f64 / measured_components as f64;
        Workload {
            busy_ticks: self.busy_ticks,
            idle_ticks: self.idle_ticks,
            events: self.events * x,
            messages_inf: self.messages_inf * x,
        }
    }

    /// The scale factor `X = target / measured` (Table 5 first column).
    #[must_use]
    pub fn scale_factor(measured_components: usize, target_components: usize) -> f64 {
        target_components as f64 / measured_components as f64
    }

    /// Derived Table 6 row for a circuit with `components` components.
    #[must_use]
    pub fn nature(&self, components: usize) -> NatureRow {
        NatureRow {
            busy_fraction: self.busy_fraction(),
            simultaneity: self.simultaneity(),
            activity: if components == 0 {
                0.0
            } else {
                self.simultaneity() / components as f64
            },
            fanout: self.average_fanout(),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "B={:.0} I={:.0} E={:.3e} M_inf={:.3e} (N={:.1}, F={:.2})",
            self.busy_ticks,
            self.idle_ticks,
            self.events,
            self.messages_inf,
            self.simultaneity(),
            self.average_fanout()
        )
    }
}

/// Per-evaluator counters from an actual parallel run: how one worker
/// of a `P`-processor execution spent the `B + I` global ticks.
///
/// `busy_ticks + idle_ticks` equals the global tick count for every
/// worker (the barrier forces all of them through every tick), so the
/// busy fractions directly expose load imbalance — the quantity the
/// paper's `beta` (Section 5) summarizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerLoad {
    /// Global ticks in which this worker applied, evaluated, or resolved
    /// at least one item.
    pub busy_ticks: u64,
    /// Global ticks in which this worker had no work (it still paid the
    /// barrier synchronization, the machine's START/DONE handshake).
    pub idle_ticks: u64,
    /// Component function evaluations performed by this worker.
    pub evaluations: u64,
    /// Switch-group resolutions performed by this worker.
    pub group_resolutions: u64,
    /// Messages this worker's events sent to components on *other*
    /// partitions (its contribution to `M_P`).
    pub messages_sent: u64,
}

impl WorkerLoad {
    /// Fraction of global ticks this worker was busy.
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        let t = self.busy_ticks + self.idle_ticks;
        if t == 0 {
            0.0
        } else {
            self.busy_ticks as f64 / t as f64
        }
    }
}

/// Aggregate instrumentation of one parallel run: per-worker loads plus
/// the measured cross-partition message volume, ready to compare
/// against Eq. 6's random-partitioning prediction
/// `M_P = M_inf (1 - 1/P)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelWorkload {
    /// One entry per evaluator worker (the master/host processor is
    /// excluded, as in the paper's machine where the host only
    /// orchestrates).
    pub workers: Vec<WorkerLoad>,
    /// Messages whose source and destination components sit on
    /// *different* partitions (`M_P` measured).
    pub messages_crossing: u64,
    /// Messages between two *distinct assigned* components regardless
    /// of partition (the component-to-component `M_inf`, the
    /// denominator of Eq. 6; excludes traffic sourced at unpartitioned
    /// infrastructure such as primary inputs, and self-messages —
    /// feedback into the producing component — which stay
    /// processor-local under every assignment).
    pub messages_component: u64,
}

impl ParallelWorkload {
    /// Eq. 6 prediction for `P` random partitions:
    /// `M_P = M_inf (1 - 1/P)` over the component-to-component volume.
    #[must_use]
    pub fn predicted_crossing(&self) -> f64 {
        let p = self.workers.len() as f64;
        if p == 0.0 {
            0.0
        } else {
            self.messages_component as f64 * (1.0 - 1.0 / p)
        }
    }

    /// Measured `M_P / M_inf` ratio; Eq. 6 predicts `1 - 1/P` for a
    /// random partition.
    #[must_use]
    pub fn crossing_ratio(&self) -> f64 {
        if self.messages_component == 0 {
            0.0
        } else {
            self.messages_crossing as f64 / self.messages_component as f64
        }
    }

    /// Total evaluations across workers.
    #[must_use]
    pub fn total_evaluations(&self) -> u64 {
        self.workers.iter().map(|w| w.evaluations).sum()
    }
}

/// One row of the paper's Table 6: "The Nature of Logic Simulation".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NatureRow {
    /// `B/(B+I)` — fraction of time points with scheduled events.
    pub busy_fraction: f64,
    /// `N = E/B` — average simultaneous events per busy tick.
    pub simultaneity: f64,
    /// `N / components` — average fraction of the circuit active per
    /// busy tick.
    pub activity: f64,
    /// `F = M_inf/E` — average fanout.
    pub fanout: f64,
}

impl fmt::Display for NatureRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "B/(B+I)={:.4} N={:.0} activity={:.4} F={:.1}",
            self.busy_fraction, self.simultaneity, self.activity, self.fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's priority-queue row (Table 5): measured E=592,206 on a
    /// 3,680-component circuit scaled by X=27.2 to 16.1e6 events.
    #[test]
    fn table5_priority_queue_scaling() {
        let measured = Workload::new(10_620.0, 57_631.0, 592_206.0, 592_206.0 * 1.5);
        let scaled = measured.normalized_to(3_680, 100_000);
        let x = Workload::scale_factor(3_680, 100_000);
        assert!((x - 27.17).abs() < 0.01, "X={x}");
        assert!(
            (scaled.events / 1e6 - 16.1).abs() < 0.1,
            "E={}",
            scaled.events
        );
        assert_eq!(scaled.busy_ticks, 10_620.0);
    }

    #[test]
    fn derived_ratios_match_table6_priority_queue() {
        // Table 5 row: B=10,620 I=57,631 E=16.1e6 M=24.5e6.
        let w = Workload::new(10_620.0, 57_631.0, 16.1e6, 24.5e6);
        assert!((w.busy_fraction() - 0.1556).abs() < 0.001);
        assert!((w.simultaneity() - 1_516.0).abs() < 5.0);
        assert!((w.average_fanout() - 1.52).abs() < 0.02);
        let n = w.nature(100_000);
        assert!((n.activity - 0.015).abs() < 0.001);
    }

    #[test]
    fn zero_guards() {
        let w = Workload::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(w.busy_fraction(), 0.0);
        assert_eq!(w.simultaneity(), 0.0);
        assert_eq!(w.average_fanout(), 0.0);
        assert_eq!(w.nature(0).activity, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_counts_rejected() {
        let _ = Workload::new(-1.0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let w = Workload::new(10.0, 90.0, 100.0, 210.0);
        let s = w.to_string();
        assert!(s.contains("N=10.0") && s.contains("F=2.10"), "{s}");
    }
}
