//! Integer-valued histograms for event-count distributions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse histogram over `u64` values (e.g. events per busy tick).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `count` observations of `value` in one update.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += count;
        self.total += count;
    }

    /// Folds every observation of `other` into `self`. Merging the
    /// per-worker histograms of a parallel run yields exactly the
    /// histogram a single observer of the combined stream would have
    /// built, since a histogram is order-insensitive.
    pub fn merge(&mut self, other: &Histogram) {
        for (&v, &c) in &other.counts {
            self.record_n(v, c);
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Returns `true` when no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self
            .counts
            .iter()
            .map(|(&v, &c)| u128::from(v) * u128::from(c))
            .sum();
        sum as f64 / self.total as f64
    }

    /// Population variance (0 when empty).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let m = self.mean();
        self.counts
            .iter()
            .map(|(&v, &c)| (v as f64 - m).powi(2) * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// Smallest observed value.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest observed value.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// The `q`-quantile (0 <= q <= 1) by the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen >= rank {
                return Some(v);
            }
        }
        self.max()
    }

    /// Iterates `(value, count)` in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Histogram {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let h: Histogram = [1u64, 2, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(h.len(), 6);
        assert!((h.mean() - 14.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(3));
        assert!(h.variance() > 0.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let h: Histogram = (1..=100u64).collect();
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile() {
        let h: Histogram = [1u64].into_iter().collect();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_equals_single_stream() {
        let a: Histogram = [1u64, 2, 2, 9].into_iter().collect();
        let b: Histogram = [2u64, 9, 9, 40].into_iter().collect();
        let mut merged = a.clone();
        merged.merge(&b);
        let reference: Histogram = [1u64, 2, 2, 9, 2, 9, 9, 40].into_iter().collect();
        assert_eq!(merged, reference);
        // Merging an empty histogram is the identity.
        merged.merge(&Histogram::new());
        assert_eq!(merged, reference);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(7, 0);
        assert!(h.is_empty());
        h.record_n(7, 3);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn extend_accumulates() {
        let mut h = Histogram::new();
        h.extend([5u64, 5, 5]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(5, 3)]);
    }
}
