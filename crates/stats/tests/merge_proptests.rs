//! Property tests for [`Histogram::merge`]: splitting one event stream
//! across any number of per-worker histograms and merging them back
//! must reproduce the single-stream reference exactly, in any merge
//! order. This is the algebraic fact the parallel engine's phase
//! aggregation relies on.

use logicsim_stats::{Histogram, PhaseSummary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merged_worker_histograms_equal_single_stream(
        stream in proptest::collection::vec(0u64..10_000, 0..400),
        workers in 1usize..9,
        order_seed in any::<u64>(),
    ) {
        // Single observer of the whole stream.
        let reference: Histogram = stream.iter().copied().collect();

        // Deal the stream round-robin across `workers` lanes.
        let mut lanes = vec![Histogram::new(); workers];
        for (i, &v) in stream.iter().enumerate() {
            lanes[i % workers].record(v);
        }

        // Merge in a seed-dependent order: merge must be commutative.
        let mut idx: Vec<usize> = (0..workers).collect();
        let mut s = order_seed;
        for i in (1..idx.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            idx.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut merged = Histogram::new();
        for &w in &idx {
            merged.merge(&lanes[w]);
        }

        prop_assert_eq!(&merged, &reference);
        prop_assert_eq!(
            PhaseSummary::from_histogram(&merged),
            PhaseSummary::from_histogram(&reference)
        );
        // Totals are preserved exactly.
        prop_assert_eq!(merged.len(), stream.len() as u64);
    }

    #[test]
    fn record_n_equals_repeated_record(
        pairs in proptest::collection::vec((0u64..1000, 0u64..20), 0..50),
    ) {
        let mut bulk = Histogram::new();
        let mut unit = Histogram::new();
        for &(v, c) in &pairs {
            bulk.record_n(v, c);
            for _ in 0..c {
                unit.record(v);
            }
        }
        prop_assert_eq!(bulk, unit);
    }
}
