//! Property tests for the `obs` layer's data structures: the
//! fixed-capacity [`PhaseRing`] and the per-lane aggregation that the
//! parallel engine's report path relies on.
//!
//! * wrap-around keeps exactly the newest `capacity` samples, drops the
//!   oldest, and never panics, for any push count and capacity;
//! * per-worker histograms merged in any grouping equal the histogram a
//!   single observer of the combined stream would have built;
//! * [`LaneReport::merge`] adds totals exactly and keeps samples sorted
//!   by start time.

#![cfg(feature = "obs")]

use logicsim_sim::obs::{LaneReport, ObsReport, PhaseRing, PhaseSample, PhaseTotal};
use logicsim_sim::{Phase, NUM_PHASES};
use logicsim_stats::Histogram;
use proptest::prelude::*;

fn phase_of(code: u8) -> Phase {
    Phase::ALL[code as usize % NUM_PHASES]
}

fn sample(code: u8, start_ns: u64, dur_ns: u64) -> PhaseSample {
    PhaseSample {
        phase: phase_of(code),
        tick: u64::from(code),
        start_ns,
        dur_ns,
        items: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ring_keeps_newest_capacity_samples(
        durs in proptest::collection::vec(0u64..1_000_000, 0..200),
        capacity in 0usize..40,
    ) {
        let mut ring = PhaseRing::with_capacity(capacity);
        let cap = capacity.max(1); // constructor clamps to >= 1
        for (i, &d) in durs.iter().enumerate() {
            ring.push(sample(0, i as u64, d));
        }
        prop_assert_eq!(ring.capacity(), cap);
        prop_assert_eq!(ring.len(), durs.len().min(cap));
        prop_assert_eq!(ring.dropped(), durs.len().saturating_sub(cap) as u64);
        // Exactly the newest samples survive, oldest first.
        let kept: Vec<u64> = ring.iter_oldest_first().map(|s| s.dur_ns).collect();
        let expect: Vec<u64> = durs
            .iter()
            .copied()
            .skip(durs.len().saturating_sub(cap))
            .collect();
        prop_assert_eq!(kept, expect);
        ring.clear();
        prop_assert!(ring.is_empty());
        prop_assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn merged_lane_histograms_equal_single_stream(
        stream in proptest::collection::vec((0u8..NUM_PHASES as u8, 0u64..100_000), 0..300),
        workers in 1usize..9,
    ) {
        // One observer of the whole stream.
        let single = ObsReport {
            lanes: vec![LaneReport {
                samples: stream
                    .iter()
                    .enumerate()
                    .map(|(i, &(p, d))| sample(p, i as u64, d))
                    .collect(),
                dropped: 0,
                totals: Default::default(),
            }],
            lane_names: vec!["single".to_string()],
        };
        // The same stream dealt round-robin across per-worker lanes.
        let mut lanes = vec![Vec::new(); workers];
        for (i, &(p, d)) in stream.iter().enumerate() {
            lanes[i % workers].push(sample(p, i as u64, d));
        }
        let split = ObsReport {
            lanes: lanes
                .into_iter()
                .map(|samples| LaneReport { samples, dropped: 0, totals: Default::default() })
                .collect(),
            lane_names: (0..workers).map(|w| format!("worker {w}")).collect(),
        };
        for phase in Phase::ALL {
            prop_assert_eq!(split.histogram(phase), single.histogram(phase));
            prop_assert_eq!(split.summary(phase), single.summary(phase));
        }
    }

    #[test]
    fn lane_merge_adds_totals_and_sorts_samples(
        a in proptest::collection::vec((0u8..NUM_PHASES as u8, 0u64..10_000, 0u64..500), 0..60),
        b in proptest::collection::vec((0u8..NUM_PHASES as u8, 0u64..10_000, 0u64..500), 0..60),
    ) {
        let build = |spec: &[(u8, u64, u64)]| -> LaneReport {
            let mut totals = [PhaseTotal::default(); NUM_PHASES];
            let mut samples = Vec::new();
            for &(p, start, d) in spec {
                let s = sample(p, start, d);
                totals[s.phase.idx()].count += 1;
                totals[s.phase.idx()].total_ns += d;
                totals[s.phase.idx()].items += s.items;
                samples.push(s);
            }
            samples.sort_by_key(|s| s.start_ns);
            LaneReport { samples, dropped: spec.len() as u64, totals }
        };
        let la = build(&a);
        let lb = build(&b);
        let mut merged = la.clone();
        merged.merge(lb.clone());

        prop_assert_eq!(merged.samples.len(), la.samples.len() + lb.samples.len());
        prop_assert!(merged.samples.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        prop_assert_eq!(merged.dropped, la.dropped + lb.dropped);
        for i in 0..NUM_PHASES {
            prop_assert_eq!(merged.totals[i].count, la.totals[i].count + lb.totals[i].count);
            prop_assert_eq!(
                merged.totals[i].total_ns,
                la.totals[i].total_ns + lb.totals[i].total_ns
            );
            prop_assert_eq!(merged.totals[i].items, la.totals[i].items + lb.totals[i].items);
        }
        // Totals feed executed_ticks/parameter derivation; cross-check
        // against the histogram path for one phase.
        let rep = ObsReport {
            lanes: vec![merged],
            lane_names: vec!["merged".to_string()],
        };
        for phase in Phase::ALL {
            let h: Histogram = rep.histogram(phase);
            prop_assert_eq!(h.len(), rep.total(phase).count);
        }
    }
}
