//! Differential property tests for the data-oriented kernel.
//!
//! [`RefSim`] is an intentionally naive re-implementation of the
//! engine's pre-refactor semantics for gate-level circuits: `BTreeMap`
//! event queue keyed by tick, `BTreeMap`/`BTreeSet` per-tick worklists,
//! fresh allocations everywhere. It shares no code with the optimized
//! hot path (CSR arrays, epoch-stamped worklists), so any divergence in
//! iteration order, inertial cancellation, or counter accounting between
//! the two shows up as a mismatch in per-tick event counts, workload
//! counters, or quiescent net values on random DAGs under random input
//! flip schedules.

use logicsim_netlist::{
    CompId, Component, Delay, GateKind, Level, NetId, Netlist, NetlistBuilder, Signal, SwitchKind,
};
use logicsim_partition::{FiducciaMattheysesPartitioner, Partitioner};
use logicsim_sim::{ParSimulator, SimConfig, Simulator};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Deals gates and switches round-robin over `parts` partitions
/// (infrastructure components stay unassigned), guaranteeing that
/// multi-switch channel groups straddle partition boundaries.
fn round_robin_assignment(netlist: &Netlist, parts: u32) -> Vec<u32> {
    let mut next = 0u32;
    netlist
        .components()
        .iter()
        .map(|c| {
            if matches!(c, Component::Gate { .. } | Component::Switch { .. }) {
                let p = next % parts;
                next += 1;
                p
            } else {
                u32::MAX
            }
        })
        .collect()
}

/// Reference event-driven simulator for gate-only netlists, written the
/// way the engine looked before the data-oriented rewrite.
struct RefSim<'a> {
    netlist: &'a Netlist,
    /// tick -> scheduled `(comp, drive, seq)` in scheduling order.
    queue: BTreeMap<u64, Vec<(CompId, Signal, u64)>>,
    now: u64,
    net_values: Vec<Signal>,
    comp_drive: Vec<Signal>,
    last_scheduled: Vec<Signal>,
    comp_out: Vec<Option<NetId>>,
    input_comp: BTreeMap<NetId, CompId>,
    pending_seq: Vec<Option<u64>>,
    seq_counter: u64,
    /// `(tick, events)` per busy tick.
    per_tick: Vec<(u64, u64)>,
    busy_ticks: u64,
    idle_ticks: u64,
    events: u64,
    messages_inf: u64,
}

impl<'a> RefSim<'a> {
    fn new(netlist: &'a Netlist) -> RefSim<'a> {
        let nc = netlist.num_components();
        let mut comp_out = vec![None; nc];
        let mut input_comp = BTreeMap::new();
        for (id, comp) in netlist.iter() {
            match comp {
                Component::Gate { output, .. } => comp_out[id.index()] = Some(*output),
                Component::Input { net } => {
                    comp_out[id.index()] = Some(*net);
                    input_comp.insert(*net, id);
                }
                _ => panic!("RefSim handles gates and inputs only"),
            }
        }
        let mut sim = RefSim {
            netlist,
            queue: BTreeMap::new(),
            now: 0,
            net_values: vec![Signal::FLOATING; netlist.num_nets()],
            comp_drive: vec![Signal::FLOATING; nc],
            last_scheduled: vec![Signal::FLOATING; nc],
            comp_out,
            input_comp,
            pending_seq: vec![None; nc],
            seq_counter: 0,
            per_tick: Vec::new(),
            busy_ticks: 0,
            idle_ticks: 0,
            events: 0,
            messages_inf: 0,
        };
        sim.initialize();
        sim
    }

    /// Power-up relaxation, mirroring `Simulator::initialize` (128
    /// default rounds, no events counted).
    fn initialize(&mut self) {
        for round in 0..128 {
            let mut changed = false;
            for net_idx in 0..self.netlist.num_nets() {
                let v = self.external_drive(NetId(net_idx as u32));
                if self.net_values[net_idx] != v {
                    self.net_values[net_idx] = v;
                    changed = true;
                }
            }
            for (id, comp) in self.netlist.iter() {
                if let Component::Gate { kind, inputs, .. } = comp {
                    let levels: Vec<Level> = inputs
                        .iter()
                        .map(|&n| self.net_values[n.index()].level)
                        .collect();
                    let out = kind.evaluate(&levels);
                    if self.comp_drive[id.index()] != out {
                        self.comp_drive[id.index()] = out;
                        self.last_scheduled[id.index()] = out;
                        changed = true;
                    }
                }
            }
            if !changed && round > 0 {
                break;
            }
        }
    }

    fn external_drive(&self, net: NetId) -> Signal {
        let mut v = Signal::FLOATING;
        for &d in self.netlist.drivers(net) {
            v = v.resolve(self.comp_drive[d.index()]);
        }
        v
    }

    fn set_input(&mut self, net: NetId, level: Level) {
        let comp = self.input_comp[&net];
        let now = self.now;
        self.schedule_change(now, comp, Signal::strong(level));
    }

    fn schedule_change(&mut self, tick: u64, comp: CompId, drive: Signal) {
        if self.last_scheduled[comp.index()] == drive {
            return;
        }
        self.last_scheduled[comp.index()] = drive;
        if drive == self.comp_drive[comp.index()] {
            self.pending_seq[comp.index()] = None;
            return;
        }
        self.seq_counter += 1;
        let seq = self.seq_counter;
        self.pending_seq[comp.index()] = Some(seq);
        self.queue.entry(tick).or_default().push((comp, drive, seq));
    }

    fn step(&mut self) {
        let tick = self.now;
        let changes = self.queue.remove(&tick).unwrap_or_default();
        let mut affected: BTreeMap<NetId, CompId> = BTreeMap::new();
        for (comp, drive, seq) in changes {
            if self.pending_seq[comp.index()] != Some(seq) {
                continue;
            }
            self.pending_seq[comp.index()] = None;
            if self.comp_drive[comp.index()] == drive {
                continue;
            }
            self.comp_drive[comp.index()] = drive;
            if let Some(net) = self.comp_out[comp.index()] {
                affected.insert(net, comp);
            }
        }

        let mut changed_nets: Vec<NetId> = Vec::new();
        for &net in affected.keys() {
            let v = self.external_drive(net);
            if self.net_values[net.index()] != v {
                self.net_values[net.index()] = v;
                changed_nets.push(net);
            }
        }

        let mut events_this_tick = 0u64;
        if !changed_nets.is_empty() {
            let mut to_eval: BTreeSet<CompId> = BTreeSet::new();
            for &net in &changed_nets {
                self.events += 1;
                events_this_tick += 1;
                let fanout = self.netlist.fanout(net);
                self.messages_inf += fanout.len() as u64;
                to_eval.extend(fanout.iter().copied());
            }
            for comp in to_eval {
                if let Component::Gate {
                    kind,
                    inputs,
                    delay,
                    ..
                } = self.netlist.component(comp)
                {
                    let levels: Vec<Level> = inputs
                        .iter()
                        .map(|&n| self.net_values[n.index()].level)
                        .collect();
                    let out = kind.evaluate(&levels);
                    let d = u64::from(delay.for_transition(out.level));
                    self.schedule_change(tick + d, comp, out);
                }
            }
        }

        if events_this_tick > 0 {
            self.busy_ticks += 1;
            self.per_tick.push((tick, events_this_tick));
        } else {
            self.idle_ticks += 1;
        }
        self.now += 1;
    }
}

/// Random combinational DAG over four inputs (same shape as the
/// proptests suite uses).
fn build_random_dag(ops: &[(u8, usize, usize)]) -> Netlist {
    let mut b = NetlistBuilder::new("dag");
    let mut nets: Vec<NetId> = (0..4).map(|i| b.input(format!("in{i}"))).collect();
    for &(kind_sel, x, y) in ops {
        let kind = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ][kind_sel as usize % 8];
        let a = x % nets.len();
        let c = y % nets.len();
        let out = b.fresh("w");
        let inputs = if matches!(kind, GateKind::Not | GateKind::Buf) {
            vec![nets[a]]
        } else {
            vec![nets[a], nets[c]]
        };
        b.gate(kind, &inputs, out, Delay::uniform(1 + (x as u32 % 3)));
        nets.push(out);
    }
    b.finish().expect("valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimized engine and the BTree-based reference implementation
    /// agree on per-tick event counts, workload counters, and quiescent
    /// net values under random input flip schedules.
    #[test]
    fn optimized_engine_matches_reference_semantics(
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..40),
        flips in proptest::collection::vec((0usize..4, any::<bool>()), 1..16),
    ) {
        let netlist = build_random_dag(&ops);
        let mut sim = Simulator::with_config(&netlist, SimConfig {
            collect_trace: true,
            ..SimConfig::default()
        }).expect("pre-flight");
        let mut reference = RefSim::new(&netlist);

        for (chunk, &(which, up)) in flips.iter().enumerate() {
            let net = netlist.find_net(&format!("in{which}")).expect("input");
            let level = Level::from_bool(up);
            sim.set_input(net, level);
            reference.set_input(net, level);
            let until = (chunk as u64 + 1) * 7;
            while sim.now() < until {
                sim.step();
                reference.step();
            }
        }
        // Tail: run both to the same tick, long enough to quiesce
        // (delays are <= 3 and the DAG has <= 40 levels).
        let end = sim.now() + 200;
        while sim.now() < end {
            sim.step();
            reference.step();
        }
        prop_assert!(sim.counters().events == 0 || !reference.per_tick.is_empty());

        // Workload counters.
        let c = sim.counters();
        prop_assert_eq!(c.busy_ticks, reference.busy_ticks);
        prop_assert_eq!(c.idle_ticks, reference.idle_ticks);
        prop_assert_eq!(c.events, reference.events);
        prop_assert_eq!(c.messages_inf, reference.messages_inf);

        // Per-tick event counts (busy ticks in order).
        let sim_ticks: Vec<(u64, u64)> = sim
            .trace()
            .ticks
            .iter()
            .map(|t| (t.tick, t.events.len() as u64))
            .collect();
        prop_assert_eq!(sim_ticks, reference.per_tick.clone());

        // Quiescent values on every net.
        for i in 0..netlist.num_nets() {
            let net = NetId(i as u32);
            prop_assert_eq!(
                sim.signal(net),
                reference.net_values[i],
                "net {} disagrees", netlist.net_name(net)
            );
        }

        // The parallel engine under round-robin partitions must replay
        // the identical schedule: same counters, same trace (every
        // tick, every event, in order), same quiescent values.
        for workers in [2usize, 3] {
            let assignment = round_robin_assignment(&netlist, workers as u32);
            let mut par = ParSimulator::with_config(&netlist, &assignment, workers, SimConfig {
                collect_trace: true,
                ..SimConfig::default()
            }).expect("pre-flight");
            for (chunk, &(which, up)) in flips.iter().enumerate() {
                let net = netlist.find_net(&format!("in{which}")).expect("input");
                par.set_input(net, Level::from_bool(up));
                par.run_until((chunk as u64 + 1) * 7);
            }
            par.run_until(end);
            prop_assert_eq!(par.counters(), sim.counters(), "P={} counters", workers);
            prop_assert_eq!(par.trace(), sim.trace(), "P={} trace", workers);
            for i in 0..netlist.num_nets() {
                let net = NetId(i as u32);
                prop_assert_eq!(par.signal(net), sim.signal(net), "P={} net {}", workers, i);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The parallel engine under real Fiduccia–Mattheyses partitions —
    /// data-driven min-cut assignments rather than the synthetic
    /// round-robin deal above — still replays the serial schedule
    /// exactly at P in {2, 3}: same counters, same trace, same
    /// quiescent values, for arbitrary DAGs, flip schedules, and FM
    /// refinement seeds.
    #[test]
    fn fm_partitioned_engine_matches_serial(
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 4..40),
        flips in proptest::collection::vec((0usize..4, any::<bool>()), 1..12),
        fm_seed in any::<u64>(),
    ) {
        let netlist = build_random_dag(&ops);
        let cfg = || SimConfig {
            collect_trace: true,
            ..SimConfig::default()
        };
        let mut sim = Simulator::with_config(&netlist, cfg()).expect("pre-flight");
        let drive = |sim: &mut dyn FnMut(NetId, Level, u64)| {
            for (chunk, &(which, up)) in flips.iter().enumerate() {
                let net = netlist.find_net(&format!("in{which}")).expect("input");
                sim(net, Level::from_bool(up), (chunk as u64 + 1) * 7);
            }
        };
        drive(&mut |net, level, until| {
            sim.set_input(net, level);
            sim.run_until(until);
        });
        let end = sim.now() + 200;
        sim.run_until(end);

        for workers in [2usize, 3] {
            let part = FiducciaMattheysesPartitioner::new(fm_seed)
                .partition(&netlist, workers as u32);
            let mut par = ParSimulator::with_config(&netlist, part.as_slice(), workers, cfg())
                .expect("pre-flight");
            drive(&mut |net, level, until| {
                par.set_input(net, level);
                par.run_until(until);
            });
            par.run_until(end);
            prop_assert_eq!(par.counters(), sim.counters(), "FM P={} counters", workers);
            prop_assert_eq!(par.trace(), sim.trace(), "FM P={} trace", workers);
            for i in 0..netlist.num_nets() {
                let net = NetId(i as u32);
                prop_assert_eq!(par.signal(net), sim.signal(net), "FM P={} net {}", workers, i);
            }
        }
    }
}

/// One step of the straddling-bus input schedule (shared between the
/// round-robin and FM switch-cluster tests below).
enum Op {
    Set(NetId, Level),
    Run(u64),
}

/// A bus of pass-transistor multiplexers: every mux is a nontrivial
/// switch group (two switches coupled through a shared channel net),
/// exercising the parallel engine's coupled group-resolution path.
fn pt_bus() -> Netlist {
    let mut b = NetlistBuilder::new("pt-bus");
    let sel = b.input("sel");
    let sel_n = b.net("sel_n");
    b.gate(GateKind::Not, &[sel], sel_n, Delay::uniform(1));
    let mut outs = Vec::new();
    for i in 0..6 {
        let a = b.input(format!("a{i}"));
        let c = b.input(format!("b{i}"));
        let z = b.net(format!("z{i}"));
        b.switch(SwitchKind::Nmos, sel, a, z);
        b.switch(SwitchKind::Nmos, sel_n, c, z);
        let y = b.net(format!("y{i}"));
        b.gate(GateKind::Not, &[z], y, Delay::uniform(1 + (i as u32 % 2)));
        b.mark_output(y);
        outs.push(y);
    }
    b.finish().expect("valid")
}

/// The straddling-bus schedule: flips the select both ways and changes
/// the data lines while the opposite leg is conducting.
fn pt_bus_schedule(netlist: &Netlist) -> Vec<Op> {
    let net = |s: String| netlist.find_net(&s).expect("net");
    let mut schedule: Vec<Op> = Vec::new();
    for i in 0..6u32 {
        schedule.push(Op::Set(net(format!("a{i}")), Level::from_bool(i % 2 == 0)));
        schedule.push(Op::Set(net(format!("b{i}")), Level::from_bool(i % 2 == 1)));
    }
    schedule.push(Op::Set(net("sel".to_string()), Level::One));
    schedule.push(Op::Run(8));
    schedule.push(Op::Set(net("sel".to_string()), Level::Zero));
    for i in 0..6u32 {
        schedule.push(Op::Set(net(format!("a{i}")), Level::from_bool(i % 2 == 1)));
    }
    schedule.push(Op::Run(20));
    schedule.push(Op::Set(net("sel".to_string()), Level::One));
    schedule.push(Op::Run(32));
    schedule
}

/// Asserts the parallel run under `assignment` matches `serial` on
/// counters, full trace, and every net, and that coupled switch groups
/// were actually resolved along the way.
fn check_par_against_serial(
    netlist: &Netlist,
    assignment: &[u32],
    workers: usize,
    schedule: &[Op],
    serial: &Simulator,
    label: &str,
) {
    let cfg = SimConfig {
        collect_trace: true,
        ..SimConfig::default()
    };
    let mut par = ParSimulator::with_config(netlist, assignment, workers, cfg).expect("pre-flight");
    for op in schedule {
        match *op {
            Op::Set(net, level) => par.set_input(net, level),
            Op::Run(until) => par.run_until(until),
        }
    }
    assert_eq!(
        par.counters(),
        serial.counters(),
        "{label} P={workers} counters"
    );
    assert_eq!(par.trace(), serial.trace(), "{label} P={workers} trace");
    for i in 0..netlist.num_nets() {
        let net = NetId(i as u32);
        assert_eq!(
            par.signal(net),
            serial.signal(net),
            "{label} P={workers} net {}",
            netlist.net_name(net)
        );
    }
    assert!(
        par.counters().group_resolutions > 0,
        "{label} P={workers}: groups exercised"
    );
}

/// Runs the straddling-bus schedule serially (the reference run both
/// partition-strategy tests compare against).
fn pt_bus_serial<'a>(netlist: &'a Netlist, schedule: &[Op]) -> Simulator<'a> {
    let mut serial = Simulator::with_config(
        netlist,
        SimConfig {
            collect_trace: true,
            ..SimConfig::default()
        },
    )
    .expect("pre-flight");
    for op in schedule {
        match *op {
            Op::Set(net, level) => serial.set_input(net, level),
            Op::Run(until) => serial.run_until(until),
        }
    }
    serial
}

/// Every mux's two switches land on *different* partitions under
/// round-robin assignment, exercising the parallel engine's coupled
/// group-resolution path against the serial engine.
#[test]
fn parallel_engine_matches_serial_on_straddling_switch_groups() {
    let netlist = pt_bus();
    let schedule = pt_bus_schedule(&netlist);
    let serial = pt_bus_serial(&netlist, &schedule);
    for workers in [2usize, 3] {
        let assignment = round_robin_assignment(&netlist, workers as u32);
        check_par_against_serial(&netlist, &assignment, workers, &schedule, &serial, "rr");
    }
}

/// True when `assignment` places two switches that share a channel net
/// — members of one switch coupling cluster — on different partitions.
fn splits_switch_cluster(netlist: &Netlist, assignment: &[u32]) -> bool {
    let mut parts_by_net: BTreeMap<NetId, Vec<u32>> = BTreeMap::new();
    for (id, comp) in netlist.iter() {
        if let Component::Switch { a, b, .. } = comp {
            for net in [*a, *b] {
                parts_by_net
                    .entry(net)
                    .or_default()
                    .push(assignment[id.index()]);
            }
        }
    }
    parts_by_net
        .values()
        .any(|parts| parts.iter().any(|&p| p != parts[0]))
}

/// The same straddling-bus check, but with the partition produced by
/// the Fiduccia–Mattheyses refinement rather than a synthetic deal:
/// for each P, scan FM seeds until a refinement pass *moves* one
/// switch of a coupling cluster across the cut, then require the
/// parallel engine to still replay the serial schedule exactly on that
/// partition.
#[test]
fn fm_partition_splitting_switch_cluster_matches_serial() {
    let netlist = pt_bus();
    let schedule = pt_bus_schedule(&netlist);
    let serial = pt_bus_serial(&netlist, &schedule);
    for workers in [2usize, 3] {
        let split_seed = (0..64u64).find(|&seed| {
            let part = FiducciaMattheysesPartitioner::new(seed).partition(&netlist, workers as u32);
            splits_switch_cluster(&netlist, part.as_slice())
        });
        let Some(seed) = split_seed else {
            panic!("no FM seed in 0..64 splits a switch coupling cluster at P={workers}");
        };
        let part = FiducciaMattheysesPartitioner::new(seed).partition(&netlist, workers as u32);
        check_par_against_serial(&netlist, part.as_slice(), workers, &schedule, &serial, "fm");
    }
}
