//! Property tests for the event-driven simulator: event-list
//! equivalence, determinism, and agreement with direct combinational
//! evaluation.

use logicsim_netlist::{Delay, GateKind, Level, NetId, NetlistBuilder};
use logicsim_sim::{HeapEventList, SimConfig, Simulator, TimingWheel};
use proptest::prelude::*;

proptest! {
    /// The timing wheel and the binary-heap list are observationally
    /// equivalent under arbitrary interleavings of schedule/advance.
    #[test]
    fn wheel_equals_heap(
        script in proptest::collection::vec((0u64..40, any::<u16>()), 1..120)
    ) {
        let mut wheel: TimingWheel<u16> = TimingWheel::new(8); // tiny: force overflow
        let mut heap: HeapEventList<u16> = HeapEventList::new();
        for (delay, item) in script {
            // Drain/advance with probability encoded in the item.
            if item % 3 == 0 {
                prop_assert_eq!(wheel.pop_current(), heap.pop_current());
                wheel.advance();
                heap.advance();
            }
            let tick = wheel.now() + delay;
            wheel.schedule(tick, item);
            heap.schedule(tick, item);
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.next_pending_tick(), heap.next_pending_tick());
        }
        // Drain to empty.
        while !wheel.is_empty() || !heap.is_empty() {
            prop_assert_eq!(wheel.pop_current(), heap.pop_current());
            wheel.advance();
            heap.advance();
        }
    }
}

/// A random combinational DAG over the given input count; returns the
/// netlist and, for each net in creation order, a closure-friendly
/// description to evaluate it directly.
#[derive(Debug, Clone)]
enum NodeDesc {
    Input(usize),
    Gate(GateKind, Vec<usize>),
}

fn build_random_dag(
    num_inputs: usize,
    ops: &[(u8, usize, usize)],
) -> (logicsim_netlist::Netlist, Vec<NodeDesc>, Vec<NetId>) {
    let mut b = NetlistBuilder::new("dag");
    let mut nets: Vec<NetId> = Vec::new();
    let mut descs: Vec<NodeDesc> = Vec::new();
    for i in 0..num_inputs {
        nets.push(b.input(format!("in{i}")));
        descs.push(NodeDesc::Input(i));
    }
    for &(kind_sel, x, y) in ops {
        let kind = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ][kind_sel as usize % 8];
        let a = x % nets.len();
        let c = y % nets.len();
        let out = b.fresh("w");
        let (inputs, desc) = if matches!(kind, GateKind::Not | GateKind::Buf) {
            (vec![nets[a]], NodeDesc::Gate(kind, vec![a]))
        } else {
            (vec![nets[a], nets[c]], NodeDesc::Gate(kind, vec![a, c]))
        };
        b.gate(kind, &inputs, out, Delay::uniform(1 + (x as u32 % 3)));
        nets.push(out);
        descs.push(desc);
    }
    let netlist = b.finish().expect("valid by construction");
    (netlist, descs, nets)
}

fn direct_eval(descs: &[NodeDesc], inputs: &[Level]) -> Vec<Level> {
    let mut values: Vec<Level> = Vec::with_capacity(descs.len());
    for d in descs {
        let v = match d {
            NodeDesc::Input(i) => inputs[*i],
            NodeDesc::Gate(kind, args) => {
                let levels: Vec<Level> = args.iter().map(|&a| values[a]).collect();
                kind.evaluate(&levels).level
            }
        };
        values.push(v);
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Event-driven simulation of a combinational DAG settles to the
    /// same values as direct topological evaluation, for every net.
    #[test]
    fn simulation_matches_direct_evaluation(
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..40),
        input_bits in any::<u16>(),
    ) {
        let num_inputs = 4;
        let (netlist, descs, nets) = build_random_dag(num_inputs, &ops);
        let inputs: Vec<Level> = (0..num_inputs)
            .map(|i| Level::from_bool(input_bits >> i & 1 == 1))
            .collect();
        let mut sim = Simulator::new(&netlist).expect("pre-flight");
        for (i, &l) in inputs.iter().enumerate() {
            let net = netlist.find_net(&format!("in{i}")).expect("input net");
            sim.set_input(net, l);
        }
        sim.run_to_quiescence(100_000);
        let expected = direct_eval(&descs, &inputs);
        for (net, want) in nets.iter().zip(&expected) {
            prop_assert_eq!(
                sim.level(*net),
                *want,
                "net {} disagrees", netlist.net_name(*net)
            );
        }
    }

    /// Same circuit, same stimulus, same seed: identical measurements
    /// (the reproducibility the whole measurement methodology rests on).
    #[test]
    fn simulation_is_deterministic(
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..24),
        flips in proptest::collection::vec((0usize..4, any::<bool>()), 1..20),
    ) {
        let (netlist, _, _) = build_random_dag(4, &ops);
        let run = || {
            let mut sim = Simulator::with_config(&netlist, SimConfig {
                collect_trace: true,
                ..SimConfig::default()
            }).expect("pre-flight");
            for (chunk, &(which, up)) in flips.iter().enumerate() {
                let net = netlist.find_net(&format!("in{which}")).expect("input");
                sim.set_input(net, Level::from_bool(up));
                sim.run_until((chunk as u64 + 1) * 7);
            }
            sim.run_to_quiescence(10_000);
            (sim.counters().clone(), sim.take_trace())
        };
        let (c1, t1) = run();
        let (c2, t2) = run();
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(t1, t2);
    }

    /// Workload counter invariants hold on arbitrary runs: busy+idle =
    /// elapsed, events only on busy ticks, messages >= events cannot be
    /// violated downward below fanout-0 floor.
    #[test]
    fn counter_invariants(
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..24),
        flips in proptest::collection::vec((0usize..4, any::<bool>()), 1..12),
    ) {
        let (netlist, _, _) = build_random_dag(4, &ops);
        let mut sim = Simulator::with_config(&netlist, SimConfig {
            collect_trace: true,
            ..SimConfig::default()
        }).expect("pre-flight");
        for (chunk, &(which, up)) in flips.iter().enumerate() {
            let net = netlist.find_net(&format!("in{which}")).expect("input");
            sim.set_input(net, Level::from_bool(up));
            sim.run_until((chunk as u64 + 1) * 5);
        }
        sim.run_to_quiescence(10_000);
        let c = sim.counters();
        let t = sim.trace();
        prop_assert_eq!(c.total_ticks(), sim.now());
        prop_assert_eq!(t.busy_ticks(), c.busy_ticks);
        prop_assert_eq!(t.total_events(), c.events);
        prop_assert_eq!(t.total_messages_inf(), c.messages_inf);
        // Every trace tick holds at least one event, and ticks ascend.
        let mut prev = None;
        for tick in &t.ticks {
            prop_assert!(!tick.events.is_empty());
            if let Some(p) = prev {
                prop_assert!(tick.tick > p);
            }
            prev = Some(tick.tick);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event-driven engine and the compiled-mode (levelized) engine
    /// are independent implementations; on combinational circuits they
    /// must agree on every quiescent net value.
    #[test]
    fn event_driven_agrees_with_compiled_mode(
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..40),
        input_bits in any::<u16>(),
    ) {
        use logicsim_sim::CompiledSim;
        let num_inputs = 4;
        let (netlist, _, nets) = build_random_dag(num_inputs, &ops);
        let inputs: Vec<Level> = (0..num_inputs)
            .map(|i| Level::from_bool(input_bits >> i & 1 == 1))
            .collect();
        let mut event_sim = Simulator::new(&netlist).expect("pre-flight");
        let mut compiled = CompiledSim::new(&netlist);
        for (i, &l) in inputs.iter().enumerate() {
            let net = netlist.find_net(&format!("in{i}")).expect("input net");
            event_sim.set_input(net, l);
            compiled.set_input(net, l);
        }
        event_sim.run_to_quiescence(100_000);
        prop_assert!(compiled.settle(64));
        for &net in &nets {
            prop_assert_eq!(
                event_sim.level(net),
                compiled.level(net),
                "net {} disagrees between engines", netlist.net_name(net)
            );
        }
    }
}
