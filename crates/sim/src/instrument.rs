//! Workload instrumentation: the counters behind the paper's Tables 5-6.
//!
//! The paper defines (Table 3): `B` busy ticks, `I` idle ticks, `E`
//! event/function evaluations, and `M_inf` the message volume in the
//! fully-partitioned limit. An *event* here is an applied output change
//! of a component; it contributes one message per fanout component
//! (`M_inf = sum of fanouts = F * E`).

use serde::{Deserialize, Serialize};

/// Live counters updated by the engine while simulating.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadCounters {
    /// Ticks with at least one applied event.
    pub busy_ticks: u64,
    /// Ticks with no applied event (START/DONE-only cycles on the
    /// modeled machine).
    pub idle_ticks: u64,
    /// Applied output-change events (`E`).
    pub events: u64,
    /// Messages in the infinite-partition limit (`M_inf`): one per
    /// (event, fanout component) pair.
    pub messages_inf: u64,
    /// Component function evaluations performed (a superset of `events`:
    /// evaluations that produced no output change are counted here only).
    pub evaluations: u64,
    /// Switch-group resolutions performed.
    pub group_resolutions: u64,
    /// Ticks where intra-tick switch-group relaxation hit the iteration
    /// bound (possible zero-delay oscillation, forced to X).
    pub relaxation_overflows: u64,
    /// Largest number of pending events observed at a tick boundary
    /// (the peak event-list size of \[WO86\]).
    pub event_list_peak: u64,
    /// Sum of pending-event counts over all ticks (divide by
    /// [`WorkloadCounters::total_ticks`] for the mean event-list size).
    pub event_list_sum: u64,
}

impl WorkloadCounters {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> WorkloadCounters {
        WorkloadCounters::default()
    }

    /// Total simulated ticks `B + I`.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.busy_ticks + self.idle_ticks
    }

    /// Fraction of busy ticks `B / (B + I)` (Table 6, first column).
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        let t = self.total_ticks();
        if t == 0 {
            0.0
        } else {
            self.busy_ticks as f64 / t as f64
        }
    }

    /// Average event simultaneity `N = E / B` (Table 6).
    #[must_use]
    pub fn simultaneity(&self) -> f64 {
        if self.busy_ticks == 0 {
            0.0
        } else {
            self.events as f64 / self.busy_ticks as f64
        }
    }

    /// Mean event-list occupancy over the run (the average event-list
    /// size statistic of the paper's companion measurement study
    /// \[WO86\]).
    #[must_use]
    pub fn mean_event_list_size(&self) -> f64 {
        let t = self.total_ticks();
        if t == 0 {
            0.0
        } else {
            self.event_list_sum as f64 / t as f64
        }
    }

    /// Average fanout `F = M_inf / E` (Table 6).
    #[must_use]
    pub fn average_fanout(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.messages_inf as f64 / self.events as f64
        }
    }

    /// Resets every counter to zero; used after a warm-up window so the
    /// measured statistics reflect steady state, mirroring the paper's
    /// procedure of running "until aggregate statistics remained stable".
    pub fn reset(&mut self) {
        *self = WorkloadCounters::default();
    }
}

/// Per-component activity profile: how many events each component
/// produced. `activity = events / (components * busy_ticks)` is the
/// paper's Table 6 "Activity" column when normalized by component count.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityProfile {
    /// Event count per component, indexed by component id.
    pub events_per_component: Vec<u64>,
}

impl ActivityProfile {
    /// Creates a profile for `num_components` components.
    #[must_use]
    pub fn new(num_components: usize) -> ActivityProfile {
        ActivityProfile {
            events_per_component: vec![0; num_components],
        }
    }

    /// Records one event from `comp`.
    pub fn record(&mut self, comp: usize) {
        self.events_per_component[comp] += 1;
    }

    /// Number of components that produced at least one event. The paper
    /// ran vectors "until ... most components experienced at least one
    /// output change"; this is the convergence criterion.
    #[must_use]
    pub fn active_components(&self) -> usize {
        self.events_per_component.iter().filter(|&&e| e > 0).count()
    }

    /// Fraction of components active at least once.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.events_per_component.is_empty() {
            0.0
        } else {
            self.active_components() as f64 / self.events_per_component.len() as f64
        }
    }

    /// Average fraction of components with output changes per busy tick
    /// (Table 6 "Activity" = `N / components`).
    #[must_use]
    pub fn activity(&self, busy_ticks: u64) -> f64 {
        let c = self.events_per_component.len();
        if c == 0 || busy_ticks == 0 {
            return 0.0;
        }
        let total: u64 = self.events_per_component.iter().sum();
        (total as f64 / busy_ticks as f64) / c as f64
    }

    /// Resets all per-component counts.
    pub fn reset(&mut self) {
        self.events_per_component.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let c = WorkloadCounters {
            busy_ticks: 10,
            idle_ticks: 90,
            events: 50,
            messages_inf: 105,
            ..WorkloadCounters::default()
        };
        assert_eq!(c.total_ticks(), 100);
        assert!((c.busy_fraction() - 0.1).abs() < 1e-12);
        assert!((c.simultaneity() - 5.0).abs() < 1e-12);
        assert!((c.average_fanout() - 2.1).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let c = WorkloadCounters::new();
        assert_eq!(c.busy_fraction(), 0.0);
        assert_eq!(c.simultaneity(), 0.0);
        assert_eq!(c.average_fanout(), 0.0);
        assert_eq!(c.mean_event_list_size(), 0.0);
    }

    #[test]
    fn event_list_mean() {
        let c = WorkloadCounters {
            busy_ticks: 2,
            idle_ticks: 2,
            event_list_sum: 12,
            event_list_peak: 7,
            ..WorkloadCounters::default()
        };
        assert!((c.mean_event_list_size() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn activity_profile_counts() {
        let mut p = ActivityProfile::new(4);
        p.record(0);
        p.record(0);
        p.record(2);
        assert_eq!(p.active_components(), 2);
        assert!((p.coverage() - 0.5).abs() < 1e-12);
        // 3 events over 3 busy ticks over 4 components: 0.25
        assert!((p.activity(3) - 0.25).abs() < 1e-12);
        p.reset();
        assert_eq!(p.active_components(), 0);
    }
}
