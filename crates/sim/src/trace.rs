//! Tick-level event traces.
//!
//! A [`TickTrace`] records, for every busy tick, which components
//! produced output-change events and which components each event fanned
//! out to. This is the interface between the software simulator and the
//! rest of the reproduction:
//!
//! * `logicsim-stats` derives workload parameters (B, E, simultaneity
//!   distribution, imbalance beta) from it,
//! * `logicsim-partition` computes measured message volumes `M_P` from
//!   the (source, destination) pairs,
//! * `logicsim-machine` replays it through the cycle-level machine
//!   simulator to validate the analytical model.

use serde::{Deserialize, Serialize};

/// One output-change event: the source component and its destinations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Component whose output changed (index into the netlist).
    pub source: u32,
    /// Components the change propagates to (fanout of the changed net).
    pub dests: Vec<u32>,
}

impl EventRecord {
    /// Number of messages this event generates when every destination
    /// lives on a different processor (the `M_inf` contribution).
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.dests.len()
    }
}

/// All events applied during one busy tick.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickRecord {
    /// Absolute simulation tick.
    pub tick: u64,
    /// Events applied at this tick, in application order.
    pub events: Vec<EventRecord>,
}

/// A trace of every busy tick in a simulation run.
///
/// Idle ticks are implicit: any tick in `[start, end)` without a record
/// is idle, which keeps the trace proportional to `E` rather than to
/// simulated time (the paper's circuits are idle at 76-99% of ticks).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickTrace {
    /// First tick covered by the trace (inclusive).
    pub start: u64,
    /// Last tick covered (exclusive); `end - start = B + I`.
    pub end: u64,
    /// Busy ticks, in increasing tick order.
    pub ticks: Vec<TickRecord>,
}

impl TickTrace {
    /// Creates an empty trace covering no time.
    #[must_use]
    pub fn new() -> TickTrace {
        TickTrace::default()
    }

    /// Number of busy ticks (`B`).
    #[must_use]
    pub fn busy_ticks(&self) -> u64 {
        self.ticks.len() as u64
    }

    /// Number of idle ticks (`I`).
    #[must_use]
    pub fn idle_ticks(&self) -> u64 {
        (self.end - self.start).saturating_sub(self.busy_ticks())
    }

    /// Total events (`E`).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.ticks.iter().map(|t| t.events.len() as u64).sum()
    }

    /// Total messages in the fully-partitioned limit (`M_inf`).
    #[must_use]
    pub fn total_messages_inf(&self) -> u64 {
        self.ticks
            .iter()
            .flat_map(|t| t.events.iter().map(|e| e.fanout() as u64))
            .sum()
    }

    /// Average event simultaneity `N = E / B`, the paper's measure of
    /// exploitable parallelism. Zero when there are no busy ticks.
    #[must_use]
    pub fn simultaneity(&self) -> f64 {
        let b = self.busy_ticks();
        if b == 0 {
            0.0
        } else {
            self.total_events() as f64 / b as f64
        }
    }

    /// Iterates over `(source, dest)` component pairs of every message,
    /// for measured `M_P` computation under a concrete partition.
    pub fn message_pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ticks.iter().flat_map(|t| {
            t.events
                .iter()
                .flat_map(|e| e.dests.iter().map(move |&d| (e.source, d)))
        })
    }

    /// Events per busy tick, in tick order (the simultaneity
    /// distribution).
    #[must_use]
    pub fn events_per_busy_tick(&self) -> Vec<u64> {
        self.ticks.iter().map(|t| t.events.len() as u64).collect()
    }

    /// Truncates the trace to ticks in `[from, to)`, adjusting the
    /// covered span; used to discard initialization transients before
    /// measuring steady-state statistics, as the paper did ("until
    /// aggregate statistics remained stable").
    #[must_use]
    pub fn window(&self, from: u64, to: u64) -> TickTrace {
        TickTrace {
            start: from.max(self.start),
            end: to.min(self.end),
            ticks: self
                .ticks
                .iter()
                .filter(|t| t.tick >= from && t.tick < to)
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TickTrace {
        TickTrace {
            start: 0,
            end: 10,
            ticks: vec![
                TickRecord {
                    tick: 2,
                    events: vec![
                        EventRecord {
                            source: 0,
                            dests: vec![1, 2],
                        },
                        EventRecord {
                            source: 3,
                            dests: vec![4],
                        },
                    ],
                },
                TickRecord {
                    tick: 7,
                    events: vec![EventRecord {
                        source: 1,
                        dests: vec![0, 2, 3],
                    }],
                },
            ],
        }
    }

    #[test]
    fn aggregate_counts() {
        let t = sample();
        assert_eq!(t.busy_ticks(), 2);
        assert_eq!(t.idle_ticks(), 8);
        assert_eq!(t.total_events(), 3);
        assert_eq!(t.total_messages_inf(), 6);
        assert!((t.simultaneity() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn message_pairs_enumerated() {
        let t = sample();
        let pairs: Vec<_> = t.message_pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (3, 4), (1, 0), (1, 2), (1, 3)]);
    }

    #[test]
    fn windowing_discards_warmup() {
        let t = sample();
        let w = t.window(5, 10);
        assert_eq!(w.busy_ticks(), 1);
        assert_eq!(w.idle_ticks(), 4);
        assert_eq!(w.total_events(), 1);
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = TickTrace::new();
        assert_eq!(t.busy_ticks(), 0);
        assert_eq!(t.idle_ticks(), 0);
        assert_eq!(t.simultaneity(), 0.0);
    }
}
