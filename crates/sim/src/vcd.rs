//! VCD (Value Change Dump) waveform output.
//!
//! The IEEE-1364 VCD format every waveform viewer reads. A
//! [`VcdRecorder`] watches a set of nets and appends a timestamped
//! change record whenever a watched net's level changes; the result
//! renders in `GTKWave` and friends. Strength information is reduced to
//! the four VCD states `0`, `1`, `x`, `z` (`z` when the net is
//! undriven).

use crate::engine::Simulator;
use logicsim_netlist::{Level, NetId, Netlist, Strength};
use std::fmt::Write as _;

/// Records level changes on selected nets in VCD format.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    nets: Vec<(NetId, String, String)>, // (net, identifier code, name)
    last: Vec<char>,
    body: String,
    header: String,
    last_time: Option<u64>,
}

/// VCD identifier codes: printable ASCII 33..=126, multi-character for
/// large circuits.
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            break;
        }
    }
    code
}

fn vcd_state(sim: &Simulator<'_>, net: NetId) -> char {
    let sig = sim.signal(net);
    if sig.strength == Strength::HighZ {
        return 'z';
    }
    match sig.level {
        Level::Zero => '0',
        Level::One => '1',
        Level::X => 'x',
    }
}

impl VcdRecorder {
    /// Creates a recorder watching the given nets. `timescale` is the
    /// VCD timescale string for one simulator tick (e.g. `"1ns"`).
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty.
    #[must_use]
    pub fn new(netlist: &Netlist, nets: &[NetId], timescale: &str) -> VcdRecorder {
        assert!(!nets.is_empty(), "watch at least one net");
        let mut header = String::new();
        let _ = writeln!(header, "$version logicsim $end");
        let _ = writeln!(header, "$timescale {timescale} $end");
        let _ = writeln!(header, "$scope module {} $end", netlist.name());
        let mut entries = Vec::with_capacity(nets.len());
        for (i, &net) in nets.iter().enumerate() {
            let code = id_code(i);
            let name = netlist.net_name(net).replace(' ', "_");
            let _ = writeln!(header, "$var wire 1 {code} {name} $end");
            entries.push((net, code, name));
        }
        let _ = writeln!(header, "$upscope $end");
        let _ = writeln!(header, "$enddefinitions $end");
        VcdRecorder {
            last: vec!['?'; entries.len()],
            nets: entries,
            body: String::new(),
            header,
            last_time: None,
        }
    }

    /// Convenience: watch every marked output of the netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no outputs.
    #[must_use]
    pub fn of_outputs(netlist: &Netlist, timescale: &str) -> VcdRecorder {
        VcdRecorder::new(netlist, netlist.outputs(), timescale)
    }

    /// Samples the watched nets at the simulator's current time,
    /// emitting change records for any that differ from the last
    /// sample. Call after each [`Simulator::step`] (or less often for
    /// coarser waveforms).
    pub fn sample(&mut self, sim: &Simulator<'_>) {
        let time = sim.now();
        let mut stamped = false;
        for (i, (net, code, _)) in self.nets.iter().enumerate() {
            let state = vcd_state(sim, *net);
            if self.last[i] != state {
                if !stamped && self.last_time != Some(time) {
                    let _ = writeln!(self.body, "#{time}");
                    self.last_time = Some(time);
                }
                stamped = true;
                self.last[i] = state;
                let _ = writeln!(self.body, "{state}{code}");
            }
        }
    }

    /// The complete VCD document.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{}{}", self.header, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::{Delay, GateKind, NetlistBuilder};

    fn toggle_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("toggler");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::uniform(1));
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn emits_header_and_changes() {
        let n = toggle_circuit();
        let a = n.find_net("a").unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        let mut vcd = VcdRecorder::of_outputs(&n, "1ns");
        vcd.sample(&sim);
        sim.set_input(a, Level::Zero);
        for t in 0..6 {
            if t == 3 {
                sim.set_input(a, Level::One);
            }
            sim.step();
            vcd.sample(&sim);
        }
        let doc = vcd.finish();
        assert!(doc.contains("$timescale 1ns $end"));
        assert!(doc.contains("$var wire 1 ! y $end"));
        // y: x (power-up), then 1 (a=0), then 0 (a=1).
        assert!(doc.contains("x!"));
        assert!(doc.contains("1!"));
        assert!(doc.contains("0!"));
        // Timestamps are monotone.
        let stamps: Vec<u64> = doc
            .lines()
            .filter_map(|l| l.strip_prefix('#').and_then(|t| t.parse().ok()))
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]), "{stamps:?}");
    }

    #[test]
    fn unchanged_nets_emit_nothing() {
        let n = toggle_circuit();
        let a = n.find_net("a").unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        sim.set_input(a, Level::Zero);
        sim.run_until(5);
        let mut vcd = VcdRecorder::of_outputs(&n, "1ns");
        vcd.sample(&sim);
        let once = vcd.finish().len();
        for _ in 0..10 {
            sim.step();
            vcd.sample(&sim);
        }
        assert_eq!(vcd.finish().len(), once, "quiet nets must stay quiet");
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let code = id_code(i);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code), "duplicate at {i}");
        }
    }

    #[test]
    fn z_state_for_undriven_nets() {
        let mut b = NetlistBuilder::new("tri");
        let d = b.input("d");
        let en = b.input("en");
        let bus = b.net("bus");
        b.gate(GateKind::Tristate, &[d, en], bus, Delay::uniform(1));
        b.mark_output(bus);
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        sim.set_input(n.find_net("d").unwrap(), Level::One);
        sim.set_input(n.find_net("en").unwrap(), Level::Zero);
        sim.run_until(5);
        let mut vcd = VcdRecorder::of_outputs(&n, "1ns");
        vcd.sample(&sim);
        assert!(vcd.finish().contains("z!"));
    }
}
