//! The event-driven simulation engine.
//!
//! The engine advances a unit-increment global clock (matching the
//! `UI/GC` time control of the machine class the paper models). At each
//! tick it pops scheduled output changes from the timing wheel, applies
//! them, re-resolves affected nets (with instantaneous settling of
//! switch groups), and evaluates fanout gates, scheduling their output
//! changes after their fixed rise/fall delay.
//!
//! Delays are **inertial**, like lsim's fixed-delay model and unlike a
//! pure transport-delay simulator: each component has at most one
//! outstanding scheduled change, a re-evaluation replaces it, and a
//! re-evaluation back to the currently-driven value cancels it
//! outright. Pulses narrower than a gate's delay are therefore
//! filtered — without this, a glitch injected into a delay-matched
//! feedback loop (any latch) circulates forever and inflates the
//! measured event counts unboundedly.
//!
//! # Hot-path layout
//!
//! The per-tick loop runs over a data-oriented image of the netlist
//! built once at construction: CSR adjacency ([`logicsim_netlist::Csr`])
//! for fanout, non-switch drivers, and gate input pins; a dense
//! [`EvalKind`] dispatch table; and dense per-net group/attribution
//! maps. Per-tick set semantics (`affected`, `dirty_groups`, `to_eval`)
//! are provided by epoch-stamped worklists ([`StampSet`]) whose items
//! are sorted before iteration, reproducing the exact `BTreeMap`/
//! `BTreeSet` iteration order of the reference implementation — the
//! golden-trace tests pin this bit-for-bit. All per-tick buffers live in
//! [`Worklists`] and are reused across ticks, so a settled steady-state
//! tick performs no heap allocation.

use crate::instrument::{ActivityProfile, WorkloadCounters};
use crate::obs::{self, Phase};
use crate::solver;
use crate::trace::{EventRecord, TickRecord, TickTrace};
use crate::wheel::TimingWheel;
use logicsim_netlist::analyze::{self, Diagnostic};
use logicsim_netlist::{
    ChannelGroups, CompId, Component, Csr, Delay, GateKind, Level, NetId, Netlist, Signal,
};
use std::fmt;

/// The netlist failed the static pre-flight: it contains at least one
/// error-level finding (see [`logicsim_netlist::analyze`]) and cannot
/// be simulated faithfully, so [`Simulator::new`] refuses it.
#[derive(Debug, Clone)]
pub struct PreflightError {
    /// Name of the rejected circuit.
    pub circuit: String,
    /// The error-level findings (never empty).
    pub diagnostics: Vec<Diagnostic>,
    /// The findings rendered with net/component names resolved, one
    /// per entry of `diagnostics`.
    pub rendered: Vec<String>,
}

impl fmt::Display for PreflightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist `{}` fails pre-flight with {} error(s)",
            self.circuit,
            self.diagnostics.len()
        )?;
        for r in &self.rendered {
            write!(f, "\n{r}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PreflightError {}

/// A scheduled output change: at its tick, `comp` starts driving `drive`
/// onto its output net. `seq` implements inertial descheduling: only
/// the change matching the component's latest sequence number applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Change {
    comp: CompId,
    drive: Signal,
    seq: u64,
}

/// Which simulation backend a front end should construct.
///
/// This is advisory routing information for front ends (`lsim`, the
/// bench binaries): the event-driven [`Simulator`] itself ignores it,
/// and [`crate::bitpar::BitParSim`] consumes the rest of the config for
/// its per-lane fallback engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The serial event-driven engine ([`Simulator`]).
    #[default]
    Event,
    /// The 64-lane bit-parallel compiled backend
    /// ([`crate::bitpar::BitParSim`]).
    BitPar,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Timing-wheel size in slots; must exceed the largest delay for
    /// O(1) scheduling (larger delays fall back to the overflow map).
    pub wheel_size: usize,
    /// Collect a full [`TickTrace`] (needed for machine replay and
    /// partition studies; costs memory proportional to `E`).
    pub collect_trace: bool,
    /// Bound on intra-tick switch-group relaxation rounds before the
    /// engine declares a zero-delay oscillation and stops the tick.
    pub max_settle_rounds: u32,
    /// Rounds of zero-delay relaxation used to compute the initial
    /// (power-up) state before any events are counted.
    pub init_rounds: u32,
    /// Arm the per-phase wall-clock recorder (see [`crate::obs`]). A
    /// no-op unless the crate is built with the `obs` feature, so the
    /// same binary can compare armed vs. unarmed runs. Timing never
    /// feeds back into simulation state: traces and counters are
    /// bit-identical either way.
    pub observe: bool,
    /// Per-lane capacity (in samples) of the observability ring buffer;
    /// older samples are overwritten at capacity. Exact per-phase
    /// totals are kept separately and never windowed.
    pub obs_capacity: usize,
    /// Run the static optimizer
    /// ([`logicsim_netlist::analyze::opt::optimize`]) on the netlist at
    /// construction and simulate the optimized circuit instead. Net
    /// ids, names, inputs, and outputs are preserved, so stimulus and
    /// output observation work unchanged; component ids are renumbered
    /// (the parallel engine remaps partition assignments through the
    /// optimizer's component map automatically).
    pub optimize: bool,
    /// Which backend a front end should construct (see [`Backend`]);
    /// the event-driven engine itself ignores this.
    pub backend: Backend,
    /// Active lanes for the bit-parallel backend (`1..=64`); ignored by
    /// the event-driven engine.
    pub lanes: usize,
    /// Hook the parallel engine uses to re-partition an optimizer-
    /// rewritten netlist from scratch instead of remapping the caller's
    /// assignment through the optimizer's component map. The arguments
    /// are `(netlist, num_parts, seed)`; the result must assign every
    /// component. `None` keeps the remapping behavior. (A plain `fn`
    /// pointer, not a closure, so `SimConfig` stays `Clone` + `Debug`;
    /// the partition crate supplies a compatible free function —
    /// dependency direction forbids calling it from here directly.)
    pub repartition: Option<RepartitionFn>,
    /// Seed forwarded to [`SimConfig::repartition`].
    pub repartition_seed: u64,
}

/// Signature of the [`SimConfig::repartition`] hook:
/// `(netlist, num_parts, seed)` to a full component assignment
/// (partition id per component, `u32::MAX` for unpartitioned
/// infrastructure).
pub type RepartitionFn = fn(&Netlist, u32, u64) -> Vec<u32>;

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            wheel_size: 256,
            collect_trace: false,
            max_settle_rounds: 64,
            init_rounds: 128,
            observe: false,
            obs_capacity: 4096,
            optimize: false,
            backend: Backend::Event,
            lanes: logicsim_netlist::LANES,
            repartition: None,
            repartition_seed: 0,
        }
    }
}

/// Either a borrowed caller netlist or one owned by the engine (the
/// product of [`SimConfig::optimize`]).
#[derive(Debug)]
pub(crate) enum NetHold<'a> {
    /// The caller's netlist, borrowed.
    Borrowed(&'a Netlist),
    /// An optimizer-produced netlist the engine owns.
    Owned(Box<Netlist>),
}

impl NetHold<'_> {
    /// The netlist actually being simulated.
    pub(crate) fn get(&self) -> &Netlist {
        match self {
            NetHold::Borrowed(n) => n,
            NetHold::Owned(n) => n,
        }
    }
}

/// How a component reacts to an input-net change, precomputed per
/// component so the evaluation loop never matches on [`Component`].
/// Shared with the parallel engine ([`crate::par_engine`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum EvalKind {
    /// Evaluate the gate function over the input pins and schedule the
    /// output change after the transition delay.
    Gate {
        /// The gate's logic function.
        kind: GateKind,
        /// Rise/fall propagation delays.
        delay: Delay,
    },
    /// Mark the switch's channel-connected group dirty for intra-tick
    /// settling.
    Switch {
        /// The channel group both channel terminals belong to.
        group: u32,
    },
    /// Inputs, pulls, and rails: nothing to evaluate.
    Passive,
}

/// An epoch-stamped dense worklist over `u32` ids: O(1) insert-if-absent
/// via a stamp array, O(1) clear by bumping the epoch, and sorted
/// iteration to reproduce `BTreeSet` ordering.
#[derive(Debug, Clone, Default)]
pub(crate) struct StampSet {
    /// `stamp[i] == epoch` iff `i` is in the set.
    stamp: Vec<u32>,
    epoch: u32,
    /// Inserted ids in insertion order (unsorted until [`Self::sorted`]).
    items: Vec<u32>,
}

impl StampSet {
    pub(crate) fn with_capacity(n: usize) -> StampSet {
        StampSet {
            stamp: vec![0; n],
            epoch: 1,
            items: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, id: u32) {
        let s = &mut self.stamp[id as usize];
        if *s != self.epoch {
            *s = self.epoch;
            self.items.push(id);
        }
    }

    /// Membership test against the current epoch.
    #[inline]
    pub(crate) fn contains(&self, id: u32) -> bool {
        self.stamp[id as usize] == self.epoch
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Empties the set. O(1) except when the epoch counter wraps, which
    /// resets the stamp array to keep stale stamps from matching.
    pub(crate) fn clear(&mut self) {
        self.items.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Sorts the contents ascending and returns them; this is what makes
    /// a `StampSet` a drop-in for sorted `BTreeSet` iteration.
    pub(crate) fn sorted(&mut self) -> &[u32] {
        self.items.sort_unstable();
        &self.items
    }
}

/// The immutable data-oriented image of a netlist that the hot path
/// iterates over: CSR adjacency, per-component dispatch, per-net group
/// and attribution maps. Built once by [`Image::build`] and shared
/// between the serial engine and the parallel engine, so both execute
/// the exact same precomputed structure.
#[derive(Debug)]
pub(crate) struct Image {
    /// Channel-connected switch groups.
    pub(crate) groups: ChannelGroups,
    /// Per-component evaluation dispatch.
    pub(crate) eval: Vec<EvalKind>,
    /// Per-component gate input pins (net ids; empty for non-gates).
    pub(crate) gate_inputs: Csr,
    /// Per-net fanout component ids.
    pub(crate) fanout: Csr,
    /// Per-net non-switch driver component ids (the external-drive set).
    pub(crate) ext_drivers: Csr,
    /// Channel group of each net.
    pub(crate) net_group: Vec<u32>,
    /// Whether each group needs switch-level resolution.
    pub(crate) group_nontrivial: Vec<bool>,
    /// Trace attribution per net: the first switch driver if any, else
    /// the first driver, else component 0.
    pub(crate) net_attr: Vec<u32>,
    /// Input component per net (`u32::MAX` when the net is not a
    /// primary input).
    pub(crate) input_comp: Vec<u32>,
    /// Output net per component (None for switches).
    pub(crate) comp_out: Vec<Option<NetId>>,
    /// Initial component drive (static for pulls/rails, floating else).
    pub(crate) static_drive: Vec<Signal>,
}

impl Image {
    /// Runs the static pre-flight and precomputes the hot-path image.
    pub(crate) fn build(netlist: &Netlist) -> Result<Image, PreflightError> {
        let errors = analyze::preflight(netlist);
        if !errors.is_empty() {
            return Err(PreflightError {
                circuit: netlist.name().to_string(),
                rendered: errors.iter().map(|d| d.render(netlist)).collect(),
                diagnostics: errors,
            });
        }
        let nc = netlist.num_components();
        let nn = netlist.num_nets();
        let groups = ChannelGroups::compute(netlist);

        let mut comp_out = vec![None; nc];
        let mut static_drive = vec![Signal::FLOATING; nc];
        let mut input_comp = vec![u32::MAX; nn];
        for (id, comp) in netlist.iter() {
            match comp {
                Component::Gate { output, .. } => comp_out[id.index()] = Some(*output),
                Component::Input { net } => {
                    comp_out[id.index()] = Some(*net);
                    input_comp[net.index()] = id.0;
                }
                Component::Pull { net, .. } | Component::Supply { net, .. } => {
                    comp_out[id.index()] = Some(*net);
                    static_drive[id.index()] = comp.static_drive().expect("static component");
                }
                Component::Switch { .. } => {}
            }
        }

        let eval: Vec<EvalKind> = netlist
            .components()
            .iter()
            .map(|c| match c {
                Component::Gate { kind, delay, .. } => EvalKind::Gate {
                    kind: *kind,
                    delay: *delay,
                },
                Component::Switch { a, .. } => EvalKind::Switch {
                    group: groups.group_of(*a),
                },
                _ => EvalKind::Passive,
            })
            .collect();
        let ext_drivers = Csr::from_rows((0..nn).map(|i| {
            netlist
                .drivers(NetId(i as u32))
                .iter()
                .filter(|&&d| !netlist.component(d).is_switch())
                .map(|c| c.0)
        }));
        let net_attr: Vec<u32> = (0..nn)
            .map(|i| {
                let drivers = netlist.drivers(NetId(i as u32));
                drivers
                    .iter()
                    .copied()
                    .find(|&d| netlist.component(d).is_switch())
                    .or_else(|| drivers.first().copied())
                    .unwrap_or(CompId(0))
                    .0
            })
            .collect();
        let net_group: Vec<u32> = (0..nn).map(|i| groups.group_of(NetId(i as u32))).collect();
        let group_nontrivial: Vec<bool> = (0..groups.num_groups())
            .map(|g| groups.is_nontrivial(g as u32))
            .collect();
        Ok(Image {
            eval,
            gate_inputs: netlist.gate_inputs_csr(),
            fanout: netlist.fanout_csr(),
            ext_drivers,
            net_group,
            group_nontrivial,
            net_attr,
            input_comp,
            comp_out,
            static_drive,
            groups,
        })
    }

    /// External (non-switch) drive on a net: the join of all gate/input/
    /// pull/rail drivers' current output, read from `comp_drive`.
    #[inline]
    pub(crate) fn external_drive(&self, comp_drive: &[Signal], net: NetId) -> Signal {
        let mut v = Signal::FLOATING;
        for &d in self.ext_drivers.row(net.index()) {
            v = v.resolve(comp_drive[d as usize]);
        }
        v
    }
}

/// Zero-delay relaxation to a consistent power-up state over plain
/// state arrays: evaluate every gate against current net levels,
/// re-resolve all nets, and repeat until stable (or the round bound).
/// No events are counted. Shared by the serial and parallel engines so
/// both start every run from the identical state.
pub(crate) fn relax_power_up(
    netlist: &Netlist,
    img: &Image,
    init_rounds: u32,
    net_values: &mut [Signal],
    comp_drive: &mut [Signal],
    last_scheduled: &mut [Signal],
) {
    let mut scratch = solver::Scratch::default();
    let mut group_out: Vec<(NetId, Signal)> = Vec::new();
    let mut levels: Vec<Level> = Vec::new();
    for round in 0..init_rounds {
        // Recompute all net values from current drives.
        let mut changed = false;
        for (net_idx, value) in net_values.iter_mut().enumerate() {
            if img.group_nontrivial[img.net_group[net_idx] as usize] {
                continue; // handled below per group
            }
            let v = img.external_drive(comp_drive, NetId(net_idx as u32));
            if *value != v {
                *value = v;
                changed = true;
            }
        }
        for gid in 0..img.groups.num_groups() as u32 {
            if !img.group_nontrivial[gid as usize] {
                continue;
            }
            group_out.clear();
            solver::resolve_group_into(
                netlist,
                &img.groups,
                gid,
                &mut scratch,
                |net| img.external_drive(comp_drive, net),
                |net| net_values[net.index()].level,
                |net| net_values[net.index()].level,
                &mut group_out,
            );
            for &(net, v) in &group_out {
                if net_values[net.index()] != v {
                    net_values[net.index()] = v;
                    changed = true;
                }
            }
        }
        // Re-evaluate all gates.
        for ci in 0..img.eval.len() {
            if let EvalKind::Gate { kind, .. } = img.eval[ci] {
                levels.clear();
                levels.extend(
                    img.gate_inputs
                        .row(ci)
                        .iter()
                        .map(|&n| net_values[n as usize].level),
                );
                let out = kind.evaluate(&levels);
                if comp_drive[ci] != out {
                    comp_drive[ci] = out;
                    last_scheduled[ci] = out;
                    changed = true;
                }
            }
        }
        if !changed && round > 0 {
            break;
        }
    }
}

/// Persistent per-tick scratch buffers, reused across every [`Simulator::step`].
#[derive(Debug, Default)]
struct Worklists {
    /// Changes popped from the wheel this tick.
    changes: Vec<Change>,
    /// Nets whose drive changed in phase 1.
    affected: StampSet,
    /// Causing component per affected net (last writer wins, matching
    /// `BTreeMap::insert` overwrite semantics).
    affected_cause: Vec<u32>,
    /// Nontrivial switch groups needing resolution this round.
    dirty_groups: StampSet,
    /// Fanout components to evaluate this round.
    to_eval: StampSet,
    /// Nets whose resolved value changed, with the causing component.
    changed_nets: Vec<(NetId, CompId)>,
    /// Sorted snapshot of `dirty_groups` for the settling pass.
    groups_now: Vec<u32>,
    /// Gate input levels gathered for one evaluation.
    levels: Vec<Level>,
    /// Output of one group resolution.
    group_out: Vec<(NetId, Signal)>,
    /// Switch-solver internal buffers.
    solver: solver::Scratch,
}

/// The event-driven gate/switch-level simulator.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: NetHold<'a>,
    config: SimConfig,
    wheel: TimingWheel<Change>,
    /// Immutable hot-path image (CSR adjacency, dispatch, group maps).
    img: Image,
    /// Resolved value of every net.
    net_values: Vec<Signal>,
    /// Output drive currently applied by every component (gates, inputs;
    /// pulls/rails hold their static drive).
    comp_drive: Vec<Signal>,
    /// Last drive scheduled (possibly still in flight) per component,
    /// used to suppress redundant schedules.
    last_scheduled: Vec<Signal>,
    /// Sequence number of each component's outstanding scheduled change
    /// (`None` when nothing is in flight); stale wheel entries are
    /// skipped at application time.
    pending_seq: Vec<Option<u64>>,
    /// Monotonic sequence counter for [`Change::seq`].
    seq_counter: u64,
    counters: WorkloadCounters,
    activity: ActivityProfile,
    trace: TickTrace,
    /// Per-phase wall-clock recorder (zero-sized no-op without the
    /// `obs` feature; disarmed unless [`SimConfig::observe`]).
    obs: obs::Lane,
    /// Reusable per-tick buffers (taken out of `self` during a step).
    ws: Worklists,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with default configuration and computes the
    /// power-up state (all nets settle from `X` without counting events).
    ///
    /// # Errors
    ///
    /// Returns [`PreflightError`] when the static pre-flight finds an
    /// error-level diagnostic (e.g. LS0001, a combinational cycle
    /// closed in zero time): such netlists would livelock the event
    /// loop inside a single tick, so they are refused up front.
    pub fn new(netlist: &'a Netlist) -> Result<Simulator<'a>, PreflightError> {
        Simulator::with_config(netlist, SimConfig::default())
    }

    /// Creates a simulator with explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PreflightError`] as for [`Simulator::new`].
    pub fn with_config(
        netlist: &'a Netlist,
        config: SimConfig,
    ) -> Result<Simulator<'a>, PreflightError> {
        let hold = if config.optimize {
            NetHold::Owned(Box::new(analyze::opt::optimize(netlist).netlist))
        } else {
            NetHold::Borrowed(netlist)
        };
        Simulator::from_hold(hold, config)
    }

    /// Creates a simulator that owns its netlist, so the returned value
    /// carries no borrow (`Simulator<'static>`). This is how a composite
    /// engine embeds per-lane event-driven simulators next to the
    /// netlist they simulate — e.g. the bit-parallel backend's
    /// switch-cluster fallback — without self-referential borrows.
    ///
    /// [`SimConfig::optimize`] applies to the supplied netlist as in
    /// [`Simulator::with_config`].
    ///
    /// # Errors
    ///
    /// Returns [`PreflightError`] as for [`Simulator::new`].
    pub fn with_config_owned(
        netlist: Netlist,
        config: SimConfig,
    ) -> Result<Simulator<'static>, PreflightError> {
        let hold = if config.optimize {
            NetHold::Owned(Box::new(analyze::opt::optimize(&netlist).netlist))
        } else {
            NetHold::Owned(Box::new(netlist))
        };
        Simulator::from_hold(hold, config)
    }

    fn from_hold(hold: NetHold<'a>, config: SimConfig) -> Result<Simulator<'a>, PreflightError> {
        let img = Image::build(hold.get())?;
        let nc = hold.get().num_components();
        let nn = hold.get().num_nets();
        let num_groups = img.groups.num_groups();

        let mut sim = Simulator {
            wheel: TimingWheel::new(config.wheel_size),
            net_values: vec![Signal::FLOATING; nn],
            comp_drive: img.static_drive.clone(),
            last_scheduled: vec![Signal::FLOATING; nc],
            counters: WorkloadCounters::new(),
            activity: ActivityProfile::new(nc),
            trace: TickTrace::new(),
            obs: obs::Lane::new(config.observe, obs::Origin::now(), config.obs_capacity),
            pending_seq: vec![None; nc],
            seq_counter: 0,
            ws: Worklists {
                affected: StampSet::with_capacity(nn),
                affected_cause: vec![0; nn],
                dirty_groups: StampSet::with_capacity(num_groups),
                to_eval: StampSet::with_capacity(nc),
                ..Worklists::default()
            },
            img,
            netlist: hold,
            config,
        };
        sim.initialize();
        Ok(sim)
    }

    /// Zero-delay relaxation to a consistent power-up state: evaluate
    /// every gate against current net levels, re-resolve all nets, and
    /// repeat until stable (or the round bound). No events are counted.
    fn initialize(&mut self) {
        relax_power_up(
            self.netlist.get(),
            &self.img,
            self.config.init_rounds,
            &mut self.net_values,
            &mut self.comp_drive,
            &mut self.last_scheduled,
        );
        self.trace.start = 0;
        self.trace.end = 0;
    }

    /// The netlist being simulated. With [`SimConfig::optimize`] this
    /// is the optimized netlist the engine owns, not the caller's.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist.get()
    }

    /// Current simulation tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.wheel.now()
    }

    /// Resolved signal on a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn signal(&self, net: NetId) -> Signal {
        self.net_values[net.index()]
    }

    /// Logic level on a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn level(&self, net: NetId) -> Level {
        self.net_values[net.index()].level
    }

    /// Workload counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> &WorkloadCounters {
        &self.counters
    }

    /// Per-component activity profile.
    #[must_use]
    pub fn activity(&self) -> &ActivityProfile {
        &self.activity
    }

    /// The collected trace (empty unless [`SimConfig::collect_trace`]).
    #[must_use]
    pub fn trace(&self) -> &TickTrace {
        &self.trace
    }

    /// Takes ownership of the collected trace, leaving an empty one.
    pub fn take_trace(&mut self) -> TickTrace {
        std::mem::take(&mut self.trace)
    }

    /// Resets counters, activity, trace, and phase observations (not
    /// circuit state); call after a warm-up run so measurements reflect
    /// steady state.
    pub fn reset_measurements(&mut self) {
        self.counters.reset();
        self.activity.reset();
        self.obs.reset();
        self.trace = TickTrace {
            start: self.now(),
            end: self.now(),
            ticks: Vec::new(),
        };
    }

    /// Snapshot of the per-phase wall-clock observations (one lane).
    /// Empty unless [`SimConfig::observe`] armed the recorder.
    #[cfg(feature = "obs")]
    #[must_use]
    pub fn obs_report(&self) -> obs::ObsReport {
        obs::ObsReport {
            lanes: vec![self.obs.report()],
            lane_names: vec!["serial".to_string()],
        }
    }

    /// Drives a primary input to `level` at the current tick.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, level: Level) {
        let comp = self.img.input_comp[net.index()];
        assert!(comp != u32::MAX, "{net} is not a primary input");
        let now = self.now();
        self.schedule_change(now, CompId(comp), Signal::strong(level));
    }

    /// Inertial scheduling: replaces any outstanding change for `comp`;
    /// a change back to the currently-applied drive cancels instead of
    /// scheduling (pulse absorption).
    fn schedule_change(&mut self, tick: u64, comp: CompId, drive: Signal) {
        if self.last_scheduled[comp.index()] == drive {
            return; // already heading there
        }
        self.last_scheduled[comp.index()] = drive;
        if drive == self.comp_drive[comp.index()] {
            // Re-evaluation back to the applied value: swallow the
            // in-flight pulse.
            self.pending_seq[comp.index()] = None;
            return;
        }
        self.seq_counter += 1;
        let seq = self.seq_counter;
        self.pending_seq[comp.index()] = Some(seq);
        self.wheel.schedule(tick, Change { comp, drive, seq });
    }

    /// External (non-switch) drive on a net: the join of all gate/input/
    /// pull/rail drivers' current output.
    #[inline]
    fn external_drive(&self, net: NetId) -> Signal {
        self.img.external_drive(&self.comp_drive, net)
    }

    /// Resolves one switch group against current drives into `out`
    /// (cleared first), reusing `scratch`.
    fn resolve_group_now_into(
        &self,
        gid: u32,
        scratch: &mut solver::Scratch,
        out: &mut Vec<(NetId, Signal)>,
    ) {
        out.clear();
        solver::resolve_group_into(
            self.netlist.get(),
            &self.img.groups,
            gid,
            scratch,
            |net| self.external_drive(net),
            |net| self.net_values[net.index()].level,
            |net| self.net_values[net.index()].level,
            out,
        );
    }

    /// Executes the current tick (apply changes, settle, evaluate
    /// fanout), then advances the clock by one.
    pub fn step(&mut self) {
        let mut ws = std::mem::take(&mut self.ws);
        self.step_inner(&mut ws);
        self.ws = ws;
    }

    fn step_inner(&mut self, ws: &mut Worklists) {
        let tick = self.now();
        // Event-list occupancy at the tick boundary ([WO86] statistic).
        let pending = self.wheel.len() as u64;
        self.counters.event_list_peak = self.counters.event_list_peak.max(pending);
        self.counters.event_list_sum += pending;
        ws.changes.clear();
        self.wheel.pop_current_into(&mut ws.changes);

        // Observe only ticks that popped work: idle ticks stay as cheap
        // as before (no clock reads), matching the parallel engine's
        // fast-forward path.
        let mut m = if ws.changes.is_empty() {
            obs::Mark::none()
        } else {
            self.obs.mark()
        };

        // Phase 1: apply drive changes; collect affected nets with the
        // causing component. Stale changes (descheduled by a later
        // re-evaluation) are skipped — that is the inertial filter.
        ws.affected.clear();
        for &Change { comp, drive, seq } in &ws.changes {
            if self.pending_seq[comp.index()] != Some(seq) {
                continue; // descheduled
            }
            self.pending_seq[comp.index()] = None;
            if self.comp_drive[comp.index()] == drive {
                continue;
            }
            self.comp_drive[comp.index()] = drive;
            if let Some(net) = self.img.comp_out[comp.index()] {
                ws.affected.insert(net.0);
                // Unconditional overwrite = BTreeMap last-writer-wins.
                ws.affected_cause[net.index()] = comp.0;
            }
        }

        m = self.obs.rec(Phase::Apply, tick, m, ws.changes.len() as u64);

        // Phase 2/3 loop: recompute net values (settling switch groups
        // instantaneously), record events, evaluate fanout.
        let mut events: Vec<EventRecord> = Vec::new();
        ws.dirty_groups.clear();
        ws.changed_nets.clear();
        for &net_idx in ws.affected.sorted() {
            let cause = CompId(ws.affected_cause[net_idx as usize]);
            let gid = self.img.net_group[net_idx as usize];
            if self.img.group_nontrivial[gid as usize] {
                ws.dirty_groups.insert(gid);
            } else {
                let net = NetId(net_idx);
                let v = self.external_drive(net);
                if self.net_values[net_idx as usize] != v {
                    self.net_values[net_idx as usize] = v;
                    ws.changed_nets.push((net, cause));
                }
            }
        }

        m = self.obs.rec(Phase::Exchange, tick, m, 0);

        let mut rounds = 0;
        let mut events_this_tick: u64 = 0;
        loop {
            // Settle dirty switch groups (instantaneous within the tick).
            ws.groups_now.clear();
            ws.groups_now.extend_from_slice(ws.dirty_groups.sorted());
            ws.dirty_groups.clear();
            for &gid in &ws.groups_now {
                self.counters.group_resolutions += 1;
                self.resolve_group_now_into(gid, &mut ws.solver, &mut ws.group_out);
                for &(net, v) in &ws.group_out {
                    if self.net_values[net.index()] != v {
                        self.net_values[net.index()] = v;
                        let cause = CompId(self.img.net_attr[net.index()]);
                        ws.changed_nets.push((net, cause));
                    }
                }
            }
            if !ws.groups_now.is_empty() {
                m = self
                    .obs
                    .rec(Phase::Resolve, tick, m, ws.groups_now.len() as u64);
            }
            if ws.changed_nets.is_empty() {
                break;
            }

            // Record events and collect fanout to evaluate.
            let messages_before = self.counters.messages_inf;
            ws.to_eval.clear();
            for &(net, cause) in &ws.changed_nets {
                self.counters.events += 1;
                events_this_tick += 1;
                self.activity.record(cause.index());
                let fanout = self.img.fanout.row(net.index());
                self.counters.messages_inf += fanout.len() as u64;
                if self.config.collect_trace {
                    events.push(EventRecord {
                        source: cause.0,
                        dests: fanout.to_vec(),
                    });
                }
                for &f in fanout {
                    ws.to_eval.insert(f);
                }
            }
            ws.changed_nets.clear();
            m = self.obs.rec(
                Phase::Exchange,
                tick,
                m,
                self.counters.messages_inf - messages_before,
            );

            // Evaluate fanout components: gates schedule delayed output
            // changes; switches mark their group dirty for this tick.
            let evals_before = self.counters.evaluations;
            for &ci in ws.to_eval.sorted() {
                match self.img.eval[ci as usize] {
                    EvalKind::Gate { kind, delay } => {
                        self.counters.evaluations += 1;
                        ws.levels.clear();
                        ws.levels.extend(
                            self.img
                                .gate_inputs
                                .row(ci as usize)
                                .iter()
                                .map(|&n| self.net_values[n as usize].level),
                        );
                        let out = kind.evaluate(&ws.levels);
                        let d = u64::from(delay.for_transition(out.level));
                        self.schedule_change(tick + d, CompId(ci), out);
                    }
                    EvalKind::Switch { group } => {
                        self.counters.evaluations += 1;
                        ws.dirty_groups.insert(group);
                    }
                    EvalKind::Passive => {}
                }
            }
            m = self.obs.rec(
                Phase::Eval,
                tick,
                m,
                self.counters.evaluations - evals_before,
            );

            if ws.dirty_groups.is_empty() {
                break;
            }
            rounds += 1;
            if rounds >= self.config.max_settle_rounds {
                self.counters.relaxation_overflows += 1;
                break;
            }
        }

        // Account the tick.
        if events_this_tick > 0 {
            self.counters.busy_ticks += 1;
            if self.config.collect_trace {
                self.trace.ticks.push(TickRecord { tick, events });
            }
        } else {
            self.counters.idle_ticks += 1;
        }
        self.wheel.advance();
        self.trace.end = self.now();
        self.obs.rec(Phase::Done, tick, m, events_this_tick);
    }

    /// Runs tick by tick until the clock reaches `tick` (exclusive).
    pub fn run_until(&mut self, tick: u64) {
        while self.now() < tick {
            self.step();
        }
    }

    /// Runs until no events remain scheduled or the clock reaches
    /// `max_tick`; returns the final tick.
    pub fn run_to_quiescence(&mut self, max_tick: u64) -> u64 {
        while !self.wheel.is_empty() && self.now() < max_tick {
            self.step();
        }
        self.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::{Delay, GateKind, NetlistBuilder, Strength, SwitchKind};

    fn inverter() -> Netlist {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::uniform(2));
        b.finish().unwrap()
    }

    #[test]
    fn inverter_propagates_after_delay() {
        let n = inverter();
        let a = n.find_net("a").unwrap();
        let y = n.find_net("y").unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        sim.set_input(a, Level::Zero);
        sim.step(); // tick 0: input applied, gate evaluated, change at t+2
        assert_eq!(sim.level(y), Level::X);
        sim.step(); // tick 1
        assert_eq!(sim.level(y), Level::X);
        sim.step(); // tick 2: output change applied
        assert_eq!(sim.level(y), Level::One);
    }

    #[test]
    fn rise_fall_delays_differ() {
        let mut b = NetlistBuilder::new("rf");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Buf, &[a], y, Delay::rise_fall(5, 1));
        let n = b.finish().unwrap();
        let (a, y) = (n.find_net("a").unwrap(), n.find_net("y").unwrap());
        let mut sim = Simulator::new(&n).expect("pre-flight");
        sim.set_input(a, Level::One);
        sim.run_until(4); // rise takes 5 ticks: t0 eval -> change at t5
        assert_eq!(sim.level(y), Level::X);
        sim.run_until(6);
        assert_eq!(sim.level(y), Level::One);
        sim.set_input(a, Level::Zero);
        sim.run_until(8); // fall takes 1 tick: applied at t7
        assert_eq!(sim.level(y), Level::Zero);
    }

    #[test]
    fn counters_track_busy_idle_events() {
        let n = inverter();
        let a = n.find_net("a").unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        sim.set_input(a, Level::Zero);
        sim.run_until(10);
        let c = sim.counters();
        assert_eq!(c.total_ticks(), 10);
        // tick 0: input event (a changes X->0); tick 2: y changes X->1.
        assert_eq!(c.busy_ticks, 2);
        assert_eq!(c.idle_ticks, 8);
        assert_eq!(c.events, 2);
        // a has fanout 1 (the gate); y has fanout 0.
        assert_eq!(c.messages_inf, 1);
    }

    #[test]
    fn no_change_input_generates_no_events() {
        let n = inverter();
        let a = n.find_net("a").unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        sim.set_input(a, Level::One);
        sim.run_until(5);
        sim.reset_measurements();
        sim.set_input(a, Level::One); // same value: suppressed
        sim.run_until(10);
        assert_eq!(sim.counters().events, 0);
        assert_eq!(sim.counters().busy_ticks, 0);
    }

    #[test]
    fn ring_oscillator_oscillates() {
        // Three inverters in a ring: period = 2 * sum(delays) = 6 ticks.
        let mut b = NetlistBuilder::new("ring");
        let n0 = b.net("n0");
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        b.gate(GateKind::Not, &[n0], n1, Delay::uniform(1));
        b.gate(GateKind::Not, &[n1], n2, Delay::uniform(1));
        let start = b.input("start");
        let y = b.net("y");
        b.gate(GateKind::Nand, &[n2, start], y, Delay::uniform(1));
        b.gate(GateKind::Buf, &[y], n0, Delay::uniform(1));
        let n = b.finish().unwrap();
        let start_net = n.find_net("start").unwrap();
        let n0_net = n.find_net("n0").unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        // A ring cannot bootstrap from all-X: hold start low so the NAND
        // forces a known 1 into the loop, then release.
        sim.set_input(start_net, Level::Zero);
        sim.run_until(10);
        sim.set_input(start_net, Level::One);
        sim.run_until(100);
        // Oscillation means busy ticks keep accruing and the value is
        // known (the X power-up state was flushed by the NAND).
        assert!(sim.counters().events > 20);
        assert!(sim.level(n0_net).is_known());
    }

    #[test]
    fn nand_latch_sets_and_holds() {
        let mut b = NetlistBuilder::new("latch");
        let s_n = b.input("s_n");
        let r_n = b.input("r_n");
        let q = b.net("q");
        let qn = b.net("qn");
        b.gate(GateKind::Nand, &[s_n, qn], q, Delay::uniform(1));
        b.gate(GateKind::Nand, &[r_n, q], qn, Delay::uniform(1));
        let n = b.finish().unwrap();
        let (s_n, r_n) = (n.find_net("s_n").unwrap(), n.find_net("r_n").unwrap());
        let (q, qn) = (n.find_net("q").unwrap(), n.find_net("qn").unwrap());
        let mut sim = Simulator::new(&n).expect("pre-flight");
        // Set: s_n=0, r_n=1 -> q=1.
        sim.set_input(s_n, Level::Zero);
        sim.set_input(r_n, Level::One);
        sim.run_until(10);
        assert_eq!(sim.level(q), Level::One);
        assert_eq!(sim.level(qn), Level::Zero);
        // Release set: latch holds.
        sim.set_input(s_n, Level::One);
        sim.run_until(20);
        assert_eq!(sim.level(q), Level::One);
        // Reset.
        sim.set_input(r_n, Level::Zero);
        sim.run_until(30);
        assert_eq!(sim.level(q), Level::Zero);
        assert_eq!(sim.level(qn), Level::One);
    }

    #[test]
    fn pass_transistor_mux_switch_level() {
        // Two nmos switches steer a or b onto z; pull-down keeps z defined.
        let mut b = NetlistBuilder::new("ptmux");
        let sel = b.input("sel");
        let sel_n = b.net("sel_n");
        b.gate(GateKind::Not, &[sel], sel_n, Delay::uniform(1));
        let a = b.input("a");
        let bb = b.input("b");
        let z = b.net("z");
        b.switch(SwitchKind::Nmos, sel, a, z);
        b.switch(SwitchKind::Nmos, sel_n, bb, z);
        let n = b.finish().unwrap();
        let nets = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        sim.set_input(nets("a"), Level::One);
        sim.set_input(nets("b"), Level::Zero);
        sim.set_input(nets("sel"), Level::One);
        sim.run_until(10);
        assert_eq!(sim.level(nets("z")), Level::One);
        sim.set_input(nets("sel"), Level::Zero);
        sim.run_until(20);
        assert_eq!(sim.level(nets("z")), Level::Zero);
    }

    #[test]
    fn trace_collection_matches_counters() {
        let n = inverter();
        let a = n.find_net("a").unwrap();
        let mut sim = Simulator::with_config(
            &n,
            SimConfig {
                collect_trace: true,
                ..SimConfig::default()
            },
        )
        .expect("pre-flight");
        sim.set_input(a, Level::Zero);
        sim.run_until(10);
        let t = sim.trace();
        assert_eq!(t.busy_ticks(), sim.counters().busy_ticks);
        assert_eq!(t.total_events(), sim.counters().events);
        assert_eq!(t.total_messages_inf(), sim.counters().messages_inf);
        assert_eq!(t.end - t.start, sim.counters().total_ticks());
    }

    #[test]
    fn tristate_bus_sharing() {
        let mut b = NetlistBuilder::new("bus");
        let d0 = b.input("d0");
        let e0 = b.input("e0");
        let d1 = b.input("d1");
        let e1 = b.input("e1");
        let bus = b.net("bus");
        b.gate(GateKind::Tristate, &[d0, e0], bus, Delay::uniform(1));
        b.gate(GateKind::Tristate, &[d1, e1], bus, Delay::uniform(1));
        let n = b.finish().unwrap();
        let nets = |s: &str| n.find_net(s).unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        sim.set_input(nets("d0"), Level::One);
        sim.set_input(nets("e0"), Level::One);
        sim.set_input(nets("d1"), Level::Zero);
        sim.set_input(nets("e1"), Level::Zero);
        sim.run_until(10);
        assert_eq!(sim.level(nets("bus")), Level::One);
        // Swap drivers.
        sim.set_input(nets("e0"), Level::Zero);
        sim.set_input(nets("e1"), Level::One);
        sim.run_until(20);
        assert_eq!(sim.level(nets("bus")), Level::Zero);
        // Both off: bus floats, retaining charge (level 0 at HighZ).
        sim.set_input(nets("e1"), Level::Zero);
        sim.run_until(30);
        assert_eq!(sim.signal(nets("bus")).strength, Strength::HighZ);
    }

    #[test]
    fn quiescence_stops_early() {
        let n = inverter();
        let a = n.find_net("a").unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        sim.set_input(a, Level::Zero);
        let end = sim.run_to_quiescence(1_000_000);
        assert!(end < 100, "quiesced at {end}");
    }

    #[test]
    fn preflight_refuses_zero_delay_loop() {
        let mut b = NetlistBuilder::new("livelock");
        let e = b.input("e");
        let y = b.net("y");
        b.gate(GateKind::Nand, &[e, y], y, Delay { rise: 0, fall: 0 });
        let n = b.finish().unwrap();
        let err = Simulator::new(&n).expect_err("zero-delay loop must be refused");
        assert_eq!(err.circuit, "livelock");
        assert_eq!(err.diagnostics.len(), 1);
        let text = err.to_string();
        assert!(text.contains("LS0001"), "{text}");
        assert!(text.contains("fails pre-flight"), "{text}");
    }

    #[test]
    fn stamp_set_epoch_wraparound_resets_stamps() {
        let mut s = StampSet::with_capacity(4);
        s.epoch = u32::MAX;
        s.insert(2);
        assert_eq!(s.sorted(), &[2]);
        s.clear(); // wraps: stamps must be reset, not left matching
        assert!(s.is_empty());
        s.insert(2);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.sorted(), &[1, 2]);
    }
}
