//! Synchronization primitives for the parallel engine.
//!
//! The parallel engine ([`crate::par_engine`]) runs in strict
//! bulk-synchronous phases: the master publishes a command, every party
//! does its share of the phase, and a barrier separates the phases. All
//! shared state is written by exactly one party per phase (single-writer
//! discipline), and the barrier's release/acquire pair provides the
//! happens-before edge that makes the next phase's reads sound. The
//! types here encode that discipline: a sense-reversing spin barrier and
//! two `UnsafeCell`-based containers whose `unsafe` accessors document
//! the phase-ownership obligation.
//!
//! The discipline is *checked*, not just documented, on three levels:
//!
//! * compiling with `RUSTFLAGS="--cfg loom"` swaps the primitives
//!   ([`crate::sync_shim`]) for the vendored loom model checker, and
//!   the `loom_*` tests below explore every interleaving of small
//!   barrier/container schedules, including negative tests proving the
//!   checker rejects a broken barrier and an undisciplined writer;
//! * building with `--features phase-check` records every accessor
//!   call per element and phase ([`crate::phase_check`]) and panics on
//!   single-writer violations at full engine scale;
//! * `cargo xtask lint-unsafe` confines `unsafe` to this module, the
//!   shim, and the engine, and insists on `// SAFETY:` comments.

// The parallel engine's only unsafe code lives in this module, the
// sync shim, and par_engine (workspace lints deny it elsewhere); every
// block carries a SAFETY comment tied to the phase discipline above.
#![allow(unsafe_code)]

use crate::phase_check::{PhaseClock, Recorder};
use crate::sync_shim::{hint, thread, AtomicUsize, Ordering, UnsafeCell};

/// A reusable sense-reversing spin barrier for a fixed number of
/// parties.
///
/// The last arriver resets the count and bumps the generation with
/// `Release`; waiters spin on the generation with `Acquire`, so
/// everything written before a party's `wait` is visible to every party
/// after the barrier opens. After a short spin the waiters yield, which
/// keeps the barrier usable even when the host has fewer cores than
/// parties (including the single-core worst case).
///
/// The barrier also drives the phase-discipline clock: the last
/// arriver advances the [`PhaseClock`] just before reopening the
/// barrier, so (with `--features phase-check`) the access epoch
/// changes exactly when a new phase begins and never while any party
/// is mid-phase.
#[derive(Debug)]
pub(crate) struct SpinBarrier {
    parties: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    clock: PhaseClock,
}

impl SpinBarrier {
    /// Creates a barrier for `parties` participants, advancing `clock`
    /// at each crossing.
    pub(crate) fn new(parties: usize, clock: &PhaseClock) -> SpinBarrier {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            clock: clock.clone(),
        }
    }

    /// Blocks until all parties have arrived.
    pub(crate) fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            self.count.store(0, Ordering::Relaxed);
            // Before the Release bump: parties released by the bump
            // must already see the new epoch.
            self.clock.advance();
            self.generation.fetch_add(1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < 64 {
                hint::spin_loop();
            } else {
                thread::yield_now();
            }
        }
    }
}

/// A fixed-length array of `Copy` values shared between parties, one
/// `UnsafeCell` per element (so no `&mut` to the whole array ever
/// exists and per-element access from different threads is not UB by
/// construction — only a data race on the *same* element would be).
///
/// # Safety contract
///
/// Callers must uphold the engine's phase discipline: within one
/// barrier-delimited phase, each element is written by at most one
/// party, and no party reads an element another party writes in the
/// same phase. The barrier orders cross-phase accesses.
#[derive(Debug)]
pub(crate) struct SharedVec<T> {
    cells: Box<[UnsafeCell<T>]>,
    recorder: Recorder,
}

// SAFETY: access is coordinated by the engine's barrier phases per the
// safety contract above; the cells themselves are plain data.
unsafe impl<T: Send> Sync for SharedVec<T> {}

impl<T: Copy> SharedVec<T> {
    /// Wraps a vector's elements in per-element cells, recording
    /// accesses against `clock`'s phases.
    pub(crate) fn from_vec(v: Vec<T>, clock: &PhaseClock) -> SharedVec<T> {
        let recorder = Recorder::new(clock, v.len());
        SharedVec {
            cells: v.into_iter().map(UnsafeCell::new).collect(),
            recorder,
        }
    }

    /// Number of elements.
    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }

    /// Reads element `i`.
    ///
    /// # Safety
    ///
    /// No other party may be writing element `i` in the current phase.
    #[inline]
    pub(crate) unsafe fn get(&self, i: usize) -> T {
        self.recorder.on_read(i);
        // SAFETY: per the caller's contract no party writes element `i`
        // this phase, so this shared read cannot race.
        self.cells[i].with(|p| unsafe { *p })
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// The caller must be the unique party accessing element `i` in the
    /// current phase.
    #[inline]
    pub(crate) unsafe fn set(&self, i: usize, v: T) {
        self.recorder.on_write(i);
        // SAFETY: per the caller's contract this party is the only one
        // touching element `i` this phase, so the exclusive write
        // cannot race and no other reference to the element exists.
        self.cells[i].with_mut(|p| unsafe { *p = v });
    }

    /// Copies the contents out (single-threaded contexts only).
    pub(crate) fn snapshot(&self) -> Vec<T> {
        // SAFETY: callers invoke this only while no worker threads are
        // running (between `run` calls), so no concurrent writers exist.
        (0..self.len()).map(|i| unsafe { self.get(i) }).collect()
    }
}

/// A fixed set of per-party slots holding arbitrary (non-`Copy`) state,
/// accessed by `&mut` through an index.
///
/// # Safety contract
///
/// Same phase discipline as [`SharedVec`], at slot granularity: each
/// slot is touched by exactly one party per phase (its owner during
/// worker phases; the master between phases, while the workers are
/// parked at the barrier).
#[derive(Debug)]
pub(crate) struct SharedSlots<T> {
    slots: Box<[UnsafeCell<T>]>,
    recorder: Recorder,
}

// SAFETY: slot access is coordinated by the engine's barrier phases per
// the safety contract above.
unsafe impl<T: Send> Sync for SharedSlots<T> {}

impl<T> SharedSlots<T> {
    /// Builds the slots from an iterator, one per party, recording
    /// accesses against `clock`'s phases.
    pub(crate) fn from_iter(it: impl IntoIterator<Item = T>, clock: &PhaseClock) -> SharedSlots<T> {
        let slots: Box<[UnsafeCell<T>]> = it.into_iter().map(UnsafeCell::new).collect();
        let recorder = Recorder::new(clock, slots.len());
        SharedSlots { slots, recorder }
    }

    /// Number of slots.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Shared access to slot `i` (e.g. every worker reading the phase
    /// command the master published before the barrier).
    ///
    /// # Safety
    ///
    /// No party may be writing slot `i` in the current phase.
    #[inline]
    pub(crate) unsafe fn get(&self, i: usize) -> &T {
        self.recorder.on_read(i);
        let p = self.slots[i].with(|p| p);
        // SAFETY: per the caller's contract nobody writes slot `i` this
        // phase, so shared references to it cannot alias a `&mut`.
        unsafe { &*p }
    }

    /// Mutable access to slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must be the unique party accessing slot `i` in the
    /// current phase, and must not hold two references to the same slot.
    #[inline]
    #[allow(clippy::mut_from_ref)] // interior mutability guarded by the phase protocol
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        self.recorder.on_write(i);
        let p = self.slots[i].with_mut(|p| p);
        // SAFETY: per the caller's contract this party is the only one
        // touching slot `i` this phase and holds no other reference to
        // it, so handing out `&mut` is exclusive.
        unsafe { &mut *p }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_synchronizes_counters() {
        let barrier = SpinBarrier::new(4, &PhaseClock::new());
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for round in 1..=10u64 {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        barrier.wait();
                        // All parties incremented before anyone proceeds.
                        assert_eq!(
                            counter.load(std::sync::atomic::Ordering::Relaxed),
                            round * 3
                        );
                        barrier.wait();
                    }
                });
            }
            for round in 1..=10u64 {
                barrier.wait();
                assert_eq!(
                    counter.load(std::sync::atomic::Ordering::Relaxed),
                    round * 3
                );
                barrier.wait();
            }
        });
    }

    #[test]
    fn shared_vec_roundtrip() {
        let v = SharedVec::from_vec(vec![1u32, 2, 3], &PhaseClock::new());
        assert_eq!(v.len(), 3);
        // SAFETY: single-threaded test.
        unsafe {
            v.set(1, 9);
            assert_eq!(v.get(1), 9);
        }
        assert_eq!(v.snapshot(), vec![1, 9, 3]);
    }

    /// A seeded single-writer violation through the real accessors is
    /// caught deterministically: one thread, party id switched between
    /// the two writes, no barrier crossing in between.
    #[cfg(feature = "phase-check")]
    #[test]
    #[should_panic(expected = "phase-discipline violation")]
    fn seeded_two_writer_violation_is_caught() {
        let clock = PhaseClock::new();
        let v = SharedVec::from_vec(vec![0u32; 4], &clock);
        crate::phase_check::set_party(0);
        // SAFETY: single-threaded — the *phase* discipline (not memory
        // safety) is deliberately violated to prove the checker fires.
        unsafe { v.set(2, 1) };
        crate::phase_check::set_party(1);
        // SAFETY: see above — second party, same element, same phase.
        unsafe { v.set(2, 2) };
    }

    #[test]
    fn shared_slots_indexing() {
        let s = SharedSlots::from_iter(vec![vec![0u8; 0], vec![7u8]], &PhaseClock::new());
        assert_eq!(s.len(), 2);
        // SAFETY: single-threaded test.
        unsafe {
            s.get_mut(0).push(5);
            assert_eq!(s.get_mut(0).as_slice(), &[5]);
            assert_eq!(s.get_mut(1).as_slice(), &[7]);
        }
    }
}

/// Model-checked schedules: run with
/// `RUSTFLAGS="--cfg loom" cargo test -p logicsim-sim --lib loom_`.
///
/// The two-party tests are exhaustive (every interleaving); the
/// three-party tests bound preemptions (CHESS-style), which is where
/// essentially all concurrency bugs live for programs this small.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::*;
    use loom::sync::Arc;

    /// Two parties crossing the barrier twice, passing a message each
    /// way through a `SharedVec`. Exhaustive: proves the generation
    /// bump/reset protocol provides the happens-before edge the
    /// single-writer discipline relies on, across barrier reuse.
    #[test]
    fn loom_barrier_two_parties_message_passing() {
        loom::model(|| {
            let clock = PhaseClock::new();
            let barrier = Arc::new(SpinBarrier::new(2, &clock));
            let vals = Arc::new(SharedVec::from_vec(vec![0u32, 0], &clock));
            let b = Arc::clone(&barrier);
            let v = Arc::clone(&vals);
            let worker = loom::thread::spawn(move || {
                // Phase 1: worker writes element 1.
                // SAFETY: element 1 is worker-owned this phase.
                unsafe { v.set(1, 7) };
                b.wait();
                // Phase 2: worker reads the master's element 0.
                // SAFETY: nobody writes element 0 after the barrier.
                unsafe { v.get(0) }
            });
            // Phase 1: master writes element 0.
            // SAFETY: element 0 is master-owned this phase.
            unsafe { vals.set(0, 3) };
            barrier.wait();
            // Phase 2: master reads the worker's element 1.
            // SAFETY: nobody writes element 1 after the barrier.
            let got = unsafe { vals.get(1) };
            assert_eq!(got, 7);
            assert_eq!(worker.join().unwrap(), 3);
        });
    }

    /// Two parties reusing the barrier for two full generations, with
    /// alternating element ownership. Exhaustive: proves the
    /// count-reset (`store(0, Relaxed)`) cannot corrupt a subsequent
    /// generation's arrival count.
    #[test]
    fn loom_barrier_two_parties_reuse_two_generations() {
        loom::model(|| {
            let clock = PhaseClock::new();
            let barrier = Arc::new(SpinBarrier::new(2, &clock));
            let vals = Arc::new(SharedVec::from_vec(vec![0u32], &clock));
            let b = Arc::clone(&barrier);
            let v = Arc::clone(&vals);
            let worker = loom::thread::spawn(move || {
                // SAFETY: element 0 is worker-owned in phase 1.
                unsafe { v.set(0, 1) };
                b.wait();
                b.wait();
                // SAFETY: phase 3 reads the master's phase-2 write.
                unsafe { v.get(0) }
            });
            barrier.wait();
            // SAFETY: element 0 is master-owned in phase 2.
            unsafe { vals.set(0, 2) };
            barrier.wait();
            assert_eq!(worker.join().unwrap(), 2);
        });
    }

    /// Three parties, one crossing, disjoint writes then a gather.
    /// Preemption-bounded: 3-thread interleavings are too many to
    /// enumerate outright, and bound 3 covers every schedule reachable
    /// with up to three forced preemptions.
    #[test]
    fn loom_barrier_three_parties_bounded() {
        let mut b = loom::model::Builder::new();
        b.preemption_bound = Some(3);
        b.check(|| {
            let clock = PhaseClock::new();
            let barrier = Arc::new(SpinBarrier::new(3, &clock));
            let vals = Arc::new(SharedVec::from_vec(vec![0u32, 0, 0], &clock));
            let mut handles = Vec::new();
            for w in 0..2usize {
                let b = Arc::clone(&barrier);
                let v = Arc::clone(&vals);
                handles.push(loom::thread::spawn(move || {
                    // SAFETY: element `w` is owned by worker `w` this
                    // phase.
                    unsafe { v.set(w, w as u32 + 1) };
                    b.wait();
                }));
            }
            // SAFETY: element 2 is master-owned this phase.
            unsafe { vals.set(2, 3) };
            barrier.wait();
            // SAFETY: after the barrier all writes are ordered before
            // this gather and nobody writes anymore.
            let sum = (0..3).map(|i| unsafe { vals.get(i) }).sum::<u32>();
            assert_eq!(sum, 6);
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    /// A miniature two-worker engine phase mirroring
    /// `par_engine::Master::phase`: the master publishes a command in
    /// per-party slots, a barrier opens the worker phase, each worker
    /// reads its slot and writes its own result element, and a second
    /// barrier hands the results back to the master.
    #[test]
    fn loom_mini_engine_two_phase_schedule() {
        let mut b = loom::model::Builder::new();
        b.preemption_bound = Some(2);
        b.check(|| {
            let clock = PhaseClock::new();
            let barrier = Arc::new(SpinBarrier::new(3, &clock));
            let cmd = Arc::new(SharedSlots::from_iter(vec![0u32], &clock));
            let out = Arc::new(SharedVec::from_vec(vec![0u32, 0], &clock));
            let mut handles = Vec::new();
            for w in 0..2usize {
                let b = Arc::clone(&barrier);
                let c = Arc::clone(&cmd);
                let o = Arc::clone(&out);
                handles.push(loom::thread::spawn(move || {
                    b.wait();
                    // Worker phase: shared command, own result element.
                    // SAFETY: nobody writes the command slot while the
                    // master is parked at the barrier.
                    let c = *unsafe { c.get(0) };
                    // SAFETY: element `w` is owned by worker `w`.
                    unsafe { o.set(w, c + w as u32) };
                    b.wait();
                }));
            }
            // Master phase: publish the command.
            // SAFETY: workers are not yet released; the master is the
            // unique party this phase.
            *unsafe { cmd.get_mut(0) } = 10;
            barrier.wait(); // open worker phase
            barrier.wait(); // wait for results
                            // SAFETY: workers are parked/finished; master-only phase.
            let (a, b2) = unsafe { (out.get(0), out.get(1)) };
            assert_eq!((a, b2), (10, 11));
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    /// Negative control: a barrier whose generation bump is `Relaxed`
    /// provides no happens-before edge, so the cross-phase hand-off
    /// that the real barrier makes sound is flagged as a data race.
    /// This proves the checker can actually see the failure mode the
    /// `Release`/`Acquire` pair exists to prevent.
    #[test]
    #[should_panic(expected = "data race")]
    fn loom_broken_relaxed_barrier_races() {
        loom::model(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let cell = Arc::new(UnsafeCell::new(0u32));
            let f = Arc::clone(&flag);
            let c = Arc::clone(&cell);
            let worker = loom::thread::spawn(move || {
                c.with_mut(|p| {
                    // SAFETY: modeled access; loom reports the race.
                    unsafe { *p = 42 };
                });
                // Broken hand-off: Relaxed carries no release edge.
                f.store(1, Ordering::Relaxed);
            });
            while flag.load(Ordering::Relaxed) == 0 {
                hint::spin_loop();
            }
            let got = cell.with(|p| {
                // SAFETY: modeled access; loom reports the race.
                unsafe { *p }
            });
            assert_eq!(got, 42);
            worker.join().unwrap();
        });
    }

    /// Negative control: two parties writing the same `SharedVec`
    /// element in the same phase — the exact single-writer violation
    /// the phase discipline forbids — is flagged as a data race.
    #[test]
    #[should_panic(expected = "data race")]
    fn loom_shared_vec_two_writers_race() {
        loom::model(|| {
            let clock = PhaseClock::new();
            let vals = Arc::new(SharedVec::from_vec(vec![0u32], &clock));
            let v = Arc::clone(&vals);
            let worker = loom::thread::spawn(move || {
                // SAFETY: deliberately violates the contract (both
                // parties write element 0 with no barrier between);
                // loom reports the race instead of exhibiting UB.
                unsafe { v.set(0, 1) };
            });
            // SAFETY: see above — intentional violation under the model.
            unsafe { vals.set(0, 2) };
            worker.join().unwrap();
        });
    }
}
