//! Synchronization primitives for the parallel engine.
//!
//! The parallel engine ([`crate::par_engine`]) runs in strict
//! bulk-synchronous phases: the master publishes a command, every party
//! does its share of the phase, and a barrier separates the phases. All
//! shared state is written by exactly one party per phase (single-writer
//! discipline), and the barrier's release/acquire pair provides the
//! happens-before edge that makes the next phase's reads sound. The
//! types here encode that discipline: a sense-reversing spin barrier and
//! two `UnsafeCell`-based containers whose `unsafe` accessors document
//! the phase-ownership obligation.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable sense-reversing spin barrier for a fixed number of
/// parties.
///
/// The last arriver resets the count and bumps the generation with
/// `Release`; waiters spin on the generation with `Acquire`, so
/// everything written before a party's `wait` is visible to every party
/// after the barrier opens. After a short spin the waiters yield, which
/// keeps the barrier usable even when the host has fewer cores than
/// parties (including the single-core worst case).
#[derive(Debug)]
pub(crate) struct SpinBarrier {
    parties: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Creates a barrier for `parties` participants.
    pub(crate) fn new(parties: usize) -> SpinBarrier {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all parties have arrived.
    pub(crate) fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// A fixed-length array of `Copy` values shared between parties, one
/// `UnsafeCell` per element (so no `&mut` to the whole array ever
/// exists and per-element access from different threads is not UB by
/// construction — only a data race on the *same* element would be).
///
/// # Safety contract
///
/// Callers must uphold the engine's phase discipline: within one
/// barrier-delimited phase, each element is written by at most one
/// party, and no party reads an element another party writes in the
/// same phase. The barrier orders cross-phase accesses.
#[derive(Debug)]
pub(crate) struct SharedVec<T> {
    cells: Box<[UnsafeCell<T>]>,
}

// SAFETY: access is coordinated by the engine's barrier phases per the
// safety contract above; the cells themselves are plain data.
unsafe impl<T: Send> Sync for SharedVec<T> {}

impl<T: Copy> SharedVec<T> {
    /// Wraps a vector's elements in per-element cells.
    pub(crate) fn from_vec(v: Vec<T>) -> SharedVec<T> {
        SharedVec {
            cells: v.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    /// Number of elements.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }

    /// Reads element `i`.
    ///
    /// # Safety
    ///
    /// No other party may be writing element `i` in the current phase.
    #[inline]
    pub(crate) unsafe fn get(&self, i: usize) -> T {
        *self.cells[i].get()
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// The caller must be the unique party accessing element `i` in the
    /// current phase.
    #[inline]
    pub(crate) unsafe fn set(&self, i: usize, v: T) {
        *self.cells[i].get() = v;
    }

    /// Copies the contents out (single-threaded contexts only).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn snapshot(&self) -> Vec<T> {
        // SAFETY: callers invoke this only while no worker threads are
        // running (between `run` calls), so no concurrent writers exist.
        (0..self.len()).map(|i| unsafe { self.get(i) }).collect()
    }
}

/// A fixed set of per-party slots holding arbitrary (non-`Copy`) state,
/// accessed by `&mut` through an index.
///
/// # Safety contract
///
/// Same phase discipline as [`SharedVec`], at slot granularity: each
/// slot is touched by exactly one party per phase (its owner during
/// worker phases; the master between phases, while the workers are
/// parked at the barrier).
#[derive(Debug)]
pub(crate) struct SharedSlots<T> {
    slots: Box<[UnsafeCell<T>]>,
}

// SAFETY: slot access is coordinated by the engine's barrier phases per
// the safety contract above.
unsafe impl<T: Send> Sync for SharedSlots<T> {}

impl<T> SharedSlots<T> {
    /// Builds the slots from an iterator, one per party.
    pub(crate) fn from_iter(it: impl IntoIterator<Item = T>) -> SharedSlots<T> {
        SharedSlots {
            slots: it.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    /// Number of slots.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Mutable access to slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must be the unique party accessing slot `i` in the
    /// current phase, and must not hold two references to the same slot.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.slots[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_synchronizes_counters() {
        let barrier = SpinBarrier::new(4);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for round in 1..=10u64 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // All parties incremented before anyone proceeds.
                        assert_eq!(counter.load(Ordering::Relaxed), round * 3);
                        barrier.wait();
                    }
                });
            }
            for round in 1..=10u64 {
                barrier.wait();
                assert_eq!(counter.load(Ordering::Relaxed), round * 3);
                barrier.wait();
            }
        });
    }

    #[test]
    fn shared_vec_roundtrip() {
        let v = SharedVec::from_vec(vec![1u32, 2, 3]);
        assert_eq!(v.len(), 3);
        // SAFETY: single-threaded test.
        unsafe {
            v.set(1, 9);
            assert_eq!(v.get(1), 9);
        }
        assert_eq!(v.snapshot(), vec![1, 9, 3]);
    }

    #[test]
    fn shared_slots_indexing() {
        let s = SharedSlots::from_iter(vec![vec![0u8; 0], vec![7u8]]);
        assert_eq!(s.len(), 2);
        // SAFETY: single-threaded test.
        unsafe {
            s.get_mut(0).push(5);
            assert_eq!(s.get_mut(0).as_slice(), &[5]);
            assert_eq!(s.get_mut(1).as_slice(), &[7]);
        }
    }
}
