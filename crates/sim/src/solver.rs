//! Switch-level resolution of channel-connected net groups.
//!
//! Bidirectional MOS switches connect nets into channel-connected groups
//! (computed by [`logicsim_netlist::ChannelGroups`]). Whenever any
//! external drive or switch control in a group changes, the whole group
//! is re-resolved: externally-driven values spread through conducting
//! switches, degrading in strength ([`Signal::through_switch`]), and
//! contributions meeting at a net join in the (strength, level) lattice.
//! Nets no driver reaches retain their previous level as stored charge.
//!
//! Switches whose control is `X` are handled pessimistically: they
//! propagate their source's value with level forced to `X`, so an
//! uncertain connection can never manufacture a confident `0`/`1`.

use logicsim_netlist::{ChannelGroups, Component, Level, NetId, Netlist, Signal, Strength};

/// Reusable buffers for [`resolve_group_into`], so the per-tick settling
/// loop performs no allocation once the buffers have grown to the size
/// of the largest group.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    contrib: Vec<Signal>,
    /// `(local_a, local_b, control_unknown)` per possibly-conducting
    /// switch.
    edges: Vec<(usize, usize, bool)>,
    /// CSR adjacency over local nodes: `adj[adj_off[i]..adj_off[i+1]]`
    /// holds `(neighbor, control_unknown)` for every edge incident to
    /// `i`. Built per call (conduction states change between calls);
    /// lets the relaxation scan only incident edges instead of the
    /// whole group's edge list on every pop.
    adj_off: Vec<u32>,
    adj: Vec<(u32, bool)>,
    fill: Vec<u32>,
    dirty: Vec<usize>,
    on_list: Vec<bool>,
}

/// Resolves one channel group to a fixpoint.
///
/// * `ext_drive(net)` — the join of all non-switch drivers currently on
///   `net` (gate outputs, inputs, pulls, rails).
/// * `control_level(net)` — current level of any net (used for switch
///   controls, which may lie outside the group).
/// * `prev_level(net)` — the net's level before this resolution, used
///   for charge retention.
///
/// Returns `(net, resolved)` for every member net, in member order.
///
/// The propagation is a monotone fixpoint in the signal join lattice, so
/// it terminates in at most `O(members * lattice_height)` relaxations
/// regardless of switch topology (including cycles).
#[must_use]
pub fn resolve_group<FD, FC, FP>(
    netlist: &Netlist,
    groups: &ChannelGroups,
    group: u32,
    ext_drive: FD,
    control_level: FC,
    prev_level: FP,
) -> Vec<(NetId, Signal)>
where
    FD: Fn(NetId) -> Signal,
    FC: Fn(NetId) -> Level,
    FP: Fn(NetId) -> Level,
{
    let mut scratch = Scratch::default();
    let mut out = Vec::new();
    resolve_group_into(
        netlist,
        groups,
        group,
        &mut scratch,
        ext_drive,
        control_level,
        prev_level,
        &mut out,
    );
    out
}

/// Allocation-free variant of [`resolve_group`]: relaxes inside
/// `scratch`'s buffers and appends `(net, resolved)` pairs to `out` in
/// member order. Results are identical to [`resolve_group`].
#[expect(
    clippy::too_many_arguments,
    reason = "mirrors resolve_group's closure interface plus the two buffers"
)]
pub fn resolve_group_into<FD, FC, FP>(
    netlist: &Netlist,
    groups: &ChannelGroups,
    group: u32,
    scratch: &mut Scratch,
    ext_drive: FD,
    control_level: FC,
    prev_level: FP,
    out: &mut Vec<(NetId, Signal)>,
) where
    FD: Fn(NetId) -> Signal,
    FC: Fn(NetId) -> Level,
    FP: Fn(NetId) -> Level,
{
    let members = groups.members(group);
    // Local dense indexing of member nets.
    let local = |net: NetId| -> usize {
        members
            .binary_search(&net)
            .or_else(|_| members.iter().position(|&m| m == net).ok_or(()))
            .expect("switch channel net must belong to its group")
    };
    let contrib = &mut scratch.contrib;
    contrib.clear();
    contrib.extend(members.iter().map(|&n| ext_drive(n)));

    // Edge list: (local_a, local_b, conduction) where conduction is
    // Some(true) conducting, Some(false) open, None unknown.
    let edges = &mut scratch.edges;
    edges.clear();
    for &sw in groups.switches(group) {
        if let Component::Switch {
            kind,
            control,
            a,
            b,
        } = netlist.component(sw)
        {
            let cond = kind.conducts(control_level(*control));
            if cond != Some(false) {
                edges.push((local(*a), local(*b), cond.is_none()));
            }
        }
    }

    // Per-node adjacency (CSR over the scratch buffers), so each
    // relaxation step visits only the popped node's incident edges.
    // The fixpoint is a monotone join, hence order-independent: the
    // result is identical to scanning the full edge list per pop.
    let nloc = members.len();
    let adj_off = &mut scratch.adj_off;
    adj_off.clear();
    adj_off.resize(nloc + 1, 0);
    for &(a, b, _) in edges.iter() {
        adj_off[a + 1] += 1;
        adj_off[b + 1] += 1;
    }
    for i in 0..nloc {
        adj_off[i + 1] += adj_off[i];
    }
    let adj = &mut scratch.adj;
    adj.clear();
    adj.resize(2 * edges.len(), (0, false));
    let fill = &mut scratch.fill;
    fill.clear();
    fill.extend_from_slice(&adj_off[..nloc]);
    for &(a, b, unknown) in edges.iter() {
        adj[fill[a] as usize] = (b as u32, unknown);
        fill[a] += 1;
        adj[fill[b] as usize] = (a as u32, unknown);
        fill[b] += 1;
    }

    // Worklist relaxation to fixpoint.
    let dirty = &mut scratch.dirty;
    dirty.clear();
    dirty.extend(0..nloc);
    let on_list = &mut scratch.on_list;
    on_list.clear();
    on_list.resize(nloc, true);
    while let Some(i) = dirty.pop() {
        on_list[i] = false;
        for &(nbr, unknown) in &adj[adj_off[i] as usize..adj_off[i + 1] as usize] {
            let mut cand = contrib[i].through_switch();
            if unknown {
                // Maybe-connected: whatever arrives is of uncertain level.
                cand.level = Level::X;
            }
            if cand.strength == Strength::HighZ {
                continue;
            }
            let dst = nbr as usize;
            let joined = contrib[dst].resolve(cand);
            if joined != contrib[dst] {
                contrib[dst] = joined;
                if !on_list[dst] {
                    on_list[dst] = true;
                    dirty.push(dst);
                }
            }
        }
    }

    out.extend(members.iter().zip(contrib.iter()).map(|(&net, &sig)| {
        if sig.strength == Strength::HighZ {
            // Charge retention: the net keeps its previous level,
            // flagged as undriven.
            (net, Signal::new(prev_level(net), Strength::HighZ))
        } else {
            (net, sig)
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::{NetlistBuilder, SwitchKind};

    /// a --nmos(ctl)-- m --nmos(ctl)-- z, with `a` strongly driven.
    fn chain() -> (Netlist, NetId, NetId, NetId, NetId) {
        let mut b = NetlistBuilder::new("chain");
        let ctl = b.input("ctl");
        let a = b.input("a");
        let m = b.net("m");
        let z = b.net("z");
        b.switch(SwitchKind::Nmos, ctl, a, m);
        b.switch(SwitchKind::Nmos, ctl, m, z);
        let n = b.finish().unwrap();
        (n, ctl, a, m, z)
    }

    fn solve(
        n: &Netlist,
        drives: &[(NetId, Signal)],
        controls: &[(NetId, Level)],
    ) -> Vec<(NetId, Signal)> {
        let groups = ChannelGroups::compute(n);
        let gid = groups.group_of(drives[0].0);
        resolve_group(
            n,
            &groups,
            gid,
            |net| {
                drives
                    .iter()
                    .find(|&&(d, _)| d == net)
                    .map_or(Signal::FLOATING, |&(_, s)| s)
            },
            |net| {
                controls
                    .iter()
                    .find(|&&(c, _)| c == net)
                    .map_or(Level::X, |&(_, l)| l)
            },
            |_| Level::X,
        )
    }

    fn value_of(result: &[(NetId, Signal)], net: NetId) -> Signal {
        result.iter().find(|&&(n, _)| n == net).unwrap().1
    }

    #[test]
    fn conducting_chain_passes_degraded_value() {
        let (n, ctl, a, m, z) = chain();
        let r = solve(&n, &[(a, Signal::HIGH)], &[(ctl, Level::One)]);
        assert_eq!(value_of(&r, a), Signal::HIGH);
        assert_eq!(value_of(&r, m), Signal::weak(Level::One));
        assert_eq!(value_of(&r, z), Signal::weak(Level::One));
    }

    #[test]
    fn open_chain_retains_charge() {
        let (n, ctl, a, _, z) = chain();
        let r = solve(&n, &[(a, Signal::HIGH)], &[(ctl, Level::Zero)]);
        let vz = value_of(&r, z);
        assert_eq!(vz.strength, Strength::HighZ);
        assert_eq!(vz.level, Level::X); // prev_level closure returns X
    }

    #[test]
    fn unknown_control_propagates_x() {
        let (n, ctl, a, m, _) = chain();
        let r = solve(&n, &[(a, Signal::HIGH)], &[(ctl, Level::X)]);
        let vm = value_of(&r, m);
        assert_eq!(vm.level, Level::X);
        assert_eq!(vm.strength, Strength::Weak);
    }

    #[test]
    fn drive_fight_through_switches_is_x() {
        // a(strong 1) --sw-- m --sw-- b(strong 0), both conducting.
        let mut b = NetlistBuilder::new("fight");
        let ctl = b.input("ctl");
        let a = b.input("a");
        let bb = b.input("b");
        let m = b.net("m");
        b.switch(SwitchKind::Nmos, ctl, a, m);
        b.switch(SwitchKind::Nmos, ctl, bb, m);
        let n = b.finish().unwrap();
        let r = solve(
            &n,
            &[(a, Signal::HIGH), (bb, Signal::LOW)],
            &[(ctl, Level::One)],
        );
        let vm = value_of(&r, m);
        assert_eq!(vm.level, Level::X);
        assert_eq!(vm.strength, Strength::Weak);
    }

    #[test]
    fn stronger_external_drive_wins_on_shared_net() {
        // m is pulled weak-1 externally; a drives strong 0 through a
        // conducting switch -> weak 0 beats nothing... equal weak levels
        // conflict. Use supply-driven a: degrades to weak, ties with pull.
        let mut b = NetlistBuilder::new("tie");
        let ctl = b.input("ctl");
        let a = b.input("a");
        let m = b.net("m");
        b.switch(SwitchKind::Nmos, ctl, a, m);
        let n = b.finish().unwrap();
        let r = solve(
            &n,
            &[(a, Signal::LOW), (m, Signal::weak(Level::One))],
            &[(ctl, Level::One)],
        );
        // weak 0 (through switch) joins weak 1 (pull) -> X at weak.
        let vm = value_of(&r, m);
        assert_eq!(vm, Signal::new(Level::X, Strength::Weak));
    }

    #[test]
    fn cyclic_switch_topology_terminates() {
        // Ring of four nets connected by conducting switches, one driven.
        let mut b = NetlistBuilder::new("ring");
        let ctl = b.input("ctl");
        let n0 = b.input("n0");
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        let n3 = b.net("n3");
        b.switch(SwitchKind::Nmos, ctl, n0, n1);
        b.switch(SwitchKind::Nmos, ctl, n1, n2);
        b.switch(SwitchKind::Nmos, ctl, n2, n3);
        b.switch(SwitchKind::Nmos, ctl, n3, n0);
        let n = b.finish().unwrap();
        let r = solve(&n, &[(n0, Signal::HIGH)], &[(ctl, Level::One)]);
        for net in [n1, n2, n3] {
            assert_eq!(value_of(&r, net), Signal::weak(Level::One));
        }
    }

    #[test]
    fn pmos_passes_low_when_control_low() {
        let mut b = NetlistBuilder::new("pmos");
        let ctl = b.input("ctl");
        let a = b.input("a");
        let z = b.net("z");
        b.switch(SwitchKind::Pmos, ctl, a, z);
        let n = b.finish().unwrap();
        let r = solve(&n, &[(a, Signal::LOW)], &[(ctl, Level::Zero)]);
        assert_eq!(value_of(&r, z), Signal::weak(Level::Zero));
        let r2 = solve(&n, &[(a, Signal::LOW)], &[(ctl, Level::One)]);
        assert_eq!(value_of(&r2, z).strength, Strength::HighZ);
    }

    #[test]
    fn charge_retention_keeps_previous_level() {
        let (n, ctl, a, _, z) = chain();
        let groups = ChannelGroups::compute(&n);
        let gid = groups.group_of(z);
        let r = resolve_group(
            &n,
            &groups,
            gid,
            |net| {
                if net == a {
                    Signal::HIGH
                } else {
                    Signal::FLOATING
                }
            },
            |net| if net == ctl { Level::Zero } else { Level::X },
            |net| if net == z { Level::One } else { Level::X },
        );
        assert_eq!(value_of(&r, z), Signal::new(Level::One, Strength::HighZ));
    }
}
