//! Online machine-parameter observability: per-phase wall-clock timing
//! of both engines.
//!
//! The paper's model (Eq. 1–10) is driven by machine parameters the
//! seed repo only *assumed* from Table 2: the per-tick synchronization
//! costs `tS` (START fan-out) and `tD` (DONE collection), the
//! evaluation time `tE` per event, and the message time `tM` per
//! inter-processor message. This module measures them from the running
//! engines, extending the counter-based instrumentation of
//! [`crate::instrument`] with wall-clock phase timing:
//!
//! * every engine phase — START fan-out, change application, switch
//!   resolution, fanout evaluation, message exchange/merge, DONE
//!   collection, and barrier wait — is timestamped into a per-lane
//!   (per-worker, plus master) fixed-capacity ring buffer
//!   ([`PhaseRing`]): no allocation and no locking on the hot path,
//!   wrap-around overwrites the oldest sample;
//! * exact running totals per phase ([`PhaseTotal`]) survive
//!   wrap-around, so derived per-event/per-message parameters are never
//!   windowed;
//! * an [`ObsReport`] aggregates the lanes into `logicsim-stats`
//!   histograms (p50/p95/p99 via `PhaseSummary`) and exports a Chrome
//!   `trace_event` JSON ([`ObsReport::chrome_trace`]) with one `tid`
//!   lane per worker plus the master.
//!
//! Recording is double-gated: the `obs` cargo feature compiles the
//! implementation (without it every type here is a zero-sized no-op),
//! and [`SimConfig::observe`](crate::SimConfig) arms it at runtime, so
//! an instrumented binary can compare armed vs. unarmed runs directly.
//! Timing never feeds back into simulation state, so traces and
//! counters are bit-identical with observation armed — the golden
//! digest tests pin this.

/// Engine phases distinguished by the recorder.
///
/// The mapping onto the paper's parameters: [`Phase::Start`] and
/// [`Phase::Done`] together with [`Phase::Barrier`] make up the per-tick
/// synchronization cost `tS + tD`; [`Phase::Eval`] time per evaluation
/// is `tE`; [`Phase::Exchange`] time per routed message is `tM`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Master: command publish + release-barrier crossing (`tS`).
    Start = 0,
    /// Party: drain own wheel slot and apply surviving changes.
    Apply = 1,
    /// Party: settle assigned switch groups.
    Resolve = 2,
    /// Party: evaluate fanout components (`tE` per evaluation).
    Eval = 3,
    /// Master: merge/route affected nets and fanout messages (`tM` per
    /// message; distribution samples carry `items == 0`).
    Exchange = 4,
    /// Master: collect per-party outboxes and account the tick (`tD`).
    Done = 5,
    /// Master: join-barrier wait after its own share — the straggler
    /// skew of the slowest worker.
    Barrier = 6,
}

/// Number of distinct [`Phase`] values (array dimension).
pub const NUM_PHASES: usize = 7;

impl Phase {
    /// All phases, in discriminant order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Start,
        Phase::Apply,
        Phase::Resolve,
        Phase::Eval,
        Phase::Exchange,
        Phase::Done,
        Phase::Barrier,
    ];

    /// Stable lower-case name (used in the Chrome trace and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Start => "start",
            Phase::Apply => "apply",
            Phase::Resolve => "resolve",
            Phase::Eval => "eval",
            Phase::Exchange => "exchange",
            Phase::Done => "done",
            Phase::Barrier => "barrier",
        }
    }

    /// Discriminant as an array index.
    #[must_use]
    pub fn idx(self) -> usize {
        self as usize
    }
}

#[cfg(feature = "obs")]
mod imp {
    use super::{Phase, NUM_PHASES};
    use logicsim_stats::{Histogram, PhaseSummary};
    use std::time::Instant;

    /// One timed phase occurrence.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct PhaseSample {
        /// Which phase this sample timed.
        pub phase: Phase,
        /// Simulation tick the phase belonged to.
        pub tick: u64,
        /// Start offset from the engine's time origin, nanoseconds.
        pub start_ns: u64,
        /// Duration, nanoseconds.
        pub dur_ns: u64,
        /// Work items covered (changes applied, evaluations, routed
        /// messages, …; 0 for pure-overhead samples).
        pub items: u64,
    }

    /// Exact per-phase running totals; unlike ring samples these are
    /// never dropped, so per-item parameters stay unwindowed.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct PhaseTotal {
        /// Number of samples recorded.
        pub count: u64,
        /// Total duration, nanoseconds.
        pub total_ns: u64,
        /// Total work items.
        pub items: u64,
    }

    impl PhaseTotal {
        fn add(&mut self, dur_ns: u64, items: u64) {
            self.count += 1;
            self.total_ns += dur_ns;
            self.items += items;
        }

        /// Folds another total into this one.
        pub fn merge(&mut self, other: &PhaseTotal) {
            self.count += other.count;
            self.total_ns += other.total_ns;
            self.items += other.items;
        }
    }

    /// Fixed-capacity ring of [`PhaseSample`]s. All storage is
    /// allocated up front; at capacity, a push overwrites the oldest
    /// sample and bumps the dropped counter.
    #[derive(Debug, Clone)]
    pub struct PhaseRing {
        buf: Vec<PhaseSample>,
        /// Index of the oldest sample once the buffer is full.
        head: usize,
        /// Oldest samples overwritten so far.
        dropped: u64,
        cap: usize,
    }

    impl PhaseRing {
        /// Creates a ring holding up to `capacity` samples (clamped to
        /// at least 1) with all storage allocated up front.
        #[must_use]
        pub fn with_capacity(capacity: usize) -> PhaseRing {
            let cap = capacity.max(1);
            PhaseRing {
                buf: Vec::with_capacity(cap),
                head: 0,
                dropped: 0,
                cap,
            }
        }

        /// Appends a sample, overwriting the oldest one at capacity.
        /// Never allocates after the ring has filled once.
        #[inline]
        pub fn push(&mut self, s: PhaseSample) {
            if self.buf.len() < self.cap {
                self.buf.push(s);
            } else {
                self.buf[self.head] = s;
                self.head = (self.head + 1) % self.cap;
                self.dropped += 1;
            }
        }

        /// Number of samples currently held.
        #[must_use]
        pub fn len(&self) -> usize {
            self.buf.len()
        }

        /// Whether the ring holds no samples.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.buf.is_empty()
        }

        /// Configured capacity.
        #[must_use]
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Samples overwritten by wrap-around so far.
        #[must_use]
        pub fn dropped(&self) -> u64 {
            self.dropped
        }

        /// Iterates the held samples oldest first.
        pub fn iter_oldest_first(&self) -> impl Iterator<Item = &PhaseSample> {
            let (tail, head) = self.buf.split_at(self.head);
            head.iter().chain(tail.iter())
        }

        /// Empties the ring and resets the dropped counter, keeping the
        /// allocation.
        pub fn clear(&mut self) {
            self.buf.clear();
            self.head = 0;
            self.dropped = 0;
        }
    }

    /// Shared time origin for every lane of one engine, so samples from
    /// different workers land on one comparable timeline.
    #[derive(Debug, Clone, Copy)]
    pub struct Origin(Instant);

    impl Origin {
        /// Captures the current instant as the origin.
        #[must_use]
        pub fn now() -> Origin {
            Origin(Instant::now())
        }
    }

    /// An in-flight phase start, returned by [`Lane::mark`].
    #[derive(Debug, Clone, Copy)]
    pub struct Mark(Option<Instant>);

    impl Mark {
        /// A mark that records nothing (used on paths that decide not
        /// to observe, e.g. idle ticks).
        #[must_use]
        pub fn none() -> Mark {
            Mark(None)
        }
    }

    /// One lane's recorder: a ring of samples plus exact totals. Each
    /// worker (and the master) owns its lane exclusively, so recording
    /// takes no locks; with the lane disarmed, [`Lane::mark`] and
    /// [`Lane::rec`] are branch-and-return.
    #[derive(Debug)]
    pub struct Lane {
        enabled: bool,
        origin: Instant,
        ring: PhaseRing,
        totals: [PhaseTotal; NUM_PHASES],
    }

    impl Lane {
        /// Creates a lane; `enabled == false` makes every operation a
        /// no-op (the runtime disarm of `SimConfig::observe == false`).
        #[must_use]
        pub fn new(enabled: bool, origin: Origin, capacity: usize) -> Lane {
            Lane {
                enabled,
                origin: origin.0,
                // Disarmed lanes never push; skip the up-front storage.
                ring: PhaseRing::with_capacity(if enabled { capacity } else { 1 }),
                totals: [PhaseTotal::default(); NUM_PHASES],
            }
        }

        /// Whether the lane records anything.
        #[must_use]
        pub fn armed(&self) -> bool {
            self.enabled
        }

        /// Starts timing a phase (one clock read when armed).
        #[inline]
        #[must_use]
        pub fn mark(&self) -> Mark {
            if self.enabled {
                Mark(Some(Instant::now()))
            } else {
                Mark(None)
            }
        }

        /// Finishes timing a phase started at `mark`, recording a
        /// sample, and returns a mark at the finish time so adjacent
        /// phases can chain with a single clock read per boundary.
        #[inline]
        pub fn rec(&mut self, phase: Phase, tick: u64, mark: Mark, items: u64) -> Mark {
            let Mark(Some(t0)) = mark else {
                return Mark(None);
            };
            let now = Instant::now();
            let start_ns = t0.duration_since(self.origin).as_nanos() as u64;
            let dur_ns = now.duration_since(t0).as_nanos() as u64;
            self.ring.push(PhaseSample {
                phase,
                tick,
                start_ns,
                dur_ns,
                items,
            });
            self.totals[phase.idx()].add(dur_ns, items);
            Mark(Some(now))
        }

        /// Clears all recorded samples and totals (keeps the arming and
        /// the ring allocation); called from `reset_measurements`.
        pub fn reset(&mut self) {
            self.ring.clear();
            self.totals = [PhaseTotal::default(); NUM_PHASES];
        }

        /// Snapshots the lane into an owned report.
        #[must_use]
        pub fn report(&self) -> LaneReport {
            LaneReport {
                samples: self.ring.iter_oldest_first().copied().collect(),
                dropped: self.ring.dropped(),
                totals: self.totals,
            }
        }
    }

    /// Owned snapshot of one lane.
    #[derive(Debug, Clone, Default)]
    pub struct LaneReport {
        /// Ring samples, oldest first (a window when wrap-around
        /// dropped samples).
        pub samples: Vec<PhaseSample>,
        /// Samples lost to wrap-around.
        pub dropped: u64,
        /// Exact totals per phase, indexed by [`Phase::idx`].
        pub totals: [PhaseTotal; NUM_PHASES],
    }

    impl LaneReport {
        /// Folds `other` into this lane (used to present the master's
        /// party work and its control work as one lane): samples are
        /// merged in `start_ns` order, totals and drop counts add.
        pub fn merge(&mut self, other: LaneReport) {
            self.samples.extend(other.samples);
            self.samples.sort_by_key(|s| s.start_ns);
            self.dropped += other.dropped;
            for (t, o) in self.totals.iter_mut().zip(other.totals.iter()) {
                t.merge(o);
            }
        }
    }

    /// Aggregated observation of one run: one lane per worker plus the
    /// master lane last.
    #[derive(Debug, Clone, Default)]
    pub struct ObsReport {
        /// Per-lane snapshots; by engine convention workers come first
        /// and the master lane is last.
        pub lanes: Vec<LaneReport>,
        /// Display name per lane (`"worker 0"`, …, `"master"`).
        pub lane_names: Vec<String>,
    }

    impl ObsReport {
        /// Histogram of one phase's sample durations in one lane.
        #[must_use]
        pub fn lane_histogram(&self, lane: usize, phase: Phase) -> Histogram {
            self.lanes[lane]
                .samples
                .iter()
                .filter(|s| s.phase == phase)
                .map(|s| s.dur_ns)
                .collect()
        }

        /// Histogram of one phase's sample durations merged across all
        /// lanes (built per lane, then merged — the same result as a
        /// single observer of the combined stream).
        #[must_use]
        pub fn histogram(&self, phase: Phase) -> Histogram {
            let mut h = Histogram::new();
            for lane in 0..self.lanes.len() {
                h.merge(&self.lane_histogram(lane, phase));
            }
            h
        }

        /// p50/p95/p99 + totals summary of one phase across all lanes
        /// (`None` when the phase never ran).
        #[must_use]
        pub fn summary(&self, phase: Phase) -> Option<PhaseSummary> {
            PhaseSummary::from_histogram(&self.histogram(phase))
        }

        /// Exact totals of one phase summed across all lanes.
        #[must_use]
        pub fn total(&self, phase: Phase) -> PhaseTotal {
            let mut t = PhaseTotal::default();
            for lane in &self.lanes {
                t.merge(&lane.totals[phase.idx()]);
            }
            t
        }

        /// Number of ticks that went through the full phase protocol
        /// (the master lane's `Apply` count; idle ticks are
        /// fast-forwarded without recording).
        #[must_use]
        pub fn executed_ticks(&self) -> u64 {
            self.lanes
                .last()
                .map_or(0, |l| l.totals[Phase::Apply.idx()].count)
        }

        /// Total samples lost to ring wrap-around across all lanes.
        #[must_use]
        pub fn dropped(&self) -> u64 {
            self.lanes.iter().map(|l| l.dropped).sum()
        }

        /// Renders the report as Chrome `trace_event` JSON (load via
        /// `chrome://tracing` or <https://ui.perfetto.dev>). One `tid`
        /// per lane under a single `pid`; complete (`"ph":"X"`) events
        /// with microsecond timestamps; field order is fixed so golden
        /// tests can compare byte-for-byte.
        #[must_use]
        pub fn chrome_trace(&self) -> String {
            let mut events: Vec<String> = Vec::new();
            events.push(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
                 \"args\":{\"name\":\"lsim\"}}"
                    .to_string(),
            );
            for (tid, name) in self.lane_names.iter().enumerate() {
                events.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape_json(name)
                ));
            }
            for (tid, lane) in self.lanes.iter().enumerate() {
                for s in &lane.samples {
                    events.push(format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                         \"pid\":1,\"tid\":{tid},\"args\":{{\"tick\":{},\"items\":{}}}}}",
                        s.phase.name(),
                        s.start_ns as f64 / 1000.0,
                        s.dur_ns as f64 / 1000.0,
                        s.tick,
                        s.items,
                    ));
                }
            }
            let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
            out.push_str(&events.join(",\n"));
            out.push_str("\n]\n}\n");
            out
        }
    }

    fn escape_json(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
}

#[cfg(feature = "obs")]
pub use imp::{Lane, LaneReport, Mark, ObsReport, Origin, PhaseRing, PhaseSample, PhaseTotal};

#[cfg(not(feature = "obs"))]
mod stub {
    //! Zero-sized no-op stand-ins compiled without the `obs` feature,
    //! so the engines carry no `#[cfg]` scatter on the hot path.
    use super::Phase;

    /// No-op stand-in for the shared time origin.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Origin;

    impl Origin {
        /// Returns the (stateless) origin.
        #[must_use]
        pub fn now() -> Origin {
            Origin
        }
    }

    /// No-op stand-in for an in-flight phase start.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Mark;

    impl Mark {
        /// Returns the (stateless) mark.
        #[must_use]
        pub fn none() -> Mark {
            Mark
        }
    }

    /// No-op stand-in for a lane recorder; every method compiles to
    /// nothing.
    #[derive(Debug, Default)]
    pub struct Lane;

    impl Lane {
        /// No-op constructor matching the armed signature.
        #[must_use]
        pub fn new(_enabled: bool, _origin: Origin, _capacity: usize) -> Lane {
            Lane
        }

        /// Always `false` without the `obs` feature.
        #[must_use]
        pub fn armed(&self) -> bool {
            false
        }

        /// No-op.
        #[inline]
        #[must_use]
        pub fn mark(&self) -> Mark {
            Mark
        }

        /// No-op.
        #[inline]
        pub fn rec(&mut self, _phase: Phase, _tick: u64, _mark: Mark, _items: u64) -> Mark {
            Mark
        }

        /// No-op.
        pub fn reset(&mut self) {}
    }
}

#[cfg(not(feature = "obs"))]
pub use stub::{Lane, Mark, Origin};

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    fn sample(phase: Phase, start_ns: u64, dur_ns: u64) -> PhaseSample {
        PhaseSample {
            phase,
            tick: 0,
            start_ns,
            dur_ns,
            items: 1,
        }
    }

    #[test]
    fn ring_wraps_dropping_oldest() {
        let mut r = PhaseRing::with_capacity(3);
        for i in 0..5u64 {
            r.push(sample(Phase::Eval, i, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let starts: Vec<u64> = r.iter_oldest_first().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![2, 3, 4]);
    }

    #[test]
    fn lane_totals_survive_wraparound() {
        let mut lane = Lane::new(true, Origin::now(), 2);
        for _ in 0..10 {
            let m = lane.mark();
            lane.rec(Phase::Eval, 0, m, 3);
        }
        let rep = lane.report();
        assert_eq!(rep.samples.len(), 2);
        assert_eq!(rep.dropped, 8);
        assert_eq!(rep.totals[Phase::Eval.idx()].count, 10);
        assert_eq!(rep.totals[Phase::Eval.idx()].items, 30);
    }

    #[test]
    fn disarmed_lane_records_nothing() {
        let mut lane = Lane::new(false, Origin::now(), 64);
        let m = lane.mark();
        lane.rec(Phase::Apply, 1, m, 5);
        let rep = lane.report();
        assert!(rep.samples.is_empty());
        assert_eq!(rep.totals[Phase::Apply.idx()].count, 0);
    }

    #[test]
    fn chained_marks_produce_monotone_starts() {
        let mut lane = Lane::new(true, Origin::now(), 64);
        let m = lane.mark();
        let m = lane.rec(Phase::Apply, 0, m, 1);
        let m = lane.rec(Phase::Exchange, 0, m, 1);
        lane.rec(Phase::Done, 0, m, 0);
        let rep = lane.report();
        assert_eq!(rep.samples.len(), 3);
        for w in rep.samples.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
            // Chained: the next phase starts where the previous ended.
            assert_eq!(w[0].start_ns + w[0].dur_ns, w[1].start_ns);
        }
    }

    #[test]
    fn report_aggregation_and_trace_shape() {
        let lane_a = LaneReport {
            samples: vec![sample(Phase::Eval, 0, 10), sample(Phase::Eval, 20, 30)],
            dropped: 0,
            totals: Default::default(),
        };
        let lane_b = LaneReport {
            samples: vec![sample(Phase::Eval, 5, 50)],
            dropped: 1,
            totals: Default::default(),
        };
        let rep = ObsReport {
            lanes: vec![lane_a, lane_b],
            lane_names: vec!["worker 0".into(), "master".into()],
        };
        let h = rep.histogram(Phase::Eval);
        assert_eq!(h.len(), 3);
        assert_eq!(h.max(), Some(50));
        assert_eq!(rep.dropped(), 1);
        let json = rep.chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"tid\":1"));
    }
}
