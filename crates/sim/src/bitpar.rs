//! Bit-parallel compiled simulation: 64 stimulus scenarios per word.
//!
//! The paper's machine class is event-driven because circuit activity is
//! low (Table 6: 0.1–3%), so evaluating only active components wins —
//! per scenario. But the per-event overhead `tE` of Eq. 10 is overhead
//! an *oblivious*, statically scheduled backend never pays: like the
//! Yorktown Simulation Engine lineage the paper surveys, this module
//! evaluates every compiled gate on every sweep in levelized rank
//! order. The trick that makes obliviousness profitable on a 1-core
//! host is **bit parallelism**: net state is two `u64` planes
//! ([`logicsim_netlist::Plane`]: `val`/`known`), one bit per lane, so a
//! single branch-free Kleene kernel evaluates a gate for 64 independent
//! stimulus scenarios at once.
//!
//! # Hybrid structure
//!
//! Real benchmark circuits are not pure gate DAGs, so [`BitParSim`]
//! splits the netlist:
//!
//! * **Compiled gates** — gates that solely drive a trivially-resolved
//!   net and are not tristates with a live enable. Acyclic gates compile
//!   to a straight-line CSR sweep over the bit planes; gate feedback
//!   loops (latches, flip-flops built from cross-coupled gates) compile
//!   to bounded **fixpoint loops** placed at the cluster's topological
//!   rank — a per-lane Gauss–Seidel iteration over the same branch-free
//!   kernels, with oscillating lanes forced to X at the bound, exactly
//!   mirroring [`crate::CompiledSim::settle`]'s oscillation detector.
//! * **Compiled switch cells** — channel-connected switch sub-groups
//!   compile to vectorized **solver cells**: the event engine's
//!   monotone (strength, level) join fixpoint
//!   ([`crate::solver`]) re-expressed over bit planes, with a 2-bit
//!   strength tier per lane (`HighZ < Resistive < Weak < Strong`).
//!   Supply rails split the channel graph — nothing propagates
//!   *through* a rail, so a switch to a rail becomes a constant
//!   Strong branch — and strong external drivers (gates, primary
//!   inputs) enter through virtual scratch planes. The cell writes the
//!   resolved member planes, retaining charge on high-impedance lanes,
//!   bit-exactly reproducing the solver's least fixpoint.
//! * **Fallback region** — whatever remains: switch groups fought over
//!   by multiple strong drivers, live tristates, supplies on shared
//!   nets. These are simulated exactly by per-lane instances of the
//!   event-driven [`Simulator`] over a boundary-stitched sub-netlist:
//!   compiled-driven boundary nets enter the sub-circuit as primary
//!   inputs, fallback-driven boundary nets are exported back into the
//!   planes after each quiescence run.
//!
//! A "tick" of the backend is a *vector settle*
//! ([`BitParSim::settle_vector`]): apply one stimulus vector per lane,
//! then alternate compiled sweeps and fallback quiescence runs until
//! the boundary reaches a joint fixpoint. The differential harness
//! (`tests/bitpar_differential.rs`) proves every lane bit-identical to
//! the serial event-driven engine run under the same vector-synchronous
//! protocol.

use crate::compiled::levelize_nodes;
use crate::engine::{PreflightError, SimConfig, Simulator};
use logicsim_netlist::{
    BitPlanes, CompId, Component, GateKind, Level, NetId, Netlist, NetlistBuilder, Plane, Signal,
    SwitchKind, LANES,
};

/// One compiled evaluation in the straight-line sweep program: a gate
/// kernel or a switch-level solver cell.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: OpKind,
    /// Output plane index (gates only; `u32::MAX` for cells, which
    /// write their member planes directly).
    out: u32,
    /// Offset into the input-plane CSR items array.
    in_off: u32,
    /// Number of input planes read.
    in_len: u32,
}

/// The function evaluated by an [`Op`].
#[derive(Debug, Clone, Copy)]
enum OpKind {
    /// A Kleene gate kernel (tristate-with-constant-One enable is
    /// folded to [`GateKind::Buf`]; disabled tristates are elided).
    Gate(GateKind),
    /// Index into [`BitParSim::cells`].
    Cell(u32),
}

/// A member-to-member switch inside a solver cell.
#[derive(Debug, Clone, Copy)]
struct CellEdge {
    /// Local member indices of the channel terminals.
    a: u32,
    b: u32,
    /// Control net plane index.
    ctl: u32,
    /// P-channel polarity (conducts on `0`).
    pmos: bool,
}

/// A switch from a cell member to a supply rail. The rail side is
/// constant — nothing propagates *through* a Supply-strength net — so
/// the branch contributes `Strong(level)` where conducting and
/// `Strong(X)` where conduction is unknown.
#[derive(Debug, Clone, Copy)]
struct RailBranch {
    /// Local member index of the non-rail terminal.
    m: u32,
    /// Control net plane index.
    ctl: u32,
    /// P-channel polarity (conducts on `0`).
    pmos: bool,
    /// The rail's static level.
    level: Level,
}

/// One compiled channel sub-group: the switch-level solver's monotone
/// (strength, level) join fixpoint, vectorized over lanes. Members are
/// the sub-group's non-rail nets; external drive enters as per-member
/// constants (pulls) or plane reads (strong sources through virtual
/// scratch planes); switches to rails are folded to constant branches.
#[derive(Debug, Clone)]
struct Cell {
    /// Global net indices of the members (ascending).
    members: Vec<u32>,
    /// Member-member switches.
    edges: Vec<CellEdge>,
    /// Member-rail switches.
    rails: Vec<RailBranch>,
    /// Per-member resistive pull level (statically joined when a net
    /// carries several pulls).
    ext_pull: Vec<Option<Level>>,
    /// Per-member strong external source: the plane index of the
    /// scratch slot its gate or primary input writes (`u32::MAX` when
    /// the member has no strong source).
    ext_slot: Vec<u32>,
}

/// Reusable workspace for [`eval_cell`]: per-member contribution
/// planes — level (`v`/`k`) plus a 2-bit strength tier per lane
/// (`s1 s0`: `00` `HighZ`, `01` Resistive, `10` Weak, `11` Strong).
#[derive(Debug, Default)]
struct CellScratch {
    v: Vec<u64>,
    k: Vec<u64>,
    s1: Vec<u64>,
    s0: Vec<u64>,
    /// Global net indices whose resolved plane changed in the last
    /// evaluation (drained by the sweep for reader marking).
    changed: Vec<u32>,
}

/// One step of the sweep program: a contiguous op range evaluated once
/// (acyclic ranks) or iterated to a per-lane fixpoint (a gate feedback
/// cluster at its topological position).
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `ops[start..end]` evaluated once, in rank order.
    Block { start: u32, end: u32 },
    /// `ops[start..end]` (one latch cluster) iterated until no lane's
    /// plane changes, bounded by [`BitParSim::max_loop_iters`];
    /// still-oscillating lanes are forced to X.
    Loop { start: u32, end: u32 },
}

/// The per-lane event-driven fallback: a boundary-stitched sub-netlist
/// simulated exactly by one [`Simulator`] per active lane.
#[derive(Debug)]
struct Fallback {
    /// One event-driven simulator per active lane, each owning a clone
    /// of the sub-netlist.
    sims: Vec<Simulator<'static>>,
    /// Original net index → sub-netlist net (for nets the sub knows).
    net_map: Vec<Option<NetId>>,
    /// Original nets with at least one fallback driver (their truth
    /// lives in the lane simulators, not the planes).
    fb_driven: Vec<bool>,
    /// Boundary *into* the fallback: `(original net index, sub input)`.
    inbound: Vec<(u32, NetId)>,
    /// Boundary *out of* the fallback: fallback-driven nets read by
    /// compiled gates, exported into the planes after each quiescence.
    outbound: Vec<(u32, NetId)>,
    /// Last plane pushed per inbound entry (suppresses redundant
    /// `set_input` calls lane by lane).
    last_applied: BitPlanes,
    /// Per-lane event count at the last outbound pull: a lane whose
    /// simulator processed no events since then cannot have moved any
    /// outbound net, so its lanes are skipped when re-exporting
    /// (`u64::MAX` forces the first pull to read every lane).
    events_at_pull: Vec<u64>,
    /// Number of sub-netlist components (fallback size statistic).
    num_components: usize,
}

/// Aggregate statistics of a [`BitParSim`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitParStats {
    /// Active lanes (scenarios per sweep).
    pub lanes: usize,
    /// Gates compiled into the bit-plane sweep.
    pub compiled_gates: usize,
    /// Switch channel sub-groups compiled as vectorized solver cells.
    pub solver_cells: usize,
    /// Switches consumed by the compiled region (cell edges, rail
    /// branches, and rail-to-rail no-ops).
    pub compiled_switches: usize,
    /// Feedback clusters (gates and/or cells) compiled as in-place
    /// fixpoint loops.
    pub feedback_loops: usize,
    /// Components simulated by the per-lane event-driven fallback.
    pub fallback_components: usize,
    /// Combinational depth (ranks) of the compiled region.
    pub ranks: u32,
    /// Vectors settled so far.
    pub vectors: u64,
    /// Compiled sweeps executed (≥ 1 per vector; more when the
    /// boundary stitching iterates).
    pub sweeps: u64,
    /// Gate evaluations performed by the sweeps (each counts once and
    /// covers all lanes).
    pub compiled_evals: u64,
    /// Events processed by the fallback simulators, summed over lanes.
    pub fallback_events: u64,
    /// Vectors whose boundary stitching failed to reach a fixpoint
    /// within the iteration bound.
    pub unconverged_vectors: u64,
}

/// The bit-parallel hybrid simulator. See the [module docs](self).
#[derive(Debug)]
pub struct BitParSim<'a> {
    netlist: &'a Netlist,
    lanes: usize,
    active_mask: u64,
    /// Compiled ops in program order (blocks and loops index into this).
    ops: Vec<Op>,
    /// CSR items: input plane indices for every op.
    op_inputs: Vec<u32>,
    /// Compiled switch-level solver cells ([`OpKind::Cell`] targets).
    cells: Vec<Cell>,
    /// Reusable solver-cell workspace.
    scratch: CellScratch,
    /// Per-net plane index written by [`BitParSim::set_input_plane`]:
    /// identity, except input nets that are members of a compiled cell
    /// stage through their virtual scratch plane (the cell resolves
    /// the member plane itself).
    input_redirect: Vec<u32>,
    /// Number of [`OpKind::Gate`] ops (statistics).
    num_gate_ops: usize,
    /// Switches consumed by the compiled region (statistics).
    compiled_switches: usize,
    /// The sweep program: blocks swept once, loops iterated in place.
    steps: Vec<Step>,
    /// Number of `Step::Loop` entries (compiled latch clusters).
    loops: usize,
    /// CSR: plane index → compiled ops reading it (activity gating).
    readers: Vec<u32>,
    /// CSR offsets into `readers`, length `num_planes + 1`.
    reader_off: Vec<u32>,
    /// Per-op pending flag: set when an input plane changed since the
    /// op last ran. The sweep evaluates only pending ops, which is what
    /// turns the oblivious `gates x vectors` cost into `activity-union
    /// x vectors` — the same event-driven insight as the paper's
    /// machine, applied at 64-lane granularity.
    pending: Vec<bool>,
    /// Number of set entries in `pending`.
    pending_count: usize,
    /// Two-plane ternary state per plane: one per net, plus virtual
    /// scratch slots for strong sources into compiled cells.
    planes: BitPlanes,
    fallback: Option<Fallback>,
    depth: u32,
    /// Tick budget per fallback quiescence run before the vector is
    /// declared unconverged.
    pub quiesce_bound: u64,
    /// Bound on sweep/quiescence alternations per vector.
    pub max_stitch_iters: u32,
    /// Bound on fixpoint iterations per compiled latch cluster before
    /// its oscillating lanes are forced to X.
    pub max_loop_iters: u32,
    /// Set when a loop hit `max_loop_iters` during the current vector.
    loop_overflow: bool,
    vectors: u64,
    sweeps: u64,
    compiled_evals: u64,
    unconverged_vectors: u64,
}

impl<'a> BitParSim<'a> {
    /// Builds the backend with default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PreflightError`] if the fallback sub-netlist fails the
    /// event-driven engine's pre-flight (only possible when the source
    /// netlist itself would fail it).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=64`.
    pub fn new(netlist: &'a Netlist, lanes: usize) -> Result<BitParSim<'a>, PreflightError> {
        BitParSim::with_config(netlist, lanes, &SimConfig::default())
    }

    /// Builds the backend; `config` shapes the per-lane fallback
    /// simulators (wheel size, settle bounds, init rounds).
    ///
    /// # Errors
    ///
    /// Returns [`PreflightError`] as for [`BitParSim::new`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=64`.
    pub fn with_config(
        netlist: &'a Netlist,
        lanes: usize,
        config: &SimConfig,
    ) -> Result<BitParSim<'a>, PreflightError> {
        assert!(
            (1..=LANES).contains(&lanes),
            "lanes must be 1..=64, got {lanes}"
        );
        let nn = netlist.num_nets();
        let nc = netlist.num_components();

        // Nets driven exclusively by pulls/supplies resolve to a static
        // level; they become constant planes (and constant tristate
        // enables).
        let const_level: Vec<Option<Level>> = (0..nn)
            .map(|i| {
                let ds = netlist.drivers(NetId(i as u32));
                if ds.is_empty() {
                    return None;
                }
                let mut sig: Option<Signal> = None;
                for &d in ds {
                    match netlist.component(d).static_drive() {
                        Some(s) => sig = Some(sig.map_or(s, |acc| acc.resolve(s))),
                        None => return None,
                    }
                }
                sig.map(|s| s.level)
            })
            .collect();

        // Supply rails: every non-switch driver is a Supply. Nothing
        // propagates *through* a Supply-strength net, so rails split
        // the channel graph; switches to a rail become constant Strong
        // branches of the neighbouring sub-group.
        let rail_level: Vec<Option<Level>> = (0..nn)
            .map(|i| {
                let mut lvl: Option<Level> = None;
                for &d in netlist.drivers(NetId(i as u32)) {
                    match netlist.component(d) {
                        Component::Supply { level, .. } => {
                            lvl = Some(lvl.map_or(*level, |a| a.resolve_equal_strength(*level)));
                        }
                        Component::Switch { .. } => {}
                        _ => return None,
                    }
                }
                lvl
            })
            .collect();

        // Channel sub-groups: union-find over switch terminals, rails
        // excluded. Every non-rail net touching a switch channel is a
        // member of exactly one sub-group.
        fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let g = parent[parent[x as usize] as usize];
                parent[x as usize] = g;
                x = g;
            }
            x
        }
        let mut has_switch = vec![false; nn];
        let mut parent: Vec<u32> = (0..nn as u32).collect();
        for (_id, comp) in netlist.iter() {
            if let Component::Switch { a, b, .. } = comp {
                has_switch[a.index()] = true;
                has_switch[b.index()] = true;
                if rail_level[a.index()].is_none() && rail_level[b.index()].is_none() {
                    let (ra, rb) = (uf_find(&mut parent, a.0), uf_find(&mut parent, b.0));
                    if ra != rb {
                        parent[ra as usize] = rb;
                    }
                }
            }
        }
        let mut sub_of = vec![u32::MAX; nn];
        let mut subs: Vec<Vec<u32>> = Vec::new();
        {
            let mut sid_of_root = vec![u32::MAX; nn];
            for i in 0..nn {
                if !has_switch[i] || rail_level[i].is_some() {
                    continue;
                }
                let r = uf_find(&mut parent, i as u32) as usize;
                if sid_of_root[r] == u32::MAX {
                    sid_of_root[r] = subs.len() as u32;
                    subs.push(Vec::new());
                }
                sub_of[i] = sid_of_root[r];
                subs[sid_of_root[r] as usize].push(i as u32);
            }
        }

        // A sub-group compiles when the solver's inputs are statically
        // describable per member: switches (edges/rail branches), pulls
        // (a constant Resistive contribution), and at most one strong
        // source — a primary input or a sole compiled gate. Supplies on
        // a shared member net, live tristates, or strong multi-drive
        // send the whole sub-group to the event-driven fallback.
        let mut sub_ok = vec![true; subs.len()];
        let mut input_strong = vec![false; nn];
        let mut gate_strong = vec![false; nn];
        for (sid, members) in subs.iter().enumerate() {
            'scan: for &m in members {
                let mut strong = 0u32;
                for &d in netlist.drivers(NetId(m)) {
                    match netlist.component(d) {
                        Component::Switch { .. } | Component::Pull { .. } => {}
                        Component::Supply { .. } => {
                            sub_ok[sid] = false;
                            break 'scan;
                        }
                        Component::Input { .. } => {
                            strong += 1;
                            input_strong[m as usize] = true;
                        }
                        Component::Gate { kind, inputs, .. } => {
                            if *kind == GateKind::Tristate {
                                match const_level[inputs[1].index()] {
                                    // Always-on: a plain strong driver.
                                    Some(Level::One) => {
                                        strong += 1;
                                        gate_strong[m as usize] = true;
                                    }
                                    // Always-off: floats, contributes
                                    // nothing (the gate op is elided).
                                    Some(Level::Zero) => {}
                                    // Live or statically-X enable.
                                    Some(Level::X) | None => {
                                        sub_ok[sid] = false;
                                        break 'scan;
                                    }
                                }
                            } else {
                                strong += 1;
                                gate_strong[m as usize] = true;
                            }
                        }
                    }
                }
                if strong > 1 {
                    sub_ok[sid] = false;
                    break 'scan;
                }
            }
        }

        // Virtual scratch planes: each member with a strong source gets
        // a slot at `nn + k`; its gate op (or `set_input_plane`) writes
        // the slot, the cell writes the resolved member plane.
        let mut slot_of_net = vec![u32::MAX; nn];
        let mut n_slots = 0u32;
        for (sid, members) in subs.iter().enumerate() {
            if !sub_ok[sid] {
                continue;
            }
            for &m in members {
                if input_strong[m as usize] || gate_strong[m as usize] {
                    slot_of_net[m as usize] = nn as u32 + n_slots;
                    n_slots += 1;
                }
            }
        }
        let np = nn + n_slots as usize;
        let mut input_redirect: Vec<u32> = (0..nn as u32).collect();
        for i in 0..nn {
            if slot_of_net[i] != u32::MAX && input_strong[i] {
                input_redirect[i] = slot_of_net[i];
            }
        }

        // Build the solver cells.
        let mut cells: Vec<Cell> = Vec::new();
        let mut cell_of_sub = vec![u32::MAX; subs.len()];
        let mut local_of = vec![u32::MAX; nn];
        for (sid, members) in subs.iter().enumerate() {
            if !sub_ok[sid] {
                continue;
            }
            cell_of_sub[sid] = cells.len() as u32;
            let mut ext_pull: Vec<Option<Level>> = vec![None; members.len()];
            for (li, &m) in members.iter().enumerate() {
                local_of[m as usize] = li as u32;
                for &d in netlist.drivers(NetId(m)) {
                    if let Component::Pull { level, .. } = netlist.component(d) {
                        ext_pull[li] =
                            Some(ext_pull[li].map_or(*level, |a| a.resolve_equal_strength(*level)));
                    }
                }
            }
            cells.push(Cell {
                members: members.clone(),
                edges: Vec::new(),
                rails: Vec::new(),
                ext_pull,
                ext_slot: members.iter().map(|&m| slot_of_net[m as usize]).collect(),
            });
        }
        for (_id, comp) in netlist.iter() {
            let Component::Switch {
                kind,
                control,
                a,
                b,
                ..
            } = comp
            else {
                continue;
            };
            let pmos = *kind == SwitchKind::Pmos;
            let (ia, ib) = (a.index(), b.index());
            match (rail_level[ia], rail_level[ib]) {
                // Rail-to-rail: conduction cannot move a Supply net.
                (Some(_), Some(_)) => {}
                (Some(level), None) => {
                    let sid = sub_of[ib] as usize;
                    if sub_ok[sid] {
                        cells[cell_of_sub[sid] as usize].rails.push(RailBranch {
                            m: local_of[ib],
                            ctl: control.0,
                            pmos,
                            level,
                        });
                    }
                }
                (None, Some(level)) => {
                    let sid = sub_of[ia] as usize;
                    if sub_ok[sid] {
                        cells[cell_of_sub[sid] as usize].rails.push(RailBranch {
                            m: local_of[ia],
                            ctl: control.0,
                            pmos,
                            level,
                        });
                    }
                }
                (None, None) => {
                    let sid = sub_of[ia] as usize;
                    if sub_ok[sid] {
                        cells[cell_of_sub[sid] as usize].edges.push(CellEdge {
                            a: local_of[ia],
                            b: local_of[ib],
                            ctl: control.0,
                            pmos,
                        });
                    }
                }
            }
        }

        // Classify: switches and their sub-group periphery compile when
        // the sub-group does; gates compile per the old sole-driver
        // rule on trivial nets, or with their sub-group on member nets;
        // everything else that still evaluates falls back.
        let mut fb_comp = vec![false; nc];
        for (id, comp) in netlist.iter() {
            fb_comp[id.index()] = match comp {
                Component::Switch { a, b, .. } => {
                    let sid = if rail_level[a.index()].is_none() {
                        sub_of[a.index()]
                    } else if rail_level[b.index()].is_none() {
                        sub_of[b.index()]
                    } else {
                        u32::MAX
                    };
                    sid != u32::MAX && !sub_ok[sid as usize]
                }
                Component::Gate {
                    kind,
                    inputs,
                    output,
                    ..
                } => {
                    let tri_live =
                        *kind == GateKind::Tristate && const_level[inputs[1].index()].is_none();
                    let o = output.index();
                    if has_switch[o] && rail_level[o].is_none() {
                        !sub_ok[sub_of[o] as usize]
                    } else {
                        netlist.drivers(*output).len() != 1 || tri_live
                    }
                }
                Component::Pull { net, .. } => {
                    let i = net.index();
                    let in_cell =
                        has_switch[i] && rail_level[i].is_none() && sub_ok[sub_of[i] as usize];
                    !in_cell && const_level[i].is_none()
                }
                // Supplies resolved in a second pass (rails follow
                // their attached switches).
                Component::Supply { .. } | Component::Input { .. } => false,
            };
        }
        for (id, comp) in netlist.iter() {
            if let Component::Supply { net, .. } = comp {
                let i = net.index();
                fb_comp[id.index()] = if has_switch[i] {
                    if rail_level[i].is_some() {
                        // A rail joins the fallback iff any attached
                        // switch did (compiled branches fold its level
                        // into the cell as a constant).
                        netlist
                            .drivers(NetId(i as u32))
                            .iter()
                            .any(|&d| netlist.component(d).is_switch() && fb_comp[d.index()])
                    } else {
                        // Supply on a shared member net: the whole
                        // sub-group fell back.
                        true
                    }
                } else {
                    const_level[i].is_none()
                };
            }
        }
        let compiled_switches = netlist
            .iter()
            .filter(|(id, c)| c.is_switch() && !fb_comp[id.index()])
            .count();

        // Node graph: one node per compiled gate op plus one per cell,
        // edges producer → reader over real and virtual planes. The
        // generic levelizer orders it; SCCs (gate latches, ctl-feedback
        // cells, and mixed gate/cell refresh loops) become in-place
        // fixpoint steps at their condensation rank.
        let mut gate_nodes: Vec<CompId> = Vec::new();
        for (id, comp) in netlist.iter() {
            let Component::Gate { kind, inputs, .. } = comp else {
                continue;
            };
            if fb_comp[id.index()] {
                continue;
            }
            // Disabled (or statically-X on a trivial net) tristates are
            // elided: their output plane stays X, nothing to sweep.
            if *kind == GateKind::Tristate && const_level[inputs[1].index()] != Some(Level::One) {
                continue;
            }
            gate_nodes.push(id);
        }
        let ng = gate_nodes.len();
        let n_nodes = ng + cells.len();
        let mut node_reads: Vec<Vec<u32>> = Vec::with_capacity(n_nodes);
        let mut producer = vec![u32::MAX; np];
        for (ni, &g) in gate_nodes.iter().enumerate() {
            let Component::Gate {
                kind,
                inputs,
                output,
                ..
            } = netlist.component(g)
            else {
                unreachable!("gate node")
            };
            let pins: &[NetId] = if *kind == GateKind::Tristate {
                &inputs[..1]
            } else {
                inputs.as_slice()
            };
            node_reads.push(pins.iter().map(|n| n.0).collect());
            let o = output.index();
            let out = if slot_of_net[o] == u32::MAX {
                o as u32
            } else {
                slot_of_net[o]
            };
            producer[out as usize] = ni as u32;
        }
        for (ci, cell) in cells.iter().enumerate() {
            let mut reads: Vec<u32> = cell
                .edges
                .iter()
                .map(|e| e.ctl)
                .chain(cell.rails.iter().map(|r| r.ctl))
                .chain(cell.ext_slot.iter().copied().filter(|&s| s != u32::MAX))
                .collect();
            reads.sort_unstable();
            reads.dedup();
            node_reads.push(reads);
            for &m in &cell.members {
                producer[m as usize] = (ng + ci) as u32;
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
        for (ni, reads) in node_reads.iter().enumerate() {
            for &p in reads {
                let pr = producer[p as usize];
                if pr != u32::MAX {
                    adj[pr as usize].push(ni as u32);
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        let nl = levelize_nodes(&adj);

        // Merge ranked nodes and feedback clusters into one program.
        // No edges exist inside a rank, so a stable sort by rank is a
        // valid order; each cluster lands between the ranks that feed
        // it and the ranks that read it.
        enum NItem {
            Single(u32),
            Group(Vec<u32>),
        }
        let mut items: Vec<(u32, NItem)> = Vec::with_capacity(nl.order.len() + nl.groups.len());
        for (i, &nid) in nl.order.iter().enumerate() {
            items.push((nl.ranks[i], NItem::Single(nid)));
        }
        for (rank, members) in nl.groups {
            items.push((rank, NItem::Group(members)));
        }
        items.sort_by_key(|&(r, _)| r);
        let depth = items.iter().map(|&(r, _)| r + 1).max().unwrap_or(0);

        let mut ops: Vec<Op> = Vec::new();
        let mut op_inputs: Vec<u32> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        let mut loops = 0;
        let emit = |nid: u32, ops: &mut Vec<Op>, op_inputs: &mut Vec<u32>| {
            let reads = &node_reads[nid as usize];
            let in_off = op_inputs.len() as u32;
            op_inputs.extend_from_slice(reads);
            let in_len = reads.len() as u32;
            if (nid as usize) < ng {
                let g = gate_nodes[nid as usize];
                let Component::Gate { kind, output, .. } = netlist.component(g) else {
                    unreachable!("gate node")
                };
                let kind = if *kind == GateKind::Tristate {
                    GateKind::Buf
                } else {
                    *kind
                };
                let o = output.index();
                let out = if slot_of_net[o] == u32::MAX {
                    o as u32
                } else {
                    slot_of_net[o]
                };
                ops.push(Op {
                    kind: OpKind::Gate(kind),
                    out,
                    in_off,
                    in_len,
                });
            } else {
                ops.push(Op {
                    kind: OpKind::Cell(nid - ng as u32),
                    out: u32::MAX,
                    in_off,
                    in_len,
                });
            }
        };
        for (_rank, item) in &items {
            match item {
                NItem::Single(nid) => {
                    let before = ops.len() as u32;
                    emit(*nid, &mut ops, &mut op_inputs);
                    match steps.last_mut() {
                        Some(Step::Block { end, .. }) if *end == before => *end += 1,
                        _ => steps.push(Step::Block {
                            start: before,
                            end: before + 1,
                        }),
                    }
                }
                NItem::Group(nids) => {
                    let start = ops.len() as u32;
                    for &nid in nids {
                        emit(nid, &mut ops, &mut op_inputs);
                    }
                    steps.push(Step::Loop {
                        start,
                        end: ops.len() as u32,
                    });
                    loops += 1;
                }
            }
        }
        let num_gate_ops = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Gate(_)))
            .count();

        // Reader CSR: plane → compiled ops reading it, for pending-op
        // marking when a plane changes.
        let mut cnt = vec![0u32; np];
        for op in &ops {
            for &p in &op_inputs[op.in_off as usize..(op.in_off + op.in_len) as usize] {
                cnt[p as usize] += 1;
            }
        }
        let mut reader_off = vec![0u32; np + 1];
        for i in 0..np {
            reader_off[i + 1] = reader_off[i] + cnt[i];
        }
        let mut fill: Vec<u32> = reader_off[..np].to_vec();
        let mut readers = vec![0u32; reader_off[np] as usize];
        for (i, op) in ops.iter().enumerate() {
            for &p in &op_inputs[op.in_off as usize..(op.in_off + op.in_len) as usize] {
                readers[fill[p as usize] as usize] = i as u32;
                fill[p as usize] += 1;
            }
        }

        // Constant planes for pull/supply nets and rails.
        let mut planes = BitPlanes::new(np);
        for i in 0..nn {
            if let Some(l) = const_level[i] {
                planes.set(i, Plane::splat(l));
            } else if let Some(l) = rail_level[i] {
                planes.set(i, Plane::splat(l));
            }
        }

        // Real nets read by the compiled region (outbound targets).
        let mut read_by_compiled = vec![false; nn];
        for reads in &node_reads {
            for &p in reads {
                if (p as usize) < nn {
                    read_by_compiled[p as usize] = true;
                }
            }
        }

        let fallback = build_fallback(netlist, &fb_comp, &read_by_compiled, lanes, config)?;

        Ok(BitParSim {
            netlist,
            lanes,
            active_mask: if lanes == LANES {
                !0
            } else {
                (1u64 << lanes) - 1
            },
            pending_count: ops.len(),
            pending: vec![true; ops.len()],
            ops,
            op_inputs,
            cells,
            scratch: CellScratch::default(),
            input_redirect,
            num_gate_ops,
            compiled_switches,
            steps,
            loops,
            readers,
            reader_off,
            planes,
            fallback,
            depth,
            quiesce_bound: 10_000,
            max_stitch_iters: 64,
            max_loop_iters: 64,
            loop_overflow: false,
            vectors: 0,
            sweeps: 0,
            compiled_evals: 0,
            unconverged_vectors: 0,
        })
    }

    /// The netlist being simulated.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Number of active lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Stages one stimulus plane on a primary input net (applied by the
    /// next [`BitParSim::settle_vector`]).
    ///
    /// An input net that is a member of a compiled switch cell stages
    /// through its virtual scratch plane: the cell resolves the member
    /// plane itself (the input is one Strong contribution among the
    /// sub-group's drivers, exactly as in the event engine).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn set_input_plane(&mut self, net: NetId, plane: Plane) {
        let idx = self.input_redirect[net.index()] as usize;
        if self.planes.set(idx, plane.masked(self.active_mask)) {
            self.mark_net(idx);
        }
    }

    /// Marks every compiled op reading `net` pending.
    fn mark_net(&mut self, net: usize) {
        let lo = self.reader_off[net] as usize;
        let hi = self.reader_off[net + 1] as usize;
        let (readers, pending) = (&self.readers, &mut self.pending);
        for &r in &readers[lo..hi] {
            let r = r as usize;
            if !pending[r] {
                pending[r] = true;
                self.pending_count += 1;
            }
        }
    }

    /// The level of `net` in `lane`.
    ///
    /// For fallback-driven nets this reads the lane's event-driven
    /// simulator (the authoritative state); for compiled, constant, and
    /// stimulus nets it reads the bit planes.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range or `lane >= self.lanes()`.
    #[must_use]
    pub fn level(&self, net: NetId, lane: usize) -> Level {
        assert!(lane < self.lanes, "lane {lane} out of range");
        if let Some(fb) = &self.fallback {
            if fb.fb_driven[net.index()] {
                if let Some(sub) = fb.net_map[net.index()] {
                    return fb.sims[lane].level(sub);
                }
            }
        }
        self.planes.lane(net.index(), lane)
    }

    /// One vector settle: alternate compiled sweeps and per-lane
    /// fallback quiescence runs until the boundary reaches a joint
    /// fixpoint. Returns `false` when the stitch-iteration bound or a
    /// lane's quiescence budget was exhausted (oscillation).
    pub fn settle_vector(&mut self) -> bool {
        self.vectors += 1;
        self.loop_overflow = false;
        let mut converged = false;
        let mut quiesced = true;
        for _iter in 0..self.max_stitch_iters {
            if self.pending_count > 0 {
                self.sweep();
            }
            let pushed = self.push_inbound();
            if pushed == 0 || self.fallback.is_none() {
                converged = true;
                break;
            }
            let fb = self.fallback.as_mut().expect("fallback present");
            for sim in &mut fb.sims {
                let target = sim.now() + self.quiesce_bound;
                if sim.run_to_quiescence(target) >= target {
                    quiesced = false;
                }
            }
            self.pull_outbound();
        }
        let ok = converged && quiesced && !self.loop_overflow;
        if !ok {
            self.unconverged_vectors += 1;
        }
        ok
    }

    /// One activity-gated sweep: pending block ops evaluated once in
    /// rank order, latch-cluster loops with any pending member iterated
    /// to their per-lane fixpoint, all 64 lanes at once. Ops whose
    /// input planes did not change since they last ran are skipped —
    /// their persisted output planes are already correct.
    fn sweep(&mut self) {
        self.sweeps += 1;
        let active = self.active_mask;
        let max_iters = self.max_loop_iters;
        let mut evals = 0u64;
        let mut overflow = false;
        let ops = &self.ops;
        let op_inputs = &self.op_inputs;
        let cells = &self.cells;
        let scratch = &mut self.scratch;
        let readers = &self.readers;
        let roff = &self.reader_off;
        let planes = &mut self.planes;
        let pending = &mut self.pending;
        let mut pcount = self.pending_count;
        let mark = |net: usize, pending: &mut Vec<bool>, pcount: &mut usize| {
            for &r in &readers[roff[net] as usize..roff[net + 1] as usize] {
                let r = r as usize;
                if !pending[r] {
                    pending[r] = true;
                    *pcount += 1;
                }
            }
        };
        for step in &self.steps {
            match *step {
                Step::Block { start, end } => {
                    for i in start as usize..end as usize {
                        if !pending[i] {
                            continue;
                        }
                        pending[i] = false;
                        pcount -= 1;
                        let op = &ops[i];
                        evals += 1;
                        match op.kind {
                            OpKind::Gate(kind) => {
                                let pins = &op_inputs
                                    [op.in_off as usize..(op.in_off + op.in_len) as usize];
                                let out = eval_op(kind, pins, planes);
                                if planes.set(op.out as usize, out) {
                                    mark(op.out as usize, pending, &mut pcount);
                                }
                            }
                            OpKind::Cell(ci) => {
                                eval_cell(&cells[ci as usize], planes, scratch, active);
                                for idx in scratch.changed.drain(..) {
                                    mark(idx as usize, pending, &mut pcount);
                                }
                            }
                        }
                    }
                }
                Step::Loop { start, end } => {
                    let range = start as usize..end as usize;
                    if !pending[range.clone()].iter().any(|&p| p) {
                        continue;
                    }
                    let body = &ops[range.clone()];
                    let mut iters = 0;
                    loop {
                        let mut changed = 0u64;
                        for op in body {
                            match op.kind {
                                OpKind::Gate(kind) => {
                                    let pins = &op_inputs
                                        [op.in_off as usize..(op.in_off + op.in_len) as usize];
                                    let out = eval_op(kind, pins, planes);
                                    let cur = planes.get(op.out as usize);
                                    let d =
                                        ((out.val ^ cur.val) | (out.known ^ cur.known)) & active;
                                    if d != 0 {
                                        planes.set(op.out as usize, out);
                                        mark(op.out as usize, pending, &mut pcount);
                                    }
                                    changed |= d;
                                }
                                OpKind::Cell(ci) => {
                                    let d = eval_cell(&cells[ci as usize], planes, scratch, active);
                                    for idx in scratch.changed.drain(..) {
                                        mark(idx as usize, pending, &mut pcount);
                                    }
                                    changed |= d;
                                }
                            }
                        }
                        evals += u64::from(end - start);
                        if changed == 0 {
                            break;
                        }
                        iters += 1;
                        if iters >= max_iters {
                            // Oscillating lanes: force this cluster's
                            // outputs to X in exactly those lanes (the
                            // compiled-mode oscillation detector) and
                            // flag the vector as unconverged.
                            let force =
                                |idx: usize,
                                 planes: &mut BitPlanes,
                                 pending: &mut Vec<bool>,
                                 pcount: &mut usize| {
                                    let cur = planes.get(idx);
                                    let forced = Plane {
                                        val: cur.val & !changed,
                                        known: cur.known & !changed,
                                    };
                                    if planes.set(idx, forced) {
                                        mark(idx, pending, pcount);
                                    }
                                };
                            for op in body {
                                match op.kind {
                                    OpKind::Gate(_) => {
                                        force(op.out as usize, planes, pending, &mut pcount);
                                    }
                                    OpKind::Cell(ci) => {
                                        for &g in &cells[ci as usize].members {
                                            force(g as usize, planes, pending, &mut pcount);
                                        }
                                    }
                                }
                            }
                            overflow = true;
                            break;
                        }
                    }
                    // Marks the loop left on its own members are stale:
                    // the cluster already converged (or was X-forced).
                    for i in range {
                        if pending[i] {
                            pending[i] = false;
                            pcount -= 1;
                        }
                    }
                }
            }
        }
        self.pending_count = pcount;
        self.compiled_evals += evals;
        if overflow {
            self.loop_overflow = true;
        }
    }

    /// Pushes changed inbound boundary planes into the lane simulators;
    /// returns the number of `(net, lane)` applications made.
    fn push_inbound(&mut self) -> u64 {
        let Some(fb) = self.fallback.as_mut() else {
            return 0;
        };
        let mut pushed = 0;
        for (i, &(orig, sub)) in fb.inbound.iter().enumerate() {
            let want = self.planes.get(orig as usize);
            let have = fb.last_applied.get(i);
            let diff = ((want.val ^ have.val) | (want.known ^ have.known)) & self.active_mask;
            if diff == 0 {
                continue;
            }
            fb.last_applied.set(i, want);
            let mut m = diff;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                fb.sims[lane].set_input(sub, want.lane(lane));
                pushed += 1;
            }
        }
        pushed
    }

    /// Exports fallback-driven boundary nets back into the planes.
    ///
    /// Only lanes whose simulator processed events since the last pull
    /// are re-read; the other lanes' bits already sit in the planes
    /// (compiled ops never drive a fallback-driven net, so the plane is
    /// exactly the last export).
    fn pull_outbound(&mut self) {
        let Some(fb) = self.fallback.as_mut() else {
            return;
        };
        let mut changed_lanes = 0u64;
        for (lane, sim) in fb.sims.iter().enumerate() {
            let events = sim.counters().events;
            if events != fb.events_at_pull[lane] {
                fb.events_at_pull[lane] = events;
                changed_lanes |= 1u64 << lane;
            }
        }
        if changed_lanes == 0 {
            return;
        }
        let mut changed_nets: Vec<u32> = Vec::new();
        for &(orig, sub) in &fb.outbound {
            let mut p = self.planes.get(orig as usize);
            let mut m = changed_lanes;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                p = p.with_lane(lane, fb.sims[lane].level(sub));
            }
            if self.planes.set(orig as usize, p) {
                changed_nets.push(orig);
            }
        }
        for n in changed_nets {
            self.mark_net(n as usize);
        }
    }

    /// Aggregate run statistics.
    #[must_use]
    pub fn stats(&self) -> BitParStats {
        BitParStats {
            lanes: self.lanes,
            compiled_gates: self.num_gate_ops,
            solver_cells: self.cells.len(),
            compiled_switches: self.compiled_switches,
            feedback_loops: self.loops,
            fallback_components: self.fallback.as_ref().map_or(0, |f| f.num_components),
            ranks: self.depth,
            vectors: self.vectors,
            sweeps: self.sweeps,
            compiled_evals: self.compiled_evals,
            fallback_events: self
                .fallback
                .as_ref()
                .map_or(0, |f| f.sims.iter().map(|s| s.counters().events).sum()),
            unconverged_vectors: self.unconverged_vectors,
        }
    }
}

/// Evaluates one compiled gate over the planes (branch-free per lane).
#[inline]
fn eval_op(kind: GateKind, pins: &[u32], planes: &BitPlanes) -> Plane {
    let pin = |i: usize| planes.get(pins[i] as usize);
    match kind {
        GateKind::Buf => pin(0),
        GateKind::Not => pin(0).not(),
        GateKind::And | GateKind::Nand => {
            let mut acc = pin(0);
            for i in 1..pins.len() {
                acc = acc.and(pin(i));
            }
            if kind == GateKind::Nand {
                acc.not()
            } else {
                acc
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut acc = pin(0);
            for i in 1..pins.len() {
                acc = acc.or(pin(i));
            }
            if kind == GateKind::Nor {
                acc.not()
            } else {
                acc
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = pin(0);
            for i in 1..pins.len() {
                acc = acc.xor(pin(i));
            }
            if kind == GateKind::Xnor {
                acc.not()
            } else {
                acc
            }
        }
        GateKind::Tristate => unreachable!("live tristates never compile"),
    }
}

/// Per-lane conduction masks for a switch from its control plane:
/// `(on, maybe)` where `on` = definitely conducting and `maybe` = not
/// definitely off (unknown controls conduct pessimistically, with the
/// passed level forced to X — exactly [`crate::solver`]).
#[inline]
fn conduction(ctl: Plane, pmos: bool) -> (u64, u64) {
    let (on, off) = if pmos {
        (ctl.is_zero(), ctl.is_one())
    } else {
        (ctl.is_one(), ctl.is_zero())
    };
    (on, !off)
}

/// Joins one candidate contribution into member `dst` of the scratch
/// state, lane-parallel: strictly stronger candidates replace the
/// accumulated (strength, level); equal-strength candidates resolve
/// levels (agree → keep, disagree or unknown → X). This is
/// `Signal::resolve` over bit planes; returns `true` if `dst` moved.
#[inline]
fn join(sc: &mut CellScratch, dst: usize, cv: u64, ck: u64, cs1: u64, cs0: u64) -> bool {
    let (dv, dk, ds1, ds0) = (sc.v[dst], sc.k[dst], sc.s1[dst], sc.s0[dst]);
    // Lanes where the candidate carries any drive at all.
    let nz = cs1 | cs0;
    let e1 = !(cs1 ^ ds1);
    // 2-bit tier compare: candidate strictly stronger / equal.
    let gt = ((cs1 & !ds1) | (e1 & cs0 & !ds0)) & nz;
    let eq = (e1 & !(cs0 ^ ds0)) & nz;
    // Equal strength: the level survives only where both sides agree.
    let rk = ck & dk & !(cv ^ dv);
    let rv = cv & rk;
    let keep = !gt & !eq;
    let nv = (dv & keep) | (cv & gt) | (rv & eq);
    let nk = (dk & keep) | (ck & gt) | (rk & eq);
    let ns1 = (ds1 & !gt) | (cs1 & gt);
    let ns0 = (ds0 & !gt) | (cs0 & gt);
    let moved = (nv ^ dv) | (nk ^ dk) | (ns1 ^ ds1) | (ns0 ^ ds0);
    sc.v[dst] = nv;
    sc.k[dst] = nk;
    sc.s1[dst] = ns1;
    sc.s0[dst] = ns0;
    moved != 0
}

/// Evaluates one solver cell over the planes: initializes each member
/// from its external drive (strong slot, else resistive pull, else
/// high-impedance), folds in the constant rail branches, then relaxes
/// the member-member switch edges to the least fixpoint of the
/// (strength, level) join lattice — the vectorized
/// [`crate::solver::resolve_group_into`]. Members left at `HighZ` keep
/// their previous plane as trapped charge. Writes the resolved member
/// planes, records changed nets in `sc.changed`, and returns the lane
/// mask (under `active`) where any member changed.
fn eval_cell(cell: &Cell, planes: &mut BitPlanes, sc: &mut CellScratch, active: u64) -> u64 {
    let n = cell.members.len();
    sc.v.clear();
    sc.v.resize(n, 0);
    sc.k.clear();
    sc.k.resize(n, 0);
    sc.s1.clear();
    sc.s1.resize(n, 0);
    sc.s0.clear();
    sc.s0.resize(n, 0);
    for m in 0..n {
        let slot = cell.ext_slot[m];
        if slot != u32::MAX {
            let p = planes.get(slot as usize);
            sc.v[m] = p.val;
            sc.k[m] = p.known;
            sc.s1[m] = !0;
            sc.s0[m] = !0;
        } else if let Some(l) = cell.ext_pull[m] {
            let p = Plane::splat(l);
            sc.v[m] = p.val;
            sc.k[m] = p.known;
            sc.s0[m] = !0;
        }
    }
    // Rail branches are constant per evaluation: Supply degrades to
    // Strong through the switch, level X where conduction is unknown.
    for rb in &cell.rails {
        let (on, maybe) = conduction(planes.get(rb.ctl as usize), rb.pmos);
        let lvl = Plane::splat(rb.level);
        join(
            sc,
            rb.m as usize,
            lvl.val & on,
            lvl.known & on,
            maybe,
            maybe,
        );
    }
    // Member-member relaxation. The join only ascends a finite lattice
    // (strength tier up, then level known → X), so this terminates;
    // the guard is pure defense.
    let mut guard = 0u32;
    loop {
        let mut moved = false;
        for e in &cell.edges {
            let (on, maybe) = conduction(planes.get(e.ctl as usize), e.pmos);
            let unknown = maybe & !on;
            for (s, d) in [(e.a, e.b), (e.b, e.a)] {
                let (s, d) = (s as usize, d as usize);
                let (ss1, ss0) = (sc.s1[s], sc.s0[s]);
                // through_switch on tiers: Strong → Weak, rest as-is.
                let cs1 = ss1 & maybe;
                let cs0 = (ss0 & !ss1) & maybe;
                let ck = sc.k[s] & !unknown & maybe;
                let cv = sc.v[s] & ck;
                moved |= join(sc, d, cv, ck, cs1, cs0);
            }
        }
        if !moved {
            break;
        }
        guard += 1;
        if guard > 64 * 6 * (n as u32 + 1) {
            debug_assert!(false, "solver cell failed to converge");
            break;
        }
    }
    sc.changed.clear();
    let mut diff = 0u64;
    for (m, &g) in cell.members.iter().enumerate() {
        let g = g as usize;
        let highz = !(sc.s1[m] | sc.s0[m]);
        let old = planes.get(g);
        let known = (sc.k[m] & !highz) | (old.known & highz);
        let val = ((sc.v[m] & !highz) | (old.val & highz)) & known;
        let p = Plane { val, known };
        diff |= ((p.val ^ old.val) | (p.known ^ old.known)) & active;
        if planes.set(g, p) {
            sc.changed.push(g as u32);
        }
    }
    diff
}

/// Builds the boundary-stitched fallback sub-netlist and its per-lane
/// simulators. Returns `None` when everything compiled.
fn build_fallback(
    netlist: &Netlist,
    fb_comp: &[bool],
    read_by_compiled: &[bool],
    lanes: usize,
    config: &SimConfig,
) -> Result<Option<Fallback>, PreflightError> {
    if !fb_comp.iter().any(|&f| f) {
        return Ok(None);
    }
    let nn = netlist.num_nets();
    let mut needed = vec![false; nn];
    let mut fb_driven = vec![false; nn];
    let mut num_components = 0;
    for (id, comp) in netlist.iter() {
        if !fb_comp[id.index()] {
            continue;
        }
        num_components += 1;
        for n in comp.read_nets() {
            needed[n.index()] = true;
        }
        for n in comp.driven_nets() {
            needed[n.index()] = true;
            fb_driven[n.index()] = true;
        }
    }

    let mut b = NetlistBuilder::new(format!("{}.bitpar-fallback", netlist.name()));
    let mut net_map: Vec<Option<NetId>> = vec![None; nn];
    let mut inbound = Vec::new();
    // A needed net whose value originates outside the fallback region
    // (primary input, compiled gate or cell, constant rail) enters the
    // sub-netlist as a primary input. A compiled *switch* driver only
    // counts when the net is not fallback-driven: a rail shared by
    // compiled and fallback switches keeps its in-sub Supply (a Strong
    // sub-input would wrongly degrade through fallback switches).
    for i in 0..nn {
        if !needed[i] {
            continue;
        }
        let any_external = netlist
            .drivers(NetId(i as u32))
            .iter()
            .any(|&d| !fb_comp[d.index()] && (!netlist.component(d).is_switch() || !fb_driven[i]));
        if any_external {
            let sub = b.input(netlist.net_name(NetId(i as u32)));
            net_map[i] = Some(sub);
            inbound.push((i as u32, sub));
        }
    }
    for i in 0..nn {
        if needed[i] && net_map[i].is_none() {
            net_map[i] = Some(b.net(netlist.net_name(NetId(i as u32))));
        }
    }
    let map = |n: NetId| net_map[n.index()].expect("needed net mapped");
    for (id, comp) in netlist.iter() {
        if !fb_comp[id.index()] {
            continue;
        }
        match comp {
            Component::Gate {
                kind,
                inputs,
                output,
                delay,
            } => {
                let pins: Vec<NetId> = inputs.iter().map(|&n| map(n)).collect();
                b.gate(*kind, &pins, map(*output), *delay);
            }
            Component::Switch {
                kind,
                control,
                a,
                b: bb,
                ..
            } => {
                b.switch(*kind, map(*control), map(*a), map(*bb));
            }
            Component::Pull { net, level } => {
                b.pull(map(*net), *level);
            }
            Component::Supply { net, level } => {
                b.supply(map(*net), *level);
            }
            Component::Input { .. } => unreachable!("inputs never classify as fallback"),
        }
    }
    let sub = b
        .finish()
        .expect("fallback sub-netlist is structurally valid");
    let outbound: Vec<(u32, NetId)> = (0..nn)
        .filter(|&i| fb_driven[i] && read_by_compiled[i])
        .map(|i| (i as u32, net_map[i].expect("boundary net mapped")))
        .collect();
    let sub_config = SimConfig {
        collect_trace: false,
        observe: false,
        optimize: false,
        ..config.clone()
    };
    let mut sims = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        sims.push(Simulator::with_config_owned(
            sub.clone(),
            sub_config.clone(),
        )?);
    }
    let num_inbound = inbound.len();
    Ok(Some(Fallback {
        events_at_pull: vec![u64::MAX; sims.len()],
        sims,
        net_map,
        fb_driven,
        inbound,
        outbound,
        last_applied: BitPlanes::new(num_inbound),
        num_components,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::{Delay, SwitchKind};

    fn adder2() -> Netlist {
        let mut b = NetlistBuilder::new("adder2");
        let a0 = b.input("a0");
        let a1 = b.input("a1");
        let b0 = b.input("b0");
        let b1 = b.input("b1");
        let s0 = b.net("s0");
        b.gate(GateKind::Xor, &[a0, b0], s0, Delay::uniform(1));
        let c0 = b.net("c0");
        b.gate(GateKind::And, &[a0, b0], c0, Delay::uniform(1));
        let x1 = b.net("x1");
        b.gate(GateKind::Xor, &[a1, b1], x1, Delay::uniform(1));
        let s1 = b.net("s1");
        b.gate(GateKind::Xor, &[x1, c0], s1, Delay::uniform(1));
        let t1 = b.net("t1");
        b.gate(GateKind::And, &[a1, b1], t1, Delay::uniform(1));
        let t2 = b.net("t2");
        b.gate(GateKind::And, &[x1, c0], t2, Delay::uniform(1));
        let c1 = b.net("c1");
        b.gate(GateKind::Or, &[t1, t2], c1, Delay::uniform(1));
        b.mark_output(s0);
        b.mark_output(s1);
        b.mark_output(c1);
        b.finish().unwrap()
    }

    #[test]
    fn all_gate_circuit_compiles_fully() {
        let n = adder2();
        let sim = BitParSim::new(&n, 64).unwrap();
        let st = sim.stats();
        assert_eq!(st.compiled_gates, n.num_gates());
        assert_eq!(st.fallback_components, 0);
    }

    #[test]
    fn adder_adds_in_all_lanes_at_once() {
        let n = adder2();
        let mut sim = BitParSim::new(&n, 64).unwrap();
        let net = |s: &str| n.find_net(s).unwrap();
        // Lane i computes i%4 + i/4%4 (16 combinations over 64 lanes).
        let mut a0 = Plane::ALL_X;
        let mut a1 = Plane::ALL_X;
        let mut b0 = Plane::ALL_X;
        let mut b1 = Plane::ALL_X;
        for lane in 0..64 {
            let (a, b) = ((lane % 4) as u32, ((lane / 4) % 4) as u32);
            a0 = a0.with_lane(lane, Level::from_bool(a & 1 == 1));
            a1 = a1.with_lane(lane, Level::from_bool(a >> 1 & 1 == 1));
            b0 = b0.with_lane(lane, Level::from_bool(b & 1 == 1));
            b1 = b1.with_lane(lane, Level::from_bool(b >> 1 & 1 == 1));
        }
        sim.set_input_plane(net("a0"), a0);
        sim.set_input_plane(net("a1"), a1);
        sim.set_input_plane(net("b0"), b0);
        sim.set_input_plane(net("b1"), b1);
        assert!(sim.settle_vector());
        for lane in 0..64 {
            let (a, b) = ((lane % 4) as u32, ((lane / 4) % 4) as u32);
            let mut sum = 0;
            if sim.level(net("s0"), lane) == Level::One {
                sum |= 1;
            }
            if sim.level(net("s1"), lane) == Level::One {
                sum |= 2;
            }
            if sim.level(net("c1"), lane) == Level::One {
                sum |= 4;
            }
            assert_eq!(sum, a + b, "lane {lane}: {a}+{b}");
        }
    }

    #[test]
    fn unknown_inputs_stay_x_per_lane() {
        let n = adder2();
        let mut sim = BitParSim::new(&n, 2).unwrap();
        let net = |s: &str| n.find_net(s).unwrap();
        // Lane 0 known, lane 1 left X.
        for name in ["a0", "a1", "b0", "b1"] {
            sim.set_input_plane(net(name), Plane::ALL_X.with_lane(0, Level::One));
        }
        assert!(sim.settle_vector());
        assert_eq!(sim.level(net("s0"), 0), Level::Zero); // 1+1 -> s0=0
        assert_eq!(sim.level(net("s0"), 1), Level::X);
    }

    #[test]
    fn pass_transistor_mux_compiles_as_solver_cell() {
        // Pass-transistor mux: sel routes a or b to z (nmos pair with
        // complementary controls), plus a compiled inverter. The whole
        // channel sub-group {a, b, z} compiles as one solver cell.
        let mut b = NetlistBuilder::new("ptmux");
        let sel = b.input("sel");
        let sel_n = b.net("sel_n");
        b.gate(GateKind::Not, &[sel], sel_n, Delay::uniform(1));
        let a = b.input("a");
        let bb = b.input("b");
        let z = b.net("z");
        b.switch(SwitchKind::Nmos, sel, a, z);
        b.switch(SwitchKind::Nmos, sel_n, bb, z);
        b.mark_output(z);
        let n = b.finish().unwrap();
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = BitParSim::new(&n, 5).unwrap();
        let st = sim.stats();
        assert_eq!(st.compiled_gates, 1, "inverter compiles");
        assert_eq!(st.solver_cells, 1, "one channel sub-group");
        assert_eq!(st.compiled_switches, 2);
        assert_eq!(st.fallback_components, 0, "nothing falls back");
        // Lanes: (a,b,sel) varied per lane; an X select floats both
        // pass gates pessimistically, so z resolves to X.
        let tbl = [
            (Level::One, Level::Zero, Level::One, Level::One),
            (Level::One, Level::Zero, Level::Zero, Level::Zero),
            (Level::Zero, Level::One, Level::One, Level::Zero),
            (Level::Zero, Level::One, Level::Zero, Level::One),
            (Level::One, Level::Zero, Level::X, Level::X),
        ];
        let mut pa = Plane::ALL_X;
        let mut pb = Plane::ALL_X;
        let mut ps = Plane::ALL_X;
        for (lane, &(la, lb, ls, _)) in tbl.iter().enumerate() {
            pa = pa.with_lane(lane, la);
            pb = pb.with_lane(lane, lb);
            ps = ps.with_lane(lane, ls);
        }
        sim.set_input_plane(net("a"), pa);
        sim.set_input_plane(net("b"), pb);
        sim.set_input_plane(net("sel"), ps);
        assert!(sim.settle_vector());
        for (lane, &(_, _, _, want)) in tbl.iter().enumerate() {
            assert_eq!(sim.level(net("z"), lane), want, "lane {lane}");
        }
    }

    #[test]
    fn nmos_inverter_cell_resolves_pull_against_rail() {
        // Depletion-load nMOS inverter: pull-up on y, pulldown switch
        // to gnd. The rail splits off; the cell sees a constant Strong
        // branch that overrides the Resistive pull when conducting.
        let mut b = NetlistBuilder::new("nmos_inv");
        let a = b.input("a");
        let y = b.net("y");
        b.pull(y, Level::One);
        let gnd = b.net("gnd");
        b.supply(gnd, Level::Zero);
        b.switch(SwitchKind::Nmos, a, y, gnd);
        b.mark_output(y);
        let n = b.finish().unwrap();
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = BitParSim::new(&n, 3).unwrap();
        let st = sim.stats();
        assert_eq!(st.solver_cells, 1);
        assert_eq!(st.compiled_switches, 1);
        assert_eq!(st.fallback_components, 0);
        let pa = Plane::ALL_X
            .with_lane(0, Level::One)
            .with_lane(1, Level::Zero);
        sim.set_input_plane(net("a"), pa);
        assert!(sim.settle_vector());
        assert_eq!(sim.level(net("y"), 0), Level::Zero, "pulldown on");
        assert_eq!(sim.level(net("y"), 1), Level::One, "pull-up wins");
        assert_eq!(sim.level(net("y"), 2), Level::X, "unknown gate");
    }

    #[test]
    fn dynamic_node_retains_charge_when_pass_gate_closes() {
        // Pass gate into an inverter: with the clock low the storage
        // node floats and must keep its last driven level as trapped
        // charge, exactly like the event engine's charge model.
        let mut b = NetlistBuilder::new("dyn");
        let d = b.input("d");
        let clk = b.input("clk");
        let s = b.net("s");
        b.switch(SwitchKind::Nmos, clk, d, s);
        let q = b.net("q");
        b.gate(GateKind::Not, &[s], q, Delay::uniform(1));
        b.mark_output(q);
        let n = b.finish().unwrap();
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = BitParSim::new(&n, 1).unwrap();
        let st = sim.stats();
        assert_eq!(st.solver_cells, 1);
        assert_eq!(st.fallback_components, 0);
        let one = Plane::splat(Level::One);
        let zero = Plane::splat(Level::Zero);
        sim.set_input_plane(net("clk"), one);
        sim.set_input_plane(net("d"), one);
        assert!(sim.settle_vector());
        assert_eq!(sim.level(net("s"), 0), Level::One);
        assert_eq!(sim.level(net("q"), 0), Level::Zero);
        // Clock falls, data flips: the stored charge must hold.
        sim.set_input_plane(net("clk"), zero);
        sim.set_input_plane(net("d"), zero);
        assert!(sim.settle_vector());
        assert_eq!(sim.level(net("s"), 0), Level::One, "charge retained");
        assert_eq!(sim.level(net("q"), 0), Level::Zero);
        // Clock rises again: the new data drives through.
        sim.set_input_plane(net("clk"), one);
        assert!(sim.settle_vector());
        assert_eq!(sim.level(net("s"), 0), Level::Zero);
        assert_eq!(sim.level(net("q"), 0), Level::One);
    }

    #[test]
    fn live_tristate_into_switch_group_falls_back() {
        // A live-enable tristate driving into a pass gate: the member
        // net has a non-compilable strong source, so the whole
        // sub-group (tristate + switch) runs in the event fallback.
        let mut b = NetlistBuilder::new("tri_sw");
        let d = b.input("d");
        let en = b.input("en");
        let y = b.net("y");
        b.gate(GateKind::Tristate, &[d, en], y, Delay::uniform(1));
        let c = b.input("c");
        let z = b.net("z");
        b.switch(SwitchKind::Nmos, c, y, z);
        b.mark_output(z);
        let n = b.finish().unwrap();
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = BitParSim::new(&n, 2).unwrap();
        let st = sim.stats();
        assert_eq!(st.solver_cells, 0);
        assert!(st.fallback_components >= 2, "tristate and switch");
        sim.set_input_plane(net("d"), Plane::splat(Level::One));
        sim.set_input_plane(
            net("en"),
            Plane::ALL_X
                .with_lane(0, Level::One)
                .with_lane(1, Level::Zero),
        );
        sim.set_input_plane(net("c"), Plane::splat(Level::One));
        assert!(sim.settle_vector());
        assert_eq!(sim.level(net("z"), 0), Level::One, "driven through");
        assert_eq!(sim.level(net("z"), 1), Level::X, "floating source");
    }

    #[test]
    fn feedback_latch_compiles_to_loop_and_holds_state() {
        let mut b = NetlistBuilder::new("latch");
        let s = b.input("s_n");
        let r = b.input("r_n");
        let q = b.net("q");
        let qn = b.net("qn");
        b.gate(GateKind::Nand, &[s, qn], q, Delay::uniform(1));
        b.gate(GateKind::Nand, &[r, q], qn, Delay::uniform(1));
        b.mark_output(q);
        let n = b.finish().unwrap();
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = BitParSim::new(&n, 2).unwrap();
        assert_eq!(sim.stats().compiled_gates, 2, "latch compiles in-plane");
        assert_eq!(sim.stats().feedback_loops, 1, "one latch cluster");
        assert_eq!(sim.stats().fallback_components, 0);
        // Lane 0: set; lane 1: reset.
        let ps = Plane::ALL_X
            .with_lane(0, Level::Zero)
            .with_lane(1, Level::One);
        let pr = Plane::ALL_X
            .with_lane(0, Level::One)
            .with_lane(1, Level::Zero);
        sim.set_input_plane(net("s_n"), ps);
        sim.set_input_plane(net("r_n"), pr);
        assert!(sim.settle_vector());
        assert_eq!(sim.level(net("q"), 0), Level::One);
        assert_eq!(sim.level(net("q"), 1), Level::Zero);
        // Release both: each lane holds its state.
        sim.set_input_plane(net("s_n"), Plane::splat(Level::One));
        sim.set_input_plane(net("r_n"), Plane::splat(Level::One));
        assert!(sim.settle_vector());
        assert_eq!(sim.level(net("q"), 0), Level::One);
        assert_eq!(sim.level(net("q"), 1), Level::Zero);
    }

    #[test]
    fn oscillating_loop_forces_x_and_reports_unconverged() {
        // A seeded inverter self-loop cannot reach a fixpoint: the
        // cluster loop must hit its bound, force the oscillating lane
        // to X, and report the vector unconverged.
        let mut b = NetlistBuilder::new("osc");
        let x = b.net("x");
        b.gate(GateKind::Not, &[x], x, Delay::uniform(1));
        b.mark_output(x);
        let n = b.finish().unwrap();
        let mut sim = BitParSim::new(&n, 2).unwrap();
        assert_eq!(sim.stats().feedback_loops, 1);
        // Lane 0 seeded to a known level (oscillates); lane 1 left X
        // (X is the loop's fixpoint there).
        sim.set_input_plane(x, Plane::ALL_X.with_lane(0, Level::Zero));
        assert!(!sim.settle_vector());
        assert_eq!(sim.stats().unconverged_vectors, 1);
        assert_eq!(sim.level(x, 0), Level::X);
        assert_eq!(sim.level(x, 1), Level::X);
        // Once forced to X the loop is stable again.
        assert!(sim.settle_vector());
    }

    #[test]
    fn tristate_with_rail_enable_compiles_to_buf() {
        let mut b = NetlistBuilder::new("tri_const");
        let d = b.input("d");
        let en = b.net("en");
        b.supply(en, Level::One);
        let y = b.net("y");
        b.gate(GateKind::Tristate, &[d, en], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let mut sim = BitParSim::new(&n, 1).unwrap();
        assert_eq!(sim.stats().compiled_gates, 1);
        assert_eq!(sim.stats().fallback_components, 0);
        sim.set_input_plane(n.find_net("d").unwrap(), Plane::splat(Level::One));
        assert!(sim.settle_vector());
        assert_eq!(sim.level(n.find_net("y").unwrap(), 0), Level::One);
    }

    #[test]
    fn live_tristate_falls_back() {
        let mut b = NetlistBuilder::new("tri_live");
        let d = b.input("d");
        let en = b.input("en");
        let y = b.net("y");
        b.gate(GateKind::Tristate, &[d, en], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let net = |s: &str| n.find_net(s).unwrap();
        let mut sim = BitParSim::new(&n, 2).unwrap();
        assert_eq!(sim.stats().compiled_gates, 0);
        let pd = Plane::splat(Level::One);
        let pe = Plane::ALL_X
            .with_lane(0, Level::One)
            .with_lane(1, Level::Zero);
        sim.set_input_plane(net("d"), pd);
        sim.set_input_plane(net("en"), pe);
        assert!(sim.settle_vector());
        assert_eq!(sim.level(net("y"), 0), Level::One);
        // Disabled: floating, level X.
        assert_eq!(sim.level(net("y"), 1), Level::X);
    }
}
