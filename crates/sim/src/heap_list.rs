//! A binary-heap event list — the baseline the timing wheel beats.
//!
//! The paper's model assumes "near-constant-time event-list management
//! capabilities \[UL78\]" (Ulrich's timing wheel) and names event-list
//! manipulation a prime candidate for functional specialization because
//! it eats most of a software simulator's time. This module provides
//! the conventional alternative — a priority queue over (tick, seq) —
//! with the same interface as [`crate::wheel::TimingWheel`], so the
//! O(1)-vs-O(log n) claim can be tested (property tests assert the two
//! structures are observationally equivalent) and measured (the
//! `event_list` Criterion bench).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A heap-backed event list keyed by absolute tick, preserving FIFO
/// order among items scheduled for the same tick.
#[derive(Debug, Clone)]
pub struct HeapEventList<T> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    items: std::collections::HashMap<u64, T>,
    now: u64,
    seq: u64,
}

impl<T> Default for HeapEventList<T> {
    fn default() -> HeapEventList<T> {
        HeapEventList::new()
    }
}

impl<T> HeapEventList<T> {
    /// Creates an empty list at tick 0.
    #[must_use]
    pub fn new() -> HeapEventList<T> {
        HeapEventList {
            heap: BinaryHeap::new(),
            items: std::collections::HashMap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// The current tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of scheduled items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an item at an absolute tick.
    ///
    /// # Panics
    ///
    /// Panics if `tick < now()`.
    pub fn schedule(&mut self, tick: u64, item: T) {
        assert!(
            tick >= self.now,
            "cannot schedule at tick {tick}, list is at {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((tick, seq)));
        self.items.insert(seq, item);
    }

    /// Removes and returns all items scheduled for the current tick, in
    /// scheduling order.
    pub fn pop_current(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(&Reverse((tick, seq))) = self.heap.peek() {
            if tick != self.now {
                break;
            }
            self.heap.pop();
            out.push(self.items.remove(&seq).expect("item for key"));
        }
        out
    }

    /// Advances to the next tick.
    pub fn advance(&mut self) {
        debug_assert!(
            self.heap.peek().is_none_or(|&Reverse((t, _))| t > self.now),
            "advancing past unpopped events"
        );
        self.now += 1;
    }

    /// The next tick with scheduled items, if any.
    #[must_use]
    pub fn next_pending_tick(&self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((t, _))| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_timing_wheel() {
        let mut h: HeapEventList<u32> = HeapEventList::new();
        h.schedule(0, 1);
        h.schedule(0, 2);
        h.schedule(3, 3);
        assert_eq!(h.pop_current(), vec![1, 2]);
        assert_eq!(h.next_pending_tick(), Some(3));
        for _ in 0..3 {
            assert!(h.pop_current().is_empty());
            h.advance();
        }
        assert_eq!(h.pop_current(), vec![3]);
        assert!(h.is_empty());
    }

    #[test]
    fn same_tick_fifo_order() {
        let mut h: HeapEventList<u32> = HeapEventList::new();
        for i in 0..20 {
            h.schedule(5, i);
        }
        for _ in 0..5 {
            h.pop_current();
            h.advance();
        }
        assert_eq!(h.pop_current(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn past_scheduling_panics() {
        let mut h: HeapEventList<u32> = HeapEventList::new();
        h.advance();
        h.schedule(0, 1);
    }
}
