//! Tick-synchronous parallel simulation engine: the paper's
//! `UI/GC/Q=P/P/L` machine executed on real threads.
//!
//! [`ParSimulator`] runs the same event-driven semantics as the serial
//! [`Simulator`](crate::Simulator) across `P` long-lived worker threads
//! plus the calling thread acting as the *master* (the paper's host
//! processor). Components are dealt to workers by a
//! `logicsim-partition` assignment; each worker owns a private
//! [`TimingWheel`] (the paper's per-processor event list) and the
//! per-component state of the components it owns. Every global tick is
//! a bulk-synchronous round — the machine's START/DONE handshake —
//! built from barrier-delimited phases:
//!
//! 1. **Apply**: every party drains its own wheel's current slot and
//!    applies the surviving (non-stale) output changes to its
//!    components.
//! 2. **Exchange/merge**: the master collects each party's affected
//!    nets (the cross-partition net updates; the per-party outbox/inbox
//!    slots are single-producer single-consumer mailboxes between that
//!    worker and the master), resolves ordinary nets, and routes dirty
//!    switch groups and fanout evaluation work back out.
//! 3. **Resolve**/**Eval** rounds: workers settle switch groups and
//!    evaluate fanout components in parallel, scheduling delayed output
//!    changes into their own wheels, until the tick settles exactly as
//!    in the serial engine.
//!
//! # Determinism
//!
//! The parallel engine is *bit-identical* to the serial engine — the
//! golden FNV trace digests pass unchanged for every `P` (see
//! `tests/golden_trace.rs`). The serial engine's behavior depends on
//! scheduling order only through its monotonically increasing sequence
//! counter, and that counter is incremented in a fixed program order:
//! stimulus calls first, then, within each settle round, components in
//! ascending id order. A [`Stamp`] `(tick, pass, rank)` — scheduling
//! tick, settle pass (stimulus = pass 0), and per-pass rank (call index
//! for stimulus, component id for evaluations) — therefore identifies
//! each schedule event, and lexicographic stamp order *is* serial
//! sequence order. Workers stamp their schedules locally with no
//! coordination; when several parties change drives onto the same net
//! in one tick, the master picks the maximum-stamp cause, which equals
//! the serial engine's last-writer-wins. Inertial descheduling compares
//! stamps for equality only, so it is local to the owning worker.
//!
//! Switch groups are settled in parallel by *coupling cluster*: groups
//! whose resolution can observe each other within a settle pass (a
//! switch in one group controlled by a net of another) are united and
//! always resolved sequentially, in ascending group order, by one
//! party. Cross-cluster resolutions touch disjoint nets, so resolving
//! clusters concurrently and merging the results in group order
//! reproduces the serial pass exactly.
//!
//! Ticks where no party has pending work are fast-forwarded by the
//! master without waking the workers, mirroring the serial engine's
//! cheap idle ticks (and the modeled machine's START/DONE-only cycles).

// The engine drives par_sync's unsafe accessors directly (the phase
// discipline justifying each call is engine-level knowledge, so a
// "safe" wrapper here would only hide the obligation); it is on the
// `cargo xtask lint-unsafe` allowlist and every block carries a SAFETY
// comment. See also DESIGN.md's safety argument.
#![allow(unsafe_code)]

use crate::engine::{
    relax_power_up, EvalKind, Image, NetHold, PreflightError, SimConfig, StampSet,
};
use crate::instrument::{ActivityProfile, WorkloadCounters};
use crate::obs::{self, Phase};
use crate::par_sync::{SharedSlots, SharedVec, SpinBarrier};
use crate::phase_check::{self, PhaseClock};
use crate::solver;
use crate::trace::{EventRecord, TickRecord, TickTrace};
use crate::wheel::TimingWheel;
use logicsim_netlist::{Component, Level, NetId, Netlist, Signal};
use logicsim_stats::{ParallelWorkload, WorkerLoad};

/// Identifies one schedule event in the serial engine's program order:
/// lexicographic `(tick, pass, rank)` order equals serial sequence
/// order (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Stamp {
    /// Tick at which the schedule call happened.
    tick: u64,
    /// Settle pass within the tick: 0 for stimulus, `p >= 1` for the
    /// `p`-th evaluation pass.
    pass: u32,
    /// Order within the pass: stimulus call index, or component id.
    rank: u32,
}

const STAMP_ZERO: Stamp = Stamp {
    tick: 0,
    pass: 0,
    rank: 0,
};

/// A scheduled output change in a party's wheel (the parallel analog of
/// the serial engine's `Change`, with the stamp playing the `seq` role).
#[derive(Debug, Clone, Copy)]
struct PChange {
    comp: u32,
    drive: Signal,
    stamp: Stamp,
}

/// Phase command published by the master before releasing the barrier.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Drain the party's current wheel slot and apply changes.
    Apply {
        /// Current tick (observation label only).
        tick: u64,
    },
    /// Resolve the switch groups in the party's inbox.
    Resolve {
        /// Current tick (observation label only).
        tick: u64,
    },
    /// Evaluate the fanout components in the party's inbox; stamps are
    /// `(tick, pass, component id)`.
    Eval { tick: u64, pass: u32 },
    /// Terminate the worker loop.
    Exit,
}

/// Per-party mailbox and scratch state. Each slot is owned by its party
/// during worker phases and by the master between phases (the
/// single-producer single-consumer discipline of a mailbox pair).
#[derive(Debug)]
struct PartyState {
    /// This party's event list.
    wheel: TimingWheel<PChange>,
    /// Changes popped this tick (scratch).
    changes: Vec<PChange>,
    /// Outbox: number of entries popped from the wheel this tick.
    popped: u64,
    /// Outbox: applied output changes as `(net, comp, stamp)`.
    affected: Vec<(u32, u32, Stamp)>,
    /// Inbox: switch groups to resolve, ascending.
    gids: Vec<u32>,
    /// Outbox: nets whose value changed during resolution, as
    /// `(group, net)` in resolution order.
    resolved: Vec<(u32, u32)>,
    /// Inbox: components to evaluate, ascending.
    eval_comps: Vec<u32>,
    /// Outbox: number of changes scheduled into the wheel this pass.
    scheduled: u64,
    /// Outbox: evaluations performed this pass.
    evaluations: u64,
    /// Outbox: switch groups marked dirty by this pass's evaluations.
    dirty: Vec<u32>,
    /// Scratch: gate input levels.
    levels: Vec<Level>,
    /// Scratch: one group resolution's output.
    group_out: Vec<(NetId, Signal)>,
    /// Scratch: switch-solver buffers.
    solver: solver::Scratch,
    /// Per-party phase recorder. Written only by the owning party
    /// during its phase (the slot discipline covers it), so recording
    /// takes no locks.
    obs: obs::Lane,
}

impl PartyState {
    fn new(wheel_size: usize, obs: obs::Lane) -> PartyState {
        PartyState {
            wheel: TimingWheel::new(wheel_size),
            changes: Vec::new(),
            popped: 0,
            affected: Vec::new(),
            gids: Vec::new(),
            resolved: Vec::new(),
            eval_comps: Vec::new(),
            scheduled: 0,
            evaluations: 0,
            dirty: Vec::new(),
            levels: Vec::new(),
            group_out: Vec::new(),
            solver: solver::Scratch::default(),
            obs,
        }
    }
}

/// State shared (read-only or phase-disciplined) between the master and
/// the workers.
struct Core<'a> {
    netlist: NetHold<'a>,
    img: Image,
    config: SimConfig,
    /// Number of evaluator workers `P`. Party indices `0..workers` are
    /// workers; index `workers` is the master's own party (inputs,
    /// pulls, rails, and any unassigned component).
    workers: usize,
    /// Partition id per component (`u32::MAX` = unassigned).
    assignment: Vec<u32>,
    /// Owning party per component.
    owner: Vec<u32>,
    /// Owning party per switch group's coupling cluster (`u32::MAX` for
    /// trivial groups, which the master resolves as ordinary nets).
    group_owner: Vec<u32>,
    /// Resolved value of every net.
    net_values: SharedVec<Signal>,
    /// Output drive per component (written only by the owner).
    comp_drive: SharedVec<Signal>,
    /// Last scheduled drive per component (owner only).
    last_scheduled: SharedVec<Signal>,
    /// Outstanding schedule stamp per component (owner only).
    pending: SharedVec<Option<Stamp>>,
    /// Per-party mailboxes, wheels, and scratch.
    parties: SharedSlots<PartyState>,
    /// The current phase command (single slot).
    cmd: SharedSlots<Cmd>,
    /// Phase barrier over `workers + 1` parties.
    barrier: SpinBarrier,
    /// Phase clock shared with the barrier and (under `phase-check`)
    /// every recorder; the master bumps it after a run's workers join
    /// so between-run accesses get their own phase.
    clock: PhaseClock,
}

impl Core<'_> {
    fn num_parties(&self) -> usize {
        self.parties.len()
    }

    /// External (non-switch) drive on a net from the shared drive array.
    ///
    /// # Safety
    ///
    /// No party may be writing `comp_drive` entries of the net's
    /// drivers in the current phase.
    #[inline]
    unsafe fn external_drive(&self, net: NetId) -> Signal {
        let mut v = Signal::FLOATING;
        for &d in self.img.ext_drivers.row(net.index()) {
            // SAFETY: forwards this method's own contract — no party
            // writes these `comp_drive` entries in the current phase.
            v = v.resolve(unsafe { self.comp_drive.get(d as usize) });
        }
        v
    }
}

/// Master-only bookkeeping (never touched by workers).
struct Master {
    now: u64,
    /// Arithmetic mirror of the serial engine's `wheel.len()`: total
    /// entries (including stale ones) across all party wheels.
    pending_total: u64,
    /// Tick of the last stimulus call, for per-tick rank reset.
    input_tick: u64,
    /// Rank of the next stimulus call within `input_tick`.
    input_rank: u32,
    /// True between a phase's release and join barrier (for panic-safe
    /// worker shutdown).
    in_phase: bool,
    counters: WorkloadCounters,
    activity: ActivityProfile,
    trace: TickTrace,
    /// Affected nets merged across parties this tick.
    affected: StampSet,
    /// Winning cause per affected net (maximum stamp).
    affected_cause: Vec<u32>,
    affected_stamp: Vec<Stamp>,
    /// Dirty switch groups for the next resolve round.
    dirty: StampSet,
    /// Fanout components to evaluate this round.
    to_eval: StampSet,
    /// Nets whose value changed, with causes, in serial event order.
    changed_nets: Vec<(u32, u32)>,
    /// Merge buffer for per-party resolution outputs.
    merged: Vec<(u32, u32)>,
    /// Per-party did-work flags for the current tick.
    worked: Vec<bool>,
    /// Per-party load counters (last entry = master party).
    loads: Vec<WorkerLoad>,
    /// Messages between assigned components on different partitions.
    crossing: u64,
    /// Messages between assigned components (any partitions).
    component_msgs: u64,
    /// Master-control recorder (START fan-out, exchange/merge, DONE
    /// collection, barrier wait); master-only, never shared.
    obs: obs::Lane,
}

impl Master {
    fn new(
        num_nets: usize,
        num_comps: usize,
        num_groups: usize,
        num_parties: usize,
        obs: obs::Lane,
    ) -> Master {
        Master {
            now: 0,
            pending_total: 0,
            input_tick: 0,
            input_rank: 0,
            in_phase: false,
            counters: WorkloadCounters::new(),
            activity: ActivityProfile::new(num_comps),
            trace: TickTrace::new(),
            affected: StampSet::with_capacity(num_nets),
            affected_cause: vec![0; num_nets],
            affected_stamp: vec![STAMP_ZERO; num_nets],
            dirty: StampSet::with_capacity(num_groups),
            to_eval: StampSet::with_capacity(num_comps),
            changed_nets: Vec::new(),
            merged: Vec::new(),
            worked: vec![false; num_parties],
            loads: vec![WorkerLoad::default(); num_parties],
            crossing: 0,
            component_msgs: 0,
            obs,
        }
    }

    /// Runs one barrier-delimited phase: publish `cmd`, release the
    /// workers, do the master party's share, and join.
    ///
    /// Observation: `Start` times the command publish through the
    /// release-barrier crossing (the machine's START fan-out);
    /// `Barrier` times the join wait after the master's own share — how
    /// long the slowest worker straggles past the master.
    fn phase(&mut self, core: &Core<'_>, cmd: Cmd) {
        let m = self.obs.mark();
        // SAFETY: workers are parked at the barrier, so the master is
        // the unique accessor of the command slot.
        unsafe {
            *core.cmd.get_mut(0) = cmd;
        }
        self.in_phase = true;
        core.barrier.wait();
        self.obs
            .rec(Phase::Start, self.now, m, core.num_parties() as u64);
        run_party_cmd(core, core.workers, cmd);
        let m = self.obs.mark();
        core.barrier.wait();
        self.obs.rec(Phase::Barrier, self.now, m, 0);
        self.in_phase = false;
    }

    /// Releases the workers with [`Cmd::Exit`], completing any join the
    /// workers are still waiting on first (panic-safe).
    fn shutdown(&mut self, core: &Core<'_>) {
        if self.in_phase {
            core.barrier.wait();
            self.in_phase = false;
        }
        // SAFETY: workers are parked at the barrier.
        unsafe {
            *core.cmd.get_mut(0) = Cmd::Exit;
        }
        core.barrier.wait();
    }

    fn run(
        &mut self,
        core: &Core<'_>,
        until: u64,
        stim: &mut dyn FnMut(u64, &mut InputFrame<'_, '_>),
    ) {
        while self.now < until {
            let t = self.now;
            stim(t, &mut InputFrame { core, m: self });

            // Event-list occupancy at the tick boundary, after stimulus
            // (matching the serial measurement loop's order).
            let pending = self.pending_total;
            self.counters.event_list_peak = self.counters.event_list_peak.max(pending);
            self.counters.event_list_sum += pending;

            // Fast-forward ticks where no wheel has work: the full
            // protocol would pop nothing and settle immediately.
            // SAFETY: workers are parked at the barrier between phases.
            let has_work = (0..core.num_parties())
                .any(|p| unsafe { core.parties.get_mut(p) }.wheel.next_pending_tick() == Some(t));
            if has_work {
                self.execute_tick(core, t);
            } else {
                self.counters.idle_ticks += 1;
                for load in &mut self.loads {
                    load.idle_ticks += 1;
                }
            }
            for p in 0..core.num_parties() {
                // SAFETY: workers parked; master advances every wheel.
                unsafe { core.parties.get_mut(p) }.wheel.advance();
            }
            self.now += 1;
            self.trace.end = self.now;
        }
    }

    /// Executes one busy-candidate tick through the full phase protocol.
    /// All `core.parties` accesses here happen between phases, while
    /// the workers are parked at the barrier.
    // The phase protocol reads as one unit; splitting it would scatter
    // the barrier choreography across helpers.
    #[allow(clippy::too_many_lines)]
    fn execute_tick(&mut self, core: &Core<'_>, t: u64) {
        let np = core.num_parties();
        for w in &mut self.worked {
            *w = false;
        }

        // Phase 1: every party drains and applies its own wheel slot.
        self.phase(core, Cmd::Apply { tick: t });

        // Merge affected nets; maximum stamp wins = serial
        // last-writer-wins application order.
        let mut m = self.obs.mark();
        let mut popped_sum = 0u64;
        self.affected.clear();
        for p in 0..np {
            // SAFETY: workers parked (see method docs).
            let st = unsafe { core.parties.get_mut(p) };
            self.pending_total -= st.popped;
            popped_sum += st.popped;
            if !st.affected.is_empty() {
                self.worked[p] = true;
            }
            for &(net, comp, stamp) in &st.affected {
                if !self.affected.contains(net) || stamp > self.affected_stamp[net as usize] {
                    self.affected_cause[net as usize] = comp;
                    self.affected_stamp[net as usize] = stamp;
                }
                self.affected.insert(net);
            }
        }
        m = self.obs.rec(Phase::Done, t, m, popped_sum);

        // Route affected nets: ordinary nets are resolved by the master
        // right here (in ascending net order, as the serial engine
        // does); nets in nontrivial switch groups mark the group dirty.
        self.dirty.clear();
        self.changed_nets.clear();
        for &net_idx in self.affected.sorted() {
            let cause = self.affected_cause[net_idx as usize];
            let gid = core.img.net_group[net_idx as usize];
            if core.img.group_nontrivial[gid as usize] {
                self.dirty.insert(gid);
            } else {
                // SAFETY: workers parked; master is the unique accessor.
                unsafe {
                    let v = core.external_drive(NetId(net_idx));
                    if core.net_values.get(net_idx as usize) != v {
                        core.net_values.set(net_idx as usize, v);
                        self.changed_nets.push((net_idx, cause));
                    }
                }
            }
        }
        self.obs.rec(Phase::Exchange, t, m, 0);

        let mut rounds = 0u32;
        let mut pass = 0u32;
        let mut events_this_tick = 0u64;
        let mut events: Vec<EventRecord> = Vec::new();
        loop {
            if !self.dirty.is_empty() {
                // Distribute dirty groups to their cluster owners and
                // settle them in parallel.
                let m = self.obs.mark();
                for p in 0..np {
                    // SAFETY: workers parked.
                    unsafe { core.parties.get_mut(p) }.gids.clear();
                }
                for &gid in self.dirty.sorted() {
                    let owner = core.group_owner[gid as usize] as usize;
                    // SAFETY: workers parked.
                    unsafe { core.parties.get_mut(owner) }.gids.push(gid);
                }
                self.dirty.clear();
                self.obs.rec(Phase::Exchange, t, m, 0);
                self.phase(core, Cmd::Resolve { tick: t });
                // Merge per-party results back into ascending group
                // order. Each group has exactly one owner, so a stable
                // sort by group reproduces the serial resolution order
                // (ascending group, member order within a group).
                let m = self.obs.mark();
                self.merged.clear();
                for p in 0..np {
                    // SAFETY: workers parked.
                    let st = unsafe { core.parties.get_mut(p) };
                    let n = st.gids.len() as u64;
                    if n > 0 {
                        self.worked[p] = true;
                    }
                    self.counters.group_resolutions += n;
                    self.loads[p].group_resolutions += n;
                    self.merged.extend_from_slice(&st.resolved);
                }
                self.merged.sort_by_key(|&(gid, _)| gid);
                for i in 0..self.merged.len() {
                    let (_, net) = self.merged[i];
                    let cause = core.img.net_attr[net as usize];
                    self.changed_nets.push((net, cause));
                }
                self.obs.rec(Phase::Done, t, m, self.merged.len() as u64);
            }
            if self.changed_nets.is_empty() {
                break;
            }

            // Record events in serial order; build the evaluation
            // worklist; count partition-crossing messages.
            let mut m = self.obs.mark();
            let messages_before = self.counters.messages_inf;
            self.to_eval.clear();
            for &(net, cause) in &self.changed_nets {
                self.counters.events += 1;
                events_this_tick += 1;
                self.activity.record(cause as usize);
                let fanout = core.img.fanout.row(net as usize);
                self.counters.messages_inf += fanout.len() as u64;
                if core.config.collect_trace {
                    events.push(EventRecord {
                        source: cause,
                        dests: fanout.to_vec(),
                    });
                }
                let pc = core.assignment[cause as usize];
                for &f in fanout {
                    self.to_eval.insert(f);
                    let pf = core.assignment[f as usize];
                    // Self-messages (feedback into the producing
                    // component) stay processor-local under every
                    // assignment, so they are excluded from the Eq. 6
                    // base as well as from the crossing count.
                    if pc != u32::MAX && pf != u32::MAX && cause != f {
                        self.component_msgs += 1;
                        if pc != pf {
                            self.crossing += 1;
                            self.loads[pc as usize % core.workers].messages_sent += 1;
                        }
                    }
                }
            }
            self.changed_nets.clear();
            m = self.obs.rec(
                Phase::Exchange,
                t,
                m,
                self.counters.messages_inf - messages_before,
            );

            // Evaluate fanout components in parallel, each by its owner
            // in ascending id order (= serial evaluation order).
            pass += 1;
            for p in 0..np {
                // SAFETY: workers parked.
                unsafe { core.parties.get_mut(p) }.eval_comps.clear();
            }
            for &ci in self.to_eval.sorted() {
                let owner = core.owner[ci as usize] as usize;
                // SAFETY: workers parked.
                unsafe { core.parties.get_mut(owner) }.eval_comps.push(ci);
            }
            self.obs.rec(Phase::Exchange, t, m, 0);
            self.phase(core, Cmd::Eval { tick: t, pass });
            let m = self.obs.mark();
            for p in 0..np {
                // SAFETY: workers parked.
                let st = unsafe { core.parties.get_mut(p) };
                self.pending_total += st.scheduled;
                self.counters.evaluations += st.evaluations;
                self.loads[p].evaluations += st.evaluations;
                if st.evaluations > 0 {
                    self.worked[p] = true;
                }
                for &g in &st.dirty {
                    self.dirty.insert(g);
                }
            }
            self.obs.rec(Phase::Done, t, m, 0);

            if self.dirty.is_empty() {
                break;
            }
            rounds += 1;
            if rounds >= core.config.max_settle_rounds {
                self.counters.relaxation_overflows += 1;
                break;
            }
        }

        if events_this_tick > 0 {
            self.counters.busy_ticks += 1;
            if core.config.collect_trace {
                self.trace.ticks.push(TickRecord { tick: t, events });
            }
        } else {
            self.counters.idle_ticks += 1;
        }
        for p in 0..np {
            if self.worked[p] {
                self.loads[p].busy_ticks += 1;
            } else {
                self.loads[p].idle_ticks += 1;
            }
        }
    }
}

/// Stimulus handle passed to the [`ParSimulator::run_with`] callback
/// once per tick, before the tick executes.
pub struct InputFrame<'f, 'a> {
    core: &'f Core<'a>,
    m: &'f mut Master,
}

impl InputFrame<'_, '_> {
    /// Drives a primary input to `level` at the current tick.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set(&mut self, net: NetId, level: Level) {
        set_input_inner(self.core, self.m, net, level);
    }
}

/// Inertial input scheduling, mirroring the serial `set_input` +
/// `schedule_change`. Only called while no worker threads are active
/// (outside `run`, or between phases during the stimulus callback).
fn set_input_inner(core: &Core<'_>, m: &mut Master, net: NetId, level: Level) {
    let comp = core.img.input_comp[net.index()] as usize;
    assert!(comp != u32::MAX as usize, "{net} is not a primary input");
    if m.input_tick != m.now {
        m.input_tick = m.now;
        m.input_rank = 0;
    }
    let stamp = Stamp {
        tick: m.now,
        pass: 0,
        rank: m.input_rank,
    };
    m.input_rank += 1;
    let drive = Signal::strong(level);
    // SAFETY: no workers are running; the master is the unique accessor.
    unsafe {
        if core.last_scheduled.get(comp) == drive {
            return;
        }
        core.last_scheduled.set(comp, drive);
        if drive == core.comp_drive.get(comp) {
            core.pending.set(comp, None);
            return;
        }
        core.pending.set(comp, Some(stamp));
        let party = core.owner[comp] as usize;
        core.parties.get_mut(party).wheel.schedule(
            m.now,
            PChange {
                comp: comp as u32,
                drive,
                stamp,
            },
        );
    }
    m.pending_total += 1;
}

/// Dispatches one phase command for one party.
fn run_party_cmd(core: &Core<'_>, party: usize, cmd: Cmd) {
    match cmd {
        Cmd::Apply { tick } => party_apply(core, party, tick),
        Cmd::Resolve { tick } => party_resolve(core, party, tick),
        Cmd::Eval { tick, pass } => party_eval(core, party, tick, pass),
        Cmd::Exit => {}
    }
}

/// Apply phase: drain the party's wheel slot, apply surviving changes
/// to owned components, and report affected nets.
fn party_apply(core: &Core<'_>, party: usize, tick: u64) {
    // SAFETY: this party is the unique accessor of its slot during a
    // worker phase; `pending`/`comp_drive` entries touched here belong
    // to components this party owns (only owners schedule a component).
    let st = unsafe { core.parties.get_mut(party) };
    let m = st.obs.mark();
    st.changes.clear();
    st.wheel.pop_current_into(&mut st.changes);
    st.popped = st.changes.len() as u64;
    st.affected.clear();
    for &PChange { comp, drive, stamp } in &st.changes {
        let ci = comp as usize;
        // SAFETY: see above.
        unsafe {
            if core.pending.get(ci) != Some(stamp) {
                continue; // descheduled (the inertial filter)
            }
            core.pending.set(ci, None);
            if core.comp_drive.get(ci) == drive {
                continue;
            }
            core.comp_drive.set(ci, drive);
        }
        if let Some(net) = core.img.comp_out[ci] {
            st.affected.push((net.0, comp, stamp));
        }
    }
    st.obs.rec(Phase::Apply, tick, m, st.popped);
}

/// Resolve phase: settle the switch groups assigned to this party, in
/// ascending group order, writing member-net values.
fn party_resolve(core: &Core<'_>, party: usize, tick: u64) {
    // SAFETY: unique slot access during a worker phase. Net reads and
    // writes stay inside this party's coupling clusters (or read nets
    // no party writes this phase); `comp_drive` is stable during
    // resolution.
    let st = unsafe { core.parties.get_mut(party) };
    let m = if st.gids.is_empty() {
        obs::Mark::none()
    } else {
        st.obs.mark()
    };
    st.resolved.clear();
    for &gid in &st.gids {
        st.group_out.clear();
        solver::resolve_group_into(
            core.netlist.get(),
            &core.img.groups,
            gid,
            &mut st.solver,
            // SAFETY: see above.
            |net| unsafe { core.external_drive(net) },
            |net| unsafe { core.net_values.get(net.index()) }.level,
            |net| unsafe { core.net_values.get(net.index()) }.level,
            &mut st.group_out,
        );
        for &(net, v) in &st.group_out {
            // SAFETY: member nets belong to this party's cluster.
            unsafe {
                if core.net_values.get(net.index()) != v {
                    core.net_values.set(net.index(), v);
                    st.resolved.push((gid, net.0));
                }
            }
        }
    }
    let groups = st.gids.len() as u64;
    st.obs.rec(Phase::Resolve, tick, m, groups);
}

/// Eval phase: evaluate the fanout components assigned to this party
/// (ascending id order), scheduling delayed output changes into the
/// party's own wheel.
fn party_eval(core: &Core<'_>, party: usize, tick: u64, pass: u32) {
    // SAFETY: unique slot access during a worker phase; `net_values` is
    // read-only in this phase; per-component state touched here belongs
    // to owned components.
    let st = unsafe { core.parties.get_mut(party) };
    let m = if st.eval_comps.is_empty() {
        obs::Mark::none()
    } else {
        st.obs.mark()
    };
    st.scheduled = 0;
    st.evaluations = 0;
    st.dirty.clear();
    for &ci in &st.eval_comps {
        match core.img.eval[ci as usize] {
            EvalKind::Gate { kind, delay } => {
                st.evaluations += 1;
                st.levels.clear();
                st.levels.extend(
                    core.img
                        .gate_inputs
                        .row(ci as usize)
                        .iter()
                        // SAFETY: see above.
                        .map(|&n| unsafe { core.net_values.get(n as usize) }.level),
                );
                let out = kind.evaluate(&st.levels);
                let d = u64::from(delay.for_transition(out.level));
                // Inertial scheduling, mirroring `schedule_change`.
                // SAFETY: `ci` is owned by this party.
                unsafe {
                    if core.last_scheduled.get(ci as usize) != out {
                        core.last_scheduled.set(ci as usize, out);
                        if out == core.comp_drive.get(ci as usize) {
                            core.pending.set(ci as usize, None);
                        } else {
                            let stamp = Stamp {
                                tick,
                                pass,
                                rank: ci,
                            };
                            core.pending.set(ci as usize, Some(stamp));
                            st.wheel.schedule(
                                tick + d,
                                PChange {
                                    comp: ci,
                                    drive: out,
                                    stamp,
                                },
                            );
                            st.scheduled += 1;
                        }
                    }
                }
            }
            EvalKind::Switch { group } => {
                st.evaluations += 1;
                st.dirty.push(group);
            }
            EvalKind::Passive => {}
        }
    }
    let evals = st.evaluations;
    st.obs.rec(Phase::Eval, tick, m, evals);
}

/// The worker thread body: wait for a command, run it, join.
fn worker_loop(core: &Core<'_>, party: usize) {
    phase_check::set_party(party);
    loop {
        core.barrier.wait();
        // SAFETY: the master wrote the command before releasing the
        // barrier and does not touch it during the phase; all workers
        // may read it concurrently.
        let cmd = unsafe { *core.cmd.get(0) };
        if matches!(cmd, Cmd::Exit) {
            break;
        }
        run_party_cmd(core, party, cmd);
        core.barrier.wait();
    }
}

/// Computes the coupling-cluster owner of every nontrivial switch
/// group: groups are united when one's resolution can observe another
/// within a settle pass (a switch whose control net belongs to the
/// other nontrivial group), and clusters are dealt round-robin to
/// parties in first-group order.
fn compute_group_owner(netlist: &Netlist, img: &Image, num_parties: usize) -> Vec<u32> {
    let ng = img.groups.num_groups();
    let mut parent: Vec<u32> = (0..ng as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for gid in 0..ng as u32 {
        if !img.group_nontrivial[gid as usize] {
            continue;
        }
        for &sw in img.groups.switches(gid) {
            if let Component::Switch { control, .. } = netlist.component(sw) {
                let h = img.net_group[control.index()];
                if img.group_nontrivial[h as usize] {
                    let (ra, rb) = (find(&mut parent, gid), find(&mut parent, h));
                    if ra != rb {
                        parent[ra as usize] = rb;
                    }
                }
            }
        }
    }
    let mut owner = vec![u32::MAX; ng];
    let mut root_owner = vec![u32::MAX; ng];
    let mut next = 0usize;
    for gid in 0..ng as u32 {
        if !img.group_nontrivial[gid as usize] {
            continue;
        }
        let r = find(&mut parent, gid) as usize;
        if root_owner[r] == u32::MAX {
            root_owner[r] = (next % num_parties) as u32;
            next += 1;
        }
        owner[gid as usize] = root_owner[r];
    }
    owner
}

/// The parallel tick-synchronous simulator.
///
/// Bit-identical to [`Simulator`](crate::Simulator) for any worker
/// count (see the module docs for the determinism argument), with
/// per-worker load and cross-partition message instrumentation.
///
/// ```
/// use logicsim_netlist::{Delay, GateKind, Level, NetlistBuilder};
/// use logicsim_sim::ParSimulator;
///
/// let mut b = NetlistBuilder::new("inv");
/// let a = b.input("a");
/// let y = b.net("y");
/// b.gate(GateKind::Not, &[a], y, Delay::uniform(2));
/// let n = b.finish().unwrap();
/// // One gate (component 1) assigned to partition 0, run on 2 workers.
/// let assignment = vec![u32::MAX, 0];
/// let mut sim = ParSimulator::new(&n, &assignment, 2).expect("pre-flight");
/// sim.set_input(a, Level::Zero);
/// sim.run_until(5);
/// assert_eq!(sim.level(y), Level::One);
/// ```
pub struct ParSimulator<'a> {
    core: Core<'a>,
    m: Master,
}

impl<'a> ParSimulator<'a> {
    /// Creates a parallel simulator with default configuration.
    ///
    /// `assignment` maps every component to a partition id (`u32::MAX`
    /// for unpartitioned infrastructure — inputs, pulls, rails), as
    /// produced by `logicsim-partition` strategies. Partition `k` is
    /// executed by worker `k % workers`.
    ///
    /// # Errors
    ///
    /// Returns [`PreflightError`] as for the serial
    /// [`Simulator::new`](crate::Simulator::new).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `assignment.len()` differs from the
    /// netlist's component count.
    pub fn new(
        netlist: &'a Netlist,
        assignment: &[u32],
        workers: usize,
    ) -> Result<ParSimulator<'a>, PreflightError> {
        ParSimulator::with_config(netlist, assignment, workers, SimConfig::default())
    }

    /// Creates a parallel simulator with explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PreflightError`] as for [`ParSimulator::new`].
    ///
    /// # Panics
    ///
    /// Panics as for [`ParSimulator::new`].
    pub fn with_config(
        netlist: &'a Netlist,
        assignment: &[u32],
        workers: usize,
        config: SimConfig,
    ) -> Result<ParSimulator<'a>, PreflightError> {
        assert!(workers >= 1, "need at least one worker");
        assert_eq!(
            assignment.len(),
            netlist.num_components(),
            "assignment must cover every component"
        );
        // With [`SimConfig::optimize`] set, rewrite the netlist first.
        // The caller's partition was computed on the graph they handed
        // in; it reaches the optimized graph one of two ways:
        //
        // * default: push it through the optimizer's component map, so
        //   every surviving component keeps the partition of the
        //   original component it came from (cheap, but rewrites can
        //   strand a merged component on a cut it no longer earns);
        // * with [`SimConfig::repartition`] set: partition the
        //   *optimized* graph from scratch with the supplied hook — the
        //   cut is computed on the topology actually being simulated.
        let (hold, assignment) = if config.optimize {
            let opt = logicsim_netlist::analyze::opt::optimize(netlist);
            let num_parts = assignment
                .iter()
                .filter(|&&a| a != u32::MAX)
                .max()
                .map_or(1, |&m| m + 1);
            let remapped = if let Some(partition) = config.repartition {
                let fresh = partition(&opt.netlist, num_parts, config.repartition_seed);
                assert_eq!(
                    fresh.len(),
                    opt.netlist.num_components(),
                    "repartition hook must cover every optimized component"
                );
                fresh
            } else {
                let mut remapped = vec![u32::MAX; opt.netlist.num_components()];
                for (old, mapped) in opt.comp_map.iter().enumerate() {
                    if let Some(new) = mapped {
                        remapped[new.index()] = assignment[old];
                    }
                }
                remapped
            };
            (NetHold::Owned(Box::new(opt.netlist)), remapped)
        } else {
            (NetHold::Borrowed(netlist), assignment.to_vec())
        };
        let img = Image::build(hold.get())?;
        let nc = hold.get().num_components();
        let nn = hold.get().num_nets();
        let num_groups = img.groups.num_groups();
        let num_parties = workers + 1;

        // Identical power-up state to the serial engine.
        let mut net_values = vec![Signal::FLOATING; nn];
        let mut comp_drive = img.static_drive.clone();
        let mut last_scheduled = vec![Signal::FLOATING; nc];
        relax_power_up(
            hold.get(),
            &img,
            config.init_rounds,
            &mut net_values,
            &mut comp_drive,
            &mut last_scheduled,
        );

        let owner: Vec<u32> = (0..nc)
            .map(|ci| match img.eval[ci] {
                EvalKind::Gate { .. } | EvalKind::Switch { .. } => {
                    let a = assignment[ci];
                    if a == u32::MAX {
                        workers as u32
                    } else {
                        a % workers as u32
                    }
                }
                EvalKind::Passive => workers as u32,
            })
            .collect();
        let group_owner = compute_group_owner(hold.get(), &img, num_parties);
        // One phase clock for the whole engine: the barrier advances it
        // at every crossing, and (under `phase-check`) every shared
        // container stamps accesses with it.
        let clock = PhaseClock::new();
        // One shared time origin so every lane's samples land on a
        // single comparable timeline.
        let origin = obs::Origin::now();
        let parties = SharedSlots::from_iter(
            (0..num_parties).map(|_| {
                PartyState::new(
                    config.wheel_size,
                    obs::Lane::new(config.observe, origin, config.obs_capacity),
                )
            }),
            &clock,
        );
        let master_obs = obs::Lane::new(config.observe, origin, config.obs_capacity);

        Ok(ParSimulator {
            core: Core {
                netlist: hold,
                img,
                config,
                workers,
                assignment,
                owner,
                group_owner,
                net_values: SharedVec::from_vec(net_values, &clock),
                comp_drive: SharedVec::from_vec(comp_drive, &clock),
                last_scheduled: SharedVec::from_vec(last_scheduled, &clock),
                pending: SharedVec::from_vec(vec![None; nc], &clock),
                parties,
                cmd: SharedSlots::from_iter([Cmd::Exit], &clock),
                barrier: SpinBarrier::new(num_parties, &clock),
                clock,
            },
            m: Master::new(nn, nc, num_groups, num_parties, master_obs),
        })
    }

    /// The netlist being simulated. With [`SimConfig::optimize`] this
    /// is the optimized netlist the engine owns, not the caller's.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.core.netlist.get()
    }

    /// Number of evaluator workers `P`.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// Current simulation tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.m.now
    }

    /// Resolved signal on a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn signal(&self, net: NetId) -> Signal {
        // SAFETY: no worker threads exist outside `run_with`.
        unsafe { self.core.net_values.get(net.index()) }
    }

    /// Logic level on a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn level(&self, net: NetId) -> Level {
        self.signal(net).level
    }

    /// Snapshot of every net's resolved signal, indexed by net id — the
    /// post-run bulk counterpart of per-net [`ParSimulator::signal`]
    /// (e.g. for diffing whole-circuit state against the serial engine).
    #[must_use]
    pub fn signals(&self) -> Vec<Signal> {
        // No worker threads exist outside `run_with`, so the snapshot
        // cannot observe a concurrent writer.
        self.core.net_values.snapshot()
    }

    /// Workload counters accumulated so far (identical to the serial
    /// engine's for the same run).
    #[must_use]
    pub fn counters(&self) -> &WorkloadCounters {
        &self.m.counters
    }

    /// Per-component activity profile.
    #[must_use]
    pub fn activity(&self) -> &ActivityProfile {
        &self.m.activity
    }

    /// The collected trace (empty unless [`SimConfig::collect_trace`]).
    #[must_use]
    pub fn trace(&self) -> &TickTrace {
        &self.m.trace
    }

    /// Takes ownership of the collected trace, leaving an empty one.
    pub fn take_trace(&mut self) -> TickTrace {
        std::mem::take(&mut self.m.trace)
    }

    /// Per-worker load counters (busy/idle ticks, evaluations, group
    /// resolutions, cross-partition messages sent).
    #[must_use]
    pub fn worker_loads(&self) -> &[WorkerLoad] {
        &self.m.loads[..self.core.workers]
    }

    /// Measured cross-partition message count (`M_P`): messages whose
    /// source and destination components live on different partitions.
    #[must_use]
    pub fn messages_crossing(&self) -> u64 {
        self.m.crossing
    }

    /// Messages between two assigned components regardless of partition
    /// (the component-to-component `M_inf`, Eq. 6's denominator).
    #[must_use]
    pub fn messages_component(&self) -> u64 {
        self.m.component_msgs
    }

    /// Snapshot of the run's parallel instrumentation for
    /// `logicsim-stats` consumers.
    #[must_use]
    pub fn parallel_workload(&self) -> ParallelWorkload {
        ParallelWorkload {
            workers: self.worker_loads().to_vec(),
            messages_crossing: self.m.crossing,
            messages_component: self.m.component_msgs,
        }
    }

    /// Resets counters, activity, trace, per-worker instrumentation,
    /// and phase observations (not circuit state); call after a warm-up
    /// run.
    pub fn reset_measurements(&mut self) {
        self.m.counters.reset();
        self.m.activity.reset();
        self.m.trace = TickTrace {
            start: self.m.now,
            end: self.m.now,
            ticks: Vec::new(),
        };
        for load in &mut self.m.loads {
            *load = WorkerLoad::default();
        }
        self.m.crossing = 0;
        self.m.component_msgs = 0;
        self.m.obs.reset();
        for p in 0..self.core.num_parties() {
            // SAFETY: no worker threads exist outside `run_with`.
            unsafe { self.core.parties.get_mut(p) }.obs.reset();
        }
    }

    /// Snapshot of the per-phase wall-clock observations: one lane per
    /// worker, then the master lane (its own party share merged with
    /// the control work — START fan-out, exchange, DONE collection,
    /// barrier waits). Empty unless [`SimConfig::observe`] armed the
    /// recorder and the crate was built with the `obs` feature.
    #[cfg(feature = "obs")]
    #[must_use]
    pub fn obs_report(&self) -> obs::ObsReport {
        let mut lanes = Vec::with_capacity(self.core.workers + 1);
        let mut lane_names = Vec::with_capacity(self.core.workers + 1);
        for p in 0..self.core.workers {
            // SAFETY: no worker threads exist outside `run_with`.
            lanes.push(unsafe { self.core.parties.get_mut(p) }.obs.report());
            lane_names.push(format!("worker {p}"));
        }
        // SAFETY: no worker threads exist outside `run_with`.
        let mut master = unsafe { self.core.parties.get_mut(self.core.workers) }
            .obs
            .report();
        master.merge(self.m.obs.report());
        lanes.push(master);
        lane_names.push("master".to_string());
        obs::ObsReport { lanes, lane_names }
    }

    /// Drives a primary input to `level` at the current tick.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, level: Level) {
        set_input_inner(&self.core, &mut self.m, net, level);
    }

    /// Runs tick by tick until the clock reaches `tick` (exclusive).
    pub fn run_until(&mut self, tick: u64) {
        self.run_with(tick, |_, _| {});
    }

    /// Runs until `until` (exclusive), invoking `stim` once per tick
    /// before that tick executes so it can drive primary inputs — the
    /// parallel analog of
    /// [`run_with_stimulus`](crate::stimulus::run_with_stimulus).
    ///
    /// The `P` worker threads are spawned once per call and live for
    /// the whole run.
    pub fn run_with(&mut self, until: u64, mut stim: impl FnMut(u64, &mut InputFrame<'_, '_>)) {
        if self.m.now >= until {
            return;
        }
        let core = &self.core;
        let m = &mut self.m;
        std::thread::scope(|s| {
            for w in 0..core.workers {
                std::thread::Builder::new()
                    .name(format!("lsim-worker-{w}"))
                    .spawn_scoped(s, move || worker_loop(core, w))
                    .expect("spawn worker");
            }
            // Shut the workers down even if the master panics (a panic
            // with workers parked at the barrier would deadlock the
            // scope join), then resume the panic.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                m.run(core, until, &mut stim);
            }));
            m.shutdown(core);
            if let Err(p) = result {
                std::panic::resume_unwind(p);
            }
        });
        // The workers' last act was reading `Cmd::Exit` *after* the
        // shutdown barrier crossing, in the then-current phase. Open a
        // fresh phase now that they have joined, so the master's
        // between-run accesses (and the next run's first command
        // publish) never share a phase with that final read.
        self.core.clock.advance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use logicsim_netlist::{Delay, GateKind, NetlistBuilder, SwitchKind};

    /// Assignment that deals every gate/switch round-robin to `parts`.
    fn round_robin(netlist: &Netlist, parts: u32) -> Vec<u32> {
        let mut next = 0u32;
        netlist
            .components()
            .iter()
            .map(|c| {
                if matches!(c, Component::Gate { .. } | Component::Switch { .. }) {
                    let p = next % parts;
                    next += 1;
                    p
                } else {
                    u32::MAX
                }
            })
            .collect()
    }

    fn latch_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("latch");
        let s_n = b.input("s_n");
        let r_n = b.input("r_n");
        let q = b.net("q");
        let qn = b.net("qn");
        b.gate(GateKind::Nand, &[s_n, qn], q, Delay::uniform(1));
        b.gate(GateKind::Nand, &[r_n, q], qn, Delay::uniform(2));
        b.finish().unwrap()
    }

    #[test]
    fn matches_serial_on_latch_for_all_worker_counts() {
        let n = latch_circuit();
        let (s_n, r_n) = (n.find_net("s_n").unwrap(), n.find_net("r_n").unwrap());
        let (q, qn) = (n.find_net("q").unwrap(), n.find_net("qn").unwrap());

        let mut serial = Simulator::new(&n).expect("pre-flight");
        serial.set_input(s_n, Level::Zero);
        serial.set_input(r_n, Level::One);
        serial.run_until(10);
        serial.set_input(s_n, Level::One);
        serial.run_until(20);
        serial.set_input(r_n, Level::Zero);
        serial.run_until(30);

        for workers in [1, 2, 3] {
            let assignment = round_robin(&n, workers as u32);
            let mut par = ParSimulator::new(&n, &assignment, workers).expect("pre-flight");
            par.set_input(s_n, Level::Zero);
            par.set_input(r_n, Level::One);
            par.run_until(10);
            par.set_input(s_n, Level::One);
            par.run_until(20);
            par.set_input(r_n, Level::Zero);
            par.run_until(30);
            assert_eq!(par.level(q), serial.level(q), "P={workers}");
            assert_eq!(par.level(qn), serial.level(qn), "P={workers}");
            assert_eq!(par.counters(), serial.counters(), "P={workers}");
        }
    }

    #[test]
    fn switch_group_straddling_partitions_matches_serial() {
        // Pass-transistor mux whose two switches land on different
        // partitions: group resolution must still settle exactly once.
        let mut b = NetlistBuilder::new("ptmux");
        let sel = b.input("sel");
        let sel_n = b.net("sel_n");
        b.gate(GateKind::Not, &[sel], sel_n, Delay::uniform(1));
        let a = b.input("a");
        let bb = b.input("b");
        let z = b.net("z");
        b.switch(SwitchKind::Nmos, sel, a, z);
        b.switch(SwitchKind::Nmos, sel_n, bb, z);
        let n = b.finish().unwrap();
        let nets = |s: &str| n.find_net(s).unwrap();

        let drive = |sim: &mut dyn FnMut(NetId, Level)| {
            sim(nets("a"), Level::One);
            sim(nets("b"), Level::Zero);
            sim(nets("sel"), Level::One);
        };

        let mut serial = Simulator::new(&n).expect("pre-flight");
        drive(&mut |net, l| serial.set_input(net, l));
        serial.run_until(10);
        serial.set_input(nets("sel"), Level::Zero);
        serial.run_until(20);

        let assignment = round_robin(&n, 2);
        let mut par = ParSimulator::new(&n, &assignment, 2).expect("pre-flight");
        drive(&mut |net, l| par.set_input(net, l));
        par.run_until(10);
        par.set_input(nets("sel"), Level::Zero);
        par.run_until(20);

        assert_eq!(par.level(nets("z")), Level::Zero);
        assert_eq!(par.level(nets("z")), serial.level(nets("z")));
        assert_eq!(par.counters(), serial.counters());
    }

    #[test]
    fn worker_loads_cover_every_tick() {
        let n = latch_circuit();
        let s_n = n.find_net("s_n").unwrap();
        let assignment = round_robin(&n, 2);
        let mut par = ParSimulator::new(&n, &assignment, 2).expect("pre-flight");
        par.set_input(s_n, Level::Zero);
        par.run_until(25);
        for (w, load) in par.worker_loads().iter().enumerate() {
            assert_eq!(
                load.busy_ticks + load.idle_ticks,
                par.counters().total_ticks(),
                "worker {w} tick accounting"
            );
        }
        assert!(par.parallel_workload().total_evaluations() > 0);
    }

    #[test]
    fn crossing_messages_bounded_by_component_messages() {
        let n = latch_circuit();
        let s_n = n.find_net("s_n").unwrap();
        let r_n = n.find_net("r_n").unwrap();
        let assignment = round_robin(&n, 2);
        let mut par = ParSimulator::new(&n, &assignment, 2).expect("pre-flight");
        par.set_input(s_n, Level::Zero);
        par.set_input(r_n, Level::One);
        par.run_until(20);
        assert!(par.messages_crossing() <= par.messages_component());
        // The two cross-coupled NANDs sit on different partitions, so
        // every gate-to-gate message crosses.
        assert_eq!(par.messages_crossing(), par.messages_component());
        assert!(par.messages_crossing() > 0);
    }
}
