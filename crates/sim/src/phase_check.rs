//! Dynamic phase-discipline checker for the parallel engine.
//!
//! The soundness of [`crate::par_sync`]'s `unsafe` accessors rests on
//! the engine's single-writer-per-phase discipline: within one
//! barrier-delimited phase each shared element is written by at most
//! one party, and no party reads an element another party wrote in the
//! same phase. This module, enabled by the `phase-check` feature,
//! *checks that discipline at runtime*: every `SharedVec::get`/`set`
//! and `SharedSlots::get_mut` records `(phase epoch, writer, reader
//! set)` per element in a side table and panics the moment an access
//! violates the contract — turning a latent data race into a
//! deterministic failure with element, phase, and party identities.
//!
//! Phase epochs come from a [`PhaseClock`] advanced by the *last
//! arriver* of each [`crate::par_sync::SpinBarrier`] crossing, at the
//! instant it reopens the barrier. Because the epoch can only change
//! once every party has arrived (parties spinning in `wait` perform no
//! shared accesses), all accesses within one phase observe exactly one
//! epoch value — no extra synchronization or engine instrumentation is
//! needed beyond construction-time plumbing.
//!
//! Party identities are thread-local: worker threads call
//! [`set_party`] with their worker index; every unregistered thread
//! (the master, tests, `snapshot` callers) reports as
//! [`MASTER_PARTY`]. With the feature disabled every type here is a
//! zero-sized no-op and the engine compiles to the same code as
//! before.

/// Party id reported by threads that never called [`set_party`]: the
/// master, plus any external thread touching shared state between
/// runs. Worker parties must stay below this value.
#[cfg_attr(not(feature = "phase-check"), allow(dead_code))] // referenced by the checker only
pub(crate) const MASTER_PARTY: usize = 15;

#[cfg(feature = "phase-check")]
mod imp {
    use super::MASTER_PARTY;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    std::thread_local! {
        static PARTY: std::cell::Cell<usize> =
            const { std::cell::Cell::new(MASTER_PARTY) };
    }

    /// Registers the calling thread's party id for access recording.
    pub(crate) fn set_party(party: usize) {
        assert!(
            party < MASTER_PARTY,
            "phase-check supports at most {MASTER_PARTY} worker parties (got id {party})"
        );
        PARTY.with(|p| p.set(party));
    }

    fn party() -> usize {
        PARTY.with(std::cell::Cell::get)
    }

    /// Monotone phase counter shared by the barrier and every recorder.
    ///
    /// Advanced exactly once per barrier crossing, by the last arriver.
    #[derive(Clone, Debug, Default)]
    pub(crate) struct PhaseClock(Arc<AtomicU64>);

    impl PhaseClock {
        /// Starts a clock at phase 0.
        pub(crate) fn new() -> PhaseClock {
            PhaseClock::default()
        }

        /// Advances to the next phase (barrier internals only).
        #[inline]
        pub(crate) fn advance(&self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        fn epoch(&self) -> u32 {
            // Wrapping to 32 bits: a stale entry could only be revived
            // after 2^32 barrier crossings between two accesses to the
            // same element, which no test run approaches.
            self.0.load(Ordering::Relaxed) as u32
        }
    }

    // Per-element access word: | epoch:32 | writer+1:8 | readers:16 |.
    // `writer == 0` means "no write this phase"; reader bit `p` means
    // party `p` read the element this phase.
    const READER_BITS: u32 = 16;
    const WRITER_BITS: u32 = 8;

    fn pack(epoch: u32, writer_plus1: u64, readers: u64) -> u64 {
        (u64::from(epoch) << (READER_BITS + WRITER_BITS)) | (writer_plus1 << READER_BITS) | readers
    }

    fn unpack(word: u64) -> (u32, u64, u64) {
        (
            (word >> (READER_BITS + WRITER_BITS)) as u32,
            (word >> READER_BITS) & ((1 << WRITER_BITS) - 1),
            word & ((1 << READER_BITS) - 1),
        )
    }

    /// Per-element access recorder for one shared container.
    #[derive(Debug)]
    pub(crate) struct Recorder {
        clock: PhaseClock,
        words: Box<[AtomicU64]>,
    }

    impl Recorder {
        /// A recorder for `len` elements stamped by `clock`.
        pub(crate) fn new(clock: &PhaseClock, len: usize) -> Recorder {
            Recorder {
                clock: clock.clone(),
                words: (0..len).map(|_| AtomicU64::new(0)).collect(),
            }
        }

        /// Records a read of element `i`, panicking if another party
        /// wrote it in the current phase.
        #[inline]
        pub(crate) fn on_read(&self, i: usize) {
            let me = party();
            let epoch = self.clock.epoch();
            let mut cur = self.words[i].load(Ordering::Relaxed);
            loop {
                let (e, w, readers) = unpack(cur);
                let new = if e == epoch {
                    if w != 0 && w as usize - 1 != me {
                        violation(i, epoch, &read_of_write(me, w as usize - 1));
                    }
                    pack(epoch, w, readers | (1 << me))
                } else {
                    pack(epoch, 0, 1 << me)
                };
                match self.words[i].compare_exchange_weak(
                    cur,
                    new,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }

        /// Records a write of element `i`, panicking if another party
        /// wrote *or read* it in the current phase.
        #[inline]
        pub(crate) fn on_write(&self, i: usize) {
            let me = party();
            let epoch = self.clock.epoch();
            let mut cur = self.words[i].load(Ordering::Relaxed);
            loop {
                let (e, w, readers) = unpack(cur);
                let new = if e == epoch {
                    if w != 0 && w as usize - 1 != me {
                        violation(i, epoch, &two_writers(me, w as usize - 1));
                    }
                    let foreign = readers & !(1 << me);
                    if foreign != 0 {
                        violation(i, epoch, &write_after_read(me, foreign));
                    }
                    pack(epoch, me as u64 + 1, readers)
                } else {
                    pack(epoch, me as u64 + 1, 0)
                };
                match self.words[i].compare_exchange_weak(
                    cur,
                    new,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    fn name(p: usize) -> String {
        if p == MASTER_PARTY {
            "master".to_owned()
        } else {
            format!("worker {p}")
        }
    }

    fn read_of_write(me: usize, writer: usize) -> String {
        format!("read by {} of an element {} wrote", name(me), name(writer))
    }

    fn two_writers(me: usize, writer: usize) -> String {
        format!(
            "write by {} to an element {} already wrote",
            name(me),
            name(writer)
        )
    }

    fn write_after_read(me: usize, foreign: u64) -> String {
        let readers: Vec<String> = (0..MASTER_PARTY + 1)
            .filter(|p| foreign & (1 << p) != 0)
            .map(name)
            .collect();
        format!(
            "write by {} to an element already read by {}",
            name(me),
            readers.join(", ")
        )
    }

    #[cold]
    fn violation(i: usize, epoch: u32, what: &str) -> ! {
        panic!("phase-discipline violation at element {i} in phase {epoch}: {what}");
    }
}

#[cfg(not(feature = "phase-check"))]
mod imp {
    /// No-op stand-in; see the `phase-check` build.
    #[inline]
    pub(crate) fn set_party(_party: usize) {}

    /// Zero-sized stand-in for the phase counter.
    #[derive(Clone, Debug, Default)]
    pub(crate) struct PhaseClock;

    impl PhaseClock {
        /// Zero-sized; nothing to start.
        pub(crate) fn new() -> PhaseClock {
            PhaseClock
        }

        /// No-op.
        #[inline]
        pub(crate) fn advance(&self) {}
    }

    /// Zero-sized stand-in for the access recorder.
    #[derive(Debug)]
    pub(crate) struct Recorder;

    impl Recorder {
        /// Zero-sized; nothing to allocate.
        pub(crate) fn new(_clock: &PhaseClock, _len: usize) -> Recorder {
            Recorder
        }

        /// No-op.
        #[inline]
        pub(crate) fn on_read(&self, _i: usize) {}

        /// No-op.
        #[inline]
        pub(crate) fn on_write(&self, _i: usize) {}
    }
}

pub(crate) use imp::{set_party, PhaseClock, Recorder};

#[cfg(all(test, feature = "phase-check"))]
mod tests {
    use super::*;

    fn recorder() -> (PhaseClock, Recorder) {
        let clock = PhaseClock::new();
        let rec = Recorder::new(&clock, 8);
        (clock, rec)
    }

    #[test]
    fn single_writer_per_phase_is_legal() {
        let (clock, rec) = recorder();
        set_party(0);
        rec.on_write(3);
        rec.on_read(3); // own write, own read: fine
        clock.advance();
        set_party(1);
        rec.on_write(3); // new phase, new writer: fine
    }

    #[test]
    fn disjoint_elements_same_phase_are_legal() {
        let (_clock, rec) = recorder();
        set_party(0);
        rec.on_write(0);
        set_party(1);
        rec.on_write(1);
        rec.on_read(2);
        set_party(0);
        rec.on_read(2); // shared read-only element: fine
    }

    #[test]
    #[should_panic(expected = "phase-discipline violation")]
    fn two_writers_same_phase_panics() {
        let (_clock, rec) = recorder();
        set_party(0);
        rec.on_write(5);
        set_party(1);
        rec.on_write(5);
    }

    #[test]
    #[should_panic(expected = "phase-discipline violation")]
    fn read_of_foreign_write_same_phase_panics() {
        let (_clock, rec) = recorder();
        set_party(0);
        rec.on_write(2);
        set_party(1);
        rec.on_read(2);
    }

    #[test]
    #[should_panic(expected = "phase-discipline violation")]
    fn write_after_foreign_read_same_phase_panics() {
        let (_clock, rec) = recorder();
        set_party(0);
        rec.on_read(7);
        set_party(1);
        rec.on_write(7);
    }

    #[test]
    #[should_panic(expected = "at most 15 worker parties")]
    fn party_ids_must_stay_below_master() {
        set_party(MASTER_PARTY);
    }
}

/// Randomized checker properties: any schedule honoring the phase
/// discipline passes silently, and any legal schedule plus ONE
/// discipline-breaking access is always caught, whatever the
/// surrounding traffic.
#[cfg(all(test, feature = "phase-check"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const ELEMS: usize = 6;
    const PARTIES: usize = 4;

    #[derive(Clone, Copy, Debug)]
    struct Access {
        party: usize,
        elem: usize,
        write: bool,
    }

    /// One phase per inner vec; accesses replay in order with the
    /// clock advanced between phases.
    fn run_schedule(phases: &[Vec<Access>]) {
        let clock = PhaseClock::new();
        let rec = Recorder::new(&clock, ELEMS);
        for (k, phase) in phases.iter().enumerate() {
            if k > 0 {
                clock.advance();
            }
            for a in phase {
                set_party(a.party);
                if a.write {
                    rec.on_write(a.elem);
                } else {
                    rec.on_read(a.elem);
                }
            }
        }
    }

    /// A legal schedule: per phase, each element is either untouched,
    /// owned by a single party (any read/write mix), or read-shared.
    /// Accesses are shuffled within each phase. Always non-empty.
    fn build_schedule(rng: &mut TestRng) -> Vec<Vec<Access>> {
        let num_phases = rng.gen_range(1..=5);
        let mut phases = Vec::with_capacity(num_phases);
        for _ in 0..num_phases {
            let mut phase: Vec<Access> = Vec::new();
            for elem in 0..ELEMS {
                match rng.gen_range(0..3u32) {
                    0 => {} // untouched this phase
                    1 => {
                        // Single-party ownership: reads and writes mix.
                        let party = rng.gen_range(0..PARTIES);
                        for _ in 0..rng.gen_range(1..=3) {
                            phase.push(Access {
                                party,
                                elem,
                                write: rng.gen_range(0..2u32) == 0,
                            });
                        }
                    }
                    _ => {
                        // Read-shared: any parties, reads only.
                        for _ in 0..rng.gen_range(1..=3) {
                            phase.push(Access {
                                party: rng.gen_range(0..PARTIES),
                                elem,
                                write: false,
                            });
                        }
                    }
                }
            }
            // Fisher–Yates shuffle: element interleaving within a
            // phase must not matter.
            for i in (1..phase.len()).rev() {
                phase.swap(i, rng.gen_range(0..=i));
            }
            phases.push(phase);
        }
        if phases.iter().all(Vec::is_empty) {
            phases[0].push(Access {
                party: 0,
                elem: 0,
                write: true,
            });
        }
        phases
    }

    fn schedules() -> impl Strategy<Value = Vec<Vec<Access>>> {
        any::<u64>().prop_perturb(|_, mut rng| build_schedule(&mut rng))
    }

    /// A legal schedule plus one mutation: a *write* to some accessed
    /// element by a party other than one that touched it — which is a
    /// violation whether the element was single-party or read-shared.
    fn mutated_schedules() -> impl Strategy<Value = (Vec<Vec<Access>>, usize)> {
        any::<u64>().prop_perturb(|_, mut rng| {
            let mut phases = build_schedule(&mut rng);
            let candidates: Vec<usize> = phases
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.is_empty())
                .map(|(k, _)| k)
                .collect();
            let k = candidates[rng.gen_range(0..candidates.len())];
            let victim = phases[k][rng.gen_range(0..phases[k].len())];
            let attacker = (victim.party + 1 + rng.gen_range(0..PARTIES - 1)) % PARTIES;
            phases[k].push(Access {
                party: attacker,
                elem: victim.elem,
                write: true,
            });
            (phases, k)
        })
    }

    proptest! {
        #[test]
        fn legal_schedules_never_panic(phases in schedules()) {
            run_schedule(&phases);
        }

        #[test]
        fn single_mutation_is_always_caught((phases, _k) in mutated_schedules()) {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_schedule(&phases);
            }));
            let payload = result.expect_err("the seeded violation must panic");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            prop_assert!(
                msg.contains("phase-discipline violation"),
                "unexpected panic: {msg}"
            );
        }
    }
}
