//! Backend selection for the parallel engine's synchronization layer.
//!
//! [`crate::par_sync`] (and through it [`crate::par_engine`]) is
//! written against this facade instead of `std` directly. A normal
//! build re-exports the `std` primitives at zero cost; compiling with
//! `RUSTFLAGS="--cfg loom"` swaps in the vendored `loom` model checker
//! (see `vendor/loom`), whose primitives behave like `std` outside a
//! `loom::model` run and are exhaustively schedule-explored inside one.
//!
//! The facade exposes the *loom* shapes, which are the stricter of the
//! two: `UnsafeCell` hands out raw pointers through `with`/`with_mut`
//! closures (so every access is a visible, checkable event), and spin
//! loops must call [`hint::spin_loop`] / [`thread::yield_now`] from
//! here so the model's yield-deprioritization keeps exploration finite.

#[cfg(not(loom))]
mod imp {
    pub(crate) use std::hint;
    pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};
    pub(crate) use std::thread;

    /// `std`-backed stand-in for `loom::cell::UnsafeCell`: the same
    /// closure-based access API, compiled down to plain pointer hand-out.
    #[derive(Debug, Default)]
    pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wraps `v`.
        pub(crate) fn new(v: T) -> UnsafeCell<T> {
            UnsafeCell(std::cell::UnsafeCell::new(v))
        }

        /// Calls `f` with a shared raw pointer to the contents.
        ///
        /// Dereferencing the pointer is the caller's `unsafe`
        /// obligation, exactly as with `std::cell::UnsafeCell::get`.
        #[inline]
        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Calls `f` with an exclusive raw pointer to the contents.
        #[inline]
        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

#[cfg(loom)]
mod imp {
    pub(crate) use loom::cell::UnsafeCell;
    pub(crate) use loom::hint;
    pub(crate) use loom::sync::atomic::{AtomicUsize, Ordering};
    pub(crate) use loom::thread;
}

pub(crate) use imp::{hint, thread, AtomicUsize, Ordering, UnsafeCell};
