//! Ulrich-style timing wheel for event scheduling.
//!
//! The paper's run-time model assumes "near-constant-time event-list
//! management capabilities \[UL78\]"; this module provides exactly that: a
//! circular array of slots for the near future plus a sorted overflow map
//! for events scheduled beyond the wheel horizon. Scheduling and popping
//! are O(1) amortized for delays shorter than the wheel size, and
//! [`TimingWheel::next_pending_tick`] answers from a per-slot occupancy
//! bitmap (word-scanned, O(slots/64)) or the overflow map's first key
//! (O(log n)) — never by touching the slot vectors themselves.

use std::collections::BTreeMap;

/// A timing wheel holding items of type `T` keyed by an absolute tick.
///
/// Items scheduled within `wheel_size` ticks of the current time live in
/// the circular slot array; farther items go to the overflow
/// [`BTreeMap`] and migrate into the wheel as time advances past them.
///
/// ```
/// use logicsim_sim::TimingWheel;
/// let mut w: TimingWheel<&str> = TimingWheel::new(16);
/// w.schedule(0, "now");
/// w.schedule(2, "later");
/// assert_eq!(w.pop_current(), vec!["now"]);
/// w.advance();
/// w.advance();
/// assert_eq!(w.pop_current(), vec!["later"]);
/// ```
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    slots: Vec<Vec<T>>,
    /// Absolute tick the cursor points at.
    now: u64,
    cursor: usize,
    /// Events beyond `now + slots.len() - 1`.
    overflow: BTreeMap<u64, Vec<T>>,
    /// Number of items currently stored (wheel + overflow).
    len: usize,
    /// Count of nonempty slots, to short-circuit the bitmap scan when
    /// everything pending lives in the overflow map.
    nonempty_slots: usize,
    /// Occupancy bitmap over *physical* slot indices; bit set iff the
    /// slot is nonempty.
    occupied: Vec<u64>,
}

impl<T> TimingWheel<T> {
    /// Creates a wheel with the given number of slots (the horizon).
    ///
    /// # Panics
    ///
    /// Panics if `wheel_size == 0`.
    #[must_use]
    pub fn new(wheel_size: usize) -> TimingWheel<T> {
        assert!(wheel_size > 0, "wheel size must be positive");
        TimingWheel {
            slots: (0..wheel_size).map(|_| Vec::new()).collect(),
            now: 0,
            cursor: 0,
            overflow: BTreeMap::new(),
            len: 0,
            nonempty_slots: 0,
            occupied: vec![0u64; wheel_size.div_ceil(64)],
        }
    }

    /// The current tick (the earliest tick whose events have not been
    /// popped).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total number of scheduled items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mark_occupied(&mut self, idx: usize) {
        self.nonempty_slots += 1;
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn mark_vacant(&mut self, idx: usize) {
        self.nonempty_slots -= 1;
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Schedules an item at an absolute tick.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is in the past (`tick < now()`); the simulator
    /// never schedules into the past, and silently accepting would corrupt
    /// the event order the paper's B/I accounting depends on.
    pub fn schedule(&mut self, tick: u64, item: T) {
        assert!(
            tick >= self.now,
            "cannot schedule at tick {tick}, wheel is at {}",
            self.now
        );
        let horizon = self.slots.len() as u64;
        if tick < self.now + horizon {
            let idx = (self.cursor + (tick - self.now) as usize) % self.slots.len();
            if self.slots[idx].is_empty() {
                self.mark_occupied(idx);
            }
            self.slots[idx].push(item);
        } else {
            self.overflow.entry(tick).or_default().push(item);
        }
        self.len += 1;
    }

    /// Removes and returns all items scheduled for the current tick, in
    /// scheduling order. Does not advance time.
    pub fn pop_current(&mut self) -> Vec<T> {
        let mut items = Vec::new();
        self.pop_current_into(&mut items);
        items
    }

    /// Drains all items scheduled for the current tick into `out`
    /// (appended in scheduling order), reusing the caller's allocation.
    /// Does not advance time.
    pub fn pop_current_into(&mut self, out: &mut Vec<T>) {
        let slot = &mut self.slots[self.cursor];
        if !slot.is_empty() {
            self.len -= slot.len();
            out.append(slot);
            self.mark_vacant(self.cursor);
        }
    }

    /// Advances the wheel by one tick, migrating any overflow items that
    /// now fall within the horizon.
    pub fn advance(&mut self) {
        debug_assert!(
            self.slots[self.cursor].is_empty(),
            "advancing past unpopped events"
        );
        self.now += 1;
        self.cursor = (self.cursor + 1) % self.slots.len();
        // The slot the cursor vacated now represents tick
        // `now + horizon - 1`; pull matching overflow in.
        let incoming_tick = self.now + self.slots.len() as u64 - 1;
        if let Some(items) = self.overflow.remove(&incoming_tick) {
            let idx = (self.cursor + self.slots.len() - 1) % self.slots.len();
            if self.slots[idx].is_empty() && !items.is_empty() {
                self.mark_occupied(idx);
            }
            self.slots[idx].extend(items);
        }
    }

    /// The next tick (>= now) that has scheduled items, or `None` when
    /// the wheel is empty. Used by the engine to skip idle ticks in
    /// event-increment mode while still counting them.
    ///
    /// Answers from the occupancy bitmap when any slot is nonempty, and
    /// from the overflow map's first key otherwise, so a wheel whose
    /// pending work is entirely beyond the horizon responds in O(log n)
    /// without scanning slots.
    #[must_use]
    pub fn next_pending_tick(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if self.nonempty_slots > 0 {
            if let Some(phys) = self
                .find_occupied(self.cursor, self.slots.len())
                .or_else(|| self.find_occupied(0, self.cursor))
            {
                let offset = if phys >= self.cursor {
                    phys - self.cursor
                } else {
                    phys + self.slots.len() - self.cursor
                };
                return Some(self.now + offset as u64);
            }
        }
        self.overflow.keys().next().copied()
    }

    /// First set bit in `occupied` over physical indices `[from, to)`,
    /// scanned word-wise.
    fn find_occupied(&self, from: usize, to: usize) -> Option<usize> {
        if from >= to {
            return None;
        }
        let first_word = from / 64;
        let last_word = (to - 1) / 64;
        for w in first_word..=last_word {
            let mut bits = self.occupied[w];
            if w == first_word {
                bits &= !0u64 << (from % 64);
            }
            if w == last_word {
                let top = to - w * 64;
                if top < 64 {
                    bits &= (1u64 << top) - 1;
                }
            }
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_and_pop_in_order() {
        let mut w: TimingWheel<u32> = TimingWheel::new(8);
        w.schedule(0, 1);
        w.schedule(0, 2);
        w.schedule(3, 3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop_current(), vec![1, 2]);
        assert_eq!(w.len(), 1);
        for _ in 0..3 {
            assert!(w.pop_current().is_empty());
            w.advance();
        }
        assert_eq!(w.now(), 3);
        assert_eq!(w.pop_current(), vec![3]);
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_migrates_into_wheel() {
        let mut w: TimingWheel<&str> = TimingWheel::new(4);
        w.schedule(10, "far");
        assert_eq!(w.next_pending_tick(), Some(10));
        while w.now() < 10 {
            assert!(w.pop_current().is_empty());
            w.advance();
        }
        assert_eq!(w.pop_current(), vec!["far"]);
    }

    #[test]
    fn next_pending_tick_prefers_wheel_then_overflow() {
        let mut w: TimingWheel<u32> = TimingWheel::new(4);
        assert_eq!(w.next_pending_tick(), None);
        w.schedule(100, 1);
        assert_eq!(w.next_pending_tick(), Some(100));
        w.schedule(2, 2);
        assert_eq!(w.next_pending_tick(), Some(2));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_past_panics() {
        let mut w: TimingWheel<u32> = TimingWheel::new(4);
        w.advance();
        w.schedule(0, 1);
    }

    #[test]
    fn wraparound_is_correct_over_many_laps() {
        let mut w: TimingWheel<u64> = TimingWheel::new(4);
        // Schedule an item every 3 ticks for 50 ticks; pop and verify.
        for t in (0..50).step_by(3) {
            w.schedule(t, t);
        }
        let mut seen = Vec::new();
        while !w.is_empty() {
            for item in w.pop_current() {
                assert_eq!(item, w.now());
                seen.push(item);
            }
            w.advance();
        }
        assert_eq!(seen, (0..50).step_by(3).collect::<Vec<_>>());
    }

    #[test]
    fn same_tick_items_preserve_fifo() {
        let mut w: TimingWheel<u32> = TimingWheel::new(4);
        for i in 0..10 {
            w.schedule(1, i);
        }
        assert!(w.pop_current().is_empty());
        w.advance();
        assert_eq!(w.pop_current(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_current_into_reuses_buffer() {
        let mut w: TimingWheel<u32> = TimingWheel::new(4);
        w.schedule(0, 1);
        w.schedule(0, 2);
        let mut buf = Vec::with_capacity(8);
        w.pop_current_into(&mut buf);
        assert_eq!(buf, vec![1, 2]);
        assert!(w.is_empty());
        assert_eq!(w.next_pending_tick(), None);
        // Draining an empty slot appends nothing and keeps the buffer.
        buf.clear();
        w.pop_current_into(&mut buf);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 8);
    }

    /// The boundary case: `now + wheel_size` is the first tick *outside*
    /// the horizon, so it must land in the overflow map, be reported by
    /// `next_pending_tick` without any slot being occupied, and migrate
    /// into the wheel on the first `advance()`.
    #[test]
    fn overflow_edge_at_exactly_now_plus_wheel_size() {
        let size = 4;
        let mut w: TimingWheel<&str> = TimingWheel::new(size);
        w.schedule(size as u64 - 1, "inside"); // last in-horizon tick
        w.schedule(size as u64, "edge"); // first tick past the horizon
        assert_eq!(w.nonempty_slots, 1, "edge item must not occupy a slot");
        assert_eq!(w.overflow.len(), 1);
        assert_eq!(w.next_pending_tick(), Some(size as u64 - 1));

        // The first advance vacates the slot that then represents
        // exactly tick `size` (= new now + horizon - 1), so the edge
        // item migrates immediately.
        assert!(w.pop_current().is_empty());
        w.advance();
        assert!(w.overflow.is_empty(), "edge item must have migrated");
        assert_eq!(w.nonempty_slots, 2);
        assert_eq!(w.next_pending_tick(), Some(size as u64 - 1));

        for t in 1..size as u64 - 1 {
            assert!(w.pop_current().is_empty(), "tick {t} should be empty");
            w.advance();
        }
        assert_eq!(w.pop_current(), vec!["inside"]);
        w.advance();
        assert_eq!(w.next_pending_tick(), Some(size as u64));
        assert_eq!(w.pop_current(), vec!["edge"]);
        assert!(w.is_empty());
    }

    /// Bitmap scan must handle a pending slot *behind* the cursor
    /// (physical index wrapped around zero).
    #[test]
    fn next_pending_tick_across_physical_wraparound() {
        let mut w: TimingWheel<u32> = TimingWheel::new(8);
        for _ in 0..6 {
            w.advance();
        }
        // cursor = 6; now = 6; tick 11 lands at physical (6 + 5) % 8 = 3.
        w.schedule(11, 42);
        assert_eq!(w.next_pending_tick(), Some(11));
        while w.now() < 11 {
            assert!(w.pop_current().is_empty());
            w.advance();
        }
        assert_eq!(w.pop_current(), vec![42]);
    }
}
