//! Test-vector stimulus generation.
//!
//! The paper applied "random test vectors ... until aggregate statistics
//! (e.g., average event-list size, circuit activity) remained stable and
//! most components experienced at least one output change". This module
//! reproduces that methodology: each primary input is assigned a
//! [`SignalRole`] (clock, random data, constant, or reset pulse) and the
//! [`RandomStimulus`] driver applies the resulting vectors tick by tick
//! from a seeded RNG, so every measurement in this repository is
//! reproducible.

use crate::engine::Simulator;
use logicsim_netlist::analyze::dataflow::seeds::{InputSeed, InputSeeds};
use logicsim_netlist::analyze::dataflow::xreach::LevelSet;
use logicsim_netlist::{Level, NetId, Plane, LANES};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How a primary input behaves during a measurement run.
#[derive(Debug, Clone, PartialEq)]
pub enum SignalRole {
    /// A free-running clock: toggles every `half_period` ticks, starting
    /// low after `phase` ticks.
    Clock {
        /// Ticks between edges.
        half_period: u64,
        /// Offset of the first edge.
        phase: u64,
    },
    /// Random data: re-drawn every `period` ticks (offset by `phase`);
    /// each draw flips the current level with probability
    /// `toggle_prob`. Distinct phases stagger inputs so events spread
    /// over time instead of bunching on period boundaries.
    Random {
        /// Ticks between draws.
        period: u64,
        /// Offset of the draw schedule.
        phase: u64,
        /// Probability a draw toggles the level.
        toggle_prob: f64,
    },
    /// Held constant at a level.
    Const(Level),
    /// Active level held for the first `width` ticks, then the opposite
    /// level forever (power-on reset).
    Pulse {
        /// Level during the pulse.
        active: Level,
        /// Pulse width in ticks.
        width: u64,
    },
}

/// A named stimulus plan: `(input net name, role)` pairs. Circuit
/// generators ship one of these per benchmark so the measurement
/// binaries don't hard-code net names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StimulusSpec {
    /// Assignments by input net name.
    pub assignments: Vec<(String, SignalRole)>,
}

impl StimulusSpec {
    /// Creates an empty spec.
    #[must_use]
    pub fn new() -> StimulusSpec {
        StimulusSpec::default()
    }

    /// Adds an assignment (builder style).
    #[must_use]
    pub fn with(mut self, net: impl Into<String>, role: SignalRole) -> StimulusSpec {
        self.assignments.push((net.into(), role));
        self
    }

    /// Resolves net names against a netlist and builds the driver.
    ///
    /// # Errors
    ///
    /// Returns the offending name if any assignment references a net
    /// that does not exist in the netlist.
    pub fn build(
        &self,
        netlist: &logicsim_netlist::Netlist,
        seed: u64,
    ) -> Result<RandomStimulus, String> {
        let mut resolved = Vec::with_capacity(self.assignments.len());
        for (name, role) in &self.assignments {
            let net = netlist
                .find_net(name)
                .ok_or_else(|| format!("stimulus references unknown net `{name}`"))?;
            resolved.push((net, role.clone()));
        }
        Ok(RandomStimulus::new(resolved, seed))
    }

    /// Derives per-input seeds for the static analyses
    /// (`analyze::dataflow::{activity, timing, xreach}`) from this
    /// spec's periodicity: a clock's density and separation follow its
    /// half-period, random data follows its redraw period and toggle
    /// probability, constants and settled pulses are quiet.
    ///
    /// Inputs the spec does not assign keep the conservative
    /// [`InputSeed::default`]. Unknown net names are skipped rather
    /// than erroring — the analyses are advisory, and [`Self::build`]
    /// is where name typos get caught.
    #[must_use]
    pub fn activity_seeds(&self, netlist: &logicsim_netlist::Netlist) -> InputSeeds {
        let mut seeds = InputSeeds::unconstrained(netlist);
        for (name, role) in &self.assignments {
            if let Some(net) = netlist.find_net(name) {
                seeds.set(net, role.activity_seed());
            }
        }
        seeds
    }
}

impl SignalRole {
    /// The static-analysis seed this role justifies. Density and
    /// separation are provable bounds of the generated waveform; the
    /// `p1` interval for toggling roles is the steady-state
    /// distribution (exact for clocks, stationary-limit for random
    /// data), which is what the activity estimator wants.
    #[must_use]
    pub fn activity_seed(&self) -> InputSeed {
        let sep = |t: u64| u32::try_from(t).unwrap_or(u32::MAX).max(1);
        let both = LevelSet::just(Level::Zero).union(LevelSet::just(Level::One));
        match *self {
            SignalRole::Clock { half_period, .. } => InputSeed {
                p1_lo: 0.5,
                p1_hi: 0.5,
                density: 1.0 / half_period.max(1) as f64,
                min_separation: sep(half_period),
                levels: both.0,
            },
            SignalRole::Random {
                period,
                toggle_prob,
                ..
            } => InputSeed {
                p1_lo: 0.5,
                p1_hi: 0.5,
                density: toggle_prob / period.max(1) as f64,
                min_separation: sep(period),
                levels: both.0,
            },
            SignalRole::Const(l) => {
                let p = match l {
                    Level::One => (1.0, 1.0),
                    Level::Zero => (0.0, 0.0),
                    Level::X => (0.0, 1.0),
                };
                InputSeed {
                    p1_lo: p.0,
                    p1_hi: p.1,
                    density: 0.0,
                    min_separation: u32::MAX,
                    levels: LevelSet::just(l).0,
                }
            }
            SignalRole::Pulse { active, width } => {
                // One settling edge at `width`, quiet forever after;
                // the steady-state level is the released one.
                let p = match active.not() {
                    Level::One => (1.0, 1.0),
                    Level::Zero => (0.0, 0.0),
                    Level::X => (0.0, 1.0),
                };
                InputSeed {
                    p1_lo: p.0,
                    p1_hi: p.1,
                    density: 0.0,
                    min_separation: sep(width),
                    levels: both.union(LevelSet::just(active)).0,
                }
            }
        }
    }
}

/// Applies input vectors to a [`Simulator`] each tick.
pub trait Stimulus {
    /// Called once per tick *before* the simulator executes that tick;
    /// implementations call [`Simulator::set_input`] as needed.
    fn apply(&mut self, sim: &mut Simulator<'_>, tick: u64);
}

/// Seeded random/clocked vector driver built from a [`StimulusSpec`].
#[derive(Debug, Clone)]
pub struct RandomStimulus {
    inputs: Vec<(NetId, SignalRole)>,
    /// Current commanded level per input (to draw toggles from).
    levels: Vec<Level>,
    rng: ChaCha8Rng,
}

impl RandomStimulus {
    /// Creates a driver over resolved `(net, role)` pairs with a seed.
    #[must_use]
    pub fn new(inputs: Vec<(NetId, SignalRole)>, seed: u64) -> RandomStimulus {
        let levels = inputs
            .iter()
            .map(|(_, role)| match role {
                SignalRole::Const(l) => *l,
                SignalRole::Pulse { active, .. } => *active,
                _ => Level::Zero,
            })
            .collect();
        RandomStimulus {
            inputs,
            levels,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The level an input should hold at `tick`, updating internal
    /// random state as needed.
    fn level_at(&mut self, idx: usize, tick: u64) -> Level {
        // Copy the role's scalar fields out so the `self.inputs` borrow
        // ends before `self.rng`/`self.levels` are touched; this keeps
        // the per-input per-tick path allocation- and clone-free.
        match self.inputs[idx].1 {
            SignalRole::Const(l) => l,
            SignalRole::Clock { half_period, phase } => {
                if tick < phase {
                    Level::Zero
                } else {
                    Level::from_bool(((tick - phase) / half_period) % 2 == 1)
                }
            }
            SignalRole::Random {
                period,
                phase,
                toggle_prob,
            } => {
                if (tick + phase).is_multiple_of(period) && self.rng.gen_bool(toggle_prob) {
                    self.levels[idx] = self.levels[idx].not();
                }
                self.levels[idx]
            }
            SignalRole::Pulse { active, width } => {
                if tick < width {
                    active
                } else {
                    active.not()
                }
            }
        }
    }
}

impl RandomStimulus {
    /// Feeds this tick's input levels to an arbitrary sink, advancing
    /// the internal random state exactly as [`Stimulus::apply`] does.
    ///
    /// This is how the same stimulus stream drives engines other than
    /// the serial [`Simulator`] (e.g. the parallel engine's
    /// [`InputFrame`](crate::par_engine::InputFrame)): the RNG consumes
    /// one decision per random input per matching tick regardless of
    /// the sink, so serial and parallel runs see identical vectors.
    pub fn apply_with(&mut self, tick: u64, mut set: impl FnMut(NetId, Level)) {
        for idx in 0..self.inputs.len() {
            let level = self.level_at(idx, tick);
            let net = self.inputs[idx].0;
            set(net, level);
        }
    }
}

impl Stimulus for RandomStimulus {
    fn apply(&mut self, sim: &mut Simulator<'_>, tick: u64) {
        self.apply_with(tick, |net, level| sim.set_input(net, level));
    }
}

/// A 64-lane batch stimulus: one independently seeded [`RandomStimulus`]
/// per lane, all built from the same [`StimulusSpec`], producing one
/// [`Plane`] per assigned input per tick.
///
/// Lane 0 uses the base seed unchanged, so a serial reference run with
/// the same seed reproduces lane 0 exactly; lane `i` uses
/// [`Stimulus64::lane_seed`]`(base, i)`. This is the contract the
/// differential harness leans on: any lane of a
/// [`BitParSim`](crate::bitpar::BitParSim) batch can be replayed on the
/// event-driven engine by building a `RandomStimulus` with that lane's
/// seed.
#[derive(Debug, Clone)]
pub struct Stimulus64 {
    nets: Vec<NetId>,
    roles: Vec<SignalRole>,
    /// One RNG per lane, seeded with [`Stimulus64::lane_seed`]; lane
    /// `l` consumes draws in the same order as a serial
    /// [`RandomStimulus`] with that seed (inputs-major per tick).
    rngs: Vec<ChaCha8Rng>,
    /// Current plane per input. Deterministic roles splat a shared
    /// level; random roles toggle per-lane `val` bits on their period
    /// boundaries — so a quiet tick costs one branch per input instead
    /// of `lanes x inputs` level computations.
    planes: Vec<Plane>,
    /// Cached deterministic level per input (`None` until first apply).
    det: Vec<Option<Level>>,
    active_mask: u64,
}

impl Stimulus64 {
    /// The seed lane `lane` draws its random decisions from. Lane 0 is
    /// the base seed itself; other lanes mix in a golden-ratio stride.
    #[must_use]
    pub fn lane_seed(base: u64, lane: usize) -> u64 {
        base.wrapping_add((lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Builds `lanes` per-lane drivers from `spec` against `netlist`.
    ///
    /// # Errors
    ///
    /// Returns the offending name if the spec references an unknown net.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=64`.
    pub fn new(
        spec: &StimulusSpec,
        netlist: &logicsim_netlist::Netlist,
        base_seed: u64,
        lanes: usize,
    ) -> Result<Stimulus64, String> {
        assert!(
            (1..=LANES).contains(&lanes),
            "lanes must be 1..=64, got {lanes}"
        );
        let mut nets = Vec::with_capacity(spec.assignments.len());
        for (name, _) in &spec.assignments {
            nets.push(
                netlist
                    .find_net(name)
                    .ok_or_else(|| format!("stimulus references unknown net `{name}`"))?,
            );
        }
        let active_mask = if lanes == LANES {
            !0
        } else {
            (1u64 << lanes) - 1
        };
        let roles: Vec<SignalRole> = spec.assignments.iter().map(|(_, r)| r.clone()).collect();
        // Initial planes mirror `RandomStimulus::new`'s initial levels:
        // random data starts at Zero, constants/pulses at their level.
        let planes = roles
            .iter()
            .map(|role| {
                let l = match role {
                    SignalRole::Const(l) => *l,
                    SignalRole::Pulse { active, .. } => *active,
                    _ => Level::Zero,
                };
                Plane::splat(l).masked(active_mask)
            })
            .collect();
        let det = vec![None; roles.len()];
        let rngs = (0..lanes)
            .map(|l| ChaCha8Rng::seed_from_u64(Stimulus64::lane_seed(base_seed, l)))
            .collect();
        Ok(Stimulus64 {
            nets,
            roles,
            rngs,
            planes,
            det,
            active_mask,
        })
    }

    /// Number of lanes.
    #[must_use]
    pub fn num_lanes(&self) -> usize {
        self.rngs.len()
    }

    /// Feeds this tick's input planes to a sink (typically
    /// [`BitParSim::set_input_plane`](crate::bitpar::BitParSim::set_input_plane)),
    /// advancing every lane's random state exactly as a serial
    /// [`Stimulus::apply`] with that lane's seed would. Lanes beyond
    /// [`Stimulus64::num_lanes`] are left `X` in every plane.
    pub fn apply_with(&mut self, tick: u64, mut set: impl FnMut(NetId, Plane)) {
        for idx in 0..self.nets.len() {
            match self.roles[idx] {
                SignalRole::Const(_) => {} // plane fixed at build
                SignalRole::Clock { half_period, phase } => {
                    let l = if tick < phase {
                        Level::Zero
                    } else {
                        Level::from_bool(((tick - phase) / half_period) % 2 == 1)
                    };
                    self.set_det(idx, l);
                }
                SignalRole::Pulse { active, width } => {
                    let l = if tick < width { active } else { active.not() };
                    self.set_det(idx, l);
                }
                SignalRole::Random {
                    period,
                    phase,
                    toggle_prob,
                } => {
                    if (tick + phase).is_multiple_of(period) {
                        // One draw per lane, in lane order: each lane's
                        // RNG sees the same inputs-major sequence a
                        // serial run with its seed would.
                        let mut p = self.planes[idx];
                        for (lane, rng) in self.rngs.iter_mut().enumerate() {
                            if rng.gen_bool(toggle_prob) {
                                p.val ^= 1u64 << lane;
                            }
                        }
                        self.planes[idx] = p;
                    }
                }
            }
            set(self.nets[idx], self.planes[idx]);
        }
    }

    /// Refreshes input `idx`'s plane from a lane-shared deterministic
    /// level, re-splatting only when the level actually changed.
    fn set_det(&mut self, idx: usize, l: Level) {
        if self.det[idx] != Some(l) {
            self.det[idx] = Some(l);
            self.planes[idx] = Plane::splat(l).masked(self.active_mask);
        }
    }
}

/// Runs a simulator under a stimulus until `end_tick` (exclusive).
///
/// This is the standard measurement loop: call
/// [`Simulator::reset_measurements`] after a warm-up prefix, then run the
/// measured window.
pub fn run_with_stimulus(sim: &mut Simulator<'_>, stim: &mut dyn Stimulus, end_tick: u64) {
    while sim.now() < end_tick {
        stim.apply(sim, sim.now());
        sim.step();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use logicsim_netlist::{Delay, GateKind, NetlistBuilder};

    fn buf_circuit() -> logicsim_netlist::Netlist {
        let mut b = NetlistBuilder::new("buf");
        let a = b.input("a");
        let clk = b.input("clk");
        let y = b.net("y");
        b.gate(GateKind::And, &[a, clk], y, Delay::uniform(1));
        b.finish().unwrap()
    }

    #[test]
    fn clock_toggles_at_half_period() {
        let n = buf_circuit();
        let spec = StimulusSpec::new()
            .with(
                "clk",
                SignalRole::Clock {
                    half_period: 5,
                    phase: 0,
                },
            )
            .with("a", SignalRole::Const(Level::One));
        let mut stim = spec.build(&n, 1).unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        run_with_stimulus(&mut sim, &mut stim, 30);
        // clk toggled at ticks 5,10,...: expect ~5 clk events visible as
        // busy activity.
        assert!(sim.counters().events >= 5);
    }

    #[test]
    fn unknown_net_is_an_error() {
        let n = buf_circuit();
        let spec = StimulusSpec::new().with("nope", SignalRole::Const(Level::One));
        assert!(spec.build(&n, 0).is_err());
    }

    #[test]
    fn random_stimulus_is_deterministic_per_seed() {
        let n = buf_circuit();
        let spec = StimulusSpec::new()
            .with(
                "a",
                SignalRole::Random {
                    period: 3,
                    phase: 0,
                    toggle_prob: 0.5,
                },
            )
            .with(
                "clk",
                SignalRole::Clock {
                    half_period: 2,
                    phase: 0,
                },
            );
        let run = |seed| {
            let mut stim = spec.build(&n, seed).unwrap();
            let mut sim = Simulator::new(&n).expect("pre-flight");
            run_with_stimulus(&mut sim, &mut stim, 200);
            sim.counters().clone()
        };
        assert_eq!(run(42), run(42));
        // Different seeds should (overwhelmingly) differ in event counts.
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn stimulus64_lane0_matches_serial_with_base_seed() {
        let n = buf_circuit();
        let spec = StimulusSpec::new()
            .with(
                "a",
                SignalRole::Random {
                    period: 3,
                    phase: 0,
                    toggle_prob: 0.5,
                },
            )
            .with(
                "clk",
                SignalRole::Clock {
                    half_period: 2,
                    phase: 0,
                },
            );
        let mut batch = Stimulus64::new(&spec, &n, 42, 8).unwrap();
        let mut serial = spec.build(&n, 42).unwrap();
        for tick in 0..100 {
            let mut batch_lane0 = Vec::new();
            batch.apply_with(tick, |net, plane| batch_lane0.push((net, plane.lane(0))));
            let mut serial_levels = Vec::new();
            serial.apply_with(tick, |net, level| serial_levels.push((net, level)));
            assert_eq!(batch_lane0, serial_levels, "tick {tick}");
        }
    }

    #[test]
    fn stimulus64_inactive_lanes_stay_x() {
        let n = buf_circuit();
        let spec = StimulusSpec::new().with("a", SignalRole::Const(Level::One));
        let mut batch = Stimulus64::new(&spec, &n, 0, 2).unwrap();
        batch.apply_with(0, |_, plane| {
            assert_eq!(plane.lane(0), Level::One);
            assert_eq!(plane.lane(1), Level::One);
            assert_eq!(plane.lane(2), Level::X);
            assert_eq!(plane.lane(63), Level::X);
        });
    }

    #[test]
    fn activity_seeds_follow_stimulus_periodicity() {
        let n = buf_circuit();
        let spec = StimulusSpec::new()
            .with(
                "clk",
                SignalRole::Clock {
                    half_period: 10,
                    phase: 0,
                },
            )
            .with(
                "a",
                SignalRole::Random {
                    period: 4,
                    phase: 0,
                    toggle_prob: 0.5,
                },
            );
        let seeds = spec.activity_seeds(&n);
        let clk = seeds.get(n.find_net("clk").unwrap()).unwrap();
        assert!((clk.density - 0.1).abs() < 1e-12);
        assert_eq!(clk.min_separation, 10);
        assert!(!LevelSet(clk.levels).contains(Level::X));
        let a = seeds.get(n.find_net("a").unwrap()).unwrap();
        assert!((a.density - 0.125).abs() < 1e-12);
        assert_eq!(a.min_separation, 4);
    }

    #[test]
    fn const_and_pulse_seeds_are_quiet() {
        let c = SignalRole::Const(Level::One).activity_seed();
        assert_eq!(c.density, 0.0);
        assert_eq!(c.min_separation, u32::MAX);
        assert_eq!((c.p1_lo, c.p1_hi), (1.0, 1.0));
        let p = SignalRole::Pulse {
            active: Level::One,
            width: 16,
        }
        .activity_seed();
        assert_eq!(p.density, 0.0);
        assert_eq!(p.min_separation, 16);
        assert_eq!((p.p1_lo, p.p1_hi), (0.0, 0.0), "settles at active.not()");
    }

    #[test]
    fn pulse_then_release() {
        let n = buf_circuit();
        let spec = StimulusSpec::new()
            .with(
                "a",
                SignalRole::Pulse {
                    active: Level::Zero,
                    width: 4,
                },
            )
            .with("clk", SignalRole::Const(Level::One));
        let mut stim = spec.build(&n, 0).unwrap();
        let mut sim = Simulator::new(&n).expect("pre-flight");
        let y = n.find_net("y").unwrap();
        run_with_stimulus(&mut sim, &mut stim, 3);
        assert_eq!(sim.level(y), Level::Zero);
        run_with_stimulus(&mut sim, &mut stim, 10);
        assert_eq!(sim.level(y), Level::One);
    }
}
