//! Compiled-mode (levelized) simulation.
//!
//! The commercial machines the paper surveys split into two camps:
//! event-driven engines (ZYCAD — the class the paper models) and
//! *compiled-mode* engines like IBM's Yorktown Simulation Engine
//! \[PF82, DE82\], which evaluate **every** gate on every cycle in rank
//! order, with no event list at all. This module implements
//! compiled-mode evaluation for the gate-level subset:
//!
//! * [`Levelizer`] topologically ranks the combinational gates (and
//!   reports feedback gates, which compiled mode must iterate on);
//! * [`CompiledSim`] evaluates rank-by-rank until a fixpoint.
//!
//! Two uses: an *independent oracle* for the event-driven engine (both
//! must agree on quiescent values — see the cross-check property test),
//! and the *activity argument*: compiled mode performs
//! `gates x cycles` evaluations where the event-driven engine performs
//! `E`; their ratio is the circuit activity, the quantity Table 6 shows
//! to be 0.1-3% — which is why the paper's machine class carries event
//! lists.

use logicsim_netlist::{CompId, Component, Level, NetId, Netlist};

/// Topological levelization of a gate-level netlist.
#[derive(Debug, Clone)]
pub struct Levelizer {
    /// Gates in evaluation order (rank-major).
    pub order: Vec<CompId>,
    /// Rank of each ordered gate.
    pub ranks: Vec<u32>,
    /// Gates on combinational feedback loops (latches, flip-flops
    /// built from gates); compiled mode iterates these to a fixpoint.
    pub feedback: Vec<CompId>,
}

impl Levelizer {
    /// Levelizes the netlist's gates by longest path from the primary
    /// inputs; gates on cycles are collected into `feedback`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains switches (compiled mode covers
    /// the gate-level subset; the crossbar benchmark qualifies, the
    /// nmos chips do not).
    #[must_use]
    pub fn new(netlist: &Netlist) -> Levelizer {
        assert_eq!(
            netlist.num_switches(),
            0,
            "compiled mode supports gate-level netlists only"
        );
        // Kahn's algorithm over gates; indegree = number of gate-driven
        // input nets.
        let gate_ids: Vec<CompId> = netlist
            .iter()
            .filter(|(_, c)| c.is_gate())
            .map(|(id, _)| id)
            .collect();
        let driver_gate = |net: NetId| -> Option<CompId> {
            netlist
                .drivers(net)
                .iter()
                .copied()
                .find(|&d| netlist.component(d).is_gate())
        };
        let mut indegree: Vec<u32> = vec![0; netlist.num_components()];
        for &g in &gate_ids {
            if let Component::Gate { inputs, .. } = netlist.component(g) {
                indegree[g.index()] =
                    inputs.iter().filter(|&&n| driver_gate(n).is_some()).count() as u32;
            }
        }
        let mut queue: Vec<(CompId, u32)> = gate_ids
            .iter()
            .copied()
            .filter(|g| indegree[g.index()] == 0)
            .map(|g| (g, 0))
            .collect();
        let mut order = Vec::with_capacity(gate_ids.len());
        let mut ranks = Vec::with_capacity(gate_ids.len());
        let mut done = vec![false; netlist.num_components()];
        let mut head = 0;
        while head < queue.len() {
            let (g, rank) = queue[head];
            head += 1;
            if done[g.index()] {
                continue;
            }
            done[g.index()] = true;
            order.push(g);
            ranks.push(rank);
            if let Component::Gate { output, .. } = netlist.component(g) {
                for &reader in netlist.fanout(*output) {
                    if netlist.component(reader).is_gate() && !done[reader.index()] {
                        let d = &mut indegree[reader.index()];
                        *d = d.saturating_sub(1);
                        if *d == 0 {
                            queue.push((reader, rank + 1));
                        }
                    }
                }
            }
        }
        let feedback: Vec<CompId> = gate_ids
            .iter()
            .copied()
            .filter(|g| !done[g.index()])
            .collect();
        Levelizer {
            order,
            ranks,
            feedback,
        }
    }

    /// Number of combinational ranks.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.ranks.iter().copied().max().map_or(0, |r| r + 1)
    }

    /// Returns `true` when the netlist is purely combinational.
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        self.feedback.is_empty()
    }
}

/// A compiled-mode simulator over a levelized netlist.
#[derive(Debug)]
pub struct CompiledSim<'a> {
    netlist: &'a Netlist,
    levels: Levelizer,
    values: Vec<Level>,
    /// Total gate evaluations performed (the compiled-mode cost).
    pub evaluations: u64,
    /// Fixpoint iterations used on the feedback subset in the last
    /// `settle` call.
    pub last_iterations: u32,
}

impl<'a> CompiledSim<'a> {
    /// Builds the compiled simulator (levelizes once).
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains switches.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> CompiledSim<'a> {
        CompiledSim {
            levels: Levelizer::new(netlist),
            values: vec![Level::X; netlist.num_nets()],
            evaluations: 0,
            last_iterations: 0,
            netlist,
        }
    }

    /// Sets a primary input level.
    pub fn set_input(&mut self, net: NetId, level: Level) {
        self.values[net.index()] = level;
    }

    /// Current level of a net.
    #[must_use]
    pub fn level(&self, net: NetId) -> Level {
        self.values[net.index()]
    }

    fn eval_gate(&mut self, g: CompId) -> bool {
        let Component::Gate {
            kind,
            inputs,
            output,
            ..
        } = self.netlist.component(g)
        else {
            unreachable!("levelizer only emits gates")
        };
        let levels: Vec<Level> = inputs.iter().map(|&n| self.values[n.index()]).collect();
        let out = kind.evaluate(&levels).level;
        self.evaluations += 1;
        if self.values[output.index()] != out {
            self.values[output.index()] = out;
            true
        } else {
            false
        }
    }

    /// One full compiled-mode cycle: every ranked gate evaluated once
    /// in rank order, then the feedback subset iterated to a fixpoint
    /// (bounded by `max_feedback_iters`). Returns `true` if the
    /// feedback subset converged.
    pub fn settle(&mut self, max_feedback_iters: u32) -> bool {
        for i in 0..self.levels.order.len() {
            let g = self.levels.order[i];
            self.eval_gate(g);
        }
        let feedback = self.levels.feedback.clone();
        self.last_iterations = 0;
        if feedback.is_empty() {
            return true;
        }
        for iter in 0..max_feedback_iters {
            self.last_iterations = iter + 1;
            let mut changed = false;
            for &g in &feedback {
                changed |= self.eval_gate(g);
            }
            if !changed {
                return true;
            }
        }
        // Did not converge: oscillating feedback (e.g. an enabled ring
        // oscillator); mark the unstable outputs X like a real compiled
        // simulator's oscillation detector.
        for &g in &feedback {
            if let Component::Gate { output, .. } = self.netlist.component(g) {
                self.values[output.index()] = Level::X;
            }
        }
        false
    }

    /// The levelization.
    #[must_use]
    pub fn levels(&self) -> &Levelizer {
        &self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::{Delay, GateKind, NetlistBuilder};

    fn adder2() -> Netlist {
        let mut b = NetlistBuilder::new("adder2");
        let a0 = b.input("a0");
        let a1 = b.input("a1");
        let b0 = b.input("b0");
        let b1 = b.input("b1");
        // bit 0
        let s0 = b.net("s0");
        b.gate(GateKind::Xor, &[a0, b0], s0, Delay::uniform(1));
        let c0 = b.net("c0");
        b.gate(GateKind::And, &[a0, b0], c0, Delay::uniform(1));
        // bit 1
        let x1 = b.net("x1");
        b.gate(GateKind::Xor, &[a1, b1], x1, Delay::uniform(1));
        let s1 = b.net("s1");
        b.gate(GateKind::Xor, &[x1, c0], s1, Delay::uniform(1));
        let t1 = b.net("t1");
        b.gate(GateKind::And, &[a1, b1], t1, Delay::uniform(1));
        let t2 = b.net("t2");
        b.gate(GateKind::And, &[x1, c0], t2, Delay::uniform(1));
        let c1 = b.net("c1");
        b.gate(GateKind::Or, &[t1, t2], c1, Delay::uniform(1));
        b.finish().unwrap()
    }

    #[test]
    fn levelizes_combinational_circuit() {
        let n = adder2();
        let lv = Levelizer::new(&n);
        assert!(lv.is_combinational());
        assert_eq!(lv.order.len(), n.num_gates());
        assert!(lv.depth() >= 3, "depth {}", lv.depth());
        // Ranks are consistent: each gate's rank exceeds its
        // gate-driven predecessors'.
        for (pos, &g) in lv.order.iter().enumerate() {
            if let logicsim_netlist::Component::Gate { inputs, .. } = n.component(g) {
                for &inp in inputs {
                    for &d in n.drivers(inp) {
                        if let Some(dp) = lv.order.iter().position(|&x| x == d) {
                            assert!(lv.ranks[dp] < lv.ranks[pos]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_adder_adds() {
        let n = adder2();
        let mut sim = CompiledSim::new(&n);
        let net = |s: &str| n.find_net(s).unwrap();
        for (a, b) in [(0u32, 0u32), (1, 2), (3, 3), (2, 1)] {
            sim.set_input(net("a0"), Level::from_bool(a & 1 == 1));
            sim.set_input(net("a1"), Level::from_bool(a >> 1 & 1 == 1));
            sim.set_input(net("b0"), Level::from_bool(b & 1 == 1));
            sim.set_input(net("b1"), Level::from_bool(b >> 1 & 1 == 1));
            assert!(sim.settle(8));
            let mut sum = 0;
            if sim.level(net("s0")) == Level::One {
                sum |= 1;
            }
            if sim.level(net("s1")) == Level::One {
                sum |= 2;
            }
            if sim.level(net("c1")) == Level::One {
                sum |= 4;
            }
            assert_eq!(sum, a + b, "{a}+{b}");
        }
    }

    #[test]
    fn feedback_gates_detected_and_converge() {
        // NAND latch: both gates are feedback.
        let mut b = NetlistBuilder::new("latch");
        let s = b.input("s_n");
        let r = b.input("r_n");
        let q = b.net("q");
        let qn = b.net("qn");
        b.gate(GateKind::Nand, &[s, qn], q, Delay::uniform(1));
        b.gate(GateKind::Nand, &[r, q], qn, Delay::uniform(1));
        let n = b.finish().unwrap();
        let lv = Levelizer::new(&n);
        assert_eq!(lv.feedback.len(), 2);
        let mut sim = CompiledSim::new(&n);
        sim.set_input(n.find_net("s_n").unwrap(), Level::Zero);
        sim.set_input(n.find_net("r_n").unwrap(), Level::One);
        assert!(sim.settle(16));
        assert_eq!(sim.level(n.find_net("q").unwrap()), Level::One);
    }

    #[test]
    fn oscillation_yields_x() {
        // A bare inverter loop cannot settle.
        let mut b = NetlistBuilder::new("osc");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Not, &[x], y, Delay::uniform(1));
        b.gate(GateKind::Buf, &[y], x, Delay::uniform(1));
        // Drive the loop from a known state via an input we then ignore:
        // with all-X it is stable at X, so force a contradiction by
        // making it a 1-inverter loop.
        let n = b.finish().unwrap();
        let mut sim = CompiledSim::new(&n);
        // Seed a known value so the loop actually oscillates.
        sim.values[x.index()] = Level::Zero;
        let converged = sim.settle(8);
        assert!(!converged);
        assert_eq!(sim.level(y), Level::X);
    }

    #[test]
    #[should_panic(expected = "gate-level")]
    fn switches_rejected() {
        let mut b = NetlistBuilder::new("sw");
        let c = b.input("c");
        let a = b.input("a");
        let z = b.net("z");
        b.switch(logicsim_netlist::SwitchKind::Nmos, c, a, z);
        let n = b.finish().unwrap();
        let _ = Levelizer::new(&n);
    }

    #[test]
    fn crossbar_benchmark_is_compilable() {
        // The paper's all-gate circuit runs in compiled mode.
        let inst = logicsim_circuits_smoke();
        let lv = Levelizer::new(&inst);
        assert!(!lv.order.is_empty());
    }

    /// Builds a small all-gate circuit resembling the crossbar's
    /// structure (the real generator lives in a downstream crate, so
    /// the full cross-check is an integration test).
    fn logicsim_circuits_smoke() -> Netlist {
        let mut b = NetlistBuilder::new("plane");
        let g0 = b.input("g0");
        let g1 = b.input("g1");
        let d0 = b.input("d0");
        let d1 = b.input("d1");
        let t0 = b.net("t0");
        let t1 = b.net("t1");
        let out = b.net("out");
        b.gate(GateKind::And, &[g0, d0], t0, Delay::uniform(1));
        b.gate(GateKind::And, &[g1, d1], t1, Delay::uniform(1));
        b.gate(GateKind::Or, &[t0, t1], out, Delay::uniform(1));
        b.finish().unwrap()
    }
}
