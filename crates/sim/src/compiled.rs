//! Compiled-mode (levelized) simulation.
//!
//! The commercial machines the paper surveys split into two camps:
//! event-driven engines (ZYCAD — the class the paper models) and
//! *compiled-mode* engines like IBM's Yorktown Simulation Engine
//! \[PF82, DE82\], which evaluate **every** gate on every cycle in rank
//! order, with no event list at all. This module implements
//! compiled-mode evaluation for the gate-level subset:
//!
//! * [`Levelizer`] topologically ranks the combinational gates (and
//!   reports feedback gates, which compiled mode must iterate on);
//! * [`CompiledSim`] evaluates rank-by-rank until a fixpoint.
//!
//! Two uses: an *independent oracle* for the event-driven engine (both
//! must agree on quiescent values — see the cross-check property test),
//! and the *activity argument*: compiled mode performs
//! `gates x cycles` evaluations where the event-driven engine performs
//! `E`; their ratio is the circuit activity, the quantity Table 6 shows
//! to be 0.1-3% — which is why the paper's machine class carries event
//! lists.

use logicsim_netlist::{CompId, Component, Level, NetId, Netlist};

/// One strongly connected gate cluster (a latch or flip-flop built from
/// gates), placed at its topological position among the ranked gates.
#[derive(Debug, Clone)]
pub struct FeedbackGroup {
    /// Rank of the cluster in the SCC condensation: every gate or group
    /// feeding this cluster has a strictly smaller rank.
    pub rank: u32,
    /// The cluster's gates, in component-id order.
    pub gates: Vec<CompId>,
}

/// Topological levelization of a gate-level netlist.
#[derive(Debug, Clone)]
pub struct Levelizer {
    /// Acyclic gates in evaluation order (rank-major).
    pub order: Vec<CompId>,
    /// Rank of each ordered gate.
    pub ranks: Vec<u32>,
    /// Gates on combinational feedback loops (latches, flip-flops
    /// built from gates); compiled mode iterates these to a fixpoint.
    /// Exactly the concatenation of [`Levelizer::feedback_groups`].
    pub feedback: Vec<CompId>,
    /// The feedback gates clustered by strongly connected component,
    /// each with its rank in the SCC condensation — so a sweep can
    /// iterate each latch *in place* between the ranked gates that feed
    /// it and the ranked gates that read it.
    pub feedback_groups: Vec<FeedbackGroup>,
}

impl Levelizer {
    /// Levelizes the netlist's gates by longest path from the primary
    /// inputs; gates on cycles are collected into `feedback`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains switches (compiled mode covers
    /// the gate-level subset; the crossbar benchmark qualifies, the
    /// nmos chips do not).
    #[must_use]
    pub fn new(netlist: &Netlist) -> Levelizer {
        assert_eq!(
            netlist.num_switches(),
            0,
            "compiled mode supports gate-level netlists only"
        );
        Levelizer::gate_subset(netlist)
    }

    /// Levelizes the *gate subset* of an arbitrary netlist (switches
    /// permitted but ignored): only gate→gate edges contribute to ranks
    /// and feedback detection, so a gate fed through a switch network
    /// ranks as if that input were primary. This is the ordering the
    /// bit-parallel hybrid backend sweeps in; cycles that pass through
    /// switches are resolved by its boundary stitching loop instead.
    ///
    /// `feedback` contains exactly the gates on gate-level cycles
    /// (strongly connected components of size ≥ 2, plus self-loops) —
    /// **not** the combinational logic downstream of them. Gates fed by
    /// feedback outputs are ranked as if those inputs were primary, so
    /// a synchronous circuit's entire combinational cloud lands in
    /// `order` and only its latch loops need fixpoint iteration.
    #[must_use]
    pub fn gate_subset(netlist: &Netlist) -> Levelizer {
        let gate_ids: Vec<CompId> = netlist
            .iter()
            .filter(|(_, c)| c.is_gate())
            .map(|(id, _)| id)
            .collect();
        let mut node_of = vec![u32::MAX; netlist.num_components()];
        for (i, &g) in gate_ids.iter().enumerate() {
            node_of[g.index()] = i as u32;
        }
        // Gate → gate-reader adjacency (edges through the output net),
        // over dense node indices.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); gate_ids.len()];
        for (i, &g) in gate_ids.iter().enumerate() {
            if let Component::Gate { output, .. } = netlist.component(g) {
                for &reader in netlist.fanout(*output) {
                    let n = node_of[reader.index()];
                    if n != u32::MAX {
                        adj[i].push(n);
                    }
                }
            }
        }
        let nl = levelize_nodes(&adj);
        Levelizer {
            order: nl.order.iter().map(|&i| gate_ids[i as usize]).collect(),
            ranks: nl.ranks,
            feedback: nl
                .groups
                .iter()
                .flat_map(|(_, m)| m.iter().map(|&i| gate_ids[i as usize]))
                .collect(),
            feedback_groups: nl
                .groups
                .into_iter()
                .map(|(rank, m)| FeedbackGroup {
                    rank,
                    gates: m.into_iter().map(|i| gate_ids[i as usize]).collect(),
                })
                .collect(),
        }
    }

    /// Number of combinational ranks.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.ranks.iter().copied().max().map_or(0, |r| r + 1)
    }

    /// Returns `true` when the netlist is purely combinational.
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        self.feedback.is_empty()
    }
}

/// Levelization of an arbitrary directed node graph: acyclic nodes in
/// rank order plus strongly connected clusters at their condensation
/// rank. The generic core behind [`Levelizer::gate_subset`], also used
/// by the bit-parallel backend to order its mixed gate/switch-cell op
/// graph.
#[derive(Debug, Clone)]
pub(crate) struct NodeLevels {
    /// Acyclic nodes in evaluation order (rank-major).
    pub order: Vec<u32>,
    /// Rank of each ordered node.
    pub ranks: Vec<u32>,
    /// Cyclic clusters as `(rank, members)`, members ascending.
    pub groups: Vec<(u32, Vec<u32>)>,
}

/// Levelizes a directed graph over dense node indices `0..adj.len()`.
///
/// Tarjan's SCC algorithm (iterative) finds the cycles, then Kahn's
/// algorithm runs over the SCC *condensation*: singleton SCCs become
/// ranked nodes; multi-node (or self-loop) SCCs become groups carrying
/// the same rank scale, so downstream readers always rank strictly
/// after the cluster that feeds them. The FIFO queue pops in
/// nondecreasing rank order, so a node is ranked one past its
/// highest-ranked predecessor (longest path).
pub(crate) fn levelize_nodes(adj: &[Vec<u32>]) -> NodeLevels {
    let n = adj.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_of = vec![u32::MAX; n];
    let mut scc_members: Vec<Vec<u32>> = Vec::new();
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != u32::MAX {
            continue;
        }
        call.push((root as u32, 0));
        while let Some(frame) = call.last_mut() {
            let v = frame.0 as usize;
            if frame.1 == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                scc_stack.push(v as u32);
                on_stack[v] = true;
            }
            if frame.1 < adj[v].len() {
                let w = adj[v][frame.1] as usize;
                frame.1 += 1;
                if index[w] == u32::MAX {
                    call.push((w as u32, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.0 as usize;
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let sid = scc_members.len() as u32;
                    let mut members = Vec::new();
                    loop {
                        let w = scc_stack.pop().expect("SCC stack underflow") as usize;
                        on_stack[w] = false;
                        scc_of[w] = sid;
                        members.push(w as u32);
                        if w == v {
                            break;
                        }
                    }
                    scc_members.push(members);
                }
            }
        }
    }

    let num_scc = scc_members.len();
    let is_cyclic = |s: usize| {
        let m = &scc_members[s];
        m.len() > 1 || adj[m[0] as usize].contains(&m[0])
    };
    let mut indegree = vec![0u32; num_scc];
    for v in 0..n {
        let su = scc_of[v];
        for &r in &adj[v] {
            let sv = scc_of[r as usize];
            if sv != su {
                indegree[sv as usize] += 1;
            }
        }
    }
    let mut queue: Vec<(u32, u32)> = (0..num_scc)
        .filter(|&s| indegree[s] == 0)
        .map(|s| (s as u32, 0))
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut ranks = Vec::with_capacity(n);
    let mut groups = Vec::new();
    let mut head = 0;
    while head < queue.len() {
        let (s, rank) = queue[head];
        head += 1;
        let members = &scc_members[s as usize];
        if is_cyclic(s as usize) {
            let mut m = members.clone();
            m.sort_unstable();
            groups.push((rank, m));
        } else {
            order.push(members[0]);
            ranks.push(rank);
        }
        for &m in members {
            for &r in &adj[m as usize] {
                let sv = scc_of[r as usize];
                if sv != s {
                    let d = &mut indegree[sv as usize];
                    *d -= 1;
                    if *d == 0 {
                        queue.push((sv, rank + 1));
                    }
                }
            }
        }
    }
    debug_assert_eq!(
        order.len() + groups.iter().map(|(_, m)| m.len()).sum::<usize>(),
        n,
        "every node is either ranked or in a cyclic group"
    );
    NodeLevels {
        order,
        ranks,
        groups,
    }
}

/// A compiled-mode simulator over a levelized netlist.
#[derive(Debug)]
pub struct CompiledSim<'a> {
    netlist: &'a Netlist,
    levels: Levelizer,
    values: Vec<Level>,
    /// Total gate evaluations performed (the compiled-mode cost).
    pub evaluations: u64,
    /// Fixpoint iterations used on the feedback subset in the last
    /// `settle` call.
    pub last_iterations: u32,
}

impl<'a> CompiledSim<'a> {
    /// Builds the compiled simulator (levelizes once).
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains switches.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> CompiledSim<'a> {
        CompiledSim {
            levels: Levelizer::new(netlist),
            values: vec![Level::X; netlist.num_nets()],
            evaluations: 0,
            last_iterations: 0,
            netlist,
        }
    }

    /// Sets a primary input level.
    pub fn set_input(&mut self, net: NetId, level: Level) {
        self.values[net.index()] = level;
    }

    /// Current level of a net.
    #[must_use]
    pub fn level(&self, net: NetId) -> Level {
        self.values[net.index()]
    }

    fn eval_gate(&mut self, g: CompId) -> bool {
        let Component::Gate {
            kind,
            inputs,
            output,
            ..
        } = self.netlist.component(g)
        else {
            unreachable!("levelizer only emits gates")
        };
        let levels: Vec<Level> = inputs.iter().map(|&n| self.values[n.index()]).collect();
        let out = kind.evaluate(&levels).level;
        self.evaluations += 1;
        if self.values[output.index()] != out {
            self.values[output.index()] = out;
            true
        } else {
            false
        }
    }

    /// One full compiled-mode cycle: every ranked gate evaluated once
    /// in rank order, then — if the circuit has feedback — the feedback
    /// gates and the ranked sweep alternated to a joint fixpoint
    /// (bounded by `max_feedback_iters`). The ranked gates participate
    /// in the loop because `feedback` holds only the gates *on* cycles;
    /// the combinational logic downstream of a latch lives in `order`
    /// and must see the latch's converged outputs. Returns `true` if
    /// the fixpoint was reached within the bound.
    pub fn settle(&mut self, max_feedback_iters: u32) -> bool {
        let order = self.levels.order.clone();
        for &g in &order {
            self.eval_gate(g);
        }
        let feedback = self.levels.feedback.clone();
        self.last_iterations = 0;
        if feedback.is_empty() {
            return true;
        }
        for iter in 0..max_feedback_iters {
            self.last_iterations = iter + 1;
            let mut changed = false;
            for &g in &feedback {
                changed |= self.eval_gate(g);
            }
            if changed {
                // Latch outputs moved: re-propagate through the ranked
                // cloud (which may feed other latches' inputs).
                for &g in &order {
                    self.eval_gate(g);
                }
            } else {
                return true;
            }
        }
        // Did not converge: oscillating feedback (e.g. an enabled ring
        // oscillator); mark the unstable outputs X like a real compiled
        // simulator's oscillation detector, and propagate the X through
        // the ranked cloud.
        for &g in &feedback {
            if let Component::Gate { output, .. } = self.netlist.component(g) {
                self.values[output.index()] = Level::X;
            }
        }
        for &g in &order {
            self.eval_gate(g);
        }
        false
    }

    /// The levelization.
    #[must_use]
    pub fn levels(&self) -> &Levelizer {
        &self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::{Delay, GateKind, NetlistBuilder};

    fn adder2() -> Netlist {
        let mut b = NetlistBuilder::new("adder2");
        let a0 = b.input("a0");
        let a1 = b.input("a1");
        let b0 = b.input("b0");
        let b1 = b.input("b1");
        // bit 0
        let s0 = b.net("s0");
        b.gate(GateKind::Xor, &[a0, b0], s0, Delay::uniform(1));
        let c0 = b.net("c0");
        b.gate(GateKind::And, &[a0, b0], c0, Delay::uniform(1));
        // bit 1
        let x1 = b.net("x1");
        b.gate(GateKind::Xor, &[a1, b1], x1, Delay::uniform(1));
        let s1 = b.net("s1");
        b.gate(GateKind::Xor, &[x1, c0], s1, Delay::uniform(1));
        let t1 = b.net("t1");
        b.gate(GateKind::And, &[a1, b1], t1, Delay::uniform(1));
        let t2 = b.net("t2");
        b.gate(GateKind::And, &[x1, c0], t2, Delay::uniform(1));
        let c1 = b.net("c1");
        b.gate(GateKind::Or, &[t1, t2], c1, Delay::uniform(1));
        b.finish().unwrap()
    }

    #[test]
    fn levelizes_combinational_circuit() {
        let n = adder2();
        let lv = Levelizer::new(&n);
        assert!(lv.is_combinational());
        assert_eq!(lv.order.len(), n.num_gates());
        assert!(lv.depth() >= 3, "depth {}", lv.depth());
        // Ranks are consistent: each gate's rank exceeds its
        // gate-driven predecessors'.
        for (pos, &g) in lv.order.iter().enumerate() {
            if let logicsim_netlist::Component::Gate { inputs, .. } = n.component(g) {
                for &inp in inputs {
                    for &d in n.drivers(inp) {
                        if let Some(dp) = lv.order.iter().position(|&x| x == d) {
                            assert!(lv.ranks[dp] < lv.ranks[pos]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_adder_adds() {
        let n = adder2();
        let mut sim = CompiledSim::new(&n);
        let net = |s: &str| n.find_net(s).unwrap();
        for (a, b) in [(0u32, 0u32), (1, 2), (3, 3), (2, 1)] {
            sim.set_input(net("a0"), Level::from_bool(a & 1 == 1));
            sim.set_input(net("a1"), Level::from_bool(a >> 1 & 1 == 1));
            sim.set_input(net("b0"), Level::from_bool(b & 1 == 1));
            sim.set_input(net("b1"), Level::from_bool(b >> 1 & 1 == 1));
            assert!(sim.settle(8));
            let mut sum = 0;
            if sim.level(net("s0")) == Level::One {
                sum |= 1;
            }
            if sim.level(net("s1")) == Level::One {
                sum |= 2;
            }
            if sim.level(net("c1")) == Level::One {
                sum |= 4;
            }
            assert_eq!(sum, a + b, "{a}+{b}");
        }
    }

    #[test]
    fn feedback_gates_detected_and_converge() {
        // NAND latch: both gates are feedback.
        let mut b = NetlistBuilder::new("latch");
        let s = b.input("s_n");
        let r = b.input("r_n");
        let q = b.net("q");
        let qn = b.net("qn");
        b.gate(GateKind::Nand, &[s, qn], q, Delay::uniform(1));
        b.gate(GateKind::Nand, &[r, q], qn, Delay::uniform(1));
        let n = b.finish().unwrap();
        let lv = Levelizer::new(&n);
        assert_eq!(lv.feedback.len(), 2);
        let mut sim = CompiledSim::new(&n);
        sim.set_input(n.find_net("s_n").unwrap(), Level::Zero);
        sim.set_input(n.find_net("r_n").unwrap(), Level::One);
        assert!(sim.settle(16));
        assert_eq!(sim.level(n.find_net("q").unwrap()), Level::One);
    }

    #[test]
    fn oscillation_yields_x() {
        // A bare inverter loop cannot settle.
        let mut b = NetlistBuilder::new("osc");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Not, &[x], y, Delay::uniform(1));
        b.gate(GateKind::Buf, &[y], x, Delay::uniform(1));
        // Drive the loop from a known state via an input we then ignore:
        // with all-X it is stable at X, so force a contradiction by
        // making it a 1-inverter loop.
        let n = b.finish().unwrap();
        let mut sim = CompiledSim::new(&n);
        // Seed a known value so the loop actually oscillates.
        sim.values[x.index()] = Level::Zero;
        let converged = sim.settle(8);
        assert!(!converged);
        assert_eq!(sim.level(y), Level::X);
    }

    #[test]
    fn settle_reports_iteration_bound_on_gated_oscillation() {
        // A ring oscillator behind an enable: stable while en=0, a bare
        // inverter loop while en=1. The `false` return must come with
        // `last_iterations` pinned at the caller's bound, and the
        // oscillation-detector X must reach ranked logic downstream of
        // the loop.
        let mut b = NetlistBuilder::new("gated_osc");
        let en = b.input("en");
        let x = b.net("x");
        let y = b.net("y");
        let q = b.net("q");
        b.gate(GateKind::Nand, &[en, x], y, Delay::uniform(1));
        b.gate(GateKind::Buf, &[y], x, Delay::uniform(1));
        b.gate(GateKind::Buf, &[y], q, Delay::uniform(1));
        let n = b.finish().unwrap();
        let mut sim = CompiledSim::new(&n);
        sim.set_input(en, Level::Zero);
        assert!(sim.settle(8), "disabled ring is stable");
        assert!(sim.last_iterations < 8, "stable loop converges early");
        assert_eq!(sim.level(q), Level::One);
        sim.set_input(en, Level::One);
        for bound in [1, 4, 16] {
            // Re-seed a known loop state: the X the detector forces on
            // a failed settle is itself a NAND-loop fixpoint, so an
            // all-X ring would (correctly) converge on the next call.
            sim.values[x.index()] = Level::Zero;
            assert!(!sim.settle(bound), "enabled ring cannot settle");
            assert_eq!(
                sim.last_iterations, bound,
                "oscillation must burn the whole iteration budget"
            );
            assert_eq!(sim.level(q), Level::X, "downstream logic sees the X");
        }
    }

    #[test]
    fn gate_latch_converges_and_holds_through_input_changes() {
        // A transparent D latch from plain gates:
        //   q = (d AND en) OR (q AND NOT en)
        // Transparent while en=1; holds the captured bit while en=0,
        // even as d keeps moving. Every settle must converge.
        let mut b = NetlistBuilder::new("d_latch");
        let d = b.input("d");
        let en = b.input("en");
        let n_en = b.net("n_en");
        let a1 = b.net("a1");
        let a2 = b.net("a2");
        let q = b.net("q");
        b.gate(GateKind::Not, &[en], n_en, Delay::uniform(1));
        b.gate(GateKind::And, &[d, en], a1, Delay::uniform(1));
        b.gate(GateKind::And, &[q, n_en], a2, Delay::uniform(1));
        b.gate(GateKind::Or, &[a1, a2], q, Delay::uniform(1));
        let n = b.finish().unwrap();
        assert!(
            !Levelizer::new(&n).feedback.is_empty(),
            "the latch loop must be classified as feedback"
        );
        let mut sim = CompiledSim::new(&n);
        // Capture a 1, close the latch, then wiggle d: q must hold.
        for (d_level, en_level, want_q) in [
            (Level::One, Level::One, Level::One),
            (Level::One, Level::Zero, Level::One),
            (Level::Zero, Level::Zero, Level::One),
            (Level::Zero, Level::One, Level::Zero),
            (Level::One, Level::Zero, Level::Zero),
        ] {
            sim.set_input(d, d_level);
            sim.set_input(en, en_level);
            assert!(
                sim.settle(16),
                "latch must converge at d={d_level} en={en_level}"
            );
            assert!(sim.last_iterations <= 4, "convergence is fast");
            assert_eq!(sim.level(q), want_q, "d={d_level} en={en_level}");
        }
    }

    #[test]
    #[should_panic(expected = "gate-level")]
    fn switches_rejected() {
        let mut b = NetlistBuilder::new("sw");
        let c = b.input("c");
        let a = b.input("a");
        let z = b.net("z");
        b.switch(logicsim_netlist::SwitchKind::Nmos, c, a, z);
        let n = b.finish().unwrap();
        let _ = Levelizer::new(&n);
    }

    #[test]
    fn crossbar_benchmark_is_compilable() {
        // The paper's all-gate circuit runs in compiled mode.
        let inst = logicsim_circuits_smoke();
        let lv = Levelizer::new(&inst);
        assert!(!lv.order.is_empty());
    }

    /// Builds a small all-gate circuit resembling the crossbar's
    /// structure (the real generator lives in a downstream crate, so
    /// the full cross-check is an integration test).
    fn logicsim_circuits_smoke() -> Netlist {
        let mut b = NetlistBuilder::new("plane");
        let g0 = b.input("g0");
        let g1 = b.input("g1");
        let d0 = b.input("d0");
        let d1 = b.input("d1");
        let t0 = b.net("t0");
        let t1 = b.net("t1");
        let out = b.net("out");
        b.gate(GateKind::And, &[g0, d0], t0, Delay::uniform(1));
        b.gate(GateKind::And, &[g1, d1], t1, Delay::uniform(1));
        b.gate(GateKind::Or, &[t0, t1], out, Delay::uniform(1));
        b.finish().unwrap()
    }
}
