//! Event-driven gate/switch-level logic simulator.
//!
//! This crate substitutes for *lsim*, the UNIX/C simulator Wong & Franklin
//! collected their workload data with `[CH85, CH86a]`. It implements the
//! paper's **fixed delay model** (separate low-to-high and high-to-low
//! propagation times per gate), an Ulrich-style timing wheel for
//! near-constant-time event-list manipulation \[UL78\], four-valued logic
//! with drive strengths, and a channel-connected-component switch-level
//! solver for bidirectional MOS switches.
//!
//! The simulator is instrumented to measure exactly the workload
//! parameters the paper's architecture model consumes (Table 3):
//! busy ticks `B`, idle ticks `I`, event count `E`, message volume
//! `M_inf`, per-tick event simultaneity, component activity, and fanout.
//!
//! # Example
//!
//! ```
//! use logicsim_netlist::{NetlistBuilder, GateKind, Delay, Level};
//! use logicsim_sim::Simulator;
//!
//! let mut b = NetlistBuilder::new("inv");
//! let a = b.input("a");
//! let y = b.net("y");
//! b.gate(GateKind::Not, &[a], y, Delay::uniform(2));
//! let n = b.finish().expect("valid");
//!
//! let mut sim = Simulator::new(&n).expect("passes pre-flight");
//! sim.set_input(a, Level::Zero);
//! sim.run_until(10);
//! assert_eq!(sim.level(y), Level::One);
//! ```

pub mod bitpar;
pub mod compiled;
pub mod engine;
pub mod heap_list;
pub mod instrument;
pub mod obs;
pub mod par_engine;
mod par_sync;
mod phase_check;
pub mod solver;
pub mod stimulus;
mod sync_shim;
pub mod trace;
pub mod vcd;
pub mod wheel;

pub use bitpar::{BitParSim, BitParStats};
pub use compiled::{CompiledSim, FeedbackGroup, Levelizer};
pub use engine::{Backend, PreflightError, RepartitionFn, SimConfig, Simulator};
pub use heap_list::HeapEventList;
pub use instrument::{ActivityProfile, WorkloadCounters};
#[cfg(feature = "obs")]
pub use obs::{LaneReport, ObsReport, PhaseSample, PhaseTotal};
pub use obs::{Phase, NUM_PHASES};
pub use par_engine::{InputFrame, ParSimulator};
pub use stimulus::{RandomStimulus, SignalRole, Stimulus, Stimulus64, StimulusSpec};
pub use trace::{EventRecord, TickRecord, TickTrace};
pub use vcd::VcdRecorder;
pub use wheel::TimingWheel;
