#![forbid(unsafe_code)]

//! Cycle-level discrete-event simulator of the `UI/GC/Q=P/P/L` logic
//! simulation machine (the paper's Figure 1).
//!
//! The analytical model of `logicsim-core` predicts run time from four
//! aggregate workload numbers and several simplifying assumptions (even
//! distribution over ticks and processors, full evaluation/communication
//! overlap, instantaneous broadcast). This crate simulates the machine
//! itself — master processor, `P` slaves with `L`-stage evaluation
//! pipelines and per-slave event lists, communication buffers, and a
//! contention-accurate network — so the model can be *validated*: an
//! experiment the paper could not run.
//!
//! The machine executes a [`logicsim_sim::TickTrace`] (real circuit
//! activity) or a synthetic workload under any
//! [`logicsim_partition::Partition`], and reports per-tick timing,
//! utilizations, and the measured bottleneck.
//!
//! # Example
//!
//! ```
//! use logicsim_machine::{MachineConfig, NetworkKind, simulate_synthetic};
//! use logicsim_machine::synthetic::SyntheticWorkload;
//!
//! let config = MachineConfig::paper_design(4, 5, NetworkKind::BusSet { width: 1 }, 100.0, 3.0);
//! let workload = SyntheticWorkload::uniform(100, 600, 40.0, 2.0, 1000);
//! let report = simulate_synthetic(&config, &workload, 7);
//! assert!(report.total_cycles > 0.0);
//! ```

pub mod calibrate;
pub mod config;
pub mod network;
pub mod oblivious;
pub mod report;
pub mod sim;
pub mod static_cost;
pub mod synthetic;
pub mod validate;

pub use calibrate::MeasuredParams;
pub use config::{MachineConfig, NetworkKind};
pub use oblivious::ObliviousParams;
pub use report::MachineReport;
pub use sim::{simulate_synthetic, simulate_trace, MachineSim};
pub use static_cost::StaticCost;
pub use validate::{validate_against_model, MeasuredExecution, ValidationResult};
