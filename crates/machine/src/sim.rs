//! The machine simulation proper.
//!
//! Per simulated tick the machine pays `t_S` (START broadcast), then
//! every slave pumps its local events through its `L`-stage pipeline
//! while the network delivers cross-processor messages as their
//! producing events retire, and the tick closes with `t_D` once both
//! the slowest slave and the network are done. Unlike the analytical
//! model, evaluation/communication overlap here is *partial* — a
//! message cannot start before its event leaves the pipeline — and
//! per-tick load imbalance is whatever the trace and partition actually
//! produce. Those are exactly the second-order effects the model
//! ignores, so comparing the two quantifies the model's error.

use crate::config::MachineConfig;
use crate::network;
use crate::report::MachineReport;
use crate::synthetic::SyntheticWorkload;
use logicsim_netlist::CompId;
use logicsim_partition::Partition;
use logicsim_sim::TickTrace;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A reusable machine simulator bound to a configuration.
#[derive(Debug, Clone)]
pub struct MachineSim<'a> {
    config: &'a MachineConfig,
}

impl<'a> MachineSim<'a> {
    /// Creates a simulator for the given machine.
    #[must_use]
    pub fn new(config: &'a MachineConfig) -> MachineSim<'a> {
        MachineSim { config }
    }

    /// Runs the machine over a trace with an explicit partition.
    ///
    /// Events whose source is not assigned by the partition (primary
    /// inputs) are attributed to slave `source_id % P`, which acts as
    /// their input handler.
    #[must_use]
    pub fn run(&self, trace: &TickTrace, partition: &Partition) -> MachineReport {
        let cfg = self.config;
        let p = cfg.processors;
        let stage = cfg.stage_time();
        let part_of = |comp: u32| -> u32 {
            partition
                .part_of(CompId(comp))
                .unwrap_or(comp % p)
                .min(p - 1)
        };

        let mut report = MachineReport {
            total_cycles: 0.0,
            sync_cycles: 0.0,
            eval_bound_cycles: 0.0,
            comm_bound_cycles: 0.0,
            ticks: trace.end - trace.start,
            busy_ticks: trace.busy_ticks(),
            events: 0,
            messages: 0,
            slave_busy: 0.0,
            per_slave_busy: vec![0.0; p as usize],
            network_busy: 0.0,
            processors: p,
        };

        // Idle ticks cost one synchronization each on a unit-increment
        // machine; an event-increment machine skips them entirely.
        if cfg.time_advance == logicsim_core::taxonomy::TimeAdvance::UnitIncrement {
            let idle = trace.idle_ticks() as f64;
            report.sync_cycles += idle * cfg.t_sync();
            report.total_cycles += idle * cfg.t_sync();
        }

        let mut counts = vec![0u64; p as usize];
        let mut messages: Vec<network::Message> = Vec::new();
        for tick in &trace.ticks {
            counts.fill(0);
            messages.clear();
            // Assign events to slaves in trace order; compute message
            // ready times from pipeline retirement.
            for event in &tick.events {
                let src_part = part_of(event.source);
                let k = counts[src_part as usize]; // local pipeline slot
                counts[src_part as usize] += 1;
                report.events += 1;
                let ready = cfg.t_eval + k as f64 * stage;
                for &dst in &event.dests {
                    let dst_part = part_of(dst);
                    if dst_part != src_part {
                        messages.push((ready, src_part, dst_part));
                    }
                }
            }
            report.messages += messages.len() as u64;
            messages.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

            let eval_finish = counts
                .iter()
                .map(|&n| {
                    if n == 0 {
                        0.0
                    } else {
                        cfg.t_eval + (n - 1) as f64 * stage
                    }
                })
                .fold(0.0f64, f64::max);
            let (net_finish, net_busy) = network::drain(cfg.network, p, &messages, cfg.t_msg);

            let body = eval_finish.max(net_finish);
            report.total_cycles += cfg.t_sync() + body;
            report.sync_cycles += cfg.t_sync();
            if eval_finish >= net_finish {
                report.eval_bound_cycles += body;
            } else {
                report.comm_bound_cycles += body;
            }
            for (slave, &n) in counts.iter().enumerate() {
                if n > 0 {
                    let busy = cfg.t_eval + (n - 1) as f64 * stage;
                    report.slave_busy += busy;
                    report.per_slave_busy[slave] += busy;
                }
            }
            report.network_busy += net_busy;
        }
        report
    }
}

/// Convenience: run a trace through a machine.
#[must_use]
pub fn simulate_trace(
    config: &MachineConfig,
    trace: &TickTrace,
    partition: &Partition,
) -> MachineReport {
    MachineSim::new(config).run(trace, partition)
}

/// Convenience: generate a synthetic workload, randomly partition its
/// component space (the paper's random-partitioning assumption), and
/// run it.
#[must_use]
pub fn simulate_synthetic(
    config: &MachineConfig,
    workload: &SyntheticWorkload,
    seed: u64,
) -> MachineReport {
    let trace = workload.generate(seed);
    let partition =
        random_component_partition(workload.components, config.processors, seed ^ 0x5eed);
    MachineSim::new(config).run(&trace, &partition)
}

/// A balanced random assignment of `components` abstract components to
/// `parts` processors (for synthetic workloads, where there is no
/// netlist to hand to a [`logicsim_partition::Partitioner`]).
#[must_use]
pub fn random_component_partition(components: u32, parts: u32, seed: u64) -> Partition {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut v: Vec<u32> = (0..components).map(|i| i % parts).collect();
    // Fisher-Yates over the assignment vector.
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    Partition::new(v, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkKind;

    fn bus(width: u32, p: u32, l: u32, h: f64, tm: f64) -> MachineConfig {
        MachineConfig::paper_design(p, l, NetworkKind::BusSet { width }, h, tm)
    }

    #[test]
    fn idle_ticks_cost_only_sync() {
        let cfg = bus(1, 4, 1, 100.0, 3.0);
        let w = SyntheticWorkload::uniform(1, 999, 1.0, 1.0, 100);
        let r = simulate_synthetic(&cfg, &w, 1);
        // 999 idle ticks * 1 sync + one busy tick (sync + t_eval).
        assert!(r.total_cycles >= 999.0 + 1.0 + 40.0 - 1e-9);
        assert!(r.total_cycles < 999.0 + 1.0 + 40.0 + cfg.t_msg * 3.0 + 1.0);
        assert_eq!(r.busy_ticks, 1);
    }

    #[test]
    fn eval_dominated_run_time_matches_hand_computation() {
        // P=2, L=1, no cross messages possible (single component per
        // part? use fanout small): force all events on P=1 machine.
        let cfg = bus(1, 1, 1, 100.0, 3.0);
        let w = SyntheticWorkload::uniform(10, 0, 8.0, 2.0, 50);
        let r = simulate_synthetic(&cfg, &w, 2);
        // One processor: no messages; each busy tick = sync + n*t_eval.
        assert_eq!(r.messages, 0);
        let expected: f64 = 10.0 * cfg.t_sync() + r.events as f64 * cfg.t_eval;
        assert!(
            (r.total_cycles - expected).abs() < 1e-6,
            "got {} expected {expected}",
            r.total_cycles
        );
        assert_eq!(
            r.bottleneck(),
            logicsim_core::runtime::Bottleneck::Evaluation
        );
    }

    #[test]
    fn pipelining_speeds_up_heavy_ticks() {
        let w = SyntheticWorkload::uniform(20, 0, 64.0, 1.0, 1_000);
        let r1 = simulate_synthetic(&bus(3, 4, 1, 10.0, 2.0), &w, 3);
        let r5 = simulate_synthetic(&bus(3, 4, 5, 10.0, 2.0), &w, 3);
        assert!(
            r5.total_cycles < r1.total_cycles / 2.5,
            "L=5 {} vs L=1 {}",
            r5.total_cycles,
            r1.total_cycles
        );
    }

    #[test]
    fn narrow_bus_becomes_the_bottleneck() {
        // Fast processors, wide fanout, single bus.
        let cfg = bus(1, 8, 5, 100.0, 3.0);
        let w = SyntheticWorkload::uniform(50, 0, 200.0, 2.0, 10_000);
        let r = simulate_synthetic(&cfg, &w, 4);
        assert_eq!(
            r.bottleneck(),
            logicsim_core::runtime::Bottleneck::Communication
        );
        assert!(r.messages > 0);
    }

    #[test]
    fn more_processors_reduce_eval_time_until_comm_limits() {
        let w = SyntheticWorkload::uniform(30, 0, 100.0, 2.0, 5_000);
        let slow = simulate_synthetic(&bus(3, 2, 5, 10.0, 2.0), &w, 5);
        let fast = simulate_synthetic(&bus(3, 8, 5, 10.0, 2.0), &w, 5);
        assert!(fast.total_cycles < slow.total_cycles);
    }

    #[test]
    fn crossbar_outruns_single_bus() {
        let w = SyntheticWorkload::uniform(30, 0, 100.0, 2.0, 5_000);
        let bus_r = simulate_synthetic(&bus(1, 8, 5, 100.0, 3.0), &w, 6);
        let xbar = MachineConfig::paper_design(8, 5, NetworkKind::Crossbar, 100.0, 3.0);
        let xbar_r = simulate_synthetic(&xbar, &w, 6);
        assert!(xbar_r.total_cycles < bus_r.total_cycles);
    }

    #[test]
    fn event_increment_skips_idle_sync() {
        let w = SyntheticWorkload::uniform(5, 995, 10.0, 1.0, 100);
        let ui = bus(1, 2, 1, 10.0, 2.0);
        let ei = ui.clone().with_event_increment();
        let r_ui = simulate_synthetic(&ui, &w, 7);
        let r_ei = simulate_synthetic(&ei, &w, 7);
        let saved = r_ui.total_cycles - r_ei.total_cycles;
        assert!((saved - 995.0 * ui.t_sync()).abs() < 1e-6, "saved {saved}");
        assert_eq!(r_ei.events, r_ui.events);
    }

    #[test]
    fn random_partition_is_balanced_and_deterministic() {
        let p1 = random_component_partition(1_000, 7, 9);
        let p2 = random_component_partition(1_000, 7, 9);
        assert_eq!(p1, p2);
        let sizes = p1.sizes();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn message_count_tracks_eq6() {
        // Random partitioning: M_P ~ M_inf (1 - 1/P).
        let w = SyntheticWorkload::uniform(50, 0, 200.0, 2.0, 10_000);
        let trace = w.generate(8);
        let m_inf = trace.total_messages_inf() as f64;
        for p in [2u32, 4, 10] {
            let cfg = bus(1, p, 1, 10.0, 2.0);
            let part = random_component_partition(10_000, p, 11);
            let r = simulate_trace(&cfg, &trace, &part);
            let predicted = m_inf * (1.0 - 1.0 / f64::from(p));
            let err = (r.messages as f64 - predicted).abs() / predicted;
            assert!(err < 0.05, "P={p}: {} vs {predicted}", r.messages);
        }
    }
}
