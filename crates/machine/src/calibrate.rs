//! Calibrating the analytical model from *measured* machine parameters.
//!
//! The paper's Eq. 1-10 model takes the machine parameters `tS`, `tD`,
//! `tE`, `tM` as design constants (Table 3). The `obs` instrumentation
//! in `logicsim-sim` measures the same quantities live on the thread
//! -parallel engine: per-tick START fan-out and DONE collection cost,
//! per-evaluation and per-message wall time, and barrier skew. This
//! module feeds those measurements back into the model, producing a
//! *calibrated* prediction that can be compared side by side with the
//! paper-constant prediction and the actual measured run time.
//!
//! All inputs are plain numbers, so the module has no feature coupling:
//! the `obs`-gated glue that extracts a [`MeasuredParams`] from an
//! `ObsReport` lives with the binaries that own the measurement loop.

use logicsim_core::params::{MachineDesign, SECONDS_PER_SYNC};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Paper reference value for `t_E` on the software analog, in syncs
/// (VAX 11/750 at 400 us per evaluation).
pub const PAPER_T_EVAL_SYNCS: f64 = 4_000.0;

/// Paper reference value for `t_M`, in syncs (Table 3's nominal 3).
pub const PAPER_T_MSG_SYNCS: f64 = 3.0;

/// One sync in nanoseconds (the paper's 100 ns reference).
pub const PAPER_SYNC_NS: f64 = SECONDS_PER_SYNC * 1e9;

/// Machine parameters measured from a live run of the thread-parallel
/// engine, in wall-clock nanoseconds, ready to be fed back into the
/// Eq. 1-10 model.
///
/// Per-tick costs (`t_start_ns`, `t_done_ns`, `barrier_ns`) are means
/// over *executed* ticks (idle ticks the engines fast-forward over pay
/// nothing, matching the engines' actual sync cost rather than the
/// paper's per-simulated-tick accounting). Per-item costs are means
/// over the items of their phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredParams {
    /// Worker threads the measured run used (the model's `P`).
    pub workers: u32,
    /// Ticks the engine actually executed (busy ticks; `B` analog).
    pub executed_ticks: u64,
    /// Mean START fan-out cost per executed tick (`tS`), ns.
    pub t_start_ns: f64,
    /// Mean DONE collection cost per executed tick (`tD`), ns.
    pub t_done_ns: f64,
    /// Mean barrier-wait (skew) cost per executed tick, ns. The paper
    /// folds this into `tD`; we keep it separate because it is the
    /// part that grows with load imbalance.
    pub barrier_ns: f64,
    /// Mean cost of one component evaluation (`tE`), ns.
    pub t_eval_ns: f64,
    /// Mean cost of one fanout message (`tM`), ns.
    pub t_msg_ns: f64,
    /// Total evaluations in the measured window (`E` analog).
    pub evaluations: u64,
    /// Total infinite-processor messages in the window (`M_inf`).
    pub messages: u64,
}

impl MeasuredParams {
    /// The measured synchronization cost per executed tick
    /// (`t_SYNC = tS + tD` plus barrier skew), ns.
    #[must_use]
    pub fn t_sync_ns(&self) -> f64 {
        self.t_start_ns + self.t_done_ns + self.barrier_ns
    }

    /// The measured parameters expressed as a [`MachineDesign`] in the
    /// model's sync units (`t_sync = 1`), so they can be dropped into
    /// any Eq. 1-16 evaluator. Degenerate measurements (no ticks, zero
    /// durations) are clamped to tiny positive values rather than
    /// violating `MachineDesign`'s positivity contract.
    #[must_use]
    pub fn calibrated_design(&self) -> MachineDesign {
        let sync = self.t_sync_ns().max(f64::MIN_POSITIVE);
        MachineDesign::new(
            self.workers.max(1),
            1,
            1.0,
            (self.t_eval_ns / sync).max(1e-9),
            (self.t_msg_ns / sync).max(1e-9),
            1.0,
        )
    }

    /// Eq. 10 evaluated with arbitrary time constants, in ns:
    /// `R = ticks*t_sync + max(beta*E*t_eval/P, M*t_msg)`.
    fn prediction_ns(&self, t_sync: f64, t_eval: f64, t_msg: f64, beta: f64) -> f64 {
        let p = f64::from(self.workers.max(1));
        let ticks = self.executed_ticks as f64;
        let eval = beta * self.evaluations as f64 * t_eval / p;
        let comm = if self.workers > 1 {
            self.messages as f64 * t_msg
        } else {
            0.0
        };
        ticks * t_sync + eval.max(comm)
    }

    /// Calibrated Eq. 10 prediction of the run's wall time, in ns,
    /// using the measured `t_SYNC`, `tE`, and `tM`.
    ///
    /// # Panics
    ///
    /// Panics if `beta < 1` (by definition `1 <= beta <= P`).
    #[must_use]
    pub fn predict_runtime_ns(&self, beta: f64) -> f64 {
        assert!(beta >= 1.0, "beta is at least 1, got {beta}");
        self.prediction_ns(self.t_sync_ns(), self.t_eval_ns, self.t_msg_ns, beta)
    }

    /// Eq. 10 prediction with the *paper's* software-analog constants
    /// (`t_SYNC` = 100 ns, `tE` = 4000 syncs, `tM` = 3 syncs), in ns.
    /// On a modern host this is off by orders of magnitude — which is
    /// exactly what the three-way comparison is meant to show.
    ///
    /// # Panics
    ///
    /// Panics if `beta < 1`.
    #[must_use]
    pub fn paper_prediction_ns(&self, beta: f64) -> f64 {
        assert!(beta >= 1.0, "beta is at least 1, got {beta}");
        self.prediction_ns(
            PAPER_SYNC_NS,
            PAPER_T_EVAL_SYNCS * PAPER_SYNC_NS,
            PAPER_T_MSG_SYNCS * PAPER_SYNC_NS,
            beta,
        )
    }

    /// The processor count where the calibrated evaluation and
    /// communication terms cross (the Eq. 16 analog evaluated with
    /// measured constants): `P* = beta * E * tE / (M * tM)`. Beyond
    /// `P*` more processors stop helping because the (serialized)
    /// message traffic dominates. Returns `f64::INFINITY` when the
    /// measured run produced no message cost.
    ///
    /// # Panics
    ///
    /// Panics if `beta < 1`.
    #[must_use]
    pub fn crossover_processors(&self, beta: f64) -> f64 {
        assert!(beta >= 1.0, "beta is at least 1, got {beta}");
        let comm = self.messages as f64 * self.t_msg_ns;
        if comm <= 0.0 {
            return f64::INFINITY;
        }
        beta * self.evaluations as f64 * self.t_eval_ns / comm
    }

    /// Signed relative error of a prediction against a measured wall
    /// time: `(predicted - measured) / measured`.
    #[must_use]
    pub fn relative_error(predicted_ns: f64, measured_ns: f64) -> f64 {
        if measured_ns == 0.0 {
            0.0
        } else {
            (predicted_ns - measured_ns) / measured_ns
        }
    }
}

impl fmt::Display for MeasuredParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={} tS={:.0}ns tD={:.0}ns barrier={:.0}ns tE={:.0}ns tM={:.0}ns over {} ticks / {} evals / {} msgs",
            self.workers,
            self.t_start_ns,
            self.t_done_ns,
            self.barrier_ns,
            self.t_eval_ns,
            self.t_msg_ns,
            self.executed_ticks,
            self.evaluations,
            self.messages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MeasuredParams {
        MeasuredParams {
            workers: 4,
            executed_ticks: 1_000,
            t_start_ns: 200.0,
            t_done_ns: 300.0,
            barrier_ns: 500.0,
            t_eval_ns: 50.0,
            t_msg_ns: 10.0,
            evaluations: 40_000,
            messages: 100_000,
        }
    }

    #[test]
    fn sync_is_start_plus_done_plus_barrier() {
        assert!((sample().t_sync_ns() - 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn calibrated_design_is_in_sync_units() {
        let d = sample().calibrated_design();
        assert_eq!(d.processors, 4);
        assert!((d.t_eval - 0.05).abs() < 1e-12);
        assert!((d.t_msg - 0.01).abs() < 1e-12);
        assert!((d.t_sync - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_picks_max_of_eval_and_comm() {
        let m = sample();
        // eval = 1*40000*50/4 = 5e5; comm = 1e5*10 = 1e6; sync = 1e6.
        let r = m.predict_runtime_ns(1.0);
        assert!((r - (1e6 + 1e6)).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn single_worker_pays_no_comm() {
        let mut m = sample();
        m.workers = 1;
        // eval = 40000*50 = 2e6 > comm (suppressed); sync = 1e6.
        let r = m.predict_runtime_ns(1.0);
        assert!((r - 3e6).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn paper_prediction_uses_reference_constants() {
        let m = sample();
        // eval = 40000*4000*100/4 = 4e9 dominates comm = 1e5*300 = 3e7.
        let r = m.paper_prediction_ns(1.0);
        let expected = 1_000.0 * 100.0 + 4e9;
        assert!((r - expected).abs() / expected < 1e-12, "r = {r}");
    }

    #[test]
    fn crossover_matches_hand_calculation() {
        let m = sample();
        // beta*E*tE / (M*tM) = 40000*50 / 1e6 = 2.
        assert!((m.crossover_processors(1.0) - 2.0).abs() < 1e-12);
        let mut quiet = m;
        quiet.messages = 0;
        assert!(quiet.crossover_processors(1.0).is_infinite());
    }

    #[test]
    fn degenerate_measurements_still_yield_a_design() {
        let m = MeasuredParams {
            workers: 0,
            executed_ticks: 0,
            t_start_ns: 0.0,
            t_done_ns: 0.0,
            barrier_ns: 0.0,
            t_eval_ns: 0.0,
            t_msg_ns: 0.0,
            evaluations: 0,
            messages: 0,
        };
        let d = m.calibrated_design();
        assert_eq!(d.processors, 1);
        assert!(d.t_eval > 0.0 && d.t_msg > 0.0);
    }

    #[test]
    fn relative_error_is_signed() {
        assert!((MeasuredParams::relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((MeasuredParams::relative_error(90.0, 100.0) + 0.1).abs() < 1e-12);
        assert_eq!(MeasuredParams::relative_error(5.0, 0.0), 0.0);
    }

    #[test]
    fn display_mentions_all_parameters() {
        let s = sample().to_string();
        for needle in ["P=4", "tS=", "tD=", "barrier=", "tE=", "tM="] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
