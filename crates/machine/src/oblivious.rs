//! Model term for the *oblivious* bit-parallel backend, next to Eq. 10.
//!
//! The paper's Eq. 10 prices an event-driven machine: per tick it pays
//! synchronization, and per event it pays evaluation (`tE`) and fanout
//! messages (`tM`). An oblivious backend in the Yorktown Simulation
//! Engine style that the paper surveys has *no* per-event terms — it
//! evaluates every compiled gate on every sweep, rank by rank, whether
//! or not its inputs changed:
//!
//! ```text
//! evaluations / vector = G × R          (G gates, R ranks)
//! R_obl = G × R × t_kernel / W          (W scenarios per word)
//! ```
//!
//! There is no `tE` scheduling cost and no `tM` message cost; the only
//! parameter is the raw kernel time `t_kernel`, and the whole sweep is
//! amortized over `W` bit-packed stimulus scenarios (64 on this host's
//! `u64` planes). Setting the per-scenario costs equal recovers the
//! **break-even activity**: below it the event-driven machine wins per
//! scenario, above it (or with enough lanes) the sweeps win —
//!
//! ```text
//! a* = R × t_kernel / (W × tE)
//! ```
//!
//! With the paper's Table 6 activities (0.1–3%) and `tE` in the
//! hundreds of nanoseconds, `W = 64` lanes put `a*` well below measured
//! activity for shallow circuits, which is exactly why the hybrid
//! backend (`logicsim_sim::bitpar`) pays off despite evaluating
//! everything.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of the oblivious bit-parallel sweep backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObliviousParams {
    /// Gates in the compiled region (`G`).
    pub gates: u64,
    /// Combinational depth of the compiled region (`R` ranks).
    pub ranks: u32,
    /// Scenarios packed per machine word (`W`; 64 for `u64` planes).
    pub lanes: u32,
    /// Cost of one bit-parallel gate kernel evaluation, ns (covers all
    /// `W` lanes at once).
    pub t_kernel_ns: f64,
}

impl ObliviousParams {
    /// Gate evaluations one sweep performs (`G`; each covers all lanes).
    #[must_use]
    pub fn evaluations_per_sweep(&self) -> u64 {
        self.gates
    }

    /// Gate evaluations charged per settled input vector: `G × R`, the
    /// oblivious bound where every gate is swept once per rank so a
    /// change can cross the whole depth. (The rank-ordered compiled
    /// sweep in `logicsim_sim::bitpar` achieves the same settling in a
    /// single `G`-evaluation pass; `G × R` is the conservative model
    /// term for a machine without topological ordering.)
    #[must_use]
    pub fn evaluations_per_vector(&self) -> u64 {
        self.gates * u64::from(self.ranks.max(1))
    }

    /// Modeled time to settle one input vector across all lanes, ns.
    /// No `tE`, no `tM`: only raw kernel time.
    #[must_use]
    pub fn vector_time_ns(&self) -> f64 {
        self.evaluations_per_vector() as f64 * self.t_kernel_ns
    }

    /// Modeled time per *scenario* (one lane's vector), ns: the sweep
    /// cost amortized over the word width.
    #[must_use]
    pub fn scenario_time_ns(&self) -> f64 {
        self.vector_time_ns() / f64::from(self.lanes.max(1))
    }

    /// Break-even circuit activity against an event-driven engine whose
    /// per-evaluation cost is `t_eval_ns` (the Eq. 10 `tE`): with
    /// activity `a`, the event engine evaluates `a × G` gates per
    /// vector per scenario, so the oblivious backend wins per scenario
    /// whenever `a > R × t_kernel / (W × tE)`.
    #[must_use]
    pub fn break_even_activity(&self, t_eval_ns: f64) -> f64 {
        if t_eval_ns <= 0.0 {
            return f64::INFINITY;
        }
        f64::from(self.ranks.max(1)) * self.t_kernel_ns / (f64::from(self.lanes.max(1)) * t_eval_ns)
    }

    /// Per-scenario speedup over an event-driven engine that spends
    /// `event_ns_per_scenario` nanoseconds settling the same vector for
    /// one scenario. Returns `f64::INFINITY` for a degenerate (empty)
    /// sweep.
    #[must_use]
    pub fn speedup_over(&self, event_ns_per_scenario: f64) -> f64 {
        let s = self.scenario_time_ns();
        if s <= 0.0 {
            return f64::INFINITY;
        }
        event_ns_per_scenario / s
    }
}

impl fmt::Display for ObliviousParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "G={} R={} W={} t_kernel={:.1}ns -> {:.0}ns/vector ({:.1}ns/scenario)",
            self.gates,
            self.ranks,
            self.lanes,
            self.t_kernel_ns,
            self.vector_time_ns(),
            self.scenario_time_ns()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObliviousParams {
        ObliviousParams {
            gates: 1_000,
            ranks: 10,
            lanes: 64,
            t_kernel_ns: 2.0,
        }
    }

    #[test]
    fn evaluations_are_gates_times_ranks() {
        assert_eq!(sample().evaluations_per_sweep(), 1_000);
        assert_eq!(sample().evaluations_per_vector(), 10_000);
    }

    #[test]
    fn vector_time_has_no_event_terms() {
        // 10_000 evals * 2 ns, nothing else.
        assert!((sample().vector_time_ns() - 20_000.0).abs() < 1e-9);
        assert!((sample().scenario_time_ns() - 312.5).abs() < 1e-9);
    }

    #[test]
    fn break_even_activity_matches_hand_calculation() {
        // a* = R*t_kernel / (W*tE) = 10*2 / (64*400) = 0.00078125.
        let a = sample().break_even_activity(400.0);
        assert!((a - 0.000_781_25).abs() < 1e-12, "a* = {a}");
        assert!(sample().break_even_activity(0.0).is_infinite());
    }

    #[test]
    fn speedup_is_event_over_scenario_time() {
        // event 3125 ns/scenario over 312.5 ns/scenario = 10x.
        assert!((sample().speedup_over(3_125.0) - 10.0).abs() < 1e-9);
        let empty = ObliviousParams {
            gates: 0,
            ..sample()
        };
        assert!(empty.speedup_over(1.0).is_infinite());
    }

    #[test]
    fn degenerate_ranks_and_lanes_clamp_to_one() {
        let p = ObliviousParams {
            gates: 5,
            ranks: 0,
            lanes: 0,
            t_kernel_ns: 1.0,
        };
        assert_eq!(p.evaluations_per_vector(), 5);
        assert!((p.scenario_time_ns() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_parameters() {
        let s = sample().to_string();
        for needle in ["G=1000", "R=10", "W=64", "t_kernel=2.0ns"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
