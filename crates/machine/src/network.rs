//! Contention-accurate communication network models.
//!
//! Each model answers the same question: given the messages a tick
//! generates (each becoming ready when its producing event leaves the
//! evaluation pipeline), when does the network finish delivering them?
//! Messages are served in ready order (FIFO per the machine's
//! communication buffers); a message holds its resources for `t_msg`.

use crate::config::NetworkKind;

/// One message to deliver: `(ready_time, src_processor, dst_processor)`.
pub type Message = (f64, u32, u32);

/// Simulates draining `messages` (must be sorted by ready time) through
/// the network; returns `(finish_time, busy_time)` where `busy_time` is
/// the aggregate channel-seconds consumed (for utilization accounting).
///
/// # Panics
///
/// Panics if the message list is not sorted by ready time, or a
/// processor index is out of range.
#[must_use]
pub fn drain(kind: NetworkKind, processors: u32, messages: &[Message], t_msg: f64) -> (f64, f64) {
    debug_assert!(
        messages.windows(2).all(|w| w[0].0 <= w[1].0),
        "messages must be sorted by ready time"
    );
    let busy = messages.len() as f64 * t_msg;
    let finish = match kind {
        NetworkKind::BusSet { width } => drain_bus_set(width, messages, t_msg),
        NetworkKind::Crossbar => drain_crossbar(processors, messages, t_msg),
        NetworkKind::Delta => drain_delta(processors, messages, t_msg),
    };
    (finish, busy)
}

/// `width` identical servers; each message takes the earliest-free bus.
fn drain_bus_set(width: u32, messages: &[Message], t_msg: f64) -> f64 {
    assert!(width >= 1, "bus set needs at least one bus");
    let mut free = vec![0.0f64; width as usize];
    let mut finish = 0.0f64;
    for &(ready, _, _) in messages {
        // Earliest-free bus.
        let (idx, _) = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("at least one bus");
        let start = ready.max(free[idx]);
        free[idx] = start + t_msg;
        finish = finish.max(free[idx]);
    }
    finish
}

/// Crossbar: a message occupies its source's output port and its
/// destination's input port; distinct pairs transfer concurrently.
fn drain_crossbar(processors: u32, messages: &[Message], t_msg: f64) -> f64 {
    let p = processors as usize;
    let mut src_free = vec![0.0f64; p];
    let mut dst_free = vec![0.0f64; p];
    let mut finish = 0.0f64;
    for &(ready, src, dst) in messages {
        let (s, d) = (src as usize, dst as usize);
        assert!(s < p && d < p, "processor index out of range");
        let start = ready.max(src_free[s]).max(dst_free[d]);
        let end = start + t_msg;
        src_free[s] = end;
        dst_free[d] = end;
        finish = finish.max(end);
    }
    finish
}

/// Binary delta (butterfly): `ceil(log2 P)` stages of links; a message
/// from `src` to `dst` holds one link per stage for its transmission
/// (circuit-switched cut-through). Internal blocking emerges from
/// link conflicts along the bit-routed path.
fn drain_delta(processors: u32, messages: &[Message], t_msg: f64) -> f64 {
    let p = processors.next_power_of_two().max(2);
    let stages = p.trailing_zeros() as usize;
    // links[stage][node]: one outgoing link per node per stage.
    let mut links = vec![vec![0.0f64; p as usize]; stages];
    let mut finish = 0.0f64;
    for &(ready, src, dst) in messages {
        // Path: destination-bit routing; node after stage s replaces
        // the s-th MSB of src with dst's.
        let mut node = src % p;
        let mut path = Vec::with_capacity(stages);
        for s in 0..stages {
            path.push((s, node as usize));
            let bit = stages - 1 - s;
            node = (node & !(1 << bit)) | ((dst % p) & (1 << bit));
        }
        // Circuit-switched: start when every link on the path is free.
        let mut start = ready;
        for &(s, n) in &path {
            start = start.max(links[s][n]);
        }
        let end = start + t_msg;
        for &(s, n) in &path {
            links[s][n] = end;
        }
        finish = finish.max(end);
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msgs(list: &[(f64, u32, u32)]) -> Vec<Message> {
        list.to_vec()
    }

    #[test]
    fn single_bus_serializes() {
        let m = msgs(&[(0.0, 0, 1), (0.0, 2, 3), (0.0, 1, 0)]);
        let (finish, busy) = drain(NetworkKind::BusSet { width: 1 }, 4, &m, 2.0);
        assert!((finish - 6.0).abs() < 1e-12);
        assert!((busy - 6.0).abs() < 1e-12);
    }

    #[test]
    fn wider_bus_set_parallelizes() {
        let m = msgs(&[(0.0, 0, 1), (0.0, 2, 3), (0.0, 1, 0), (0.0, 3, 2)]);
        let (f1, _) = drain(NetworkKind::BusSet { width: 1 }, 4, &m, 2.0);
        let (f2, _) = drain(NetworkKind::BusSet { width: 2 }, 4, &m, 2.0);
        let (f4, _) = drain(NetworkKind::BusSet { width: 4 }, 4, &m, 2.0);
        assert!((f1 - 8.0).abs() < 1e-12);
        assert!((f2 - 4.0).abs() < 1e-12);
        assert!((f4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ready_times_gate_transmission() {
        let m = msgs(&[(0.0, 0, 1), (10.0, 2, 3)]);
        let (finish, _) = drain(NetworkKind::BusSet { width: 1 }, 4, &m, 2.0);
        assert!((finish - 12.0).abs() < 1e-12);
    }

    #[test]
    fn crossbar_conflicts_on_shared_ports() {
        // Distinct pairs go in parallel...
        let par = msgs(&[(0.0, 0, 1), (0.0, 2, 3)]);
        let (f, _) = drain(NetworkKind::Crossbar, 4, &par, 2.0);
        assert!((f - 2.0).abs() < 1e-12);
        // ...but a shared destination serializes.
        let conflict = msgs(&[(0.0, 0, 1), (0.0, 2, 1)]);
        let (f, _) = drain(NetworkKind::Crossbar, 4, &conflict, 2.0);
        assert!((f - 4.0).abs() < 1e-12);
        // And a shared source serializes too.
        let src_conflict = msgs(&[(0.0, 0, 1), (0.0, 0, 3)]);
        let (f, _) = drain(NetworkKind::Crossbar, 4, &src_conflict, 2.0);
        assert!((f - 4.0).abs() < 1e-12);
    }

    #[test]
    fn delta_blocks_internally() {
        // In a 4-node butterfly, 0->3 and 1->2 share no endpoint but
        // their stage-0 decisions route through conflicting links when
        // both leave the same first-stage node group. Use a known
        // conflict: 0->2 and 1->3 both need the "cross" link of the
        // first stage pair {0,1} -> check the finish exceeds one t_msg.
        let m = msgs(&[(0.0, 0, 2), (0.0, 1, 3)]);
        let (f_delta, _) = drain(NetworkKind::Delta, 4, &m, 2.0);
        let (f_xbar, _) = drain(NetworkKind::Crossbar, 4, &m, 2.0);
        assert!(f_xbar <= f_delta + 1e-12);
        // Delta still beats a single bus on conflict-free traffic.
        let free = msgs(&[(0.0, 0, 0), (0.0, 3, 3)]);
        let (f, _) = drain(NetworkKind::Delta, 4, &free, 2.0);
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_message_set_finishes_immediately() {
        let (f, busy) = drain(NetworkKind::BusSet { width: 1 }, 4, &[], 2.0);
        assert_eq!(f, 0.0);
        assert_eq!(busy, 0.0);
    }
}
