//! Synthetic workload generation.
//!
//! Synthetic traces exercise the machine simulator under controlled
//! conditions: when events are spread evenly (the analytical model's
//! assumption) the machine must agree with the model closely; skewed
//! variants quantify how fast the model degrades — the sensitivity
//! analysis the paper calls for.

use logicsim_sim::{EventRecord, TickRecord, TickTrace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A parametric workload description.
///
/// ```
/// use logicsim_machine::synthetic::SyntheticWorkload;
/// let w = SyntheticWorkload::uniform(50, 450, 32.0, 2.0, 1_000);
/// let trace = w.generate(7);
/// assert_eq!(trace.busy_ticks(), 50);
/// assert!((trace.simultaneity() - 32.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorkload {
    /// Busy ticks `B`.
    pub busy_ticks: u64,
    /// Idle ticks `I` (interleaved uniformly).
    pub idle_ticks: u64,
    /// Mean events per busy tick `N`.
    pub mean_simultaneity: f64,
    /// Mean fanout `F` (destinations per event).
    pub fanout: f64,
    /// Number of circuit components events are attributed to.
    pub components: u32,
    /// Skew: 0.0 = events spread evenly over busy ticks (the model's
    /// assumption); 1.0 = heavily bursty (a few ticks carry most
    /// events).
    pub burstiness: f64,
    /// Component-space skew: 0.0 = sources uniform over components;
    /// 1.0 = sources concentrated on a small hot set (which random
    /// partitioning turns into processor-load imbalance, `beta > 1`).
    pub hotspot: f64,
}

impl SyntheticWorkload {
    /// An even workload matching the model's assumptions.
    #[must_use]
    pub fn uniform(
        busy_ticks: u64,
        idle_ticks: u64,
        mean_simultaneity: f64,
        fanout: f64,
        components: u32,
    ) -> SyntheticWorkload {
        SyntheticWorkload {
            busy_ticks,
            idle_ticks,
            mean_simultaneity,
            fanout,
            components,
            burstiness: 0.0,
            hotspot: 0.0,
        }
    }

    /// The paper's Table 8 average workload, scaled down by `scale`
    /// (e.g. `scale = 100` gives B=81, E~103k) so machine simulations
    /// stay fast while keeping the same ratios.
    #[must_use]
    pub fn paper_average(scale: u64) -> SyntheticWorkload {
        assert!(scale >= 1);
        SyntheticWorkload::uniform(8_106 / scale, 51_894 / scale, 1_279.0, 2.1, 100_000)
    }

    /// Generates the tick trace with a seeded RNG.
    #[must_use]
    pub fn generate(&self, seed: u64) -> TickTrace {
        assert!(self.busy_ticks >= 1, "need at least one busy tick");
        assert!(self.components >= 2, "need at least two components");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let span = self.busy_ticks + self.idle_ticks;
        // Choose busy tick positions: evenly spaced.
        let stride = span as f64 / self.busy_ticks as f64;
        let mut ticks = Vec::with_capacity(self.busy_ticks as usize);
        for b in 0..self.busy_ticks {
            let tick = (b as f64 * stride) as u64;
            // Events this tick: mean N, modulated by burstiness (a
            // two-point distribution preserving the mean: heavy ticks
            // carry (1 + 4*burstiness) * N, light ticks the remainder).
            let heavy = rng.gen_bool(0.2);
            let factor = if self.burstiness == 0.0 {
                1.0
            } else if heavy {
                1.0 + 4.0 * self.burstiness
            } else {
                1.0 - self.burstiness
            };
            let n = (self.mean_simultaneity * factor).round().max(1.0) as usize;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let source = self.draw_component(&mut rng);
                // Fanout: floor(F) destinations plus one more with
                // probability frac(F), preserving the mean.
                let base = self.fanout.floor() as usize;
                let extra = usize::from(rng.gen_bool(self.fanout.fract()));
                let dests = (0..base + extra)
                    .map(|_| {
                        let mut d = rng.gen_range(0..self.components);
                        if d == source {
                            d = (d + 1) % self.components;
                        }
                        d
                    })
                    .collect();
                events.push(EventRecord { source, dests });
            }
            ticks.push(TickRecord { tick, events });
        }
        TickTrace {
            start: 0,
            end: span,
            ticks,
        }
    }

    fn draw_component(&self, rng: &mut ChaCha8Rng) -> u32 {
        if self.hotspot > 0.0 && rng.gen_bool(self.hotspot) {
            // Hot set: the first 1% of components (at least 1).
            let hot = (self.components / 100).max(1);
            rng.gen_range(0..hot)
        } else {
            rng.gen_range(0..self.components)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_trace_matches_requested_aggregates() {
        let w = SyntheticWorkload::uniform(100, 900, 50.0, 2.0, 1_000);
        let t = w.generate(1);
        assert_eq!(t.busy_ticks(), 100);
        assert_eq!(t.idle_ticks(), 900);
        let n = t.simultaneity();
        assert!((n - 50.0).abs() < 2.0, "N = {n}");
        let f = t.total_messages_inf() as f64 / t.total_events() as f64;
        assert!((f - 2.0).abs() < 0.15, "F = {f}");
    }

    #[test]
    fn fractional_fanout_preserves_mean() {
        let w = SyntheticWorkload::uniform(200, 0, 100.0, 2.5, 1_000);
        let t = w.generate(2);
        let f = t.total_messages_inf() as f64 / t.total_events() as f64;
        assert!((f - 2.5).abs() < 0.05, "F = {f}");
    }

    #[test]
    fn generation_is_deterministic() {
        let w = SyntheticWorkload::uniform(10, 10, 5.0, 2.0, 100);
        assert_eq!(w.generate(7), w.generate(7));
        assert_ne!(w.generate(7), w.generate(8));
    }

    #[test]
    fn burstiness_increases_tick_variance() {
        let even = SyntheticWorkload::uniform(200, 0, 100.0, 2.0, 1_000);
        let mut bursty = even.clone();
        bursty.burstiness = 0.8;
        let var = |t: &logicsim_sim::TickTrace| {
            let counts = t.events_per_busy_tick();
            let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
            counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / counts.len() as f64
        };
        assert!(var(&bursty.generate(3)) > 4.0 * var(&even.generate(3)));
    }

    #[test]
    fn hotspot_concentrates_sources() {
        let mut w = SyntheticWorkload::uniform(50, 0, 100.0, 2.0, 1_000);
        w.hotspot = 0.9;
        let t = w.generate(4);
        let hot_events = t
            .ticks
            .iter()
            .flat_map(|tk| tk.events.iter())
            .filter(|e| e.source < 10)
            .count();
        let total: usize = t.ticks.iter().map(|tk| tk.events.len()).sum();
        assert!(
            hot_events as f64 / total as f64 > 0.5,
            "{hot_events}/{total}"
        );
    }

    #[test]
    fn paper_average_ratios() {
        let w = SyntheticWorkload::paper_average(100);
        let t = w.generate(5);
        let bf = t.busy_ticks() as f64 / (t.busy_ticks() + t.idle_ticks()) as f64;
        assert!((bf - 0.1351).abs() < 0.01, "B/(B+I) = {bf}");
    }
}
