//! Machine simulation reports.

use logicsim_core::runtime::Bottleneck;
use std::fmt;

/// Timing and utilization results of one machine simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineReport {
    /// Total machine time in syncs (the measured `R_P`).
    pub total_cycles: f64,
    /// Time spent in START/DONE synchronization.
    pub sync_cycles: f64,
    /// Aggregate time ticks spent waiting on evaluation (tick critical
    /// path was a slave pipeline).
    pub eval_bound_cycles: f64,
    /// Aggregate time ticks spent waiting on the network.
    pub comm_bound_cycles: f64,
    /// Simulated ticks executed (`B + I`).
    pub ticks: u64,
    /// Busy ticks (at least one event).
    pub busy_ticks: u64,
    /// Events evaluated.
    pub events: u64,
    /// Messages actually sent between processors (`M_P`).
    pub messages: u64,
    /// Aggregate slave busy time (for utilization: divide by
    /// `P * total_cycles`).
    pub slave_busy: f64,
    /// Busy time per slave (indexed by slave id); sums to
    /// [`MachineReport::slave_busy`].
    pub per_slave_busy: Vec<f64>,
    /// Aggregate network-channel busy time.
    pub network_busy: f64,
    /// Number of slave processors.
    pub processors: u32,
}

impl MachineReport {
    /// Per-slave utilizations in `[0, 1]`, indexed by slave id.
    #[must_use]
    pub fn slave_utilizations(&self) -> Vec<f64> {
        if self.total_cycles == 0.0 {
            return vec![0.0; self.processors as usize];
        }
        self.per_slave_busy
            .iter()
            .map(|&b| b / self.total_cycles)
            .collect()
    }

    /// Ratio of the busiest slave's utilization to the mean — the
    /// machine-level counterpart of the model's `beta` (1.0 = perfectly
    /// balanced hardware usage).
    #[must_use]
    pub fn utilization_spread(&self) -> f64 {
        let mean = self.slave_busy / f64::from(self.processors.max(1));
        if mean == 0.0 {
            return 1.0;
        }
        self.per_slave_busy.iter().copied().fold(0.0f64, f64::max) / mean
    }

    /// Mean slave utilization in `[0, 1]`.
    #[must_use]
    pub fn slave_utilization(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.slave_busy / (f64::from(self.processors) * self.total_cycles)
        }
    }

    /// Which resource dominated the run.
    #[must_use]
    pub fn bottleneck(&self) -> Bottleneck {
        if self.sync_cycles >= self.eval_bound_cycles.max(self.comm_bound_cycles) {
            Bottleneck::Synchronization
        } else if self.eval_bound_cycles >= self.comm_bound_cycles {
            Bottleneck::Evaluation
        } else {
            Bottleneck::Communication
        }
    }

    /// Measured speed-up over a base machine that takes `t_eval_base`
    /// syncs per event (Eq. 11 with the measured run time).
    #[must_use]
    pub fn speedup_over(&self, t_eval_base: f64) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.events as f64 * t_eval_base / self.total_cycles
        }
    }
}

impl fmt::Display for MachineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R_P={:.0} syncs over {} ticks ({} busy): E={} M_P={} bottleneck={} util={:.2}",
            self.total_cycles,
            self.ticks,
            self.busy_ticks,
            self.events,
            self.messages,
            self.bottleneck(),
            self.slave_utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MachineReport {
        MachineReport {
            total_cycles: 1_000.0,
            sync_cycles: 100.0,
            eval_bound_cycles: 700.0,
            comm_bound_cycles: 200.0,
            ticks: 100,
            busy_ticks: 40,
            events: 500,
            messages: 300,
            slave_busy: 2_000.0,
            per_slave_busy: vec![800.0, 600.0, 400.0, 200.0],
            network_busy: 600.0,
            processors: 4,
        }
    }

    #[test]
    fn derived_quantities() {
        let r = report();
        assert!((r.slave_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(r.bottleneck(), Bottleneck::Evaluation);
        assert!((r.speedup_over(4_000.0) - 2_000.0).abs() < 1e-9);
        assert!(r.to_string().contains("bottleneck=evaluation"));
    }

    #[test]
    fn per_slave_views() {
        let r = report();
        let u = r.slave_utilizations();
        assert_eq!(u.len(), 4);
        assert!((u[0] - 0.8).abs() < 1e-12);
        // Busiest (800) over mean (500): spread 1.6.
        assert!((r.utilization_spread() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn zero_guards() {
        let r = MachineReport {
            total_cycles: 0.0,
            ..report()
        };
        assert_eq!(r.slave_utilization(), 0.0);
        assert_eq!(r.speedup_over(4_000.0), 0.0);
    }
}
