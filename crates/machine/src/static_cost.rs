//! Pricing a simulation job *before it runs*: Eq. 10 over static
//! activity estimates.
//!
//! The paper's cost model (Eq. 1-10) consumes measured workload
//! parameters — evaluations `E` and message volume `M` from an actual
//! simulation trace. The static activity analysis
//! (`logicsim_netlist::analyze::dataflow::activity`) produces sound
//! upper bounds on the same quantities from the netlist and the
//! stimulus periodicity alone, so the same Eq. 10 structure can price
//! a job with *zero* simulated ticks:
//!
//! * `E/tick` — summed per-component evaluation density (a component
//!   evaluates when any input net toggles);
//! * `M_inf/tick` — summed per-net transition density times fanout
//!   (each transition is one message per reader on an
//!   infinite-processor machine); Eq. 6 scales this to `M_P`;
//! * busy fraction — the probability a tick schedules anything at
//!   all, bounding the per-tick synchronization term (the engines
//!   fast-forward idle ticks, so quiescent stretches pay no `t_SYNC`).
//!
//! One adjustment separates pricing from linting: the fixpoint widens
//! feedback loops to "toggles every tick", which is sound for LS0010
//! but absurd as an *expectation* — real state machines follow their
//! excitation. [`StaticCost::estimate`] therefore prices from
//! [`Activity::expected_densities`] — the same sensitivity algebra,
//! with loop contributions damped to follow the excitation entering
//! them — keeping the lint-facing bounds untouched.
//!
//! [`StaticCost::predict_runtime_ns`] combines these with measured (or
//! designed) time constants exactly as [`MeasuredParams`] does for the
//! dynamic counters, and `validate_model`'s final section checks the
//! static prediction lands within 2x of the stopwatch on all five
//! benchmark families.

use crate::calibrate::MeasuredParams;
use logicsim_netlist::analyze::dataflow::activity::Activity;
use logicsim_netlist::analyze::dataflow::seeds::InputSeeds;
use logicsim_netlist::analyze::dataflow::timing::Timing;
use logicsim_netlist::{CompId, Component, NetId, Netlist};

/// Statically predicted per-tick workload rates for one netlist under
/// one stimulus plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticCost {
    /// Predicted component evaluations per simulated tick (`E/T`).
    pub evals_per_tick: f64,
    /// Predicted infinite-processor messages per simulated tick
    /// (`M_inf/T`): transitions weighted by fanout.
    pub messages_per_tick: f64,
    /// Fraction of simulated ticks predicted to schedule at least one
    /// event, in `[0, 1]`; scales the synchronization term because
    /// the engines skip over quiescent ticks.
    pub busy_fraction: f64,
}

impl StaticCost {
    /// Prices `netlist` from the static activity fixpoint. `seeds`
    /// carries the stimulus periodicity (`None` assumes the
    /// unconstrained worst case, which prices every input as a
    /// once-per-tick toggler).
    #[must_use]
    pub fn estimate(netlist: &Netlist, seeds: Option<&InputSeeds>) -> StaticCost {
        let unconstrained;
        let seeds = match seeds {
            Some(s) => s,
            None => {
                unconstrained = InputSeeds::unconstrained(netlist);
                &unconstrained
            }
        };
        let activity = Activity::analyze(netlist, seeds);
        let est = activity.expected_densities(netlist, seeds);
        let evals_per_tick: f64 = (0..netlist.num_components())
            .map(|i| {
                let comp = netlist.component(CompId(i as u32));
                match comp {
                    Component::Input { net } => est[net.index()],
                    Component::Supply { .. } | Component::Pull { .. } => 0.0,
                    _ => {
                        let mut sum = 0.0;
                        comp.for_each_read(|r| sum += est[r.index()]);
                        sum.min(1.0)
                    }
                }
            })
            .sum();
        let mut messages_per_tick = 0.0;
        for i in 0..netlist.num_nets() {
            let net = NetId(i as u32);
            messages_per_tick += est[net.index()] * netlist.fanout(net).len() as f64;
        }
        StaticCost {
            evals_per_tick,
            messages_per_tick,
            busy_fraction: busy_fraction(netlist, seeds),
        }
    }

    /// Predicted evaluations over a `ticks`-long window.
    ///
    /// See [`StaticCost::estimate`] for how saturated feedback is
    /// re-priced before these rates are formed.
    #[must_use]
    pub fn evaluations(&self, ticks: u64) -> f64 {
        self.evals_per_tick * ticks as f64
    }

    /// Predicted cross-processor message volume over a `ticks`-long
    /// window on `p` processors, via Eq. 6's random-partitioning
    /// scaling `M_P = M_inf (1 - 1/P)`.
    #[must_use]
    pub fn messages(&self, ticks: u64, p: u32) -> f64 {
        self.messages_per_tick * ticks as f64 * (1.0 - 1.0 / f64::from(p.max(1)))
    }

    /// Eq. 10 priced from the static rates:
    /// `R = busy_ticks * t_sync + max(beta * E * t_eval / P, M_P * t_msg)`,
    /// in nanoseconds. Single-processor jobs pay no message term.
    ///
    /// # Panics
    ///
    /// Panics if `beta < 1`.
    #[must_use]
    pub fn predict_runtime_ns(
        &self,
        ticks: u64,
        p: u32,
        beta: f64,
        t_sync_ns: f64,
        t_eval_ns: f64,
        t_msg_ns: f64,
    ) -> f64 {
        assert!(beta >= 1.0, "beta is at least 1, got {beta}");
        let p = p.max(1);
        let sync = self.busy_fraction * ticks as f64 * t_sync_ns;
        let eval = beta * self.evaluations(ticks) * t_eval_ns / f64::from(p);
        let comm = if p > 1 {
            self.messages(ticks, p) * t_msg_ns
        } else {
            0.0
        };
        sync + eval.max(comm)
    }

    /// [`StaticCost::predict_runtime_ns`] with the time constants a
    /// calibration run measured: the purely static workload estimate
    /// priced at this host's actual per-item costs. `ticks` is the
    /// window being priced (simulated ticks, not executed ones — the
    /// busy fraction models the difference).
    ///
    /// # Panics
    ///
    /// Panics if `beta < 1`.
    #[must_use]
    pub fn predict_with(&self, ticks: u64, params: &MeasuredParams, beta: f64) -> f64 {
        self.predict_runtime_ns(
            ticks,
            params.workers,
            beta,
            params.t_sync_ns(),
            params.t_eval_ns,
            params.t_msg_ns,
        )
    }
}

/// Fraction of simulated ticks expected to schedule at least one
/// event.
///
/// The engines fast-forward quiescent stretches, so the
/// synchronization term is only paid on *busy* ticks: ticks that fall
/// inside the settle wave following some stimulus event. The static
/// timing analysis bounds the settle span — the latest bounded
/// arrival after an input event (feedback windows are unbounded and
/// excluded; they follow the same excitation, not their own clock).
/// Each input with event density `d` then covers `d * (span + 1)` of
/// the timeline with its bursts, and under the independent-phase
/// assumption the busy fraction is the coverage union
/// `1 - prod_i (1 - min(1, d_i * (span + 1)))`.
fn busy_fraction(netlist: &Netlist, seeds: &InputSeeds) -> f64 {
    let timing = Timing::analyze(netlist, seeds);
    let mut span = 0u32;
    for i in 0..netlist.num_nets() {
        let w = timing.window(NetId(i as u32));
        if !w.is_empty() && !w.is_unbounded() {
            span = span.max(w.max);
        }
    }
    let mut idle = 1.0f64;
    for i in 0..netlist.num_components() {
        if let Component::Input { net } = netlist.component(CompId(i as u32)) {
            let d = seeds.get(*net).copied().unwrap_or_default().density;
            idle *= 1.0 - (d * f64::from(span + 1)).min(1.0);
        }
    }
    1.0 - idle
}

#[cfg(test)]
mod tests {
    use super::*;
    use logicsim_netlist::{Delay, GateKind, NetlistBuilder};

    fn inverter_chain(k: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let mut prev = b.input("a");
        for i in 0..k {
            let next = b.net(format!("y{i}"));
            b.gate(GateKind::Not, &[prev], next, Delay::uniform(1));
            prev = next;
        }
        b.mark_output(prev);
        b.finish().unwrap()
    }

    #[test]
    fn unconstrained_chain_prices_full_activity() {
        // Unconstrained seeds toggle at density 0.5 (a free-running
        // input flips on average every other tick), so every net in
        // the chain carries density 0.5: the 5 components (input + 4
        // gates) evaluate at 2.5/tick, and the 4 single-reader nets
        // move 2.0 messages/tick. Five half-density nets still make
        // nearly every tick busy (the bound saturates at 1).
        let n = inverter_chain(4);
        let c = StaticCost::estimate(&n, None);
        assert!((c.evals_per_tick - 2.5).abs() < 1e-9, "{c:?}");
        assert!((c.messages_per_tick - 2.0).abs() < 1e-9, "{c:?}");
        assert!((c.busy_fraction - 1.0).abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn slow_stimulus_scales_the_price_down() {
        use logicsim_netlist::analyze::dataflow::seeds::InputSeed;
        let n = inverter_chain(4);
        let mut seeds = InputSeeds::unconstrained(&n);
        seeds.set(
            n.find_net("a").unwrap(),
            InputSeed {
                density: 0.1,
                min_separation: 10,
                ..InputSeed::default()
            },
        );
        let c = StaticCost::estimate(&n, Some(&seeds));
        assert!(
            c.evals_per_tick < 0.6 && c.evals_per_tick > 0.4,
            "5 components at density 0.1: {c:?}"
        );
        assert!(c.busy_fraction < 0.6, "{c:?}");
        let fast = StaticCost::estimate(&n, None);
        assert!(
            c.predict_with(1_000, &sample_params(), 1.0)
                < fast.predict_with(1_000, &sample_params(), 1.0)
        );
    }

    #[test]
    fn eq10_shape_sync_plus_max_of_eval_and_comm() {
        let c = StaticCost {
            evals_per_tick: 2.0,
            messages_per_tick: 10.0,
            busy_fraction: 1.0,
        };
        // P=4: sync = 100*1000, eval = 2*1000*50/4 = 25_000,
        // comm = 10*1000*0.75*20 = 150_000 -> comm dominates.
        let r = c.predict_runtime_ns(1_000, 4, 1.0, 100.0, 50.0, 20.0);
        assert!((r - 250_000.0).abs() < 1e-6, "r = {r}");
        // P=1: no comm term; eval = 2*1000*50 = 100_000.
        let r1 = c.predict_runtime_ns(1_000, 1, 1.0, 100.0, 50.0, 20.0);
        assert!((r1 - 200_000.0).abs() < 1e-6, "r1 = {r1}");
    }

    fn sample_params() -> MeasuredParams {
        MeasuredParams {
            workers: 2,
            executed_ticks: 1_000,
            t_start_ns: 100.0,
            t_done_ns: 100.0,
            barrier_ns: 0.0,
            t_eval_ns: 50.0,
            t_msg_ns: 10.0,
            evaluations: 2_000,
            messages: 1_000,
        }
    }

    #[test]
    fn predict_with_uses_measured_constants() {
        let c = StaticCost {
            evals_per_tick: 2.0,
            messages_per_tick: 1.0,
            busy_fraction: 0.5,
        };
        let p = sample_params();
        // sync = 0.5*1000*200 = 100_000; eval = 2*1000*50/2 = 50_000;
        // comm = 1*1000*0.5*10 = 5_000.
        let r = c.predict_with(1_000, &p, 1.0);
        assert!((r - 150_000.0).abs() < 1e-6, "r = {r}");
    }
}
