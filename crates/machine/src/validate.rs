//! Validation of the analytical model against the machine simulator.

use crate::config::MachineConfig;
use crate::report::MachineReport;
use crate::sim::MachineSim;
use logicsim_core::runtime::run_time;
use logicsim_core::speedup::base_run_time;
use logicsim_core::{BaseMachine, Workload};
use logicsim_partition::{measured_beta, Partition};
use logicsim_sim::TickTrace;
use std::fmt;

/// A *real* parallel execution measurement (the thread-parallel
/// `ParSimulator` timed against the serial engine on the same stimulus
/// window), attachable to a [`ValidationResult`] as a third column next
/// to the analytical model and the cycle-level machine simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredExecution {
    /// Worker threads the measured run used.
    pub workers: u32,
    /// Wall-clock speed-up over the serial engine on the same window.
    pub speedup: f64,
    /// Measured events per wall-clock second of the parallel run.
    pub events_per_second: f64,
}

/// Side-by-side model prediction and machine measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationResult {
    /// Model-predicted run time (Eq. 10), in syncs.
    pub model_runtime: f64,
    /// Machine-simulated run time, in syncs.
    pub machine_runtime: f64,
    /// Model speed-up over the base machine.
    pub model_speedup: f64,
    /// Measured speed-up over the base machine.
    pub machine_speedup: f64,
    /// The measured load-imbalance factor fed to the model.
    pub beta: f64,
    /// The machine report the comparison came from.
    pub report: MachineReport,
    /// A real thread-parallel execution measurement, when one was taken
    /// (host-dependent, so never produced by the pure-model paths).
    pub measured: Option<MeasuredExecution>,
}

impl ValidationResult {
    /// Signed relative error of the model: `(model - machine) / machine`
    /// (negative when the model is optimistic, which its assumptions —
    /// full overlap, even tick loading — make typical).
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        if self.machine_runtime == 0.0 {
            0.0
        } else {
            (self.model_runtime - self.machine_runtime) / self.machine_runtime
        }
    }

    /// Attaches a real execution measurement (builder style).
    #[must_use]
    pub fn with_measured(mut self, measured: MeasuredExecution) -> ValidationResult {
        self.measured = Some(measured);
        self
    }

    /// Ratio of the real measured speed-up to the model's predicted
    /// speed-up, when a measurement is attached. Well below 1.0 on a
    /// host with fewer cores than workers — which is the point of
    /// carrying the column: the model says what the machine *would* do,
    /// the measurement says what this host *did*.
    #[must_use]
    pub fn measured_vs_model(&self) -> Option<f64> {
        let m = self.measured.as_ref()?;
        if self.model_speedup == 0.0 {
            None
        } else {
            Some(m.speedup / self.model_speedup)
        }
    }
}

impl fmt::Display for ValidationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model R_P={:.0} vs machine R_P={:.0} ({:+.1}%), S_P {:.0} vs {:.0}, beta={:.2}",
            self.model_runtime,
            self.machine_runtime,
            self.relative_error() * 100.0,
            self.model_speedup,
            self.machine_speedup,
            self.beta
        )?;
        if let Some(m) = &self.measured {
            write!(
                f,
                ", measured {:.2}x @P={} ({:.0} ev/s)",
                m.speedup, m.workers, m.events_per_second
            )?;
        }
        Ok(())
    }
}

/// Runs the machine simulator over a trace and compares it against the
/// analytical model evaluated on the same aggregate workload, using the
/// *measured* load-imbalance `beta` of the (trace, partition) pair.
#[must_use]
pub fn validate_against_model(
    config: &MachineConfig,
    trace: &TickTrace,
    partition: &Partition,
    base: &BaseMachine,
) -> ValidationResult {
    let report = MachineSim::new(config).run(trace, partition);
    let workload = Workload::new(
        trace.busy_ticks() as f64,
        trace.idle_ticks() as f64,
        trace.total_events() as f64,
        trace.total_messages_inf() as f64,
    );
    let beta = measured_beta(trace, partition).min(f64::from(config.processors));
    let design = config.as_model_design();
    let model_rt = run_time(&workload, &design, beta).total;
    let rb = base_run_time(&workload, base);
    ValidationResult {
        model_runtime: model_rt,
        machine_runtime: report.total_cycles,
        model_speedup: rb / model_rt,
        machine_speedup: rb / report.total_cycles,
        beta,
        report,
        measured: None,
    }
}

/// Three-way comparison: mean-value model (Eq. 10), distribution-aware
/// model (per-tick loads), and the machine simulator, on the same
/// trace. The distribution model must land between the other two on
/// workloads whose only model violation is uneven tick loading.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeWayComparison {
    /// Mean-value (Eq. 10) run time.
    pub mean_value: f64,
    /// Distribution-aware run time.
    pub distribution: f64,
    /// Machine-simulated run time.
    pub machine: f64,
}

/// Evaluates all three run-time estimates for a trace.
#[must_use]
pub fn compare_three_way(
    config: &MachineConfig,
    trace: &TickTrace,
    partition: &Partition,
) -> ThreeWayComparison {
    use logicsim_core::distribution::{run_time_distribution, TickLoad};
    let report = MachineSim::new(config).run(trace, partition);
    let workload = Workload::new(
        trace.busy_ticks() as f64,
        trace.idle_ticks() as f64,
        trace.total_events() as f64,
        trace.total_messages_inf() as f64,
    );
    let beta = measured_beta(trace, partition).min(f64::from(config.processors));
    let design = config.as_model_design();
    let loads: Vec<TickLoad> = trace
        .ticks
        .iter()
        .map(|t| TickLoad {
            events: t.events.len() as f64,
            messages_inf: t.events.iter().map(|e| e.fanout() as f64).sum(),
        })
        .collect();
    ThreeWayComparison {
        mean_value: run_time(&workload, &design, beta).total,
        distribution: run_time_distribution(&loads, trace.idle_ticks() as f64, &design, beta),
        machine: report.total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkKind;
    use crate::sim::random_component_partition;
    use crate::synthetic::SyntheticWorkload;

    fn validate(
        p: u32,
        l: u32,
        width: u32,
        h: f64,
        tm: f64,
        w: &SyntheticWorkload,
        seed: u64,
    ) -> ValidationResult {
        let cfg = MachineConfig::paper_design(p, l, NetworkKind::BusSet { width }, h, tm);
        let trace = w.generate(seed);
        let part = random_component_partition(w.components, p, seed ^ 1);
        validate_against_model(&cfg, &trace, &part, &BaseMachine::vax_11_750())
    }

    #[test]
    fn model_is_accurate_on_even_eval_dominated_workloads() {
        // Heavy, even load; slow-ish processors; ample bus capacity:
        // every model assumption holds, so agreement should be tight.
        let w = SyntheticWorkload::uniform(40, 400, 128.0, 2.0, 8_000);
        let v = validate(4, 1, 3, 1.0, 2.0, &w, 21);
        assert!(
            v.relative_error().abs() < 0.05,
            "error {:.3}: {v}",
            v.relative_error()
        );
    }

    #[test]
    fn model_is_accurate_on_comm_dominated_workloads() {
        // Very fast processors saturating one bus: run time is message
        // volume * t_msg, which both sides agree on.
        let w = SyntheticWorkload::uniform(40, 100, 200.0, 2.0, 8_000);
        let v = validate(8, 5, 1, 1_000.0, 3.0, &w, 22);
        assert!(
            v.relative_error().abs() < 0.10,
            "error {:.3}: {v}",
            v.relative_error()
        );
        assert_eq!(
            v.report.bottleneck(),
            logicsim_core::runtime::Bottleneck::Communication
        );
    }

    #[test]
    fn model_is_optimistic_on_bursty_workloads() {
        // Bursty ticks break the "evenly distributed over busy ticks"
        // assumption; pipeline fill/drain and per-tick sync make the
        // machine slower than... actually bursty ticks with the same
        // mean make heavy ticks longer and light ticks shorter, which
        // hurts the machine only through pipeline end effects. The
        // dominant mismatch is partial comm overlap: messages cannot
        // start before their producing event retires, so a comm-heavy
        // tail extends every tick. The model must be optimistic here.
        let mut w = SyntheticWorkload::uniform(60, 0, 32.0, 2.0, 4_000);
        w.burstiness = 0.9;
        let v = validate(8, 5, 1, 100.0, 3.0, &w, 23);
        assert!(
            v.relative_error() < 0.02,
            "model should not be pessimistic: {v}"
        );
    }

    #[test]
    fn measured_beta_feeds_model_on_hotspot_workloads() {
        let mut w = SyntheticWorkload::uniform(50, 0, 64.0, 2.0, 2_000);
        w.hotspot = 0.8;
        let v = validate(8, 1, 3, 10.0, 2.0, &w, 24);
        assert!(v.beta > 1.3, "hotspot should skew beta, got {}", v.beta);
        // With measured beta the model stays in the right ballpark.
        assert!(
            v.relative_error().abs() < 0.35,
            "error {:.3}: {v}",
            v.relative_error()
        );
    }

    #[test]
    fn distribution_model_sits_between_mean_value_and_machine() {
        // Bursty ticks violate only the even-tick-load assumption, which
        // the distribution model repairs: mean-value <= distribution <=
        // machine (up to small slack for partial-overlap effects the
        // distribution model still idealizes).
        let mut w = SyntheticWorkload::uniform(60, 300, 64.0, 2.0, 4_000);
        w.burstiness = 0.9;
        let cfg = MachineConfig::paper_design(8, 5, NetworkKind::BusSet { width: 1 }, 100.0, 3.0);
        let trace = w.generate(31);
        let part = random_component_partition(w.components, 8, 32);
        let c = compare_three_way(&cfg, &trace, &part);
        assert!(
            c.mean_value <= c.distribution * 1.0001,
            "mean {} > dist {}",
            c.mean_value,
            c.distribution
        );
        assert!(
            c.distribution <= c.machine * 1.05,
            "dist {} > machine {}",
            c.distribution,
            c.machine
        );
        // And the distribution model is strictly better than the
        // mean-value model at predicting the machine here.
        let err_mean = (c.mean_value - c.machine).abs();
        let err_dist = (c.distribution - c.machine).abs();
        assert!(err_dist < err_mean, "dist {err_dist} vs mean {err_mean}");
    }

    #[test]
    fn measured_column_attaches_and_compares() {
        let w = SyntheticWorkload::uniform(30, 300, 100.0, 2.0, 5_000);
        let v = validate(4, 5, 2, 10.0, 3.0, &w, 26);
        assert!(v.measured.is_none() && v.measured_vs_model().is_none());
        let half_model = v.model_speedup / 2.0;
        let v = v.with_measured(MeasuredExecution {
            workers: 4,
            speedup: half_model,
            events_per_second: 1e6,
        });
        let ratio = v.measured_vs_model().expect("attached");
        assert!((ratio - 0.5).abs() < 1e-12, "ratio {ratio}");
        let line = v.to_string();
        assert!(line.contains("measured") && line.contains("@P=4"), "{line}");
    }

    #[test]
    fn speedups_are_consistent_with_runtimes() {
        let w = SyntheticWorkload::uniform(30, 300, 100.0, 2.0, 5_000);
        let v = validate(4, 5, 2, 10.0, 3.0, &w, 25);
        assert!(v.model_speedup > 0.0 && v.machine_speedup > 0.0);
        // speedup ratio = inverse runtime ratio.
        let lhs = v.model_speedup / v.machine_speedup;
        let rhs = v.machine_runtime / v.model_runtime;
        assert!((lhs - rhs).abs() < 1e-9);
    }
}
