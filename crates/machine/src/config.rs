//! Machine configuration.

use logicsim_core::taxonomy::{ArchClass, TimeAdvance};
use logicsim_core::{BaseMachine, MachineDesign};

/// The communication network backing the machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkKind {
    /// `width` time-shared buses; any message may use any free bus.
    /// This is the paper's model (`W` concurrent messages).
    BusSet {
        /// Number of buses.
        width: u32,
    },
    /// A full crossbar: a message occupies its source and destination
    /// ports for its whole transmission; distinct (src, dst) pairs
    /// transfer concurrently.
    Crossbar,
    /// A binary delta (butterfly) network with `log2(P)` stages;
    /// messages contend for internal links along their bit-routed path.
    Delta,
}

impl NetworkKind {
    /// The effective peak width `W` of this network for `processors`
    /// slaves, as the analytical model defines it (average number of
    /// concurrently transmissible messages at saturation).
    #[must_use]
    pub fn model_width(&self, processors: u32) -> f64 {
        match *self {
            NetworkKind::BusSet { width } => f64::from(width),
            // A P-port crossbar can move up to P messages at once; under
            // uniform random traffic the expected matching is ~P(1-1/e),
            // but the model's W is the *peak* concurrency.
            NetworkKind::Crossbar => f64::from(processors),
            // A binary delta sustains roughly P/2 under uniform traffic
            // due to internal blocking.
            NetworkKind::Delta => f64::from(processors.max(2)) / 2.0,
        }
    }
}

/// Configuration of the simulated machine. Times are in syncs (one
/// sync = `t_S + t_D`, the per-tick synchronization cost).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of slave processors `P`.
    pub processors: u32,
    /// Evaluation pipeline depth `L`.
    pub pipeline_depth: u32,
    /// Time for one event/function evaluation `t_E` (full pipeline
    /// latency), in syncs.
    pub t_eval: f64,
    /// Time to transmit one message `t_M`, in syncs.
    pub t_msg: f64,
    /// START broadcast time `t_S`, in syncs.
    pub t_start: f64,
    /// DONE collection time `t_D`, in syncs.
    pub t_done: f64,
    /// Network model.
    pub network: NetworkKind,
    /// Time-advance mechanism: unit increment visits every tick
    /// (paying synchronization on idle ones); event-based increment
    /// jumps the global clock to the next scheduled event time.
    pub time_advance: TimeAdvance,
}

impl MachineConfig {
    /// A design from the paper's Table 7 space: `H` is the
    /// technology/specialization factor relative to the VAX 11/750
    /// base machine (`t_E = 4000 / H` syncs), with `t_S = t_D = 0.5`.
    #[must_use]
    pub fn paper_design(
        processors: u32,
        pipeline_depth: u32,
        network: NetworkKind,
        h: f64,
        t_msg: f64,
    ) -> MachineConfig {
        assert!(processors >= 1 && pipeline_depth >= 1);
        assert!(h > 0.0 && t_msg > 0.0);
        MachineConfig {
            processors,
            pipeline_depth,
            t_eval: BaseMachine::vax_11_750().t_eval / h,
            t_msg,
            t_start: 0.5,
            t_done: 0.5,
            network,
            time_advance: TimeAdvance::UnitIncrement,
        }
    }

    /// The same machine with event-based time advance (the `EI/GC`
    /// taxonomy variant).
    #[must_use]
    pub fn with_event_increment(mut self) -> MachineConfig {
        self.time_advance = TimeAdvance::EventBased;
        self
    }

    /// The per-tick synchronization time `t_SYNC = t_S + t_D`.
    #[must_use]
    pub fn t_sync(&self) -> f64 {
        self.t_start + self.t_done
    }

    /// Per-pipeline-stage service time `t_E / L`.
    #[must_use]
    pub fn stage_time(&self) -> f64 {
        self.t_eval / f64::from(self.pipeline_depth)
    }

    /// The equivalent analytical-model design (for validation).
    #[must_use]
    pub fn as_model_design(&self) -> MachineDesign {
        MachineDesign::new(
            self.processors,
            self.pipeline_depth,
            self.network.model_width(self.processors),
            self.t_eval,
            self.t_msg,
            self.t_sync(),
        )
    }

    /// This machine's point in the paper's taxonomy.
    #[must_use]
    pub fn arch_class(&self) -> ArchClass {
        let mut class = ArchClass::paper_class(self.processors, self.pipeline_depth);
        class.time_advance = self.time_advance;
        class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_times() {
        let c = MachineConfig::paper_design(8, 5, NetworkKind::BusSet { width: 2 }, 100.0, 3.0);
        assert!((c.t_eval - 40.0).abs() < 1e-12);
        assert!((c.t_sync() - 1.0).abs() < 1e-12);
        assert!((c.stage_time() - 8.0).abs() < 1e-12);
        assert_eq!(c.arch_class().to_string(), "UI/GC/Q=8/P=8/L=5");
        let ei = c.clone().with_event_increment();
        assert_eq!(ei.arch_class().to_string(), "EI/GC/Q=8/P=8/L=5");
    }

    #[test]
    fn model_design_round_trip() {
        let c = MachineConfig::paper_design(4, 1, NetworkKind::BusSet { width: 3 }, 10.0, 2.0);
        let d = c.as_model_design();
        assert_eq!(d.processors, 4);
        assert_eq!(d.pipeline_depth, 1);
        assert!((d.comm_width - 3.0).abs() < 1e-12);
        assert!((d.t_eval - 400.0).abs() < 1e-12);
    }

    #[test]
    fn network_widths() {
        assert_eq!(NetworkKind::BusSet { width: 2 }.model_width(16), 2.0);
        assert_eq!(NetworkKind::Crossbar.model_width(16), 16.0);
        assert_eq!(NetworkKind::Delta.model_width(16), 8.0);
    }
}
