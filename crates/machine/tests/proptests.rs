//! Property tests for the machine simulator: conservation, floors, and
//! model-ordering invariants over random workloads and configurations.

use logicsim_core::taxonomy::TimeAdvance;
use logicsim_machine::network::{drain, Message};
use logicsim_machine::sim::{random_component_partition, simulate_trace};
use logicsim_machine::synthetic::SyntheticWorkload;
use logicsim_machine::{MachineConfig, NetworkKind};
use proptest::prelude::*;

fn any_network() -> impl Strategy<Value = NetworkKind> {
    prop_oneof![
        (1u32..5).prop_map(|width| NetworkKind::BusSet { width }),
        Just(NetworkKind::Crossbar),
        Just(NetworkKind::Delta),
    ]
}

fn any_config() -> impl Strategy<Value = MachineConfig> {
    (1u32..12, 1u32..7, any_network(), 1.0f64..200.0, 1.0f64..4.0)
        .prop_map(|(p, l, net, h, tm)| MachineConfig::paper_design(p, l, net, h, tm))
}

fn any_workload() -> impl Strategy<Value = SyntheticWorkload> {
    (
        1u64..30,
        0u64..200,
        1.0f64..60.0,
        1.0f64..3.5,
        20u32..500,
        0.0f64..0.9,
        0.0f64..0.9,
    )
        .prop_map(|(b, i, n, f, c, burst, hot)| {
            let mut w = SyntheticWorkload::uniform(b, i, n, f, c);
            w.burstiness = burst;
            w.hotspot = hot;
            w
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: the machine evaluates exactly the trace's events,
    /// and sends no more messages than M_inf.
    #[test]
    fn event_and_message_conservation(
        cfg in any_config(),
        w in any_workload(),
        seed in any::<u64>(),
    ) {
        let trace = w.generate(seed);
        let part = random_component_partition(w.components, cfg.processors, seed ^ 9);
        let r = simulate_trace(&cfg, &trace, &part);
        prop_assert_eq!(r.events, trace.total_events());
        prop_assert!(r.messages <= trace.total_messages_inf());
        prop_assert_eq!(r.busy_ticks, trace.busy_ticks());
        prop_assert_eq!(r.ticks, trace.end - trace.start);
    }

    /// Timing floors: the run can never be faster than sync alone, the
    /// serial evaluation floor, or the network capacity floor.
    #[test]
    fn run_time_floors(
        cfg in any_config(),
        w in any_workload(),
        seed in any::<u64>(),
    ) {
        let trace = w.generate(seed);
        let part = random_component_partition(w.components, cfg.processors, seed ^ 9);
        let r = simulate_trace(&cfg, &trace, &part);
        let sync_floor = match cfg.time_advance {
            TimeAdvance::UnitIncrement => (trace.end - trace.start) as f64 * cfg.t_sync(),
            TimeAdvance::EventBased => trace.busy_ticks() as f64 * cfg.t_sync(),
        };
        prop_assert!(r.total_cycles >= sync_floor - 1e-6);
        // Aggregate evaluation work spread perfectly over P pipelines.
        let work_floor = r.events as f64 * cfg.stage_time() / f64::from(cfg.processors);
        prop_assert!(r.total_cycles + 1e-6 >= work_floor.min(r.total_cycles));
        // Utilization and bottleneck classification stay in range.
        let u = r.slave_utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        // Per-slave accounting is consistent with the aggregate.
        let per: f64 = r.per_slave_busy.iter().sum();
        prop_assert!((per - r.slave_busy).abs() < 1e-6 * r.slave_busy.max(1.0));
        prop_assert!(r.utilization_spread() >= 1.0 - 1e-9);
    }

    /// EI never loses to UI on the same trace, and saves exactly the
    /// idle sync when nothing else changes.
    #[test]
    fn ei_dominates_ui(
        cfg in any_config(),
        w in any_workload(),
        seed in any::<u64>(),
    ) {
        let trace = w.generate(seed);
        let part = random_component_partition(w.components, cfg.processors, seed ^ 9);
        let ui = simulate_trace(&cfg, &trace, &part);
        let ei_cfg = cfg.clone().with_event_increment();
        let ei = simulate_trace(&ei_cfg, &trace, &part);
        let saved = ui.total_cycles - ei.total_cycles;
        let expected = trace.idle_ticks() as f64 * cfg.t_sync();
        prop_assert!((saved - expected).abs() < 1e-6, "saved {saved} vs {expected}");
    }

    /// A wider bus-set never slows the machine down.
    #[test]
    fn wider_network_never_hurts(
        p in 2u32..10,
        l in 1u32..6,
        w in any_workload(),
        seed in any::<u64>(),
    ) {
        let trace = w.generate(seed);
        let part = random_component_partition(w.components, p, seed ^ 9);
        let mut prev = f64::INFINITY;
        for width in [1u32, 2, 4] {
            let cfg = MachineConfig::paper_design(
                p, l, NetworkKind::BusSet { width }, 50.0, 3.0,
            );
            let r = simulate_trace(&cfg, &trace, &part);
            prop_assert!(r.total_cycles <= prev + 1e-6);
            prev = r.total_cycles;
        }
    }

    /// Network drain invariants: finish >= every ready time + t_msg,
    /// and a width-1 bus serializes exactly.
    #[test]
    fn network_drain_invariants(
        msgs in proptest::collection::vec((0.0f64..100.0, 0u32..8, 0u32..8), 0..40),
        tm in 0.5f64..4.0,
        net in any_network(),
    ) {
        let mut sorted: Vec<Message> = msgs;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let (finish, busy) = drain(net, 8, &sorted, tm);
        prop_assert!((busy - sorted.len() as f64 * tm).abs() < 1e-9);
        if let Some(last) = sorted.last() {
            prop_assert!(finish >= last.0 + tm - 1e-9);
        } else {
            prop_assert_eq!(finish, 0.0);
        }
        // Single bus: finish >= total service demand.
        let (f1, _) = drain(NetworkKind::BusSet { width: 1 }, 8, &sorted, tm);
        prop_assert!(f1 + 1e-9 >= sorted.len() as f64 * tm);
        // And every other network is at least as fast as the single bus.
        prop_assert!(finish <= f1 + 1e-9);
    }
}
