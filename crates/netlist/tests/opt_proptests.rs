//! Property tests for the static optimizer (`analyze::opt`).
//!
//! Random layered DAG circuits with deliberately injected constant
//! rails, structural duplicates, and buffer/inverter chains pin three
//! optimizer-wide claims over many shapes:
//!
//! 1. **Fixpoint speed** — the ternary abstract interpretation of a
//!    feed-forward circuit stabilizes within `depth + 2` Jacobi rounds
//!    (`depth + 1` to propagate, one to detect no change), on every
//!    rewrite pass.
//! 2. **Findings are realized** — every component an LS0006–LS0009
//!    finding names was actually rewritten: it is either gone from the
//!    optimized netlist or survives in a different form. The optimizer
//!    never reports a rewrite it did not perform.
//! 3. **Idempotence** — a second run over the optimized netlist makes
//!    zero rewrites, reports nothing, and returns an identical netlist.
//!
//! Circuit depth stays far below the engine's 128 power-up relaxation
//! rounds, the regime in which the optimizer's constant-propagation
//! soundness argument applies (see `DESIGN.md` §14).

use logicsim_netlist::analyze::{opt, Levelization};
use logicsim_netlist::{CompId, Delay, GateKind, Level, Netlist, NetlistBuilder};
use proptest::prelude::*;

/// Gate alphabet for the random fabric (all commutative multi-input
/// kinds, so duplicate injection can also permute inputs).
const KINDS: [GateKind; 6] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
];

/// Builds a layered random DAG seeded with supply rails (constant
/// fodder for LS0006), occasional exact-duplicate gates (LS0007), and a
/// buffer/inverter tail (LS0008). Gates read the most recent net plus
/// one arbitrary earlier net, so the netlist is connected front to back
/// and its depth is bounded by the gate count.
fn build_circuit(picks: &[(u8, u8, u8)], chain: u8) -> Netlist {
    let mut b = NetlistBuilder::new("optprop");
    let zero = b.net("gnd");
    b.supply(zero, Level::Zero);
    let one = b.net("vdd");
    b.supply(one, Level::One);
    let mut nets = vec![b.input("a"), b.input("b"), zero, one];
    for &(src, kind_sel, dup) in picks {
        let prev = *nets.last().unwrap();
        let other = nets[src as usize % nets.len()];
        let kind = KINDS[kind_sel as usize % KINDS.len()];
        let out = b.fresh("g");
        b.gate(kind, &[prev, other], out, Delay::uniform(1));
        if dup % 4 == 0 {
            // An exact structural duplicate on its own net; later gates
            // may pick it up as an operand, or the cone prune eats it.
            let twin = b.fresh("t");
            b.gate(kind, &[prev, other], twin, Delay::uniform(1));
            nets.push(twin);
        }
        nets.push(out);
    }
    let mut cur = *nets.last().unwrap();
    for i in 0..chain % 8 {
        let next = b.fresh("c");
        let kind = if i % 2 == 0 {
            GateKind::Not
        } else {
            GateKind::Buf
        };
        b.gate(kind, &[cur], next, Delay::uniform(1));
        cur = next;
    }
    b.mark_output(cur);
    b.finish().expect("random circuit is structurally valid")
}

fn picks() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..40)
}

proptest! {
    #[test]
    fn absint_reaches_fixpoint_within_depth_plus_two(picks in picks(), chain in any::<u8>()) {
        let n = build_circuit(&picks, chain);
        let depth = Levelization::compute(&n).max_depth();
        let o = opt::optimize(&n);
        // `absint_rounds` is the max over all rewrite passes; rewrites
        // never deepen the circuit, so the original depth bounds every
        // pass.
        prop_assert!(
            o.report.absint_rounds <= depth + 2,
            "absint took {} rounds on a depth-{depth} DAG",
            o.report.absint_rounds
        );
    }

    #[test]
    fn every_finding_is_realized_by_a_rewrite(picks in picks(), chain in any::<u8>()) {
        let n = build_circuit(&picks, chain);
        let o = opt::optimize(&n);
        for finding in &o.report.findings {
            prop_assert!(
                !finding.components.is_empty(),
                "{}: finding names no components",
                finding.code.as_str()
            );
            for &c in &finding.components {
                let realized = match o.comp_map[c.index()] {
                    // Removed outright (fold victims, duplicates, cone).
                    None => true,
                    // Survives: must have been rewritten in place.
                    Some(new) => o.netlist.component(new) != n.component(c),
                };
                prop_assert!(
                    realized,
                    "{}: component c{} is reported but unchanged",
                    finding.code.as_str(),
                    c.index()
                );
            }
        }
    }

    #[test]
    fn optimize_is_idempotent(picks in picks(), chain in any::<u8>()) {
        let n = build_circuit(&picks, chain);
        let once = opt::optimize(&n);
        let twice = opt::optimize(&once.netlist);
        prop_assert_eq!(
            twice.report.total_rewrites(), 0,
            "second run still rewrote: {:?}", twice.report
        );
        prop_assert!(twice.report.findings.is_empty());
        prop_assert_eq!(&twice.netlist, &once.netlist);
        // And the identity map: nothing removed, nothing renumbered.
        for (i, m) in twice.comp_map.iter().enumerate() {
            prop_assert_eq!(*m, Some(CompId(i as u32)));
        }
    }
}
