//! Property tests for the value algebra and the text format.

use logicsim_netlist::text;
use logicsim_netlist::{Delay, GateKind, Level, NetlistBuilder, Signal, Strength};
use proptest::prelude::*;

fn any_level() -> impl Strategy<Value = Level> {
    prop_oneof![Just(Level::Zero), Just(Level::One), Just(Level::X)]
}

fn any_strength() -> impl Strategy<Value = Strength> {
    prop_oneof![
        Just(Strength::HighZ),
        Just(Strength::Resistive),
        Just(Strength::Weak),
        Just(Strength::Strong),
        Just(Strength::Supply),
    ]
}

fn any_signal() -> impl Strategy<Value = Signal> {
    (any_level(), any_strength()).prop_map(|(l, s)| Signal::new(l, s))
}

proptest! {
    #[test]
    fn and_or_commutative(a in any_level(), b in any_level()) {
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        prop_assert_eq!(a.xor(b), b.xor(a));
    }

    #[test]
    fn and_or_associative(a in any_level(), b in any_level(), c in any_level()) {
        prop_assert_eq!(a.and(b).and(c), a.and(b.and(c)));
        prop_assert_eq!(a.or(b).or(c), a.or(b.or(c)));
    }

    #[test]
    fn demorgan_with_x(a in any_level(), b in any_level()) {
        // De Morgan holds even through X because and/or/not treat X
        // symmetrically.
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    #[test]
    fn resolve_is_a_semilattice(a in any_signal(), b in any_signal(), c in any_signal()) {
        // Commutative, associative, idempotent: signal resolution is a
        // join, so the switch solver's fixpoint is order-independent.
        prop_assert_eq!(a.resolve(b), b.resolve(a));
        prop_assert_eq!(a.resolve(b).resolve(c), a.resolve(b.resolve(c)));
        prop_assert_eq!(a.resolve(a), a);
    }

    #[test]
    fn resolve_never_weakens(a in any_signal(), b in any_signal()) {
        let r = a.resolve(b);
        prop_assert!(r.strength >= a.strength.max(b.strength).min(r.strength));
        prop_assert_eq!(r.strength, a.strength.max(b.strength));
    }

    #[test]
    fn through_switch_never_strengthens(s in any_signal()) {
        prop_assert!(s.through_switch().strength <= s.strength);
    }

    #[test]
    fn gate_evaluation_x_is_pessimistic(
        kind in prop_oneof![
            Just(GateKind::And), Just(GateKind::Or),
            Just(GateKind::Nand), Just(GateKind::Nor),
            Just(GateKind::Xor), Just(GateKind::Xnor),
        ],
        inputs in proptest::collection::vec(any_level(), 2..6),
    ) {
        // Replacing any X input with 0 or 1 must yield either the same
        // output or a refinement of X — never flip a known output.
        let base = kind.evaluate(&inputs).level;
        for (i, l) in inputs.iter().enumerate() {
            if *l == Level::X {
                for repl in [Level::Zero, Level::One] {
                    let mut v = inputs.clone();
                    v[i] = repl;
                    let refined = kind.evaluate(&v).level;
                    if base != Level::X {
                        prop_assert_eq!(refined, base,
                            "refining X input {} changed known output", i);
                    }
                }
            }
        }
    }

    #[test]
    fn random_gate_netlists_round_trip_through_text(
        ops in proptest::collection::vec((0u8..6, 0usize..8, 0usize..8, 1u32..4), 1..30)
    ) {
        // Build a random (valid-by-construction) gate-level netlist.
        let mut b = NetlistBuilder::new("random");
        let mut nets = vec![b.input("i0"), b.input("i1")];
        for (kind_sel, x, y, d) in ops {
            let kind = [
                GateKind::And, GateKind::Or, GateKind::Nand,
                GateKind::Nor, GateKind::Xor, GateKind::Not,
            ][kind_sel as usize % 6];
            let a = nets[x % nets.len()];
            let bb = nets[y % nets.len()];
            let out = b.fresh("w");
            if kind == GateKind::Not {
                b.gate(kind, &[a], out, Delay::uniform(d));
            } else {
                b.gate(kind, &[a, bb], out, Delay::uniform(d));
            }
            nets.push(out);
        }
        let last = *nets.last().expect("nonempty");
        b.mark_output(last);
        let n = b.finish().expect("valid by construction");
        let text1 = text::serialize(&n);
        let n2 = text::parse(&text1).expect("serializer output parses");
        prop_assert_eq!(n.num_gates(), n2.num_gates());
        prop_assert_eq!(n.num_nets(), n2.num_nets());
        // Second round trip is a fixpoint.
        let text2 = text::serialize(&n2);
        prop_assert_eq!(text1, text2);
    }
}
