//! Property tests for the static netlist analyzer behind `lsim lint`.
//!
//! The analyzer's core claims are structural: feed-forward netlists
//! never trip the cycle check, an injected zero-delay back-edge always
//! does, and liveness never flags logic that feeds a primary output.
//! Random layered DAGs exercise those claims over many shapes.

use logicsim_netlist::analyze::{self, live_components, Code, Levelization};
use logicsim_netlist::{Delay, GateKind, Netlist, NetlistBuilder};
use proptest::prelude::*;

/// Builds a layered random DAG. Gate `i` reads the most recently
/// created net (keeping the netlist connected front-to-back, so every
/// gate lies on the path to the single output) plus one arbitrary
/// earlier net chosen by `src`. Feed-forward structure is guaranteed by
/// construction: gates only ever read nets that already exist.
fn build_dag(picks: &[(u8, u8)], zero_delays: bool) -> Netlist {
    let mut b = NetlistBuilder::new("dag");
    let mut nets = vec![b.input("a"), b.input("b")];
    for &(src, d) in picks {
        let prev = *nets.last().unwrap();
        let other = nets[src as usize % nets.len()];
        let out = b.fresh("g");
        let delay = if zero_delays {
            // Constructible only field-by-field; the lint exists to
            // catch the harmful uses.
            Delay { rise: 0, fall: 0 }
        } else {
            Delay::rise_fall(u32::from(d % 3) + 1, u32::from(d % 2) + 1)
        };
        b.gate(GateKind::And, &[prev, other], out, delay);
        nets.push(out);
    }
    b.mark_output(*nets.last().unwrap());
    b.finish().expect("random DAG is structurally valid")
}

fn picks() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40)
}

proptest! {
    #[test]
    fn random_dags_are_cycle_free(picks in picks(), zero in any::<bool>()) {
        let n = build_dag(&picks, zero);
        let report = analyze::analyze(&n);
        // Even with all-zero delays a DAG cannot livelock: LS0001 is
        // about cycles, not about zero delays per se.
        prop_assert!(
            !report.diagnostics.iter().any(|d| d.code == Code::Ls0001CombinationalCycle),
            "spurious cycle in a DAG: {}",
            report.render(&n)
        );
        prop_assert!(!report.has_errors());
    }

    #[test]
    fn injected_zero_delay_back_edge_is_caught(picks in picks(), k in any::<u8>()) {
        // Same DAG, all gates zero-delay, plus one feedback net driven
        // from the final output and read by a randomly chosen gate: the
        // chain spine makes every gate from that point an ancestor of
        // the output, closing a zero-time cycle.
        let mut b = NetlistBuilder::new("looped");
        let zero = Delay { rise: 0, fall: 0 };
        let feedback = b.net("feedback");
        let mut nets = vec![b.input("a"), feedback];
        let victim = k as usize % picks.len();
        for (i, &(src, _)) in picks.iter().enumerate() {
            let prev = *nets.last().unwrap();
            let other = if i == victim {
                feedback
            } else {
                nets[src as usize % nets.len()]
            };
            let out = b.fresh("g");
            b.gate(GateKind::And, &[prev, other], out, zero);
            nets.push(out);
        }
        let last = *nets.last().unwrap();
        b.gate(GateKind::Buf, &[last], feedback, zero);
        b.mark_output(last);
        let n = b.finish().expect("looped netlist is structurally valid");
        let report = analyze::analyze(&n);
        prop_assert!(
            report.diagnostics.iter().any(|d| d.code == Code::Ls0001CombinationalCycle),
            "missed an injected zero-delay cycle: {}",
            report.render(&n)
        );
        prop_assert!(report.has_errors());
    }

    #[test]
    fn liveness_never_flags_on_path_logic(picks in picks()) {
        // Every gate in the chain DAG feeds its successor and the last
        // net is the output, so everything is reachable: zero LS0003.
        let n = build_dag(&picks, false);
        let live = live_components(&n);
        prop_assert!(live.iter().all(|&l| l), "on-path component marked dead");
        let report = analyze::analyze(&n);
        prop_assert!(
            !report.diagnostics.iter().any(|d| d.code == Code::Ls0003DeadLogic),
            "spurious dead-logic finding: {}",
            report.render(&n)
        );
    }

    #[test]
    fn levelization_is_bounded_and_total(picks in picks()) {
        let n = build_dag(&picks, false);
        let levels = Levelization::compute(&n);
        // Depth can never exceed the gate count, and the histogram
        // partitions the nets.
        prop_assert!(levels.max_depth() as usize <= picks.len());
        let histogram = levels.depth_histogram();
        prop_assert_eq!(histogram.iter().sum::<usize>(), n.num_nets());
    }
}
