//! Property tests for the monotone dataflow engine (`analyze::dataflow`).
//!
//! The engine's contract has four load-bearing claims, each checked
//! here over random circuit shapes:
//!
//! 1. **Termination within the height bound** — no net's value changes
//!    more than `height + 1` times (the `+1` is the widening jump),
//!    and total transfer applications respect the documented
//!    `seeds + changes * max_fanout` bound, even with feedback.
//! 2. **Monotonicity** — joining extra information into the input
//!    vector never shrinks any transfer output (bigger in ⇒ bigger
//!    out), which is what makes the worklist fixpoint *least*.
//! 3. **Unit-interval activity** — fixpoint densities, probability
//!    intervals, and the expected-case re-propagation all stay inside
//!    `[0, 1]`.
//! 4. **Ported-absint equivalence** — the ternary analysis on the
//!    worklist engine computes exactly what the old `opt::absint`
//!    dense Jacobi iteration computed, on random circuits and on all
//!    five paper benchmarks.

use logicsim_circuits::Benchmark;
use logicsim_netlist::analyze::dataflow::activity::{Activity, ActivityAnalysis, NetActivity};
use logicsim_netlist::analyze::dataflow::seeds::{InputSeed, InputSeeds};
use logicsim_netlist::analyze::dataflow::ternary::TernaryAnalysis;
use logicsim_netlist::analyze::dataflow::{solve, Analysis};
use logicsim_netlist::{Delay, GateKind, Netlist, NetlistBuilder};
use proptest::prelude::*;

/// Builds a random layered netlist from `picks`, keeping every gate on
/// the path to the output (same construction as `analyze_proptests`).
/// With `feedback`, a pre-declared net is read by the first gate and
/// driven by a closing inverter, so the circuit contains a delayed
/// loop — the shape that forces the engine to widen.
fn build_circuit(picks: &[(u8, u8)], feedback: bool) -> Netlist {
    let mut b = NetlistBuilder::new("prop");
    let mut nets = vec![b.input("a"), b.input("b")];
    let fb = if feedback {
        let fb = b.net("fb");
        nets.push(fb);
        Some(fb)
    } else {
        None
    };
    for &(src, kind) in picks {
        let prev = *nets.last().unwrap();
        let other = nets[src as usize % nets.len()];
        let out = b.fresh("g");
        let kind = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand][kind as usize % 4];
        b.gate(kind, &[prev, other], out, Delay::uniform(1));
        nets.push(out);
    }
    let last = *nets.last().unwrap();
    if let Some(fb) = fb {
        b.gate(GateKind::Not, &[last], fb, Delay::uniform(1));
    }
    b.mark_output(last);
    b.finish().expect("random netlist is structurally valid")
}

fn picks() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40)
}

/// Input seeds with proptest-chosen densities/levels for the two
/// primary inputs.
fn seeds_for(netlist: &Netlist, raw: (u16, u16)) -> InputSeeds {
    let mut seeds = InputSeeds::unconstrained(netlist);
    for (i, &net) in netlist.inputs().iter().enumerate() {
        let r = if i % 2 == 0 { raw.0 } else { raw.1 };
        seeds.set(
            net,
            InputSeed {
                density: f64::from(r % 1000) / 1000.0,
                ..InputSeed::default()
            },
        );
    }
    seeds
}

/// The activity lattice's partial order: `a ⊑ b` iff `b`'s interval
/// contains `a`'s and `b`'s density is at least `a`'s. Bottom (the
/// empty interval) is below everything.
fn leq(a: NetActivity, b: NetActivity) -> bool {
    if a.is_empty() {
        return true;
    }
    !b.is_empty() && b.p1_lo <= a.p1_lo && a.p1_hi <= b.p1_hi && a.density <= b.density
}

/// The old `opt::absint` algorithm: dense Jacobi iteration — every
/// round recomputes every net from the previous round's snapshot,
/// stopping when a full round changes nothing. No worklist, no
/// widening; on a monotone transfer of bounded height it reaches the
/// same least fixpoint as the engine.
fn jacobi<A: Analysis>(analysis: &A) -> Vec<A::Value> {
    let n = analysis.num_nets();
    let mut values: Vec<A::Value> = (0..n as u32).map(|i| analysis.bottom(i)).collect();
    // Each round either strictly raises some net or is the last; with
    // height h every net rises at most h times, so rounds are bounded.
    let max_rounds = n as u32 * (analysis.height() + 1) + 2;
    for _ in 0..max_rounds {
        let mut changed = false;
        let next: Vec<A::Value> = (0..n as u32)
            .map(|net| {
                let out = analysis.transfer(net, &values);
                let joined = analysis.join(&values[net as usize], &out);
                changed |= joined != values[net as usize];
                joined
            })
            .collect();
        values = next;
        if !changed {
            return values;
        }
    }
    panic!("jacobi failed to converge within the height bound");
}

proptest! {
    /// Claim 1: the engine terminates inside its documented effort
    /// bounds on circuits with and without feedback, and feed-forward
    /// circuits never widen.
    #[test]
    fn terminates_within_the_height_bound(
        p in picks(),
        feedback in any::<bool>(),
        raw in (any::<u16>(), any::<u16>()),
    ) {
        let n = build_circuit(&p, feedback);
        let seeds = seeds_for(&n, raw);
        let analysis = ActivityAnalysis::new(&n, &seeds);
        let solution = solve(&analysis);
        prop_assert!(solution.max_changes <= analysis.height() + 1);
        // transfers <= seeds + total_changes * max_fanout, with
        // total_changes <= nets * (height + 1).
        let nets = n.num_nets() as u64;
        let mut max_dep = 1u64;
        for net in 0..n.num_nets() as u32 {
            let mut deps = 0u64;
            analysis.for_each_dependent(net, &mut |_| deps += 1);
            max_dep = max_dep.max(deps);
        }
        let bound = nets + nets * u64::from(analysis.height() + 1) * max_dep;
        prop_assert!(solution.transfers <= bound,
            "transfers {} > bound {bound}", solution.transfers);
        if !feedback {
            prop_assert_eq!(solution.widened, 0);
        }
    }

    /// Claim 2: the activity transfer is monotone — joining extra
    /// information into any one net's value never shrinks any output.
    #[test]
    fn activity_transfer_is_monotone(
        p in picks(),
        feedback in any::<bool>(),
        raw in (any::<u16>(), any::<u16>()),
        bump_at in any::<u16>(),
        noise in (any::<u16>(), any::<u16>(), any::<u16>()),
    ) {
        let n = build_circuit(&p, feedback);
        let seeds = seeds_for(&n, raw);
        let analysis = ActivityAnalysis::new(&n, &seeds);
        let v = solve(&analysis).values;
        let k = bump_at as usize % v.len();
        let lo = noise.0 % 1025;
        let bump = NetActivity {
            p1_lo: lo,
            p1_hi: lo + (noise.1 % (1025 - lo)),
            density: noise.2 % 1025,
        };
        let mut w = v.clone();
        w[k] = w[k].join(bump);
        for net in 0..n.num_nets() as u32 {
            let a = analysis.transfer(net, &v);
            let b = analysis.transfer(net, &w);
            prop_assert!(leq(a, b), "net {net}: {a:?} !<= {b:?}");
        }
    }

    /// Claim 2, lattice half: `join` is a least upper bound operator.
    #[test]
    fn join_is_an_upper_bound(
        xs in (any::<u16>(), any::<u16>(), any::<u16>()),
        ys in (any::<u16>(), any::<u16>(), any::<u16>()),
    ) {
        let mk = |(lo, hi, d): (u16, u16, u16)| NetActivity {
            p1_lo: lo % 1025,
            p1_hi: hi % 1025,
            density: d % 1025,
        };
        let (a, b) = (mk(xs), mk(ys));
        // Every empty interval is the same bottom element, whatever
        // its lo/hi bytes say — compare up to that equivalence.
        let same = |x: NetActivity, y: NetActivity| {
            (x.is_empty() && y.is_empty()) || x == y
        };
        prop_assert!(same(a.join(a), a));
        prop_assert!(same(a.join(b), b.join(a)));
        prop_assert!(leq(a, a.join(b)));
        prop_assert!(leq(b, a.join(b)));
    }

    /// Claim 3: every published activity number lives in `[0, 1]` —
    /// the fixpoint bounds and the expected-case re-propagation alike.
    #[test]
    fn activity_stays_in_the_unit_interval(
        p in picks(),
        feedback in any::<bool>(),
        raw in (any::<u16>(), any::<u16>()),
    ) {
        let n = build_circuit(&p, feedback);
        let seeds = seeds_for(&n, raw);
        let activity = Activity::analyze(&n, &seeds);
        for i in 0..n.num_nets() {
            let net = logicsim_netlist::NetId(i as u32);
            let d = activity.density(net);
            prop_assert!((0.0..=1.0).contains(&d), "net {i} density {d}");
            let (lo, hi) = activity.net(net).p1();
            prop_assert!(lo >= 0.0 && hi <= 1.0 && lo <= hi, "net {i}: [{lo}, {hi}]");
        }
        for (i, &e) in activity.expected_densities(&n, &seeds).iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&e), "net {i} expected {e}");
        }
    }

    /// Claim 4 on random circuits: the worklist engine and the dense
    /// Jacobi reference agree net-for-net on the ternary lattice.
    #[test]
    fn ternary_engine_matches_jacobi_on_random_circuits(
        p in picks(),
        feedback in any::<bool>(),
    ) {
        let n = build_circuit(&p, feedback);
        let analysis = TernaryAnalysis::new(&n);
        prop_assert_eq!(solve(&analysis).values, jacobi(&analysis));
    }
}

/// Claim 4 on the real corpus: on all five paper benchmarks the ported
/// ternary analysis reproduces the old `opt::absint` dense-iteration
/// results exactly.
#[test]
fn ternary_engine_matches_jacobi_on_all_five_benchmarks() {
    for bench in Benchmark::ALL {
        let netlist = bench.build_default().netlist;
        let analysis = TernaryAnalysis::new(&netlist);
        let engine = solve(&analysis);
        let reference = jacobi(&analysis);
        assert_eq!(
            engine.values,
            reference,
            "{} diverges from the absint reference",
            bench.paper_name()
        );
        assert_eq!(
            engine.widened,
            0,
            "{}: monotone transfer must not widen",
            bench.paper_name()
        );
    }
}
