//! Incremental construction and validation of [`Netlist`]s.

use crate::component::{CompId, Component, Delay, GateKind, NetId, SwitchKind};
use crate::names::NetNames;
use crate::netlist::Netlist;
use crate::value::Level;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors detected when finalizing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A gate was declared with an input count outside its kind's arity.
    BadArity {
        /// The offending component.
        comp: CompId,
        /// Gate kind.
        kind: GateKind,
        /// Number of inputs supplied.
        got: usize,
    },
    /// A net is read by some component but never driven by any gate,
    /// switch, input, pull, or supply.
    UndrivenNet {
        /// The floating net.
        net: NetId,
        /// Its name.
        name: String,
    },
    /// A net id referenced by a component was never declared.
    UnknownNet {
        /// The undeclared net.
        net: NetId,
    },
    /// The netlist has no components.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::BadArity { comp, kind, got } => {
                write!(f, "component {comp} ({kind}) has invalid input count {got}")
            }
            BuildError::UndrivenNet { net, name } => {
                write!(f, "net {net} ({name}) is read but never driven")
            }
            BuildError::UnknownNet { net } => write!(f, "net {net} was never declared"),
            BuildError::Empty => write!(f, "netlist has no components"),
        }
    }
}

impl Error for BuildError {}

/// Builder for [`Netlist`].
///
/// Nets are declared with [`NetlistBuilder::net`] / [`NetlistBuilder::input`],
/// components added with [`NetlistBuilder::gate`] /
/// [`NetlistBuilder::switch`] etc., and the finished circuit is validated
/// and indexed by [`NetlistBuilder::finish`].
///
/// # Example
///
/// ```
/// use logicsim_netlist::{NetlistBuilder, GateKind, Delay};
/// # fn main() -> Result<(), logicsim_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("and2");
/// let (a, y) = (b.input("a"), b.net("y"));
/// let a2 = b.input("a2");
/// b.gate(GateKind::And, &[a, a2], y, Delay::uniform(2));
/// let netlist = b.finish()?;
/// assert_eq!(netlist.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetlistBuilder {
    name: String,
    components: Vec<Component>,
    net_names: NetNames,
    name_index: HashMap<String, NetId>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    anon_counter: u64,
}

impl NetlistBuilder {
    /// Starts a new netlist with the given circuit name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            ..NetlistBuilder::default()
        }
    }

    /// Declares (or retrieves, if the name exists) a named net.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(&id) = self.name_index.get(&name) {
            return id;
        }
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(&name);
        self.name_index.insert(name, id);
        id
    }

    /// Declares a net with a formatted name *without* interning it in the
    /// duplicate-name index: the bulk-generation fast path. The caller
    /// guarantees uniqueness (the tiled generator derives names from the
    /// tile index, so collisions are impossible); a duplicate would
    /// silently create a second net rather than unify.
    pub fn bulk_net(&mut self, name: fmt::Arguments<'_>) -> NetId {
        NetId(self.net_names.push_fmt(name) as u32)
    }

    /// Preallocates room for `nets` more nets (of about `name_bytes`
    /// total name length) and `components` more components, so bulk
    /// generation does not grow the arenas incrementally.
    pub fn reserve(&mut self, nets: usize, name_bytes: usize, components: usize) {
        self.net_names.reserve(nets, name_bytes);
        self.components.reserve(components);
    }

    /// Appends an already-constructed component; returns its id. Input
    /// components are recorded in the primary-input list exactly as
    /// [`NetlistBuilder::input`] would. Validation still happens in
    /// [`NetlistBuilder::finish`].
    pub fn add_component(&mut self, comp: Component) -> CompId {
        let id = CompId(self.components.len() as u32);
        if let Component::Input { net } = comp {
            self.inputs.push(net);
        }
        self.components.push(comp);
        id
    }

    /// Declares a fresh anonymous net (unique auto-generated name).
    pub fn fresh(&mut self, hint: &str) -> NetId {
        self.anon_counter += 1;
        let name = format!("_{hint}_{}", self.anon_counter);
        self.net(name)
    }

    /// Declares a primary input: creates the net and an
    /// [`Component::Input`] driver for it.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let net = self.net(name);
        self.components.push(Component::Input { net });
        self.inputs.push(net);
        net
    }

    /// Marks a net as an observable output.
    pub fn mark_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Adds a gate; returns its component id.
    pub fn gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
        delay: Delay,
    ) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.components.push(Component::Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay,
        });
        id
    }

    /// Adds a bidirectional MOS switch; returns its component id.
    pub fn switch(&mut self, kind: SwitchKind, control: NetId, a: NetId, b: NetId) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.components.push(Component::Switch {
            kind,
            control,
            a,
            b,
        });
        id
    }

    /// Adds a CMOS transmission gate: an NMOS controlled by `control` and
    /// a PMOS controlled by `control_n`, both bridging `a`-`b`. Returns
    /// the two switch ids.
    pub fn transmission_gate(
        &mut self,
        control: NetId,
        control_n: NetId,
        a: NetId,
        b: NetId,
    ) -> (CompId, CompId) {
        let n = self.switch(SwitchKind::Nmos, control, a, b);
        let p = self.switch(SwitchKind::Pmos, control_n, a, b);
        (n, p)
    }

    /// Adds a resistive pull toward `level` on `net` (nmos depletion load
    /// when `level` is `One`).
    pub fn pull(&mut self, net: NetId, level: Level) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.components.push(Component::Pull { net, level });
        id
    }

    /// Adds a supply rail at `level` on `net`.
    pub fn supply(&mut self, net: NetId, level: Level) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.components.push(Component::Supply { net, level });
        id
    }

    /// Number of components added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` when no components have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Validates the circuit and builds the indexed [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when a gate violates its kind's arity, a
    /// referenced net was never declared, a read net has no driver of any
    /// kind, or the netlist is empty.
    pub fn finish(self) -> Result<Netlist, BuildError> {
        if self.components.is_empty() {
            return Err(BuildError::Empty);
        }
        let num_nets = self.net_names.len();
        for (i, comp) in self.components.iter().enumerate() {
            let id = CompId(i as u32);
            if let Component::Gate { kind, inputs, .. } = comp {
                let (min, max) = kind.arity();
                let ok = inputs.len() >= min && max.is_none_or(|m| inputs.len() <= m);
                if !ok {
                    return Err(BuildError::BadArity {
                        comp: id,
                        kind: *kind,
                        got: inputs.len(),
                    });
                }
            }
            let mut bad: Option<NetId> = None;
            let mut check = |net: NetId| {
                if net.index() >= num_nets && bad.is_none() {
                    bad = Some(net);
                }
            };
            comp.for_each_read(&mut check);
            comp.for_each_driven(&mut check);
            if let Some(net) = bad {
                return Err(BuildError::UnknownNet { net });
            }
        }
        // Indices are built arena-backed in O(components): a count /
        // prefix-sum / fill pass, no per-net vectors.
        let netlist = Netlist::from_parts(
            self.name,
            self.components,
            self.net_names,
            self.inputs,
            self.outputs,
        );
        // A net that is read must be drivable by something. Switch channel
        // terminals count both as reads and potential drives, so a pure
        // switch network never trips this; a gate input left floating does.
        for i in 0..num_nets {
            let net = NetId(i as u32);
            if !netlist.fanout(net).is_empty() && netlist.drivers(net).is_empty() {
                return Err(BuildError::UndrivenNet {
                    net,
                    name: netlist.net_name(net).to_string(),
                });
            }
        }
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_net_names_unify() {
        let mut b = NetlistBuilder::new("t");
        let a1 = b.net("a");
        let a2 = b.net("a");
        assert_eq!(a1, a2);
        assert_ne!(a1, b.net("b"));
    }

    #[test]
    fn fresh_nets_are_unique() {
        let mut b = NetlistBuilder::new("t");
        let n1 = b.fresh("w");
        let n2 = b.fresh("w");
        assert_ne!(n1, n2);
    }

    #[test]
    fn empty_netlist_rejected() {
        assert_eq!(NetlistBuilder::new("t").finish(), Err(BuildError::Empty));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::And, &[a], y, Delay::default());
        match b.finish() {
            Err(BuildError::BadArity { kind, got, .. }) => {
                assert_eq!(kind, GateKind::And);
                assert_eq!(got, 1);
            }
            other => panic!("expected BadArity, got {other:?}"),
        }
    }

    #[test]
    fn undriven_read_net_rejected() {
        let mut b = NetlistBuilder::new("t");
        let floating = b.net("floating");
        let y = b.net("y");
        b.gate(GateKind::Not, &[floating], y, Delay::default());
        match b.finish() {
            Err(BuildError::UndrivenNet { name, .. }) => assert_eq!(name, "floating"),
            other => panic!("expected UndrivenNet, got {other:?}"),
        }
    }

    #[test]
    fn pull_satisfies_driver_requirement() {
        let mut b = NetlistBuilder::new("t");
        let n = b.net("pulled");
        let y = b.net("y");
        b.pull(n, Level::One);
        b.gate(GateKind::Not, &[n], y, Delay::default());
        assert!(b.finish().is_ok());
    }

    #[test]
    fn switch_network_self_driving() {
        let mut b = NetlistBuilder::new("t");
        let ctl = b.input("ctl");
        let a = b.input("a");
        let shared = b.net("shared");
        b.switch(SwitchKind::Nmos, ctl, a, shared);
        let n = b.finish().unwrap();
        assert_eq!(n.num_switches(), 1);
    }

    #[test]
    fn transmission_gate_adds_two_switches() {
        let mut b = NetlistBuilder::new("t");
        let c = b.input("c");
        let cn = b.input("cn");
        let a = b.input("a");
        let z = b.net("z");
        b.transmission_gate(c, cn, a, z);
        let n = b.finish().unwrap();
        assert_eq!(n.num_switches(), 2);
    }

    #[test]
    fn bulk_nets_and_raw_components_round_trip() {
        let mut b = NetlistBuilder::new("bulk");
        b.reserve(3, 16, 3);
        let a = b.bulk_net(format_args!("t{}|a", 0));
        let y = b.bulk_net(format_args!("t{}|y", 0));
        b.add_component(Component::Input { net: a });
        b.add_component(Component::Gate {
            kind: GateKind::Not,
            inputs: vec![a],
            output: y,
            delay: Delay::default(),
        });
        b.mark_output(y);
        let n = b.finish().unwrap();
        assert_eq!(n.net_name(a), "t0|a");
        assert_eq!(n.net_name(y), "t0|y");
        assert_eq!(n.inputs(), &[a]);
        assert_eq!(n.fanout(a).len(), 1);
        assert_eq!(n.drivers(y).len(), 1);
    }

    #[test]
    fn bulk_nets_skip_interning() {
        let mut b = NetlistBuilder::new("bulk");
        let n1 = b.bulk_net(format_args!("same"));
        let n2 = b.bulk_net(format_args!("same"));
        // No unification: bulk nets trust the caller for uniqueness.
        assert_ne!(n1, n2);
    }

    #[test]
    fn error_display_is_informative() {
        let e = BuildError::UndrivenNet {
            net: NetId(3),
            name: "foo".into(),
        };
        assert!(e.to_string().contains("foo"));
    }
}
