//! Arena-backed net-name storage.
//!
//! A million-component netlist has a million-plus net names; storing each
//! as its own `String` costs one heap allocation (and one cache-missing
//! pointer chase) per net. [`NetNames`] packs every name into a single
//! byte buffer addressed through an offsets array, so bulk construction
//! is one amortized `memcpy` per name and the whole table lives in two
//! contiguous allocations.
//!
//! Serialization round-trips as a plain sequence of strings, so the
//! [`crate::Netlist`] serialized shape is unchanged from the earlier
//! `Vec<String>` representation.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fmt::Write as _;

/// A string arena indexed by dense net ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetNames {
    /// All names concatenated.
    buf: String,
    /// `offsets[i]..offsets[i + 1]` is name `i`; one more entry than names.
    offsets: Vec<u32>,
}

impl Default for NetNames {
    fn default() -> NetNames {
        NetNames {
            buf: String::new(),
            offsets: vec![0],
        }
    }
}

impl NetNames {
    /// An empty table with room for `names` names totalling `bytes` bytes.
    #[must_use]
    pub fn with_capacity(names: usize, bytes: usize) -> NetNames {
        let mut offsets = Vec::with_capacity(names + 1);
        offsets.push(0);
        NetNames {
            buf: String::with_capacity(bytes),
            offsets,
        }
    }

    /// Number of names stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` when no names are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The name at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.buf[lo..hi]
    }

    /// Appends a name, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if the arena would exceed `u32::MAX` bytes.
    pub fn push(&mut self, name: &str) -> usize {
        self.buf.push_str(name);
        self.seal()
    }

    /// Appends a formatted name without materializing a temporary
    /// `String`, returning its index. This is the bulk-generation fast
    /// path: `names.push_fmt(format_args!("t{tile}|{base}"))`.
    ///
    /// # Panics
    ///
    /// Panics if the arena would exceed `u32::MAX` bytes.
    pub fn push_fmt(&mut self, args: fmt::Arguments<'_>) -> usize {
        self.buf.write_fmt(args).expect("writing to a String");
        self.seal()
    }

    /// Reserves room for `names` additional names of `bytes` total size.
    pub fn reserve(&mut self, names: usize, bytes: usize) {
        self.offsets.reserve(names);
        self.buf.reserve(bytes);
    }

    fn seal(&mut self) -> usize {
        let end = u32::try_from(self.buf.len()).expect("net-name arena exceeds u32 bytes");
        self.offsets.push(end);
        self.len() - 1
    }

    /// Iterates over the names in index order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Index of the first name equal to `name` (linear scan).
    #[must_use]
    pub fn position(&self, name: &str) -> Option<usize> {
        self.iter().position(|n| n == name)
    }

    /// Heap bytes held by the arena.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.buf.capacity() + self.offsets.capacity() * std::mem::size_of::<u32>()
    }
}

impl<'a> FromIterator<&'a str> for NetNames {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> NetNames {
        let mut names = NetNames::default();
        for n in iter {
            names.push(n);
        }
        names
    }
}

impl Serialize for NetNames {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|n| Value::String(n.to_string())).collect())
    }
}

impl Deserialize for NetNames {
    fn from_value(value: &Value) -> Result<NetNames, serde::Error> {
        let rows = value
            .as_array()
            .ok_or_else(|| serde::Error::custom("expected an array of net names"))?;
        let mut names = NetNames::with_capacity(rows.len(), 0);
        for row in rows {
            let s = row
                .as_str()
                .ok_or_else(|| serde::Error::custom("net name must be a string"))?;
            names.push(s);
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trip() {
        let mut n = NetNames::default();
        assert!(n.is_empty());
        assert_eq!(n.push("clk"), 0);
        assert_eq!(n.push_fmt(format_args!("t{}|{}", 3, "reset")), 1);
        assert_eq!(n.push(""), 2);
        assert_eq!(n.len(), 3);
        assert_eq!(n.get(0), "clk");
        assert_eq!(n.get(1), "t3|reset");
        assert_eq!(n.get(2), "");
        assert_eq!(n.position("t3|reset"), Some(1));
        assert_eq!(n.position("nope"), None);
        let collected: Vec<&str> = n.iter().collect();
        assert_eq!(collected, vec!["clk", "t3|reset", ""]);
    }

    #[test]
    fn serde_shape_is_a_string_sequence() {
        let n: NetNames = ["a", "b", "c"].into_iter().collect();
        let json = serde_json::to_string(&n).unwrap();
        assert_eq!(json, r#"["a","b","c"]"#);
        let back: NetNames = serde_json::from_str(&json).unwrap();
        assert_eq!(back, n);
    }
}
