//! Circuit characteristics in the format of the paper's Table 4.

use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Fabrication technology of a benchmark circuit (Table 4 "Tech.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// n-channel MOS with depletion pull-ups.
    Nmos,
    /// Complementary MOS.
    Cmos,
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Technology::Nmos => "nmos",
            Technology::Cmos => "cmos",
        })
    }
}

/// Clocking discipline of a benchmark circuit (Table 4 "Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Clocking {
    /// Globally clocked.
    Synchronous,
    /// Handshake / self-timed.
    Asynchronous,
}

impl fmt::Display for Clocking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Clocking::Synchronous => "sync",
            Clocking::Asynchronous => "async",
        })
    }
}

/// One row of the paper's Table 4: structural characteristics of a
/// benchmark circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitCharacteristics {
    /// Circuit name.
    pub name: String,
    /// Fabrication technology.
    pub technology: Technology,
    /// Clocking discipline.
    pub clocking: Clocking,
    /// Number of bidirectional switches.
    pub switches: usize,
    /// Number of unidirectional gates.
    pub gates: usize,
    /// Total simulated components (switches + gates).
    pub total: usize,
    /// Approximate transistor count.
    pub approx_transistors: u64,
    /// Maximum topological logic depth over all nets (levelization).
    pub max_logic_depth: u32,
    /// Net count per logic depth level, indices `0..=max_logic_depth`.
    pub depth_histogram: Vec<usize>,
}

impl CircuitCharacteristics {
    /// Measures a netlist, attaching the declared technology and clocking
    /// (which are design intents, not derivable from structure).
    #[must_use]
    pub fn measure(
        netlist: &Netlist,
        technology: Technology,
        clocking: Clocking,
    ) -> CircuitCharacteristics {
        let levels = crate::analyze::Levelization::compute(netlist);
        CircuitCharacteristics {
            name: netlist.name().to_string(),
            technology,
            clocking,
            switches: netlist.num_switches(),
            gates: netlist.num_gates(),
            total: netlist.num_simulated_components(),
            approx_transistors: netlist.approx_transistors(),
            max_logic_depth: levels.max_depth(),
            depth_histogram: levels.depth_histogram(),
        }
    }
}

impl fmt::Display for CircuitCharacteristics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:<5} {:<5} {:>8} {:>7} {:>7} {:>8} {:>6}",
            self.name,
            self.technology,
            self.clocking,
            self.switches,
            self.gates,
            self.total,
            self.approx_transistors,
            self.max_logic_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, GateKind, NetlistBuilder, SwitchKind};

    #[test]
    fn measure_counts_match() {
        let mut b = NetlistBuilder::new("mix");
        let a = b.input("a");
        let c = b.input("c");
        let y = b.net("y");
        let z = b.net("z");
        b.gate(GateKind::Not, &[a], y, Delay::default());
        b.switch(SwitchKind::Nmos, c, y, z);
        let n = b.finish().unwrap();
        let ch = CircuitCharacteristics::measure(&n, Technology::Nmos, Clocking::Synchronous);
        assert_eq!(ch.switches, 1);
        assert_eq!(ch.gates, 1);
        assert_eq!(ch.total, 2);
        assert_eq!(ch.approx_transistors, 3); // NOT=2 + switch=1
                                              // NOT is depth 1; the switch adds another level on `z`.
        assert_eq!(ch.max_logic_depth, 2);
        assert_eq!(ch.depth_histogram.iter().sum::<usize>(), n.num_nets());
        assert!(ch.to_string().contains("mix"));
    }
}
