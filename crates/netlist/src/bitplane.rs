//! Two-plane bit-packed ternary values: 64 Kleene levels per machine word.
//!
//! The bit-parallel compiled backend (`logicsim-sim`'s `bitpar` module)
//! simulates 64 independent stimulus scenarios at once by packing one
//! [`Level`] per bit position ("lane") into a pair of `u64` planes:
//!
//! * `val`   — bit `i` is `1` iff lane `i` is at level `1`;
//! * `known` — bit `i` is `1` iff lane `i` is at a known level (`0`/`1`).
//!
//! The canonical invariant is `val & !known == 0`: an unknown lane
//! always has a zero `val` bit, so planes can be compared and hashed
//! directly. All kernels below are branch-free and implement exactly
//! the Kleene lattice of [`Level::and`]/[`Level::or`]/[`Level::xor`]/
//! [`Level::not`] (dominant-`0` AND, dominant-`1` OR, `X`-propagating
//! XOR) — the same lattice the abstract interpreter in
//! [`crate::analyze::opt`] folds constants with. A unit test checks
//! every kernel against the scalar truth tables exhaustively.

use crate::value::Level;
use serde::{Deserialize, Serialize};

/// Number of lanes packed into one plane pair.
pub const LANES: usize = 64;

/// A 64-lane ternary value: one [`Level`] per bit position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Plane {
    /// Bit `i` set iff lane `i` is `1` (only meaningful where `known`).
    pub val: u64,
    /// Bit `i` set iff lane `i` is known (`0` or `1`, not `X`).
    pub known: u64,
}

impl Plane {
    /// All lanes at `X`.
    pub const ALL_X: Plane = Plane { val: 0, known: 0 };

    /// Every lane at the same level.
    #[must_use]
    pub fn splat(level: Level) -> Plane {
        match level {
            Level::Zero => Plane { val: 0, known: !0 },
            Level::One => Plane { val: !0, known: !0 },
            Level::X => Plane::ALL_X,
        }
    }

    /// Builds a canonical plane from raw bits (masks `val` by `known`).
    #[must_use]
    pub fn new(val: u64, known: u64) -> Plane {
        Plane {
            val: val & known,
            known,
        }
    }

    /// The level in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    #[must_use]
    pub fn lane(self, lane: usize) -> Level {
        assert!(lane < LANES, "lane {lane} out of range");
        let bit = 1u64 << lane;
        if self.known & bit == 0 {
            Level::X
        } else if self.val & bit != 0 {
            Level::One
        } else {
            Level::Zero
        }
    }

    /// Replaces the level in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    #[must_use]
    pub fn with_lane(self, lane: usize, level: Level) -> Plane {
        assert!(lane < LANES, "lane {lane} out of range");
        let bit = 1u64 << lane;
        match level {
            Level::Zero => Plane {
                val: self.val & !bit,
                known: self.known | bit,
            },
            Level::One => Plane {
                val: self.val | bit,
                known: self.known | bit,
            },
            Level::X => Plane {
                val: self.val & !bit,
                known: self.known & !bit,
            },
        }
    }

    /// Lanes at a known `1`.
    #[must_use]
    #[inline]
    pub fn is_one(self) -> u64 {
        self.val
    }

    /// Lanes at a known `0`.
    #[must_use]
    #[inline]
    pub fn is_zero(self) -> u64 {
        self.known & !self.val
    }

    /// Lane-wise Kleene AND: `0` dominates, `1` is the identity.
    #[must_use]
    #[inline]
    pub fn and(self, other: Plane) -> Plane {
        let val = self.val & other.val;
        Plane {
            val,
            known: val | self.is_zero() | other.is_zero(),
        }
    }

    /// Lane-wise Kleene OR: `1` dominates, `0` is the identity.
    #[must_use]
    #[inline]
    pub fn or(self, other: Plane) -> Plane {
        let val = self.val | other.val;
        Plane {
            val,
            known: val | (self.is_zero() & other.is_zero()),
        }
    }

    /// Lane-wise Kleene XOR: any `X` input makes the lane `X`.
    #[must_use]
    #[inline]
    pub fn xor(self, other: Plane) -> Plane {
        let known = self.known & other.known;
        Plane {
            val: (self.val ^ other.val) & known,
            known,
        }
    }

    /// Lane-wise Kleene NOT: `X` stays `X`. Deliberately an inherent
    /// method (mirroring `and`/`or`/`xor`) rather than `ops::Not`,
    /// which could not express the Kleene semantics through `!`
    /// without surprising readers.
    #[must_use]
    #[inline]
    #[allow(clippy::should_implement_trait)] // Kleene NOT cannot go through `!`
    pub fn not(self) -> Plane {
        Plane {
            val: self.known & !self.val,
            known: self.known,
        }
    }

    /// Restricts the plane to `mask` lanes, forcing the rest to `X`.
    #[must_use]
    #[inline]
    pub fn masked(self, mask: u64) -> Plane {
        Plane {
            val: self.val & mask,
            known: self.known & mask,
        }
    }
}

/// A dense array of [`Plane`]s, one per net, stored as two parallel
/// `u64` arrays (structure-of-arrays, so a sweep kernel streams through
/// two contiguous vectors instead of interleaved pairs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPlanes {
    val: Vec<u64>,
    known: Vec<u64>,
}

impl BitPlanes {
    /// `n` planes, all lanes `X`.
    #[must_use]
    pub fn new(n: usize) -> BitPlanes {
        BitPlanes {
            val: vec![0; n],
            known: vec![0; n],
        }
    }

    /// Number of planes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.val.len()
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.val.is_empty()
    }

    /// The plane at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    #[inline]
    pub fn get(&self, idx: usize) -> Plane {
        Plane {
            val: self.val[idx],
            known: self.known[idx],
        }
    }

    /// Stores a plane at `idx` (canonicalized), returning `true` when
    /// the stored value changed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn set(&mut self, idx: usize, plane: Plane) -> bool {
        let val = plane.val & plane.known;
        let changed = self.val[idx] != val || self.known[idx] != plane.known;
        self.val[idx] = val;
        self.known[idx] = plane.known;
        changed
    }

    /// Sets one lane of one plane.
    ///
    /// # Panics
    ///
    /// Panics if `idx` or `lane` is out of range.
    pub fn set_lane(&mut self, idx: usize, lane: usize, level: Level) {
        let p = self.get(idx).with_lane(lane, level);
        self.set(idx, p);
    }

    /// The level of one lane of one plane.
    ///
    /// # Panics
    ///
    /// Panics if `idx` or `lane` is out of range.
    #[must_use]
    pub fn lane(&self, idx: usize, lane: usize) -> Level {
        self.get(idx).lane(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Level; 3] = [Level::Zero, Level::One, Level::X];

    /// A plane whose lanes 0..9 enumerate every (a, b) level pair.
    fn pair_planes() -> (Plane, Plane) {
        let mut a = Plane::ALL_X;
        let mut b = Plane::ALL_X;
        let mut lane = 0;
        for la in ALL {
            for lb in ALL {
                a = a.with_lane(lane, la);
                b = b.with_lane(lane, lb);
                lane += 1;
            }
        }
        (a, b)
    }

    #[test]
    fn kernels_match_scalar_truth_tables_exhaustively() {
        let (a, b) = pair_planes();
        let mut lane = 0;
        for la in ALL {
            for lb in ALL {
                assert_eq!(a.and(b).lane(lane), la.and(lb), "and {la:?} {lb:?}");
                assert_eq!(a.or(b).lane(lane), la.or(lb), "or {la:?} {lb:?}");
                assert_eq!(a.xor(b).lane(lane), la.xor(lb), "xor {la:?} {lb:?}");
                assert_eq!(a.not().lane(lane), la.not(), "not {la:?}");
                lane += 1;
            }
        }
    }

    #[test]
    fn canonical_invariant_holds_after_every_kernel() {
        let (a, b) = pair_planes();
        for p in [a.and(b), a.or(b), a.xor(b), a.not(), a.masked(0xff)] {
            assert_eq!(p.val & !p.known, 0, "non-canonical plane {p:?}");
        }
    }

    #[test]
    fn splat_and_lane_round_trip() {
        for l in ALL {
            let p = Plane::splat(l);
            for lane in [0, 31, 63] {
                assert_eq!(p.lane(lane), l);
            }
        }
    }

    #[test]
    fn with_lane_only_touches_one_lane() {
        let p = Plane::splat(Level::One).with_lane(7, Level::X);
        assert_eq!(p.lane(7), Level::X);
        assert_eq!(p.lane(6), Level::One);
        assert_eq!(p.lane(8), Level::One);
    }

    #[test]
    fn masked_forces_inactive_lanes_to_x() {
        let p = Plane::splat(Level::One).masked(0b11);
        assert_eq!(p.lane(0), Level::One);
        assert_eq!(p.lane(1), Level::One);
        assert_eq!(p.lane(2), Level::X);
    }

    #[test]
    fn bitplanes_set_reports_changes() {
        let mut planes = BitPlanes::new(4);
        assert!(planes.set(2, Plane::splat(Level::One)));
        assert!(!planes.set(2, Plane::splat(Level::One)));
        assert!(planes.set(2, Plane::splat(Level::Zero)));
        assert_eq!(planes.lane(2, 63), Level::Zero);
        assert_eq!(planes.lane(0, 0), Level::X);
        assert_eq!(planes.len(), 4);
        assert!(!planes.is_empty());
    }

    #[test]
    fn bitplanes_set_canonicalizes_raw_val_bits() {
        let mut planes = BitPlanes::new(1);
        // val bits outside known must be masked off.
        planes.set(
            0,
            Plane {
                val: 0b1010,
                known: 0b0011,
            },
        );
        assert_eq!(planes.get(0).val, 0b0010);
        assert_eq!(planes.lane(0, 3), Level::X);
        assert_eq!(planes.lane(0, 1), Level::One);
    }
}
