//! Compressed sparse row (CSR) views of netlist adjacency.
//!
//! The simulator's hot loop walks fanout lists, driver lists, and gate
//! input pins millions of times per run. [`Netlist`] itself stores its
//! fanout/driver indices in CSR form (see
//! [`crate::netlist::NetAdjacency`]); the [`Csr`] views here re-pack
//! them as bare `u32` arrays for kernels that index by raw id, so a row
//! lookup is two loads from memory that stays hot in cache.
//!
//! The views are derived (not stored on [`Netlist`], whose serialized
//! shape is stable); build them once at simulator construction.

use crate::component::{Component, NetId};
use crate::netlist::Netlist;

/// A compressed sparse row matrix of `u32` items.
///
/// Row `i` is `items[offsets[i] .. offsets[i + 1]]`; `offsets` has one
/// more entry than there are rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an iterator of rows.
    pub fn from_rows<R, I>(rows: R) -> Csr
    where
        R: IntoIterator<Item = I>,
        I: IntoIterator<Item = u32>,
    {
        let mut offsets = vec![0u32];
        let mut items = Vec::new();
        for row in rows {
            items.extend(row);
            offsets.push(u32::try_from(items.len()).expect("CSR exceeds u32 item capacity"));
        }
        Csr { offsets, items }
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The items of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.items[lo..hi]
    }

    /// Length of row `i` without touching the items array.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Total number of stored items.
    #[must_use]
    pub fn num_items(&self) -> usize {
        self.items.len()
    }
}

impl Netlist {
    /// CSR view of per-net fanout (reader component ids per net).
    #[must_use]
    pub fn fanout_csr(&self) -> Csr {
        Csr::from_rows(
            (0..self.num_nets()).map(|i| self.fanout(NetId(i as u32)).iter().map(|c| c.0)),
        )
    }

    /// CSR view of per-net drivers (driver component ids per net).
    #[must_use]
    pub fn drivers_csr(&self) -> Csr {
        Csr::from_rows(
            (0..self.num_nets()).map(|i| self.drivers(NetId(i as u32)).iter().map(|c| c.0)),
        )
    }

    /// CSR view of per-component gate input pins (net ids). Rows for
    /// non-gate components are empty.
    #[must_use]
    pub fn gate_inputs_csr(&self) -> Csr {
        Csr::from_rows(self.components().iter().map(|c| {
            let inputs: &[NetId] = match c {
                Component::Gate { inputs, .. } => inputs,
                _ => &[],
            };
            inputs.iter().map(|n| n.0)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, GateKind, NetlistBuilder};

    #[test]
    fn rows_round_trip() {
        let csr = Csr::from_rows(vec![vec![1u32, 2], vec![], vec![7]]);
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[7]);
        assert_eq!(csr.row_len(0), 2);
        assert_eq!(csr.num_items(), 3);
    }

    #[test]
    fn netlist_views_match_vec_indices() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let y = b.net("y");
        let z = b.net("z");
        b.gate(GateKind::Not, &[a], y, Delay::default());
        b.gate(GateKind::And, &[a, y], z, Delay::default());
        let n = b.finish().unwrap();

        let fanout = n.fanout_csr();
        let drivers = n.drivers_csr();
        for i in 0..n.num_nets() {
            let net = NetId(i as u32);
            let want: Vec<u32> = n.fanout(net).iter().map(|c| c.0).collect();
            assert_eq!(fanout.row(i), &want[..]);
            let want: Vec<u32> = n.drivers(net).iter().map(|c| c.0).collect();
            assert_eq!(drivers.row(i), &want[..]);
        }

        let gin = n.gate_inputs_csr();
        assert_eq!(gin.num_rows(), n.num_components());
        for (id, comp) in n.iter() {
            match comp {
                Component::Gate { inputs, .. } => {
                    let want: Vec<u32> = inputs.iter().map(|x| x.0).collect();
                    assert_eq!(gin.row(id.index()), &want[..]);
                }
                _ => assert!(gin.row(id.index()).is_empty()),
            }
        }
    }
}
