//! The [`Netlist`] container: components, nets, and derived indices.

use crate::component::{CompId, Component, NetId};
use crate::names::NetNames;
use serde::{Deserialize, Serialize, Value};

/// Per-net component lists (fanout or drivers) in compressed sparse row
/// form: one contiguous `items` array addressed through `offsets`.
///
/// The earlier `Vec<Vec<CompId>>` representation cost one heap
/// allocation per net; at the million-net scale the generator targets,
/// that is an allocation storm and a pointer chase per lookup. The CSR
/// form is built in O(components) with a count/prefix-sum/fill pass and
/// serializes as the same nested-list shape as before.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetAdjacency {
    /// Row `i` is `items[offsets[i] .. offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Component ids, concatenated row-major.
    items: Vec<CompId>,
}

impl NetAdjacency {
    /// The components of row (net) `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    #[inline]
    pub fn row(&self, i: usize) -> &[CompId] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.items[lo..hi]
    }

    /// Length of row `i` without touching the items array.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Number of rows (nets).
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Heap bytes held by the index.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.items.capacity() * std::mem::size_of::<CompId>()
    }

    /// Builds the fanout (read) and driver adjacency for `components`
    /// over `num_nets` nets in two O(components) passes: count, prefix
    /// sum, fill. Row order matches component order, which the golden
    /// digests depend on.
    #[must_use]
    pub(crate) fn build_pair(
        num_nets: usize,
        components: &[Component],
    ) -> (NetAdjacency, NetAdjacency) {
        let mut fo_count = vec![0u32; num_nets];
        let mut dr_count = vec![0u32; num_nets];
        for comp in components {
            comp.for_each_read(|n| fo_count[n.index()] += 1);
            comp.for_each_driven(|n| dr_count[n.index()] += 1);
        }
        let prefix = |count: &[u32]| -> Vec<u32> {
            let mut offsets = Vec::with_capacity(count.len() + 1);
            let mut total = 0u32;
            offsets.push(0);
            for &c in count {
                total = total
                    .checked_add(c)
                    .expect("net adjacency exceeds u32 item capacity");
                offsets.push(total);
            }
            offsets
        };
        let fo_off = prefix(&fo_count);
        let dr_off = prefix(&dr_count);
        let mut fo_items = vec![CompId(0); *fo_off.last().unwrap() as usize];
        let mut dr_items = vec![CompId(0); *dr_off.last().unwrap() as usize];
        // Reuse the count arrays as fill cursors.
        fo_count.copy_from_slice(&fo_off[..num_nets]);
        dr_count.copy_from_slice(&dr_off[..num_nets]);
        for (i, comp) in components.iter().enumerate() {
            let id = CompId(i as u32);
            comp.for_each_read(|n| {
                let cur = &mut fo_count[n.index()];
                fo_items[*cur as usize] = id;
                *cur += 1;
            });
            comp.for_each_driven(|n| {
                let cur = &mut dr_count[n.index()];
                dr_items[*cur as usize] = id;
                *cur += 1;
            });
        }
        (
            NetAdjacency {
                offsets: fo_off,
                items: fo_items,
            },
            NetAdjacency {
                offsets: dr_off,
                items: dr_items,
            },
        )
    }
}

impl Serialize for NetAdjacency {
    fn to_value(&self) -> Value {
        Value::Array(
            (0..self.num_rows())
                .map(|i| Value::Array(self.row(i).iter().map(Serialize::to_value).collect()))
                .collect(),
        )
    }
}

impl Deserialize for NetAdjacency {
    fn from_value(value: &Value) -> Result<NetAdjacency, serde::Error> {
        let rows = value
            .as_array()
            .ok_or_else(|| serde::Error::custom("expected an array of adjacency rows"))?;
        let mut offsets = vec![0u32];
        let mut items: Vec<CompId> = Vec::new();
        for row in rows {
            let ids = row
                .as_array()
                .ok_or_else(|| serde::Error::custom("adjacency row must be an array"))?;
            for id in ids {
                items.push(CompId::from_value(id)?);
            }
            let end = u32::try_from(items.len())
                .map_err(|_| serde::Error::custom("adjacency exceeds u32 items"))?;
            offsets.push(end);
        }
        Ok(NetAdjacency { offsets, items })
    }
}

/// An immutable, validated circuit.
///
/// Construct through [`crate::NetlistBuilder`], which checks arity and
/// connectivity and precomputes the fanout/driver indices the simulator
/// and the paper's message-volume model depend on (a *message* in the
/// paper is the propagation of one output change to one fanout component).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) components: Vec<Component>,
    pub(crate) net_names: NetNames,
    /// For each net: components that read it (fanout).
    pub(crate) fanout: NetAdjacency,
    /// For each net: components that can drive it.
    pub(crate) drivers: NetAdjacency,
    /// Primary input nets in declaration order.
    pub(crate) inputs: Vec<NetId>,
    /// Nets marked as observable outputs.
    pub(crate) outputs: Vec<NetId>,
}

impl Netlist {
    /// Assembles a netlist from already-validated parts, computing the
    /// fanout/driver indices in O(components). Callers (the builder and
    /// the optimizer) are responsible for arity and net-range validity.
    pub(crate) fn from_parts(
        name: String,
        components: Vec<Component>,
        net_names: NetNames,
        inputs: Vec<NetId>,
        outputs: Vec<NetId>,
    ) -> Netlist {
        let (fanout, drivers) = NetAdjacency::build_pair(net_names.len(), &components);
        Netlist {
            name,
            components,
            net_names,
            fanout,
            drivers,
            inputs,
            outputs,
        }
    }

    /// The circuit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of components of every kind (gates + switches + inputs +
    /// pulls + supplies).
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of unidirectional gates (the paper's "Gates" column).
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.components.iter().filter(|c| c.is_gate()).count()
    }

    /// Number of bidirectional switches (the paper's "Switches" column).
    #[must_use]
    pub fn num_switches(&self) -> usize {
        self.components.iter().filter(|c| c.is_switch()).count()
    }

    /// Simulated component count in the paper's sense: gates + switches
    /// (inputs, pulls and rails are not evaluation units).
    #[must_use]
    pub fn num_simulated_components(&self) -> usize {
        self.num_gates() + self.num_switches()
    }

    /// The component with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn component(&self, id: CompId) -> &Component {
        &self.components[id.index()]
    }

    /// All components, indexable by [`CompId::index`].
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Iterates over `(CompId, &Component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CompId, &Component)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (CompId(i as u32), c))
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        self.net_names.get(net.index())
    }

    /// Looks up a net by name (linear scan; intended for tests and small
    /// interactive use, not inner loops).
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.position(name).map(|i| NetId(i as u32))
    }

    /// Components that read `net` — the fanout list whose length is the
    /// per-event message count in the paper's model.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> &[CompId] {
        self.fanout.row(net.index())
    }

    /// Components that can drive `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn drivers(&self, net: NetId) -> &[CompId] {
        self.drivers.row(net.index())
    }

    /// Primary input nets in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Observable output nets in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Average structural fanout over gate output nets: the paper's
    /// `F = M_inf / E` corresponds to the mean number of fanout components
    /// per signal change, which for uniform activity equals the mean
    /// fanout-list length over driven nets.
    #[must_use]
    pub fn average_fanout(&self) -> f64 {
        let mut driven = 0usize;
        let mut total = 0usize;
        for i in 0..self.num_nets() {
            if self.drivers.row_len(i) > 0 {
                driven += 1;
                total += self.fanout.row_len(i);
            }
        }
        if driven == 0 {
            return 0.0;
        }
        total as f64 / driven as f64
    }

    /// Total approximate transistor count (Table 4's right column).
    #[must_use]
    pub fn approx_transistors(&self) -> u64 {
        self.components
            .iter()
            .map(|c| u64::from(c.approx_transistors()))
            .sum()
    }

    /// A 64-bit FNV-1a digest over the complete netlist structure: name,
    /// components (kinds, pins, delays), net names, inputs, and outputs.
    /// Two netlists with equal digests are structurally identical for
    /// simulation purposes; the generator's determinism tests pin this.
    #[must_use]
    pub fn structural_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn bytes(&mut self, b: &[u8]) {
                for &x in b {
                    self.0 = (self.0 ^ u64::from(x)).wrapping_mul(PRIME);
                }
            }
            fn u32(&mut self, v: u32) {
                self.bytes(&v.to_le_bytes());
            }
        }
        let mut h = Fnv(OFFSET);
        h.bytes(self.name.as_bytes());
        h.u32(self.components.len() as u32);
        for comp in &self.components {
            match comp {
                Component::Gate {
                    kind,
                    inputs,
                    output,
                    delay,
                } => {
                    h.u32(1);
                    h.u32(*kind as u32);
                    h.u32(inputs.len() as u32);
                    for n in inputs {
                        h.u32(n.0);
                    }
                    h.u32(output.0);
                    h.u32(delay.rise);
                    h.u32(delay.fall);
                }
                Component::Switch {
                    kind,
                    control,
                    a,
                    b,
                } => {
                    h.u32(2);
                    h.u32(*kind as u32);
                    h.u32(control.0);
                    h.u32(a.0);
                    h.u32(b.0);
                }
                Component::Input { net } => {
                    h.u32(3);
                    h.u32(net.0);
                }
                Component::Pull { net, level } => {
                    h.u32(4);
                    h.u32(net.0);
                    h.u32(*level as u32);
                }
                Component::Supply { net, level } => {
                    h.u32(5);
                    h.u32(net.0);
                    h.u32(*level as u32);
                }
            }
        }
        h.u32(self.net_names.len() as u32);
        for name in self.net_names.iter() {
            h.bytes(name.as_bytes());
            h.bytes(&[0xff]);
        }
        for n in &self.inputs {
            h.u32(n.0);
        }
        for n in &self.outputs {
            h.u32(n.0);
        }
        h.0
    }

    /// Approximate heap bytes held by the netlist (components, gate input
    /// pins, name arena, adjacency indices). Reported per scale by the
    /// `scale_study` bench alongside process peak RSS.
    #[must_use]
    pub fn memory_footprint(&self) -> u64 {
        let comp_slots = self.components.capacity() * std::mem::size_of::<Component>();
        let gate_pins: usize = self
            .components
            .iter()
            .map(|c| match c {
                Component::Gate { inputs, .. } => inputs.capacity() * std::mem::size_of::<NetId>(),
                _ => 0,
            })
            .sum();
        let ids = (self.inputs.capacity() + self.outputs.capacity()) * std::mem::size_of::<NetId>();
        (comp_slots
            + gate_pins
            + self.net_names.heap_bytes()
            + self.fanout.heap_bytes()
            + self.drivers.heap_bytes()
            + ids) as u64
    }
}

#[cfg(test)]
mod tests {
    use crate::{Delay, GateKind, NetlistBuilder};

    #[test]
    fn counting_and_lookup() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::default());
        b.mark_output(y);
        let n = b.finish().unwrap();
        assert_eq!(n.name(), "c");
        assert_eq!(n.num_gates(), 1);
        assert_eq!(n.num_switches(), 0);
        assert_eq!(n.num_simulated_components(), 1);
        assert_eq!(n.find_net("y"), Some(y));
        assert_eq!(n.find_net("zzz"), None);
        assert_eq!(n.inputs(), &[a]);
        assert_eq!(n.outputs(), &[y]);
        assert_eq!(n.net_name(y), "y");
    }

    #[test]
    fn fanout_and_drivers_indexed() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let y1 = b.net("y1");
        let y2 = b.net("y2");
        b.gate(GateKind::Not, &[a], y1, Delay::default());
        b.gate(GateKind::Not, &[a], y2, Delay::default());
        let n = b.finish().unwrap();
        assert_eq!(n.fanout(a).len(), 2);
        assert_eq!(n.drivers(y1).len(), 1);
        // `a` is driven by its Input component.
        assert_eq!(n.drivers(a).len(), 1);
    }

    #[test]
    fn average_fanout_counts_driven_nets() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let y = b.net("y");
        let z1 = b.net("z1");
        let z2 = b.net("z2");
        b.gate(GateKind::Not, &[a], y, Delay::default());
        b.gate(GateKind::Not, &[y], z1, Delay::default());
        b.gate(GateKind::Not, &[y], z2, Delay::default());
        let n = b.finish().unwrap();
        // Nets: a (fanout 1), y (fanout 2), z1 (0), z2 (0); all driven.
        let f = n.average_fanout();
        assert!((f - 0.75).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let mut b = NetlistBuilder::new("rt");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::default());
        b.mark_output(y);
        let n = b.finish().unwrap();
        let json = serde_json::to_string(&n).unwrap();
        let back: super::Netlist = serde_json::from_str(&json).unwrap();
        assert_eq!(back, n);
        assert_eq!(back.structural_digest(), n.structural_digest());
    }

    #[test]
    fn structural_digest_is_sensitive_to_structure() {
        let build = |delay: u32| {
            let mut b = NetlistBuilder::new("d");
            let a = b.input("a");
            let y = b.net("y");
            b.gate(GateKind::Not, &[a], y, Delay::uniform(delay));
            b.finish().unwrap()
        };
        assert_eq!(build(1).structural_digest(), build(1).structural_digest());
        assert_ne!(build(1).structural_digest(), build(2).structural_digest());
    }
}
