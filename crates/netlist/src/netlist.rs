//! The [`Netlist`] container: components, nets, and derived indices.

use crate::component::{CompId, Component, NetId};
use serde::{Deserialize, Serialize};

/// An immutable, validated circuit.
///
/// Construct through [`crate::NetlistBuilder`], which checks arity and
/// connectivity and precomputes the fanout/driver indices the simulator
/// and the paper's message-volume model depend on (a *message* in the
/// paper is the propagation of one output change to one fanout component).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) components: Vec<Component>,
    pub(crate) net_names: Vec<String>,
    /// For each net: components that read it (fanout).
    pub(crate) fanout: Vec<Vec<CompId>>,
    /// For each net: components that can drive it.
    pub(crate) drivers: Vec<Vec<CompId>>,
    /// Primary input nets in declaration order.
    pub(crate) inputs: Vec<NetId>,
    /// Nets marked as observable outputs.
    pub(crate) outputs: Vec<NetId>,
}

impl Netlist {
    /// The circuit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of components of every kind (gates + switches + inputs +
    /// pulls + supplies).
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of unidirectional gates (the paper's "Gates" column).
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.components.iter().filter(|c| c.is_gate()).count()
    }

    /// Number of bidirectional switches (the paper's "Switches" column).
    #[must_use]
    pub fn num_switches(&self) -> usize {
        self.components.iter().filter(|c| c.is_switch()).count()
    }

    /// Simulated component count in the paper's sense: gates + switches
    /// (inputs, pulls and rails are not evaluation units).
    #[must_use]
    pub fn num_simulated_components(&self) -> usize {
        self.num_gates() + self.num_switches()
    }

    /// The component with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn component(&self, id: CompId) -> &Component {
        &self.components[id.index()]
    }

    /// All components, indexable by [`CompId::index`].
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Iterates over `(CompId, &Component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CompId, &Component)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (CompId(i as u32), c))
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Looks up a net by name (linear scan; intended for tests and small
    /// interactive use, not inner loops).
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// Components that read `net` — the fanout list whose length is the
    /// per-event message count in the paper's model.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> &[CompId] {
        &self.fanout[net.index()]
    }

    /// Components that can drive `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn drivers(&self, net: NetId) -> &[CompId] {
        &self.drivers[net.index()]
    }

    /// Primary input nets in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Observable output nets in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Average structural fanout over gate output nets: the paper's
    /// `F = M_inf / E` corresponds to the mean number of fanout components
    /// per signal change, which for uniform activity equals the mean
    /// fanout-list length over driven nets.
    #[must_use]
    pub fn average_fanout(&self) -> f64 {
        let driven: Vec<usize> = (0..self.num_nets())
            .filter(|&i| !self.drivers[i].is_empty())
            .map(|i| self.fanout[i].len())
            .collect();
        if driven.is_empty() {
            return 0.0;
        }
        driven.iter().sum::<usize>() as f64 / driven.len() as f64
    }

    /// Total approximate transistor count (Table 4's right column).
    #[must_use]
    pub fn approx_transistors(&self) -> u64 {
        self.components
            .iter()
            .map(|c| u64::from(c.approx_transistors()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Delay, GateKind, NetlistBuilder};

    #[test]
    fn counting_and_lookup() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::default());
        b.mark_output(y);
        let n = b.finish().unwrap();
        assert_eq!(n.name(), "c");
        assert_eq!(n.num_gates(), 1);
        assert_eq!(n.num_switches(), 0);
        assert_eq!(n.num_simulated_components(), 1);
        assert_eq!(n.find_net("y"), Some(y));
        assert_eq!(n.find_net("zzz"), None);
        assert_eq!(n.inputs(), &[a]);
        assert_eq!(n.outputs(), &[y]);
        assert_eq!(n.net_name(y), "y");
    }

    #[test]
    fn fanout_and_drivers_indexed() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let y1 = b.net("y1");
        let y2 = b.net("y2");
        b.gate(GateKind::Not, &[a], y1, Delay::default());
        b.gate(GateKind::Not, &[a], y2, Delay::default());
        let n = b.finish().unwrap();
        assert_eq!(n.fanout(a).len(), 2);
        assert_eq!(n.drivers(y1).len(), 1);
        // `a` is driven by its Input component.
        assert_eq!(n.drivers(a).len(), 1);
    }

    #[test]
    fn average_fanout_counts_driven_nets() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let y = b.net("y");
        let z1 = b.net("z1");
        let z2 = b.net("z2");
        b.gate(GateKind::Not, &[a], y, Delay::default());
        b.gate(GateKind::Not, &[y], z1, Delay::default());
        b.gate(GateKind::Not, &[y], z2, Delay::default());
        let n = b.finish().unwrap();
        // Nets: a (fanout 1), y (fanout 2), z1 (0), z2 (0); all driven.
        let f = n.average_fanout();
        assert!((f - 0.75).abs() < 1e-12, "got {f}");
    }
}
