//! Structured diagnostics: stable codes, severities, and renderers.

use crate::component::{CompId, Component, NetId};
use crate::netlist::Netlist;
use serde::Serialize;
use std::fmt;

/// Stable diagnostic codes, one per analysis (documented in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Code {
    /// Combinational cycle closed entirely through zero-delay
    /// components: the event loop would never advance time.
    Ls0001CombinationalCycle,
    /// Potential drive fight: statically conflicting always-on drivers.
    Ls0002DriveFight,
    /// Dead logic: component output reaches no declared primary output.
    Ls0003DeadLogic,
    /// Floating or charge-storage net beyond the builder's hard errors.
    Ls0004FloatingNet,
    /// Logic depth exceeds the configured threshold.
    Ls0005ExcessiveDepth,
    /// Net proven constant by ternary abstract interpretation; the
    /// optimizer folds its driver or specializes its readers.
    Ls0006ConstantNet,
    /// Structurally duplicate component (same kind, delay, and input
    /// nets as an earlier one); the optimizer merges the pair.
    Ls0007DuplicateGate,
    /// Buffer/inverter chain whose inversion parity can be moved to the
    /// chain head, canonicalizing the chain for duplicate merging.
    Ls0008CollapsibleChain,
    /// Logic outside the observability cone of the declared outputs;
    /// the optimizer prunes it.
    Ls0009UnobservableCone,
    /// Live component whose statically estimated activity is zero: it
    /// provably never evaluates once the circuit settles, so it
    /// contributes load-balance weight but no simulation work.
    Ls0010QuiescentLogic,
    /// Net whose latest-arrival bound diverged: it sits on feedback
    /// whose settling time static timing cannot bound (potential
    /// oscillation under the delay model).
    Ls0011UnboundedArrival,
    /// Net that can never leave `X` from the all-`X` power-up
    /// configuration under any seeded stimulus: un-initializable
    /// state, usually a missing reset.
    Ls0012XStuck,
    /// Gate provably inertial-filter-free: no input can carry a pulse
    /// shorter than the gate's inertial window, so delay-aware chain
    /// contraction cannot change its observable waveform.
    Ls0013FilterFree,
}

impl Code {
    /// The printed code, e.g. `"LS0001"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Ls0001CombinationalCycle => "LS0001",
            Code::Ls0002DriveFight => "LS0002",
            Code::Ls0003DeadLogic => "LS0003",
            Code::Ls0004FloatingNet => "LS0004",
            Code::Ls0005ExcessiveDepth => "LS0005",
            Code::Ls0006ConstantNet => "LS0006",
            Code::Ls0007DuplicateGate => "LS0007",
            Code::Ls0008CollapsibleChain => "LS0008",
            Code::Ls0009UnobservableCone => "LS0009",
            Code::Ls0010QuiescentLogic => "LS0010",
            Code::Ls0011UnboundedArrival => "LS0011",
            Code::Ls0012XStuck => "LS0012",
            Code::Ls0013FilterFree => "LS0013",
        }
    }

    /// The fixed severity of this code.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Code::Ls0001CombinationalCycle => Severity::Error,
            Code::Ls0002DriveFight
            | Code::Ls0003DeadLogic
            | Code::Ls0004FloatingNet
            | Code::Ls0005ExcessiveDepth => Severity::Warning,
            // Optimizer findings describe provably sound rewrites, not
            // modelling mistakes: purely informational. The dataflow
            // facts (LS0010–LS0013) are conservative static estimates
            // feeding partitioning and cost models; they may be
            // imprecise on purpose, so they never gate exit status.
            Code::Ls0006ConstantNet
            | Code::Ls0007DuplicateGate
            | Code::Ls0008CollapsibleChain
            | Code::Ls0009UnobservableCone
            | Code::Ls0010QuiescentLogic
            | Code::Ls0011UnboundedArrival
            | Code::Ls0012XStuck
            | Code::Ls0013FilterFree => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Informational note; never affects exit status.
    Info,
    /// Suspicious structure that simulates but is probably unintended.
    Warning,
    /// The netlist cannot be simulated faithfully; the simulator
    /// refuses such netlists up front.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding, locating the components and nets involved.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (always [`Code::severity`] of `code`).
    pub severity: Severity,
    /// Human-readable, netlist-independent description.
    pub message: String,
    /// Components involved, if any.
    pub components: Vec<CompId>,
    /// Nets involved, if any.
    pub nets: Vec<NetId>,
}

impl Diagnostic {
    /// A diagnostic for `code` with its canonical severity.
    #[must_use]
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            components: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Attaches components (builder style).
    #[must_use]
    pub fn with_components(mut self, components: Vec<CompId>) -> Diagnostic {
        self.components = components;
        self
    }

    /// Attaches nets (builder style).
    #[must_use]
    pub fn with_nets(mut self, nets: Vec<NetId>) -> Diagnostic {
        self.nets = nets;
        self
    }

    /// A total order for deterministic report output: rule code first,
    /// then the lowest involved component id, then the lowest net id.
    #[must_use]
    pub fn sort_key(&self) -> (Code, u32, u32) {
        let comp = self
            .components
            .iter()
            .map(|c| c.0)
            .min()
            .unwrap_or(u32::MAX);
        let net = self.nets.iter().map(|n| n.0).min().unwrap_or(u32::MAX);
        (self.code, comp, net)
    }

    /// The JSON-friendly form with ids resolved against `netlist`.
    #[must_use]
    pub fn to_json(&self, netlist: &Netlist) -> JsonDiagnostic {
        JsonDiagnostic {
            code: self.code.as_str().to_string(),
            severity: self.severity.to_string(),
            message: self.message.clone(),
            components: self
                .components
                .iter()
                .map(|&c| describe_component(netlist, c))
                .collect(),
            nets: self
                .nets
                .iter()
                .map(|&n| netlist.net_name(n).to_string())
                .collect(),
        }
    }

    /// Renders the diagnostic with names resolved against `netlist`,
    /// in the `severity[CODE]: message` style.
    #[must_use]
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if !self.components.is_empty() {
            out.push_str("\n  components: ");
            push_limited(&mut out, self.components.len(), |i| {
                describe_component(netlist, self.components[i])
            });
        }
        if !self.nets.is_empty() {
            out.push_str("\n  nets: ");
            push_limited(&mut out, self.nets.len(), |i| {
                netlist.net_name(self.nets[i]).to_string()
            });
        }
        out
    }
}

/// At most this many locations are spelled out per rendered diagnostic.
const RENDER_LIMIT: usize = 8;

fn push_limited(out: &mut String, len: usize, item: impl Fn(usize) -> String) {
    for i in 0..len.min(RENDER_LIMIT) {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&item(i));
    }
    if len > RENDER_LIMIT {
        out.push_str(&format!(", ... ({len} total)"));
    }
}

/// A short human identification of a component: kind plus the nets that
/// pin it down (components have no names of their own).
#[must_use]
pub fn describe_component(netlist: &Netlist, id: CompId) -> String {
    match netlist.component(id) {
        Component::Gate { kind, output, .. } => {
            format!("{id} {kind}->{}", netlist.net_name(*output))
        }
        Component::Switch { kind, control, .. } => {
            format!("{id} {kind}[{}]", netlist.net_name(*control))
        }
        Component::Input { net } => format!("{id} INPUT {}", netlist.net_name(*net)),
        Component::Pull { net, .. } => format!("{id} PULL {}", netlist.net_name(*net)),
        Component::Supply { net, .. } => format!("{id} SUPPLY {}", netlist.net_name(*net)),
    }
}

/// Version of the `--json` lint report layout. Bumped whenever a field
/// is added, removed, or changes meaning, so downstream consumers can
/// dispatch on it instead of sniffing keys. Version 3 added the
/// dataflow-analysis findings (LS0010–LS0013).
pub const LINT_SCHEMA_VERSION: u32 = 3;

/// The result of running the static analyses over one netlist.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Report {
    /// All findings, ordered by code then discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Maximum logic depth over all nets (levelization result).
    pub max_logic_depth: u32,
}

impl Report {
    /// Whether any finding is error-level.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of findings at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Findings at or above `severity`.
    pub fn at_least(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity >= severity)
    }

    /// Whether the report is completely clean.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders every diagnostic plus a one-line summary, with names
    /// resolved against `netlist`.
    #[must_use]
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(netlist));
            out.push('\n');
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} info(s); max logic depth {}\n",
            netlist.name(),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.max_logic_depth,
        ));
        out
    }

    /// A serializable view with names resolved, for `--json` output.
    #[must_use]
    pub fn to_json(&self, netlist: &Netlist) -> JsonReport {
        JsonReport {
            schema_version: LINT_SCHEMA_VERSION,
            circuit: netlist.name().to_string(),
            errors: self.count(Severity::Error),
            warnings: self.count(Severity::Warning),
            infos: self.count(Severity::Info),
            max_logic_depth: self.max_logic_depth,
            diagnostics: self
                .diagnostics
                .iter()
                .map(|d| d.to_json(netlist))
                .collect(),
        }
    }
}

/// JSON-friendly report with all ids resolved to names.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JsonReport {
    /// Report layout version ([`LINT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Circuit name.
    pub circuit: String,
    /// Error-level finding count.
    pub errors: usize,
    /// Warning-level finding count.
    pub warnings: usize,
    /// Info-level finding count.
    pub infos: usize,
    /// Maximum logic depth over all nets.
    pub max_logic_depth: u32,
    /// The findings.
    pub diagnostics: Vec<JsonDiagnostic>,
}

/// One finding in [`JsonReport`] form.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JsonDiagnostic {
    /// Stable printed code, e.g. `"LS0001"`.
    pub code: String,
    /// `"error"`, `"warning"`, or `"info"`.
    pub severity: String,
    /// Human-readable description.
    pub message: String,
    /// Involved components, described.
    pub components: Vec<String>,
    /// Involved net names.
    pub nets: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, GateKind, NetlistBuilder};

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::default());
        b.finish().unwrap()
    }

    #[test]
    fn severity_ordering_supports_thresholds() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn codes_have_fixed_severities() {
        assert_eq!(Code::Ls0001CombinationalCycle.severity(), Severity::Error);
        assert_eq!(Code::Ls0002DriveFight.severity(), Severity::Warning);
        assert_eq!(Code::Ls0001CombinationalCycle.as_str(), "LS0001");
    }

    #[test]
    fn rendering_resolves_names() {
        let n = tiny();
        let d = Diagnostic::new(Code::Ls0002DriveFight, "two drivers")
            .with_components(vec![CompId(1)])
            .with_nets(vec![NetId(1)]);
        let text = d.render(&n);
        assert!(text.contains("warning[LS0002]"), "{text}");
        assert!(text.contains("NOT->y"), "{text}");
        assert!(text.contains("nets: y"), "{text}");
    }

    #[test]
    fn report_counting_and_thresholds() {
        let mut r = Report::default();
        assert!(!r.has_errors() && r.is_empty());
        r.diagnostics
            .push(Diagnostic::new(Code::Ls0003DeadLogic, "dead"));
        r.diagnostics
            .push(Diagnostic::new(Code::Ls0001CombinationalCycle, "loop"));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.at_least(Severity::Warning).count(), 2);
        assert_eq!(r.at_least(Severity::Error).count(), 1);
    }
}
