//! Static netlist optimizer: ternary abstract interpretation plus
//! trace-preserving rewrites.
//!
//! [`optimize`] runs a fixpoint loop of four sound rewrite passes over
//! a validated [`Netlist`]:
//!
//! | rule   | pass |
//! |--------|------|
//! | LS0006 | constant propagation on the {0, 1, X} lattice: gates whose output is proven stimulus-independent fold to supply rails, constant gate inputs are dropped, always-off switches and never-enabled tristates are removed |
//! | LS0007 | structural hashing: components with the same kind, delay, and (canonicalized) input nets merge into the earliest equivalent |
//! | LS0008 | buffer/inverter chains through private intermediate nets are canonicalized by moving the inversion parity to the chain head, exposing parallel chains to LS0007 |
//! | LS0009 | logic outside the reverse-reachability cone of the declared outputs is pruned |
//!
//! The optimized netlist **keeps every net id, net name, input, and
//! output of the original**: only the component list is rewritten.
//! Stimulus bindings, observation, and output sampling therefore work
//! unchanged against the optimized netlist, and dead nets simply lose
//! all drivers and readers. The component renumbering is exposed as
//! [`Optimized::comp_map`] so partition assignments computed on the
//! original can be carried over.
//!
//! # Soundness
//!
//! Every rewrite preserves the level trajectory of all surviving
//! observed nets, tick for tick, from power-up relaxation onward — the
//! argument for each rule (including the switch-group X-conservatism
//! rule that keeps the abstract lattice honest about charge sharing)
//! is laid out in DESIGN.md §14, and `tests/opt_equivalence.rs` checks
//! it differentially on every benchmark circuit.

mod absint;
mod rewrite;

use crate::analyze::diag::{Code, Diagnostic, JsonDiagnostic};
use crate::component::{CompId, Component, NetId};
use crate::netlist::Netlist;
use serde::Serialize;
use std::collections::BTreeSet;

/// Upper bound on outer rewrite passes; each productive pass removes or
/// rewrites at least one component, so this is never reached in
/// practice.
const MAX_PASSES: u32 = 64;

/// The result of [`optimize`]: the rewritten netlist, the findings and
/// counters, and the component renumbering.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The optimized netlist. Net ids, net names, inputs, and outputs
    /// are identical to the original; only components changed.
    pub netlist: Netlist,
    /// What the optimizer found and did.
    pub report: OptReport,
    /// For each original component id: its id in the optimized
    /// netlist, or `None` if the component was removed.
    pub comp_map: Vec<Option<CompId>>,
}

/// Findings and counters from one [`optimize`] run.
///
/// `findings` carries at most one aggregated [`Diagnostic`] per rule
/// (LS0006–LS0009), each referencing **original** component and net
/// ids; a rule appears only when it performed at least one rewrite.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct OptReport {
    /// Aggregated per-rule findings, in code order.
    pub findings: Vec<Diagnostic>,
    /// Nets proven constant that enabled an LS0006 rewrite.
    pub constant_nets: usize,
    /// Gates folded to supply rails (LS0006).
    pub folded_gates: usize,
    /// Gates specialized in place by dropping constant inputs (LS0006).
    pub specialized_gates: usize,
    /// Always-off switches and never-enabled tristates removed (LS0006).
    pub removed_switches: usize,
    /// Duplicate components merged into earlier equivalents (LS0007).
    pub merged_duplicates: usize,
    /// Buffer/inverter chains canonicalized to head parity (LS0008).
    pub canonicalized_chains: usize,
    /// Components pruned outside the observability cone (LS0009).
    pub pruned_components: usize,
    /// Component count before optimization.
    pub components_before: usize,
    /// Component count after optimization.
    pub components_after: usize,
    /// Gate count before optimization.
    pub gates_before: usize,
    /// Gate count after optimization.
    pub gates_after: usize,
    /// Switch count before optimization.
    pub switches_before: usize,
    /// Switch count after optimization.
    pub switches_after: usize,
    /// Largest abstract-interpretation round count over all passes.
    pub absint_rounds: u32,
    /// Outer rewrite passes until fixpoint (final no-change pass
    /// included).
    pub passes: u32,
}

impl OptReport {
    /// Total number of individual rewrites performed.
    #[must_use]
    pub fn total_rewrites(&self) -> usize {
        self.folded_gates
            + self.specialized_gates
            + self.removed_switches
            + self.merged_duplicates
            + self.canonicalized_chains
            + self.pruned_components
    }

    /// Components removed by the run.
    #[must_use]
    pub fn reduction(&self) -> usize {
        self.components_before - self.components_after
    }

    /// A serializable view with names resolved against the **original**
    /// netlist, for `lsim opt --report`.
    #[must_use]
    pub fn to_json(&self, original: &Netlist) -> JsonOptReport {
        JsonOptReport {
            schema_version: OPT_SCHEMA_VERSION,
            circuit: original.name().to_string(),
            components_before: self.components_before,
            components_after: self.components_after,
            gates_before: self.gates_before,
            gates_after: self.gates_after,
            switches_before: self.switches_before,
            switches_after: self.switches_after,
            constant_nets: self.constant_nets,
            folded_gates: self.folded_gates,
            specialized_gates: self.specialized_gates,
            removed_switches: self.removed_switches,
            merged_duplicates: self.merged_duplicates,
            canonicalized_chains: self.canonicalized_chains,
            pruned_components: self.pruned_components,
            absint_rounds: self.absint_rounds,
            passes: self.passes,
            findings: self.findings.iter().map(|d| d.to_json(original)).collect(),
        }
    }

    /// Renders a human-readable summary with names resolved against the
    /// **original** netlist.
    #[must_use]
    pub fn render(&self, original: &Netlist) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&d.render(original));
            out.push('\n');
        }
        out.push_str(&format!(
            "{}: {} -> {} components (gates {} -> {}, switches {} -> {}), \
             {} rewrite(s) in {} pass(es), {} abstract rounds\n",
            original.name(),
            self.components_before,
            self.components_after,
            self.gates_before,
            self.gates_after,
            self.switches_before,
            self.switches_after,
            self.total_rewrites(),
            self.passes,
            self.absint_rounds,
        ));
        out
    }
}

/// Version of the `lsim opt --report` JSON layout.
pub const OPT_SCHEMA_VERSION: u32 = 1;

/// JSON-friendly [`OptReport`] with diagnostics resolved to names.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JsonOptReport {
    /// Report layout version ([`OPT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Circuit name.
    pub circuit: String,
    /// Component count before optimization.
    pub components_before: usize,
    /// Component count after optimization.
    pub components_after: usize,
    /// Gate count before optimization.
    pub gates_before: usize,
    /// Gate count after optimization.
    pub gates_after: usize,
    /// Switch count before optimization.
    pub switches_before: usize,
    /// Switch count after optimization.
    pub switches_after: usize,
    /// Nets proven constant that enabled a rewrite.
    pub constant_nets: usize,
    /// Gates folded to supply rails.
    pub folded_gates: usize,
    /// Gates specialized in place.
    pub specialized_gates: usize,
    /// Always-off switches and never-enabled tristates removed.
    pub removed_switches: usize,
    /// Duplicate components merged.
    pub merged_duplicates: usize,
    /// Buffer/inverter chains canonicalized.
    pub canonicalized_chains: usize,
    /// Components pruned outside the observability cone.
    pub pruned_components: usize,
    /// Largest abstract-interpretation round count over all passes.
    pub absint_rounds: u32,
    /// Outer rewrite passes until fixpoint.
    pub passes: u32,
    /// The findings, names resolved.
    pub findings: Vec<JsonDiagnostic>,
}

/// Mutable working copy of a netlist during optimization.
///
/// Components keep their **original** indices throughout (removal
/// leaves a `None` slot); the driver/reader indices are maintained
/// incrementally so rewrite guards always see current connectivity.
pub(super) struct Work {
    /// Components by original id; `None` once removed.
    pub comps: Vec<Option<Component>>,
    /// Per net: live component ids that can drive it.
    pub drivers: Vec<Vec<u32>>,
    /// Per net: live component ids that read it (one entry per
    /// occurrence).
    pub readers: Vec<Vec<u32>>,
    /// Per net: number of live switch channel terminals attached.
    pub switches_on: Vec<u32>,
    /// Per net: whether it is a declared primary output.
    pub is_output: Vec<bool>,
    /// The declared outputs.
    pub outputs: Vec<NetId>,
}

impl Work {
    fn new(netlist: &Netlist) -> Work {
        let nets = netlist.num_nets();
        let mut w = Work {
            comps: netlist.components().iter().cloned().map(Some).collect(),
            drivers: vec![Vec::new(); nets],
            readers: vec![Vec::new(); nets],
            switches_on: vec![0; nets],
            is_output: vec![false; nets],
            outputs: netlist.outputs().to_vec(),
        };
        for &o in &w.outputs.clone() {
            w.is_output[o.index()] = true;
        }
        for i in 0..w.comps.len() {
            w.attach(i);
        }
        w
    }

    pub(super) fn num_nets(&self) -> usize {
        self.drivers.len()
    }

    /// Whether `net` is a switch channel terminal (member of a
    /// nontrivial resolution group).
    pub(super) fn terminal(&self, net: usize) -> bool {
        self.switches_on[net] > 0
    }

    fn attach(&mut self, i: usize) {
        let Some(c) = &self.comps[i] else { return };
        let (driven, read) = (c.driven_nets(), c.read_nets());
        if let Component::Switch { a, b, .. } = c {
            self.switches_on[a.index()] += 1;
            self.switches_on[b.index()] += 1;
        }
        for n in driven {
            self.drivers[n.index()].push(i as u32);
        }
        for n in read {
            self.readers[n.index()].push(i as u32);
        }
    }

    fn detach(&mut self, i: usize) {
        let Some(c) = &self.comps[i] else { return };
        let (driven, read) = (c.driven_nets(), c.read_nets());
        if let Component::Switch { a, b, .. } = c {
            self.switches_on[a.index()] -= 1;
            self.switches_on[b.index()] -= 1;
        }
        for n in driven {
            if let Some(p) = self.drivers[n.index()].iter().position(|&d| d == i as u32) {
                self.drivers[n.index()].remove(p);
            }
        }
        for n in read {
            if let Some(p) = self.readers[n.index()].iter().position(|&r| r == i as u32) {
                self.readers[n.index()].remove(p);
            }
        }
    }

    /// Removes component `i` and updates the indices.
    pub(super) fn remove(&mut self, i: usize) {
        self.detach(i);
        self.comps[i] = None;
    }

    /// Replaces component `i` in place and updates the indices.
    pub(super) fn replace(&mut self, i: usize, c: Component) {
        self.detach(i);
        self.comps[i] = Some(c);
        self.attach(i);
    }

    /// Whether `comp` is the only driver of `net`.
    pub(super) fn sole_driver(&self, net: usize, comp: usize) -> bool {
        self.drivers[net].len() == 1 && self.drivers[net][0] == comp as u32
    }
}

/// Per-rule accumulation of what was rewritten, in original ids.
#[derive(Default)]
pub(super) struct Touched {
    pub comps: BTreeSet<u32>,
    pub nets: BTreeSet<u32>,
}

impl Touched {
    pub(super) fn record(&mut self, comps: &[usize], nets: &[NetId]) {
        self.comps.extend(comps.iter().map(|&c| c as u32));
        self.nets.extend(nets.iter().map(|n| n.0));
    }
}

/// Everything the rewrite passes accumulate for the final report.
#[derive(Default)]
pub(super) struct Findings {
    pub constant: Touched,
    pub folded: usize,
    pub specialized: usize,
    pub removed_switches: usize,
    pub duplicate: Touched,
    pub merged: usize,
    pub chain: Touched,
    pub chains: usize,
    pub cone: Touched,
    pub pruned: usize,
}

/// Runs the optimizer to fixpoint and returns the rewritten netlist,
/// the report, and the component renumbering.
///
/// The input must be a validated [`Netlist`]; the output upholds the
/// same builder invariants (every read net keeps a driver, arities
/// unchanged or legally reduced).
#[must_use]
pub fn optimize(netlist: &Netlist) -> Optimized {
    let mut work = Work::new(netlist);
    let mut f = Findings::default();
    let mut absint_rounds = 0;
    let mut passes = 0;
    loop {
        passes += 1;
        let (values, rounds) = absint::interpret(&work);
        absint_rounds = rounds.max(absint_rounds);
        let mut changed = rewrite::constants(&mut work, &values, &mut f);
        changed |= rewrite::chains(&mut work, &mut f);
        changed |= rewrite::dedup(&mut work, &mut f);
        changed |= rewrite::prune_cone(&mut work, &mut f);
        if !changed || passes >= MAX_PASSES {
            break;
        }
    }
    emit(netlist, &work, &f, absint_rounds, passes)
}

/// Builds the final netlist (identical nets, compacted components), the
/// component map, and the aggregated findings.
fn emit(
    original: &Netlist,
    work: &Work,
    f: &Findings,
    absint_rounds: u32,
    passes: u32,
) -> Optimized {
    let mut components = Vec::new();
    let mut comp_map = vec![None; work.comps.len()];
    for (i, slot) in work.comps.iter().enumerate() {
        if let Some(c) = slot {
            comp_map[i] = Some(CompId(components.len() as u32));
            components.push(c.clone());
        }
    }
    let netlist = Netlist::from_parts(
        original.name.clone(),
        components,
        original.net_names.clone(),
        original.inputs.clone(),
        original.outputs.clone(),
    );
    let mut findings = Vec::new();
    let diag = |code: Code, t: &Touched, message: String| {
        Diagnostic::new(code, message)
            .with_components(t.comps.iter().map(|&c| CompId(c)).collect())
            .with_nets(t.nets.iter().map(|&n| NetId(n)).collect())
    };
    let const_rewrites = f.folded + f.specialized + f.removed_switches;
    if const_rewrites > 0 {
        findings.push(diag(
            Code::Ls0006ConstantNet,
            &f.constant,
            format!(
                "{} constant net(s): {} gate(s) folded to rails, {} specialized, \
                 {} always-off switch(es)/tristate(s) removed",
                f.constant.nets.len(),
                f.folded,
                f.specialized,
                f.removed_switches
            ),
        ));
    }
    if f.merged > 0 {
        findings.push(diag(
            Code::Ls0007DuplicateGate,
            &f.duplicate,
            format!(
                "{} duplicate component(s) merged into earlier structural equivalents",
                f.merged
            ),
        ));
    }
    if f.chains > 0 {
        findings.push(diag(
            Code::Ls0008CollapsibleChain,
            &f.chain,
            format!(
                "{} buffer/inverter chain(s) canonicalized to head-parity form",
                f.chains
            ),
        ));
    }
    if f.pruned > 0 {
        findings.push(diag(
            Code::Ls0009UnobservableCone,
            &f.cone,
            format!(
                "{} component(s) outside the observability cone of the declared outputs pruned",
                f.pruned
            ),
        ));
    }
    let report = OptReport {
        findings,
        constant_nets: f.constant.nets.len(),
        folded_gates: f.folded,
        specialized_gates: f.specialized,
        removed_switches: f.removed_switches,
        merged_duplicates: f.merged,
        canonicalized_chains: f.chains,
        pruned_components: f.pruned,
        components_before: original.num_components(),
        components_after: netlist.num_components(),
        gates_before: original.num_gates(),
        gates_after: netlist.num_gates(),
        switches_before: original.num_switches(),
        switches_after: netlist.num_switches(),
        absint_rounds,
        passes,
    };
    Optimized {
        netlist,
        report,
        comp_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Delay, GateKind, SwitchKind};
    use crate::value::Level;
    use crate::NetlistBuilder;

    fn d1() -> Delay {
        Delay::uniform(1)
    }

    #[test]
    fn constant_gate_folds_to_supply() {
        let mut b = NetlistBuilder::new("fold");
        let a = b.input("a");
        let g = b.net("g");
        b.supply(g, Level::Zero);
        let y = b.net("y");
        b.gate(GateKind::And, &[a, g], y, d1());
        b.mark_output(y);
        let n = b.finish().unwrap();
        let o = optimize(&n);
        assert_eq!(o.report.folded_gates, 1);
        assert_eq!(o.netlist.num_gates(), 0);
        assert!(o
            .netlist
            .components()
            .iter()
            .any(|c| matches!(c, Component::Supply { net, level: Level::Zero } if *net == y)));
        assert_eq!(o.report.findings[0].code, Code::Ls0006ConstantNet);
    }

    #[test]
    fn correlated_xor_is_not_folded() {
        // XOR(a, a) is concretely 0, but the per-net ternary lattice
        // cannot see the correlation: X xor X = X. Stays untouched.
        let mut b = NetlistBuilder::new("corr");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Xor, &[a, a], y, d1());
        b.mark_output(y);
        let n = b.finish().unwrap();
        let o = optimize(&n);
        assert_eq!(o.report.total_rewrites(), 0);
        assert_eq!(o.netlist, n);
    }

    #[test]
    fn constant_identity_inputs_are_dropped() {
        let mut b = NetlistBuilder::new("spec");
        let a = b.input("a");
        let c = b.input("c");
        let vdd = b.net("vdd");
        b.supply(vdd, Level::One);
        let y = b.net("y");
        b.gate(GateKind::And, &[a, vdd, c], y, d1());
        let z = b.net("z");
        b.gate(GateKind::Nand, &[a, vdd], z, d1());
        let x = b.net("x");
        b.gate(GateKind::Xor, &[a, vdd], x, d1());
        for net in [y, z, x] {
            b.mark_output(net);
        }
        let n = b.finish().unwrap();
        let o = optimize(&n);
        assert_eq!(o.report.specialized_gates, 3);
        let kinds: Vec<GateKind> = o
            .netlist
            .components()
            .iter()
            .filter_map(|comp| match comp {
                Component::Gate { kind, inputs, .. } => {
                    assert!(inputs.iter().all(|&i| i != vdd));
                    Some(*kind)
                }
                _ => None,
            })
            .collect();
        // AND(a, 1, c) -> AND(a, c); NAND(a, 1) -> NOT(a);
        // XOR(a, 1) -> NOT(a).
        assert_eq!(kinds, vec![GateKind::And, GateKind::Not, GateKind::Not]);
    }

    #[test]
    fn duplicate_gates_merge_and_rewire_readers() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.input("a");
        let c = b.input("c");
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        b.gate(GateKind::And, &[a, c], n1, d1());
        b.gate(GateKind::And, &[c, a], n2, d1()); // commutative duplicate
        let y = b.net("y");
        b.gate(GateKind::Or, &[n1, n2], y, d1());
        b.mark_output(y);
        let n = b.finish().unwrap();
        let o = optimize(&n);
        assert_eq!(o.report.merged_duplicates, 1);
        // OR(n1, n1) survives; the duplicate AND is gone.
        assert_eq!(o.netlist.num_gates(), 2);
        let or_inputs = o
            .netlist
            .components()
            .iter()
            .find_map(|comp| match comp {
                Component::Gate {
                    kind: GateKind::Or,
                    inputs,
                    ..
                } => Some(inputs.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(or_inputs, vec![n1, n1]);
    }

    #[test]
    fn inverter_chain_canonicalizes_to_head_parity() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let m1 = b.net("m1");
        let m2 = b.net("m2");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], m1, d1());
        b.gate(GateKind::Buf, &[m1], m2, d1());
        b.gate(GateKind::Not, &[m2], y, d1());
        b.mark_output(y);
        let n = b.finish().unwrap();
        let o = optimize(&n);
        assert_eq!(o.report.canonicalized_chains, 1);
        let kinds: Vec<GateKind> = o
            .netlist
            .components()
            .iter()
            .filter_map(|comp| match comp {
                Component::Gate { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        // Even parity: all buffers.
        assert_eq!(kinds, vec![GateKind::Buf, GateKind::Buf, GateKind::Buf]);
    }

    #[test]
    fn unobservable_cone_is_pruned_but_inputs_stay() {
        let mut b = NetlistBuilder::new("cone");
        let a = b.input("a");
        let unused = b.input("unused");
        let y = b.net("y");
        let w = b.net("w");
        b.gate(GateKind::Not, &[a], y, d1());
        b.gate(GateKind::Not, &[unused], w, d1());
        b.mark_output(y);
        let n = b.finish().unwrap();
        let o = optimize(&n);
        assert_eq!(o.report.pruned_components, 1);
        assert_eq!(o.netlist.num_gates(), 1);
        // Both Input components survive for stimulus resolution.
        let inputs = o
            .netlist
            .components()
            .iter()
            .filter(|c| matches!(c, Component::Input { .. }))
            .count();
        assert_eq!(inputs, 2);
        // Net ids are stable: the observed net keeps its id and name.
        assert_eq!(o.netlist.net_name(y), "y");
        assert_eq!(o.netlist.outputs(), n.outputs());
    }

    #[test]
    fn switch_terminal_nets_are_not_folded() {
        // A gate driving a switch terminal must not become a Supply:
        // supply strength would win group resolution where the gate's
        // strong drive could be overridden.
        let mut b = NetlistBuilder::new("term");
        let a = b.input("a");
        let ctl = b.input("ctl");
        let g = b.net("g");
        b.supply(g, Level::Zero);
        let t = b.net("t");
        b.gate(GateKind::And, &[a, g], t, d1()); // constant 0 output
        let other = b.net("other");
        b.pull(other, Level::One);
        b.switch(SwitchKind::Nmos, ctl, t, other);
        b.mark_output(other);
        let n = b.finish().unwrap();
        let o = optimize(&n);
        assert_eq!(o.report.folded_gates, 0);
        assert_eq!(o.netlist.num_gates(), 1);
    }

    #[test]
    fn always_off_switch_is_removed_when_safe() {
        let mut b = NetlistBuilder::new("off");
        let g = b.net("g");
        b.supply(g, Level::Zero); // NMOS control 0: never conducts
        let a = b.input("a");
        let t = b.net("t");
        b.gate(GateKind::Buf, &[a], t, d1()); // never-floating driver
        let other = b.net("other");
        b.pull(other, Level::One); // never-floating driver
        b.switch(SwitchKind::Nmos, g, t, other);
        b.mark_output(other);
        let n = b.finish().unwrap();
        let o = optimize(&n);
        assert_eq!(o.report.removed_switches, 1);
        assert_eq!(o.netlist.num_switches(), 0);
    }

    #[test]
    fn optimizer_is_idempotent() {
        let mut b = NetlistBuilder::new("idem");
        let a = b.input("a");
        let vdd = b.net("vdd");
        b.supply(vdd, Level::One);
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        b.gate(GateKind::Not, &[a], n1, d1());
        b.gate(GateKind::Not, &[a], n2, d1());
        let y = b.net("y");
        b.gate(GateKind::And, &[n1, n2, vdd], y, d1());
        b.mark_output(y);
        let n = b.finish().unwrap();
        let once = optimize(&n);
        assert!(once.report.total_rewrites() > 0);
        let twice = optimize(&once.netlist);
        assert_eq!(twice.report.total_rewrites(), 0);
        assert!(twice.report.findings.is_empty());
        assert_eq!(twice.netlist, once.netlist);
    }

    #[test]
    fn comp_map_tracks_survivors() {
        let mut b = NetlistBuilder::new("map");
        let a = b.input("a");
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        b.gate(GateKind::Not, &[a], n1, d1());
        b.gate(GateKind::Not, &[a], n2, d1()); // merged away
        b.mark_output(n1);
        b.mark_output(n2);
        let n = b.finish().unwrap();
        let o = optimize(&n);
        // Both nets observed: the pair must NOT merge (no victim).
        assert_eq!(o.report.merged_duplicates, 0);
        assert_eq!(o.comp_map.iter().filter(|m| m.is_some()).count(), 3);
        for (old, mapped) in o.comp_map.iter().enumerate() {
            if let Some(new) = mapped {
                assert_eq!(
                    o.netlist.component(*new),
                    n.component(crate::component::CompId(old as u32))
                );
            }
        }
    }
}
