//! Ternary abstract interpretation over the optimizer work graph.
//!
//! The analysis itself — the Kleene lattice, the concrete transfer
//! functions, switch-group X-conservatism — lives in
//! [`dataflow::ternary`](crate::analyze::dataflow::ternary), running
//! on the generic monotone-framework engine. This module only adapts
//! the optimizer's mutable [`Work`] graph to the engine's
//! [`TernaryView`] topology trait: live components come from the
//! tombstone-aware `comps` vector and terminal status from the
//! optimizer's own switch-terminal count, so every pass of the
//! optimizer re-solves against the current (partially rewritten)
//! graph.

use super::Work;
use crate::analyze::dataflow::ternary::{self, TernaryView};
use crate::component::Component;
use crate::value::Level;

impl TernaryView for Work {
    fn num_nets(&self) -> usize {
        Work::num_nets(self)
    }

    fn for_each_driver(&self, net: u32, f: &mut dyn FnMut(&Component)) {
        for &d in &self.drivers[net as usize] {
            if let Some(comp) = self.comps[d as usize].as_ref() {
                f(comp);
            }
        }
    }

    fn for_each_reader(&self, net: u32, f: &mut dyn FnMut(&Component)) {
        for &r in &self.readers[net as usize] {
            if let Some(comp) = self.comps[r as usize].as_ref() {
                f(comp);
            }
        }
    }

    fn is_terminal(&self, net: u32) -> bool {
        self.terminal(net as usize)
    }
}

/// Runs the abstract interpretation to fixpoint. Returns the per-net
/// abstract values and the number of rounds taken in the Jacobi sense
/// (the deepest chain of value refinements plus the final no-change
/// verification), which the optimizer reports as `absint_rounds`.
pub(super) fn interpret(w: &Work) -> (Vec<Level>, u32) {
    ternary::solve_view(w)
}
