//! Ternary abstract interpretation over the dependency graph.
//!
//! The abstract domain is [`Level`] itself, read as a Kleene lattice:
//! `Zero`/`One` mean *proven constant for every stimulus and every
//! power-up state*, `X` means *unknown or varying*. The transfer
//! functions are exactly the concrete ones — [`GateKind::evaluate`]
//! for gates, the strength ladder for multi-driver resolution — so the
//! abstract fixpoint coincides with the value the engine's power-up
//! relaxation converges to on every net the analysis proves constant.
//!
//! Iteration is Jacobi style (each round reads the previous round's
//! values), starting from all-`X`. All transfer functions are monotone
//! in the information order `X ⊑ 0, X ⊑ 1`, so values only ever move
//! from `X` to a constant and the loop terminates; for a gate DAG it
//! stabilizes within `depth + 1` rounds and spends one more round
//! detecting the fixpoint.
//!
//! **Switch-group X-conservatism:** a net attached to any switch
//! channel terminal takes part in bidirectional group resolution with
//! charge retention, which this per-net analysis does not model. Such
//! nets are pinned to `X` — with one exception: a net driven by a
//! supply rail keeps its constant, because a `Supply`-strength drive
//! beats every through-switch contribution (those arrive at `Strong`
//! or weaker) in the group solver too. That exception is what lets
//! constants propagate out of NMOS rails without ever trusting a
//! switch path.

use super::Work;
use crate::component::Component;
use crate::value::{Level, Signal, Strength};

/// Runs the abstract interpretation to fixpoint. Returns the per-net
/// abstract values and the number of rounds taken (including the final
/// no-change round).
pub(super) fn interpret(w: &Work) -> (Vec<Level>, u32) {
    let nets = w.num_nets();
    let mut values = vec![Level::X; nets];
    let mut rounds = 0;
    // Monotonicity bounds the rounds by the net count; the cap is a
    // belt-and-braces guard, not a precision limit.
    let cap = nets as u32 + 2;
    loop {
        rounds += 1;
        let next: Vec<Level> = (0..nets).map(|n| value_of(w, n, &values)).collect();
        let done = next == values;
        values = next;
        if done || rounds >= cap {
            break;
        }
    }
    (values, rounds)
}

/// The abstract signal a component contributes to the nets it drives,
/// or `None` for switches (their influence is handled by terminal
/// conservatism in [`value_of`]).
fn contribution(comp: &Component, values: &[Level]) -> Option<Signal> {
    match comp {
        // A primary input varies with the stimulus: strong unknown.
        Component::Input { .. } => Some(Signal::strong(Level::X)),
        Component::Pull { .. } | Component::Supply { .. } => comp.static_drive(),
        Component::Gate { kind, inputs, .. } => {
            let levels: Vec<Level> = inputs.iter().map(|i| values[i.index()]).collect();
            Some(kind.evaluate(&levels))
        }
        Component::Switch { .. } => None,
    }
}

/// Resolves the abstract value of one net from the previous round's
/// values, mirroring the engine's external-drive resolution.
fn value_of(w: &Work, net: usize, values: &[Level]) -> Level {
    let mut best = Signal::FLOATING;
    for &d in &w.drivers[net] {
        let comp = w.comps[d as usize].as_ref().expect("live driver");
        let Some(sig) = contribution(comp, values) else {
            continue;
        };
        best = best.resolve(sig);
    }
    if w.terminal(net) {
        // Group-resolved net: only a supply rail survives conservatism.
        if best.strength == Strength::Supply {
            best.level
        } else {
            Level::X
        }
    } else if best.is_floating() {
        Level::X
    } else {
        best.level
    }
}
