//! The four trace-preserving rewrite passes (LS0006–LS0009).
//!
//! Each pass takes the mutable [`Work`] copy plus (for LS0006) the
//! abstract net values, performs every rewrite whose guard holds, and
//! reports whether anything changed. Guards are deliberately local and
//! conservative; anything they cannot prove is left alone and the
//! differential equivalence suite holds the line. The soundness
//! argument for every guard is written out in DESIGN.md §14.

use super::{Findings, Work};
use crate::component::{Component, Delay, GateKind, NetId};
use crate::value::Level;
use std::collections::HashMap;

/// LS0006: exploit nets proven constant by the abstract interpretation.
///
/// * A gate whose output is proven constant folds to a `Supply` on the
///   same net — only when the gate is the net's sole driver and the net
///   is not a switch channel terminal (a supply-strength drive would
///   change group resolution where the old gate drove at `Strong`).
/// * A tristate with a constant-`1` enable becomes a `Buf`; one with a
///   constant-`0` enable never drives and is removed when the net keeps
///   another driver or is completely unread and unobserved.
/// * Constant identity-element inputs are dropped in place (`AND` drops
///   `1`s, `OR` drops `0`s, `XOR`/`XNOR` drop any proven constant and
///   flip parity per dropped `1`). In-place specialization preserves
///   the gate's output function, delay, and drive strength exactly, so
///   it needs no conditions on the output net.
/// * An always-off switch is removed when each terminal either keeps
///   another switch (its group survives, minus one never-conducting
///   edge), keeps a driver that can never float (charge retention can
///   never trigger), or is unread and unobserved.
pub(super) fn constants(w: &mut Work, values: &[Level], f: &mut Findings) -> bool {
    let mut changed = false;
    for i in 0..w.comps.len() {
        let Some(comp) = w.comps[i].clone() else {
            continue;
        };
        match comp {
            Component::Gate {
                kind,
                ref inputs,
                output,
                delay,
            } => {
                let levels: Vec<Level> = inputs.iter().map(|n| values[n.index()]).collect();
                let out = kind.evaluate(&levels);
                let o = output.index();
                if out.level.is_known()
                    && !out.is_floating()
                    && w.sole_driver(o, i)
                    && !w.terminal(o)
                {
                    w.replace(
                        i,
                        Component::Supply {
                            net: output,
                            level: out.level,
                        },
                    );
                    f.constant.record(&[i], &[output]);
                    f.folded += 1;
                    changed = true;
                    continue;
                }
                if kind == GateKind::Tristate {
                    match levels[1] {
                        Level::One => {
                            let data = inputs[0];
                            w.replace(
                                i,
                                Component::Gate {
                                    kind: GateKind::Buf,
                                    inputs: vec![data],
                                    output,
                                    delay,
                                },
                            );
                            f.constant.record(&[i], &[inputs[1]]);
                            f.specialized += 1;
                            changed = true;
                        }
                        Level::Zero => {
                            let enable = inputs[1];
                            let other_driver = w.drivers[o].len() > 1;
                            let unread = w.readers[o].is_empty() && !w.is_output[o];
                            if other_driver || unread {
                                w.remove(i);
                                f.constant.record(&[i], &[enable]);
                                f.removed_switches += 1;
                                changed = true;
                            }
                        }
                        Level::X => {}
                    }
                    continue;
                }
                // In-place input specialization only applies when the
                // output is still unknown (a known output is the fold
                // case above, possibly blocked by its guards).
                if out.level == Level::X && inputs.len() > 1 {
                    if let Some((new_kind, kept, dropped)) = specialize(kind, inputs, &levels) {
                        w.replace(
                            i,
                            Component::Gate {
                                kind: new_kind,
                                inputs: kept,
                                output,
                                delay,
                            },
                        );
                        f.constant.record(&[i], &dropped);
                        f.specialized += 1;
                        changed = true;
                    }
                }
            }
            Component::Switch {
                kind,
                control,
                a,
                b,
                ..
            } if kind.conducts(values[control.index()]) == Some(false)
                && terminal_safe(w, a, i)
                && terminal_safe(w, b, i) =>
            {
                w.remove(i);
                f.constant.record(&[i], &[control]);
                f.removed_switches += 1;
                changed = true;
            }
            _ => {}
        }
    }
    changed
}

/// Whether removing always-off switch `switch_id` leaves terminal `t`
/// with unchanged observable behavior (see [`constants`]).
fn terminal_safe(w: &Work, t: NetId, switch_id: usize) -> bool {
    let ti = t.index();
    // Another switch keeps the net group-resolved with retention.
    if w.switches_on[ti] > 1 {
        return true;
    }
    // A driver that never goes high-impedance means charge retention
    // can never trigger, so trivial-net resolution is identical.
    let never_floats =
        w.drivers[ti].iter().any(
            |&d| match w.comps[d as usize].as_ref().expect("live driver") {
                Component::Input { .. } | Component::Pull { .. } | Component::Supply { .. } => true,
                Component::Gate { kind, .. } => *kind != GateKind::Tristate,
                Component::Switch { .. } => false,
            },
        );
    if never_floats {
        return true;
    }
    // Unread and unobserved: the value can never be consumed.
    w.readers[ti].iter().all(|&r| r as usize == switch_id) && !w.is_output[ti]
}

/// Computes the specialized form of `kind` after dropping constant
/// identity inputs, or `None` when nothing can be dropped. Returns the
/// new kind, the kept inputs, and the dropped constant nets.
fn specialize(
    kind: GateKind,
    inputs: &[NetId],
    levels: &[Level],
) -> Option<(GateKind, Vec<NetId>, Vec<NetId>)> {
    let mut kept = Vec::new();
    let mut dropped = Vec::new();
    let mut parity_flips = 0;
    for (&net, &level) in inputs.iter().zip(levels) {
        let drop = match (kind, level) {
            (GateKind::And | GateKind::Nand, Level::One) => true,
            (GateKind::Or | GateKind::Nor, Level::Zero) => true,
            (GateKind::Xor | GateKind::Xnor, Level::Zero | Level::One) => {
                if level == Level::One {
                    parity_flips += 1;
                }
                true
            }
            _ => false,
        };
        if drop {
            dropped.push(net);
        } else {
            kept.push(net);
        }
    }
    if dropped.is_empty() || kept.is_empty() {
        return None;
    }
    let mut new_kind = kind;
    if parity_flips % 2 == 1 {
        new_kind = match new_kind {
            GateKind::Xor => GateKind::Xnor,
            GateKind::Xnor => GateKind::Xor,
            other => other,
        };
    }
    if kept.len() == 1 {
        new_kind = match new_kind {
            GateKind::And | GateKind::Or | GateKind::Xor => GateKind::Buf,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor => GateKind::Not,
            other => other,
        };
    }
    Some((new_kind, kept, dropped))
}

/// LS0008: canonicalize buffer/inverter chains.
///
/// A *chain* is a maximal run of single-input `BUF`/`NOT` gates with
/// uniform delay 1 whose intermediate nets are private: exactly one
/// reader (the next stage), exactly one driver (the previous stage),
/// not an output, and not a switch terminal. A unit-uniform-delay
/// single-input gate is a pure one-tick shift under the inertial model
/// (a pending change is always applied before the next change can
/// arrive), so the chain's end-to-end behavior depends only on its
/// total inversion parity and length. Moving all parity to the head
/// (head = `NOT` iff parity is odd, every later stage `BUF`) changes
/// only the levels of the private intermediates and makes parallel
/// chains structurally identical for LS0007 to merge.
pub(super) fn chains(w: &mut Work, f: &mut Findings) -> bool {
    let n = w.comps.len();
    let stage = |w: &Work, i: usize| -> Option<(GateKind, NetId, NetId)> {
        match w.comps[i].as_ref()? {
            Component::Gate {
                kind: kind @ (GateKind::Buf | GateKind::Not),
                inputs,
                output,
                delay,
            } if *delay == Delay::uniform(1) => Some((*kind, inputs[0], *output)),
            _ => None,
        }
    };
    // next[i]: the unique follower stage reached through a private net.
    let mut next = vec![usize::MAX; n];
    let mut has_prev = vec![false; n];
    for (i, slot) in next.iter_mut().enumerate() {
        let Some((_, _, out)) = stage(w, i) else {
            continue;
        };
        let o = out.index();
        if w.is_output[o] || w.terminal(o) || !w.sole_driver(o, i) || w.readers[o].len() != 1 {
            continue;
        }
        let follower = w.readers[o][0] as usize;
        if follower != i && stage(w, follower).is_some() {
            *slot = follower;
            has_prev[follower] = true;
        }
    }
    let mut changed = false;
    for (head, &headed) in has_prev.iter().enumerate() {
        if headed || stage(w, head).is_none() {
            continue;
        }
        // Collect the maximal chain starting at this head.
        let mut ids = vec![head];
        let mut cur = head;
        while next[cur] != usize::MAX {
            cur = next[cur];
            if ids.contains(&cur) {
                break; // ring guard; rings have no head anyway
            }
            ids.push(cur);
        }
        if ids.len() < 2 {
            continue;
        }
        let kinds: Vec<GateKind> = ids.iter().map(|&i| stage(w, i).expect("stage").0).collect();
        let parity = kinds.iter().filter(|&&k| k == GateKind::Not).count() % 2;
        let canonical = |pos: usize| -> GateKind {
            if pos == 0 && parity == 1 {
                GateKind::Not
            } else {
                GateKind::Buf
            }
        };
        if kinds.iter().enumerate().all(|(p, &k)| k == canonical(p)) {
            continue;
        }
        // Record only the stages whose kind actually changes, so the
        // finding names exactly the components that were rewritten.
        let mut rewritten = Vec::new();
        let mut nets = Vec::new();
        for (pos, &i) in ids.iter().enumerate() {
            let (kind, input, output) = stage(w, i).expect("stage");
            if pos > 0 {
                nets.push(input);
            }
            let want = canonical(pos);
            if kind != want {
                let Some(Component::Gate { delay, .. }) = w.comps[i] else {
                    unreachable!("stage is a gate")
                };
                w.replace(
                    i,
                    Component::Gate {
                        kind: want,
                        inputs: vec![input],
                        output,
                        delay,
                    },
                );
                rewritten.push(i);
            }
        }
        f.chain.record(&rewritten, &nets);
        f.chains += 1;
        changed = true;
    }
    changed
}

/// Hash key for structural deduplication: component kind discriminant,
/// delay, and canonicalized input nets.
#[derive(PartialEq, Eq, Hash)]
enum DupKey {
    /// Gate: kind tag, rise, fall, inputs (sorted when commutative).
    Gate(u8, u32, u32, Vec<u32>),
    /// Switch: kind tag, control, unordered terminal pair.
    Switch(u8, u32, u32, u32),
}

/// LS0007: merge structurally duplicate components.
///
/// Two gates merge when they have the same kind, the same delay, and
/// the same input nets (order-insensitive for commutative kinds), and
/// both output nets are sole-driven non-terminal nets — then both nets
/// carry the identical level trajectory from power-up on, so every
/// reader of the victim's net can be redirected to the canonical net.
/// The victim's net must not be a declared output (redirection would
/// orphan it); when only the earlier gate's net is an output the roles
/// swap. Duplicate switches (same kind, control, and terminal pair)
/// are parallel never-distinguishable edges and one is simply removed.
pub(super) fn dedup(w: &mut Work, f: &mut Findings) -> bool {
    let mut changed = false;
    loop {
        let mut seen: HashMap<DupKey, usize> = HashMap::new();
        let mut merged_this_round = false;
        for i in 0..w.comps.len() {
            let Some(comp) = w.comps[i].clone() else {
                continue;
            };
            match comp {
                Component::Gate {
                    kind,
                    ref inputs,
                    output,
                    delay,
                } => {
                    let o = output.index();
                    if !w.sole_driver(o, i) || w.terminal(o) {
                        continue;
                    }
                    let mut ins: Vec<u32> = inputs.iter().map(|n| n.0).collect();
                    let commutative = matches!(
                        kind,
                        GateKind::And
                            | GateKind::Or
                            | GateKind::Nand
                            | GateKind::Nor
                            | GateKind::Xor
                            | GateKind::Xnor
                    );
                    if commutative {
                        ins.sort_unstable();
                    }
                    let key = DupKey::Gate(kind as u8, delay.rise, delay.fall, ins);
                    match seen.get(&key) {
                        None => {
                            seen.insert(key, i);
                        }
                        Some(&c) => {
                            let c_out = match w.comps[c].as_ref() {
                                Some(Component::Gate { output, .. }) => *output,
                                _ => continue,
                            };
                            // Pick the victim whose net is not observed.
                            let (canon, victim, victim_net) = if !w.is_output[o] {
                                (c, i, output)
                            } else if !w.is_output[c_out.index()] {
                                (i, c, c_out)
                            } else {
                                continue; // both observed: keep both
                            };
                            let canon_net = if canon == c { c_out } else { output };
                            redirect_readers(w, victim_net, canon_net);
                            w.remove(victim);
                            seen.insert(key, canon);
                            // Only the victim is recorded: findings name
                            // exactly the components that were rewritten.
                            f.duplicate.record(&[victim], &[victim_net]);
                            f.merged += 1;
                            merged_this_round = true;
                            changed = true;
                        }
                    }
                }
                Component::Switch {
                    kind,
                    control,
                    a,
                    b,
                    ..
                } => {
                    let (lo, hi) = (a.0.min(b.0), a.0.max(b.0));
                    let key = DupKey::Switch(kind as u8, control.0, lo, hi);
                    match seen.get(&key) {
                        None => {
                            seen.insert(key, i);
                        }
                        Some(_) => {
                            w.remove(i);
                            f.duplicate.record(&[i], &[a, b]);
                            f.merged += 1;
                            merged_this_round = true;
                            changed = true;
                        }
                    }
                }
                _ => {}
            }
        }
        if !merged_this_round {
            break;
        }
    }
    changed
}

/// Rewrites every reader of `from` to read `to` instead.
fn redirect_readers(w: &mut Work, from: NetId, to: NetId) {
    let readers: Vec<u32> = w.readers[from.index()].clone();
    for r in readers {
        let i = r as usize;
        let Some(mut comp) = w.comps[i].clone() else {
            continue;
        };
        match &mut comp {
            Component::Gate { inputs, .. } => {
                for n in inputs.iter_mut() {
                    if *n == from {
                        *n = to;
                    }
                }
            }
            Component::Switch { control, a, b, .. } => {
                // Terminals cannot be `from` (it is non-terminal by the
                // merge guard); only the control can match.
                debug_assert!(*a != from && *b != from);
                if *control == from {
                    *control = to;
                }
            }
            _ => {}
        }
        w.replace(i, comp);
    }
}

/// LS0009: prune logic outside the observability cone.
///
/// Reverse reachability from the declared outputs: a component is live
/// when it can drive a needed net; a live gate needs its inputs, a live
/// switch needs its control and both terminals (drive flows through the
/// channel in either direction). Everything else — except `Input`
/// components, which stimulus resolution depends on — is removed. With
/// no declared outputs the pass is skipped entirely.
pub(super) fn prune_cone(w: &mut Work, f: &mut Findings) -> bool {
    if w.outputs.is_empty() {
        return false;
    }
    let mut needed = vec![false; w.num_nets()];
    let mut live = vec![false; w.comps.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &o in &w.outputs {
        if !needed[o.index()] {
            needed[o.index()] = true;
            stack.push(o.index());
        }
    }
    while let Some(net) = stack.pop() {
        for &d in &w.drivers[net] {
            let i = d as usize;
            if live[i] {
                continue;
            }
            live[i] = true;
            for n in w.comps[i].as_ref().expect("live driver").read_nets() {
                if !needed[n.index()] {
                    needed[n.index()] = true;
                    stack.push(n.index());
                }
            }
        }
    }
    let mut changed = false;
    for (i, &is_live) in live.iter().enumerate() {
        let keep = match &w.comps[i] {
            None | Some(Component::Input { .. }) => true,
            Some(_) => is_live,
        };
        if !keep {
            w.remove(i);
            f.cone.record(&[i], &[]);
            f.pruned += 1;
            changed = true;
        }
    }
    changed
}
