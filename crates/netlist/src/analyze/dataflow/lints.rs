//! Lint surface for the dataflow analyses: LS0010–LS0013.
//!
//! All four findings are informational. They report conservative
//! static facts — provable under the seeded stimulus assumptions, but
//! deliberately over-approximate elsewhere — whose real consumers are
//! the partitioner's vertex weights, `machine::static_cost`, and the
//! optimizer's future delay-aware contraction. Surfacing them through
//! `lsim lint`/`lsim analyze` makes the facts inspectable and pins
//! them in golden tests.

use super::activity::Activity;
use super::seeds::InputSeeds;
use super::timing::Timing;
use super::xreach::XReach;
use crate::analyze::dead::live_components;
use crate::analyze::diag::{Code, Diagnostic};
use crate::component::CompId;
use crate::netlist::Netlist;

/// Runs the activity, timing, and X-reachability analyses with
/// conservative (or supplied) input seeds and appends the LS0010–
/// LS0013 findings.
pub(in crate::analyze) fn check(
    netlist: &Netlist,
    seeds: Option<&InputSeeds>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let fallback;
    let seeds = match seeds {
        Some(s) => s,
        None => {
            fallback = InputSeeds::unconstrained(netlist);
            &fallback
        }
    };

    let live = live_components(netlist);

    // LS0010: live components with zero estimated activity.
    let activity = Activity::analyze(netlist, seeds);
    let per_comp = activity.component_activity(netlist);
    let quiescent: Vec<CompId> = (0..netlist.num_components() as u32)
        .map(CompId)
        .filter(|&c| {
            live[c.index()]
                && per_comp[c.index()] == 0.0
                && !matches!(
                    netlist.component(c),
                    crate::component::Component::Input { .. }
                        | crate::component::Component::Pull { .. }
                        | crate::component::Component::Supply { .. }
                )
        })
        .collect();
    if !quiescent.is_empty() {
        diagnostics.push(
            Diagnostic::new(
                Code::Ls0010QuiescentLogic,
                format!(
                    "{} live component(s) have zero estimated activity: they never \
                     evaluate after power-up settling and add only dead weight to \
                     a partition",
                    quiescent.len()
                ),
            )
            .with_components(quiescent),
        );
    }

    // LS0011: nets whose latest arrival diverged (timing feedback).
    let timing = Timing::analyze(netlist, seeds);
    let unbounded: Vec<_> = (0..netlist.num_nets() as u32)
        .map(crate::component::NetId)
        .filter(|&n| timing.is_unbounded(n))
        .collect();
    if !unbounded.is_empty() {
        diagnostics.push(
            Diagnostic::new(
                Code::Ls0011UnboundedArrival,
                format!(
                    "{} net(s) have an unbounded arrival window: static timing cannot \
                     bound their settling time (feedback; potential oscillation)",
                    unbounded.len()
                ),
            )
            .with_nets(unbounded),
        );
    }

    // LS0013: gates provably immune to inertial pulse filtering.
    let num_gates = netlist.components().iter().filter(|c| c.is_gate()).count();
    let filter_free: Vec<CompId> = (0..netlist.num_components() as u32)
        .map(CompId)
        .filter(|&c| timing.is_filter_free(c))
        .collect();
    if !filter_free.is_empty() {
        diagnostics.push(
            Diagnostic::new(
                Code::Ls0013FilterFree,
                format!(
                    "{} of {num_gates} gate(s) are provably inertial-filter-free: no \
                     input pulse can be shorter than their inertial window, so \
                     delay-aware chain contraction is waveform-safe",
                    filter_free.len()
                ),
            )
            .with_components(filter_free),
        );
    }

    // LS0012: nets that can never leave X from power-up.
    let xreach = XReach::analyze(netlist, seeds);
    let stuck = xreach.x_stuck_nets();
    if !stuck.is_empty() {
        diagnostics.push(
            Diagnostic::new(
                Code::Ls0012XStuck,
                format!(
                    "{} net(s) can never leave X from the all-X power-up \
                     configuration: un-initializable state (missing reset?)",
                    stuck.len()
                ),
            )
            .with_nets(stuck),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Delay;
    use crate::value::Level;
    use crate::{GateKind, NetlistBuilder};

    fn codes(netlist: &Netlist) -> Vec<Code> {
        let mut diags = Vec::new();
        check(netlist, None, &mut diags);
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn quiet_constant_cone_fires_ls0010() {
        let mut b = NetlistBuilder::new("quiet");
        let one = b.net("one");
        b.supply(one, Level::One);
        let y = b.net("y");
        b.gate(GateKind::Not, &[one], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let c = codes(&n);
        assert!(c.contains(&Code::Ls0010QuiescentLogic), "{c:?}");
    }

    #[test]
    fn feedback_fires_ls0011_and_x_ring_fires_ls0012() {
        let mut b = NetlistBuilder::new("fb");
        let a = b.input("a");
        let q = b.net("q");
        let y = b.net("y");
        b.gate(GateKind::Xor, &[a, q], q, Delay::uniform(1));
        b.gate(GateKind::Buf, &[q], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let c = codes(&n);
        assert!(c.contains(&Code::Ls0011UnboundedArrival), "{c:?}");
        assert!(c.contains(&Code::Ls0012XStuck), "{c:?}");
    }

    #[test]
    fn uniform_delay_chain_is_filter_free() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let c = codes(&n);
        assert_eq!(c, vec![Code::Ls0013FilterFree], "{c:?}");
    }
}
