//! X-reachability: which levels can each net ever take, starting from
//! the all-`X` power-up configuration?
//!
//! The lattice element is a [`LevelSet`] — a subset of `{0, 1, X}` —
//! ordered by inclusion, with union as join. Every net starts at
//! `{X}` (the power-up state is always reachable), inputs add the
//! levels their stimulus can drive, and gates add the set-lifted
//! image of their transfer function. The height is 2: a set can only
//! grow from `{X}` to the full set.
//!
//! A net whose fixpoint set is still `{X}` is **X-stuck**: no
//! stimulus in the seeded class can ever move it to a known level —
//! typically un-initializable feedback (an XOR ring) or logic fed
//! only by floating nets. That is lint LS0012: such state pollutes
//! every downstream cone with `X` forever, which almost always means
//! a missing reset or a modelling mistake.
//!
//! Set-lifting is exact for the associative gate kinds (the lifted
//! image of a fold is the fold of lifted images) and conservative —
//! never under-approximating — for switch groups, which are widened
//! to the full set like the ternary analysis pins them to `X`.

use super::seeds::InputSeeds;
use super::{solve, Analysis, Direction, Solution};
use crate::component::{Component, GateKind, NetId};
use crate::netlist::Netlist;
use crate::value::Level;

/// A subset of the ternary levels, as a bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelSet(pub u8);

impl LevelSet {
    /// The empty set.
    pub const EMPTY: LevelSet = LevelSet(0);
    /// `{X}` — the power-up state.
    pub const X_ONLY: LevelSet = LevelSet(0b100);
    /// `{0, 1, X}` — no information.
    pub const ALL: LevelSet = LevelSet(0b111);

    /// The singleton set for `level`.
    #[must_use]
    pub fn just(level: Level) -> LevelSet {
        LevelSet(match level {
            Level::Zero => 0b001,
            Level::One => 0b010,
            Level::X => 0b100,
        })
    }

    /// Whether `level` is a member.
    #[must_use]
    pub fn contains(self, level: Level) -> bool {
        self.0 & LevelSet::just(level).0 != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: LevelSet) -> LevelSet {
        LevelSet(self.0 | other.0)
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the member levels.
    pub fn iter(self) -> impl Iterator<Item = Level> {
        [Level::Zero, Level::One, Level::X]
            .into_iter()
            .filter(move |&l| self.contains(l))
    }

    /// The image of a binary level function over the cross product of
    /// two sets (exact lifting).
    #[must_use]
    pub fn lift2(self, other: LevelSet, f: impl Fn(Level, Level) -> Level) -> LevelSet {
        let mut out = LevelSet::EMPTY;
        for a in self.iter() {
            for b in other.iter() {
                out = out.union(LevelSet::just(f(a, b)));
            }
        }
        out
    }

    /// The image of a unary level function (exact lifting).
    #[must_use]
    pub fn lift1(self, f: impl Fn(Level) -> Level) -> LevelSet {
        let mut out = LevelSet::EMPTY;
        for a in self.iter() {
            out = out.union(LevelSet::just(f(a)));
        }
        out
    }
}

/// The set-lifted image of a gate over its input sets. Exact for the
/// associative kinds (fold of lifted binary ops); conservative for
/// `Tristate`, whose disabled branch contributes `X` (the floating
/// net resolves to unknown).
fn gate_image(kind: GateKind, inputs: &[LevelSet]) -> LevelSet {
    let fold = |f: fn(Level, Level) -> Level| {
        inputs
            .iter()
            .copied()
            .reduce(|a, b| a.lift2(b, f))
            .unwrap_or(LevelSet::X_ONLY)
    };
    match kind {
        GateKind::Buf => inputs.first().copied().unwrap_or(LevelSet::X_ONLY),
        GateKind::Not => inputs
            .first()
            .copied()
            .unwrap_or(LevelSet::X_ONLY)
            .lift1(Level::not),
        GateKind::And => fold(Level::and),
        GateKind::Nand => fold(Level::and).lift1(Level::not),
        GateKind::Or => fold(Level::or),
        GateKind::Nor => fold(Level::or).lift1(Level::not),
        GateKind::Xor => fold(Level::xor),
        GateKind::Xnor => fold(Level::xor).lift1(Level::not),
        GateKind::Tristate => {
            let data = inputs.first().copied().unwrap_or(LevelSet::X_ONLY);
            let enable = inputs.get(1).copied().unwrap_or(LevelSet::X_ONLY);
            let mut out = LevelSet::EMPTY;
            if enable.contains(Level::One) {
                out = out.union(data);
            }
            if enable.contains(Level::Zero) || enable.contains(Level::X) {
                out = out.union(LevelSet::X_ONLY);
            }
            out
        }
    }
}

/// The X-reachability analysis over one netlist.
pub struct XReachAnalysis<'a> {
    netlist: &'a Netlist,
    seeds: &'a InputSeeds,
}

impl Analysis for XReachAnalysis<'_> {
    type Value = LevelSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn num_nets(&self) -> usize {
        self.netlist.num_nets()
    }

    fn bottom(&self, _net: u32) -> LevelSet {
        // The power-up configuration is all-X, so X is reachable on
        // every net before any driver acts.
        LevelSet::X_ONLY
    }

    fn transfer(&self, net: u32, values: &[LevelSet]) -> LevelSet {
        let id = NetId(net);
        let drivers = self.netlist.drivers(id);
        let mut out = LevelSet::X_ONLY;
        let mut terminal = false;
        for &c in drivers {
            match self.netlist.component(c) {
                Component::Input { .. } => {
                    let levels = self
                        .seeds
                        .get(id)
                        .map_or(LevelSet::ALL, |s| LevelSet(s.levels));
                    out = out.union(levels);
                }
                Component::Supply { level, .. } | Component::Pull { level, .. } => {
                    out = out.union(LevelSet::just(*level));
                }
                Component::Gate { kind, inputs, .. } => {
                    let sets: Vec<LevelSet> = inputs.iter().map(|i| values[i.index()]).collect();
                    out = out.union(gate_image(*kind, &sets));
                }
                Component::Switch { .. } => terminal = true,
            }
        }
        if terminal {
            // Bidirectional group resolution with charge retention:
            // assume nothing beyond "some level".
            return LevelSet::ALL;
        }
        out
    }

    fn join(&self, old: &LevelSet, new: &LevelSet) -> LevelSet {
        old.union(*new)
    }

    fn height(&self) -> u32 {
        2
    }

    fn widen(&self, value: &mut LevelSet) {
        *value = LevelSet::ALL;
    }

    fn for_each_dependent(&self, net: u32, f: &mut dyn FnMut(u32)) {
        for &c in self.netlist.fanout(NetId(net)) {
            self.netlist.component(c).for_each_driven(|d| f(d.0));
        }
    }

    fn seed_order(&self) -> Vec<u32> {
        super::level_order(self.netlist, Direction::Forward)
    }
}

/// The solved X-reachability facts for one netlist.
#[derive(Debug, Clone)]
pub struct XReach {
    solution: Solution<LevelSet>,
}

impl XReach {
    /// Runs the analysis.
    #[must_use]
    pub fn analyze(netlist: &Netlist, seeds: &InputSeeds) -> XReach {
        XReach {
            solution: solve(&XReachAnalysis { netlist, seeds }),
        }
    }

    /// The reachable level set of `net`.
    #[must_use]
    pub fn levels(&self, net: NetId) -> LevelSet {
        self.solution.values[net.index()]
    }

    /// Whether `net` can never leave `X` from the initial
    /// configuration under the seeded stimulus class.
    #[must_use]
    pub fn is_x_stuck(&self, net: NetId) -> bool {
        self.solution.values[net.index()] == LevelSet::X_ONLY
    }

    /// All X-stuck nets, in id order.
    #[must_use]
    pub fn x_stuck_nets(&self) -> Vec<NetId> {
        (0..self.solution.values.len() as u32)
            .map(NetId)
            .filter(|&n| self.is_x_stuck(n))
            .collect()
    }

    /// The engine effort counters (for tests and reports).
    #[must_use]
    pub fn solution(&self) -> &Solution<LevelSet> {
        &self.solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Delay;
    use crate::{GateKind, NetlistBuilder};

    #[test]
    fn driven_logic_escapes_x() {
        let mut b = NetlistBuilder::new("ok");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let seeds = InputSeeds::unconstrained(&n);
        let xr = XReach::analyze(&n, &seeds);
        assert!(!xr.is_x_stuck(y));
        assert_eq!(xr.levels(y), LevelSet::ALL);
        assert!(xr.x_stuck_nets().is_empty());
    }

    #[test]
    fn xor_feedback_ring_is_x_stuck() {
        // q = XOR(q, q) can never produce a known level from X: the
        // lifted image of XOR over {X} is {X}.
        let mut b = NetlistBuilder::new("ring");
        let a = b.input("a");
        let q = b.net("q");
        let y = b.net("y");
        b.gate(GateKind::Xor, &[q, q], q, Delay::uniform(1));
        b.gate(GateKind::And, &[a, q], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let xr = XReach::analyze(&n, &InputSeeds::unconstrained(&n));
        assert!(xr.is_x_stuck(q), "uninitializable feedback");
        // The poisoned AND can still reach 0 (a=0 forces it).
        assert!(!xr.is_x_stuck(y));
        assert!(xr.levels(y).contains(Level::Zero));
        assert!(!xr.levels(y).contains(Level::One));
    }

    #[test]
    fn nand_latch_initializes() {
        let mut b = NetlistBuilder::new("latch");
        let set = b.input("set_n");
        let reset = b.input("reset_n");
        let q = b.net("q");
        let qn = b.net("qn");
        b.gate(GateKind::Nand, &[set, qn], q, Delay::uniform(1));
        b.gate(GateKind::Nand, &[reset, q], qn, Delay::uniform(1));
        b.mark_output(q);
        let n = b.finish().unwrap();
        let xr = XReach::analyze(&n, &InputSeeds::unconstrained(&n));
        // set_n = 0 forces q = 1 regardless of the X on qn.
        assert!(!xr.is_x_stuck(q));
        assert!(!xr.is_x_stuck(qn));
    }

    #[test]
    fn supply_reaches_only_its_level_plus_powerup_x() {
        let mut b = NetlistBuilder::new("rail");
        let vdd = b.net("vdd");
        b.supply(vdd, Level::One);
        let y = b.net("y");
        b.gate(GateKind::Buf, &[vdd], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let xr = XReach::analyze(&n, &InputSeeds::unconstrained(&n));
        assert_eq!(
            xr.levels(vdd),
            LevelSet::just(Level::One).union(LevelSet::X_ONLY)
        );
        assert!(!xr.is_x_stuck(y));
    }
}
