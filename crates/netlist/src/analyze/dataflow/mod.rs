//! Generic monotone-framework dataflow engine over netlist nets.
//!
//! Every static analysis in this crate used to be a hand-rolled
//! fixpoint loop (`opt::absint`'s Jacobi iteration, the levelization
//! walk, the liveness BFS). This module factors the common shape out:
//! an [`Analysis`] supplies a join-semilattice of per-net facts
//! (bottom element, join, a height bound, a widening operator) and a
//! monotone transfer function; [`solve`] runs a worklist to the least
//! fixpoint, seeded in [`Levelization`] order so feed-forward circuits
//! converge in a single sweep.
//!
//! # Termination
//!
//! The engine guarantees termination for *any* transfer function, even
//! a buggy non-monotone one: each net's value may strictly change at
//! most [`Analysis::height`] times before the engine applies
//! [`Analysis::widen`], which must jump to an absorbing top element
//! (`join(top, x) == top`, `widen(top) == top`). Once widened, a net
//! can never change again, so the total number of value changes is
//! bounded by `nets * (height + 1)` and the total number of transfer
//! applications by `seeds + changes * max_fanout`. [`Solution`]
//! reports the observed counts so tests can check the bound.
//!
//! # Analyses built on the engine
//!
//! | module | lattice | direction | consumer |
//! |--------|---------|-----------|----------|
//! | [`ternary`] | Kleene `{X ⊑ 0, X ⊑ 1}` | forward | `opt::absint`, LS0006 |
//! | [`activity`] | quantized transition density `[0, 1]` | forward | LS0010, partition weights, `machine::static_cost` |
//! | [`timing`] | arrival intervals `[min, max]` | forward | LS0011, LS0013 |
//! | [`xreach`] | subsets of `{0, 1, X}` | forward | LS0012 |

pub mod activity;
pub(crate) mod lints;
pub mod seeds;
pub mod ternary;
pub mod timing;
pub mod xreach;

use crate::analyze::Levelization;
use crate::netlist::Netlist;
use std::collections::VecDeque;

/// Direction of fact propagation through the circuit graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from drivers to readers (inputs toward outputs).
    Forward,
    /// Facts flow from readers to drivers (outputs toward inputs).
    Backward,
}

/// One monotone dataflow analysis: a join-semilattice of per-net
/// values plus a transfer function over some circuit topology (the
/// implementor holds its own reference to a [`Netlist`] or an
/// optimizer work graph).
pub trait Analysis {
    /// The lattice element attached to each net.
    type Value: Clone + PartialEq;

    /// Which way facts flow; used by [`level_order`] callers and
    /// reported in diagnostics.
    fn direction(&self) -> Direction;

    /// Number of nets (the solution vector length).
    fn num_nets(&self) -> usize;

    /// The least lattice element for `net` — the initial assumption.
    fn bottom(&self, net: u32) -> Self::Value;

    /// Recomputes the value of `net` from the current solution. Must
    /// be monotone in `values` for the fixpoint to be least; the
    /// engine terminates regardless (see the module docs).
    fn transfer(&self, net: u32, values: &[Self::Value]) -> Self::Value;

    /// Least upper bound. Must satisfy `join(a, b) ⊒ a` and `⊒ b`.
    fn join(&self, old: &Self::Value, new: &Self::Value) -> Self::Value;

    /// Maximum number of strict increases one net's value can undergo
    /// on a chain from bottom to top (the lattice height). After this
    /// many changes the engine widens the net.
    fn height(&self) -> u32;

    /// Jumps `value` to the absorbing top element. Required:
    /// `join(top, x) == top` and widening an already-top value must be
    /// a no-op, or the engine's termination bound is void.
    fn widen(&self, value: &mut Self::Value);

    /// Calls `f` with every net whose transfer function reads `net`'s
    /// value (the worklist successors in this analysis's direction).
    fn for_each_dependent(&self, net: u32, f: &mut dyn FnMut(u32));

    /// The initial worklist, each net exactly once. Override with a
    /// topological order ([`level_order`]) so DAGs converge in one
    /// sweep; the default natural order is always correct, just
    /// slower.
    fn seed_order(&self) -> Vec<u32> {
        (0..self.num_nets() as u32).collect()
    }
}

/// The least fixpoint found by [`solve`], plus the effort counters
/// that let tests check the termination bound.
#[derive(Debug, Clone)]
pub struct Solution<V> {
    /// Per-net lattice values at the fixpoint, indexed by net id.
    pub values: Vec<V>,
    /// Total transfer-function applications.
    pub transfers: u64,
    /// The largest number of times any single net's value changed.
    pub max_changes: u32,
    /// Nets forced to top by widening (0 when the lattice height was
    /// never exceeded — the expected case for correct analyses).
    pub widened: usize,
}

impl<V> Solution<V> {
    /// The value of `net`.
    #[must_use]
    pub fn value(&self, net: crate::component::NetId) -> &V {
        &self.values[net.index()]
    }
}

/// Runs `analysis` to its least fixpoint with a deduplicating
/// worklist.
///
/// Nets are seeded in [`Analysis::seed_order`]; a net re-enters the
/// worklist only when one of the values its transfer reads has
/// changed. See the module docs for the termination argument.
#[must_use]
pub fn solve<A: Analysis>(analysis: &A) -> Solution<A::Value> {
    let n = analysis.num_nets();
    let mut values: Vec<A::Value> = (0..n as u32).map(|i| analysis.bottom(i)).collect();
    let mut changes = vec![0u32; n];
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::with_capacity(n);
    for net in analysis.seed_order() {
        if !in_queue[net as usize] {
            in_queue[net as usize] = true;
            queue.push_back(net);
        }
    }
    let height = analysis.height();
    let mut transfers = 0u64;
    let mut widened = 0usize;
    while let Some(net) = queue.pop_front() {
        let i = net as usize;
        in_queue[i] = false;
        transfers += 1;
        let out = analysis.transfer(net, &values);
        let mut joined = analysis.join(&values[i], &out);
        if joined == values[i] {
            continue;
        }
        changes[i] += 1;
        if changes[i] > height {
            // Height bound exceeded: force the absorbing top. If the
            // net is already top, nothing changes and it goes quiet.
            analysis.widen(&mut joined);
            if joined == values[i] {
                continue;
            }
            widened += 1;
        }
        values[i] = joined;
        analysis.for_each_dependent(net, &mut |d| {
            if !in_queue[d as usize] {
                in_queue[d as usize] = true;
                queue.push_back(d);
            }
        });
    }
    Solution {
        values,
        transfers,
        max_changes: changes.into_iter().max().unwrap_or(0),
        widened,
    }
}

/// Net ids of `netlist` in levelization order: ascending logic depth
/// for [`Direction::Forward`] (drivers settle before readers), the
/// reverse for [`Direction::Backward`]. Cyclic nets share a depth and
/// appear in id order within it.
#[must_use]
pub fn level_order(netlist: &Netlist, direction: Direction) -> Vec<u32> {
    let levels = Levelization::compute(netlist);
    let mut order: Vec<u32> = (0..netlist.num_nets() as u32).collect();
    order.sort_by_key(|&n| (levels.net_depth(crate::component::NetId(n)), n));
    if direction == Direction::Backward {
        order.reverse();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Delay, NetId};
    use crate::{GateKind, NetlistBuilder};

    /// Reachability from input nets: the simplest possible boolean
    /// lattice, enough to exercise the engine plumbing.
    struct Reach<'a> {
        netlist: &'a Netlist,
    }

    impl Analysis for Reach<'_> {
        type Value = bool;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn num_nets(&self) -> usize {
            self.netlist.num_nets()
        }

        fn bottom(&self, _net: u32) -> bool {
            false
        }

        fn transfer(&self, net: u32, values: &[bool]) -> bool {
            let id = NetId(net);
            if self.netlist.inputs().contains(&id) {
                return true;
            }
            self.netlist.drivers(id).iter().any(|&c| {
                let mut any = false;
                self.netlist.component(c).for_each_read(|r| {
                    any |= values[r.index()];
                });
                any
            })
        }

        fn join(&self, old: &bool, new: &bool) -> bool {
            *old || *new
        }

        fn height(&self) -> u32 {
            1
        }

        fn widen(&self, value: &mut bool) {
            *value = true;
        }

        fn for_each_dependent(&self, net: u32, f: &mut dyn FnMut(u32)) {
            for &c in self.netlist.fanout(NetId(net)) {
                self.netlist.component(c).for_each_driven(|d| f(d.0));
            }
        }

        fn seed_order(&self) -> Vec<u32> {
            level_order(self.netlist, self.direction())
        }
    }

    fn chain(len: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let mut prev = b.input("a");
        for i in 0..len {
            let next = b.net(format!("n{i}"));
            b.gate(GateKind::Not, &[prev], next, Delay::uniform(1));
            prev = next;
        }
        b.mark_output(prev);
        b.finish().unwrap()
    }

    #[test]
    fn reachability_converges_in_one_sweep_on_a_chain() {
        let n = chain(32);
        let solution = solve(&Reach { netlist: &n });
        assert!(solution.values.iter().all(|&v| v), "all nets reachable");
        // Topological seeding: every net settles on its first visit,
        // so transfers == nets and nothing is re-queued.
        assert_eq!(solution.transfers, n.num_nets() as u64);
        assert_eq!(solution.max_changes, 1);
        assert_eq!(solution.widened, 0);
    }

    #[test]
    fn level_order_respects_depth_and_direction() {
        let n = chain(8);
        let fwd = level_order(&n, Direction::Forward);
        let bwd = level_order(&n, Direction::Backward);
        let levels = Levelization::compute(&n);
        for w in fwd.windows(2) {
            assert!(levels.net_depth(NetId(w[0])) <= levels.net_depth(NetId(w[1])));
        }
        let mut rev = bwd.clone();
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn widening_caps_a_non_monotone_transfer() {
        // A deliberately oscillating "analysis": transfer flips the
        // value every visit on a self-dependent net. The height bound
        // plus widening must still terminate and land on top.
        struct Flip;
        impl Analysis for Flip {
            type Value = u32;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn num_nets(&self) -> usize {
                1
            }
            fn bottom(&self, _net: u32) -> u32 {
                0
            }
            fn transfer(&self, _net: u32, values: &[u32]) -> u32 {
                // Not monotone: keeps growing past the height bound.
                values[0].saturating_add(1)
            }
            fn join(&self, _old: &u32, new: &u32) -> u32 {
                *new
            }
            fn height(&self) -> u32 {
                3
            }
            fn widen(&self, value: &mut u32) {
                *value = u32::MAX;
            }
            fn for_each_dependent(&self, _net: u32, f: &mut dyn FnMut(u32)) {
                f(0); // self-loop
            }
        }
        let solution = solve(&Flip);
        assert_eq!(solution.values[0], u32::MAX, "widened to top");
        assert_eq!(solution.widened, 1);
        // 3 ordinary changes + 1 widening change, then one quiet visit.
        assert!(solution.transfers <= 6, "{}", solution.transfers);
    }
}
