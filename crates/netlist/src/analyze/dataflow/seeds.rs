//! Per-input assumptions that seed the whole-netlist analyses.
//!
//! The activity, timing, and X-reachability analyses all start from
//! facts about the primary inputs: how often they toggle, how far
//! apart their events are, and which levels they can take. Those
//! facts come from the stimulus plan when one is known (the
//! `logicsim-sim` crate derives them from `StimulusSpec` periodicity)
//! and fall back to the conservative [`InputSeed::default`] for bare
//! netlists (`lsim lint` on a file).

use crate::component::{Component, NetId};
use crate::netlist::Netlist;

/// Static assumptions about one primary input net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputSeed {
    /// Lower bound on the probability the input is `One` on any tick.
    pub p1_lo: f64,
    /// Upper bound on the same probability.
    pub p1_hi: f64,
    /// Expected transitions per tick (transition density), in `[0, 1]`.
    pub density: f64,
    /// Provable lower bound on the separation (in ticks) between two
    /// successive events on this input; `u32::MAX` means the input
    /// produces at most one event ever.
    pub min_separation: u32,
    /// Levels the input can reach, as a [`super::xreach::LevelSet`]
    /// bit mask.
    pub levels: u8,
}

impl Default for InputSeed {
    /// The unconstrained input: unknown bias, a toggle every other
    /// tick on average, events possibly back to back, all levels
    /// reachable.
    fn default() -> InputSeed {
        InputSeed {
            p1_lo: 0.0,
            p1_hi: 1.0,
            density: 0.5,
            min_separation: 1,
            levels: super::xreach::LevelSet::ALL.0,
        }
    }
}

/// Seeds for every primary input of one netlist, indexed by net id.
#[derive(Debug, Clone)]
pub struct InputSeeds {
    /// `Some` for primary-input nets, `None` elsewhere.
    seeds: Vec<Option<InputSeed>>,
}

impl InputSeeds {
    /// Conservative defaults for every declared input of `netlist`
    /// (and every undeclared [`Component::Input`] driver).
    #[must_use]
    pub fn unconstrained(netlist: &Netlist) -> InputSeeds {
        let mut seeds = vec![None; netlist.num_nets()];
        for c in netlist.components() {
            if let Component::Input { net } = c {
                seeds[net.index()] = Some(InputSeed::default());
            }
        }
        InputSeeds { seeds }
    }

    /// Overrides the seed for `net` (a no-op target check is the
    /// caller's job; seeding a non-input net simply never gets read).
    pub fn set(&mut self, net: NetId, seed: InputSeed) {
        self.seeds[net.index()] = Some(seed);
    }

    /// The seed for `net`, if it is an input.
    #[must_use]
    pub fn get(&self, net: NetId) -> Option<&InputSeed> {
        self.seeds.get(net.index()).and_then(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Delay;
    use crate::{GateKind, NetlistBuilder};

    #[test]
    fn unconstrained_covers_exactly_the_inputs() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let seeds = InputSeeds::unconstrained(&n);
        assert!(seeds.get(a).is_some());
        assert!(seeds.get(y).is_none());
    }
}
