//! Static timing windows: min/max arrival intervals and event
//! separation bounds per net.
//!
//! Each net carries a [`Window`]: the earliest and latest tick
//! (relative to a primary-input event at tick 0) at which an event
//! can appear on the net, plus a provable lower bound on the
//! separation between two successive events. Primary inputs start at
//! `[0, 0]` with the separation their stimulus guarantees (a clock
//! with half-period `h` never toggles twice within `h` ticks); gates
//! shift the window by their rise/fall delays and erode the
//! separation by the rise/fall skew.
//!
//! Two facts fall out:
//!
//! - **Unbounded windows** (`max == u32::MAX`): the net sits on
//!   feedback whose settling time the analysis cannot bound —
//!   potential oscillation, lint LS0011.
//! - **Provably inertial-filter-free gates**: a gate whose every
//!   input provably separates events by at least `max(rise, fall)`
//!   can never see a pulse shorter than its inertial window, so
//!   delay-model filtering provably never cancels one of its events.
//!   Those components (lint LS0013) are safe targets for delay-aware
//!   chain contraction — the compiled backend can fuse them without
//!   changing observable waveforms.

use super::seeds::InputSeeds;
use super::{solve, Analysis, Direction, Solution};
use crate::component::{CompId, Component, NetId};
use crate::netlist::Netlist;

/// Arrival interval and event-separation bound for one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Earliest event tick relative to a stimulus event. `min > max`
    /// encodes the empty window (no events reach the net).
    pub min: u32,
    /// Latest event tick; `u32::MAX` means unbounded (feedback).
    pub max: u32,
    /// Provable lower bound on the gap between two successive events;
    /// `u32::MAX` means the net produces at most one event ever.
    pub sep: u32,
}

impl Window {
    /// The bottom element: no events known to reach the net.
    pub const BOTTOM: Window = Window {
        min: u32::MAX,
        max: 0,
        sep: u32::MAX,
    };
    /// The top element: events any time, arbitrarily close.
    pub const TOP: Window = Window {
        min: 0,
        max: u32::MAX,
        sep: 1,
    };

    /// Whether no events reach the net.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.min > self.max
    }

    /// Whether the latest-arrival bound diverged (feedback).
    #[must_use]
    pub fn is_unbounded(self) -> bool {
        !self.is_empty() && self.max == u32::MAX
    }

    /// Interval hull with the weaker (smaller) separation — the
    /// lattice join.
    #[must_use]
    pub fn join(self, other: Window) -> Window {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Window {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            sep: self.sep.min(other.sep),
        }
    }
}

/// The timing-window analysis over one netlist.
pub struct TimingAnalysis<'a> {
    netlist: &'a Netlist,
    seeds: &'a InputSeeds,
}

impl Analysis for TimingAnalysis<'_> {
    type Value = Window;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn num_nets(&self) -> usize {
        self.netlist.num_nets()
    }

    fn bottom(&self, _net: u32) -> Window {
        Window::BOTTOM
    }

    fn transfer(&self, net: u32, values: &[Window]) -> Window {
        let id = NetId(net);
        let mut out = Window::BOTTOM;
        for &c in self.netlist.drivers(id) {
            let w = match self.netlist.component(c) {
                Component::Input { .. } => Window {
                    min: 0,
                    max: 0,
                    sep: self.seeds.get(id).map_or(1, |s| s.min_separation),
                },
                // A rail produces exactly one settling event at
                // power-up.
                Component::Supply { .. } | Component::Pull { .. } => Window {
                    min: 0,
                    max: 0,
                    sep: u32::MAX,
                },
                Component::Gate { inputs, delay, .. } => {
                    let lo = delay.rise.min(delay.fall);
                    let hi = delay.rise.max(delay.fall);
                    let mut min = u32::MAX;
                    let mut max = 0u32;
                    // Inputs that can fire more than once; a sep of
                    // u32::MAX contributes at most one transient
                    // event, which cannot shrink the steady-state
                    // separation.
                    let mut repeating = 0usize;
                    let mut rep_sep = u32::MAX;
                    let mut any = false;
                    for i in inputs {
                        let w = values[i.index()];
                        if w.is_empty() {
                            continue;
                        }
                        any = true;
                        min = min.min(w.min);
                        max = max.max(w.max);
                        if w.sep < u32::MAX {
                            repeating += 1;
                            rep_sep = rep_sep.min(w.sep);
                        }
                    }
                    if !any {
                        continue;
                    }
                    let sep = match repeating {
                        0 => u32::MAX,
                        // One repeating source: its cadence survives,
                        // jittered by the rise/fall skew.
                        1 => rep_sep.saturating_sub(hi - lo).max(1),
                        // Interleaved sources can land back to back.
                        _ => 1,
                    };
                    Window {
                        min: min.saturating_add(lo),
                        max: max.saturating_add(hi),
                        sep,
                    }
                }
                // Bidirectional groups resolve with unit switch delay
                // and no provable structure.
                Component::Switch { .. } => Window::TOP,
            };
            out = out.join(w);
        }
        out
    }

    fn join(&self, old: &Window, new: &Window) -> Window {
        old.join(*new)
    }

    fn height(&self) -> u32 {
        // A DAG net settles in one topological visit; feedback grows
        // `max` by at least one delay per revisit — cut it short.
        32
    }

    fn widen(&self, value: &mut Window) {
        *value = Window::TOP;
    }

    fn for_each_dependent(&self, net: u32, f: &mut dyn FnMut(u32)) {
        for &c in self.netlist.fanout(NetId(net)) {
            self.netlist.component(c).for_each_driven(|d| f(d.0));
        }
    }

    fn seed_order(&self) -> Vec<u32> {
        super::level_order(self.netlist, Direction::Forward)
    }
}

/// The solved timing facts for one netlist.
#[derive(Debug, Clone)]
pub struct Timing {
    solution: Solution<Window>,
    filter_free: Vec<bool>,
}

impl Timing {
    /// Runs the analysis and evaluates the filter-free predicate for
    /// every gate.
    #[must_use]
    pub fn analyze(netlist: &Netlist, seeds: &InputSeeds) -> Timing {
        let solution = solve(&TimingAnalysis { netlist, seeds });
        let filter_free = (0..netlist.num_components())
            .map(|i| {
                let Component::Gate { inputs, delay, .. } = netlist.component(CompId(i as u32))
                else {
                    return false;
                };
                let window = delay.rise.max(delay.fall);
                inputs.iter().all(|n| {
                    let w = solution.values[n.index()];
                    w.is_empty() || w.sep >= window
                })
            })
            .collect();
        Timing {
            solution,
            filter_free,
        }
    }

    /// The arrival window of `net`.
    #[must_use]
    pub fn window(&self, net: NetId) -> Window {
        self.solution.values[net.index()]
    }

    /// Whether `net`'s latest-arrival bound diverged (LS0011).
    #[must_use]
    pub fn is_unbounded(&self, net: NetId) -> bool {
        self.solution.values[net.index()].is_unbounded()
    }

    /// Whether component `c` is a gate whose inputs provably never
    /// carry a pulse shorter than its inertial window (LS0013).
    #[must_use]
    pub fn is_filter_free(&self, c: CompId) -> bool {
        self.filter_free[c.index()]
    }

    /// The engine effort counters (for tests and reports).
    #[must_use]
    pub fn solution(&self) -> &Solution<Window> {
        &self.solution
    }
}

#[cfg(test)]
mod tests {
    use super::super::seeds::InputSeed;
    use super::*;
    use crate::component::Delay;
    use crate::{GateKind, NetlistBuilder};

    #[test]
    fn chain_accumulates_delay_bounds() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], x, Delay::rise_fall(2, 3));
        b.gate(GateKind::Not, &[x], y, Delay::rise_fall(1, 4));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let t = Timing::analyze(&n, &InputSeeds::unconstrained(&n));
        assert_eq!(
            t.window(a),
            Window {
                min: 0,
                max: 0,
                sep: 1
            }
        );
        assert_eq!(
            t.window(x),
            Window {
                min: 2,
                max: 3,
                sep: 1
            }
        );
        assert_eq!(
            t.window(y),
            Window {
                min: 3,
                max: 7,
                sep: 1
            }
        );
        assert!(!t.is_unbounded(y));
    }

    #[test]
    fn feedback_widens_to_unbounded() {
        let mut b = NetlistBuilder::new("ring");
        let a = b.input("a");
        let q = b.net("q");
        b.gate(GateKind::Nand, &[a, q], q, Delay::uniform(2));
        b.mark_output(q);
        let n = b.finish().unwrap();
        let t = Timing::analyze(&n, &InputSeeds::unconstrained(&n));
        assert!(t.is_unbounded(q), "{:?}", t.window(q));
        assert!(t.solution().widened >= 1);
    }

    #[test]
    fn slow_clock_keeps_gates_filter_free() {
        // A clock with half-period 8 through delay-3 gates: events
        // stay at least 8 apart, far above any inertial window.
        let mut b = NetlistBuilder::new("slow");
        let clk = b.input("clk");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Not, &[clk], x, Delay::uniform(3));
        b.gate(GateKind::Not, &[x], y, Delay::uniform(3));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let mut seeds = InputSeeds::unconstrained(&n);
        seeds.set(
            clk,
            InputSeed {
                min_separation: 8,
                ..InputSeed::default()
            },
        );
        let t = Timing::analyze(&n, &seeds);
        assert_eq!(t.window(x).sep, 8, "uniform delay has no skew");
        for i in 0..n.num_components() as u32 {
            let id = CompId(i);
            if n.component(id).is_gate() {
                assert!(t.is_filter_free(id), "component {i}");
            }
        }
    }

    #[test]
    fn converging_fast_paths_defeat_the_filter_free_proof() {
        // Two paths from one input reconverge on an AND: interleaved
        // arrivals can be back to back, and the gate's inertial
        // window (5) exceeds the provable separation (1).
        let mut b = NetlistBuilder::new("glitchy");
        let a = b.input("a");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], x, Delay::uniform(1));
        b.gate(GateKind::And, &[a, x], y, Delay::uniform(5));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let t = Timing::analyze(&n, &InputSeeds::unconstrained(&n));
        let and_gate = (0..n.num_components() as u32)
            .map(CompId)
            .find(|&c| {
                matches!(
                    n.component(c),
                    Component::Gate {
                        kind: GateKind::And,
                        ..
                    }
                )
            })
            .unwrap();
        assert!(!t.is_filter_free(and_gate));
        assert_eq!(t.window(y).sep, 1, "two repeating inputs interleave");
    }
}
