//! Static activity estimation: transition-density propagation.
//!
//! Each net carries a quantized triple — an interval `[p1_lo, p1_hi]`
//! bounding the probability the net is `One` on a random tick, and a
//! transition density `d` bounding the expected transitions per tick.
//! Primary inputs are seeded from the stimulus plan (clock period,
//! random toggle probability; see [`super::seeds`]); gates propagate
//! the interval through their transfer function's probability algebra
//! and scale input densities by boolean-difference sensitivities, the
//! classic zero-delay density model:
//!
//! `d_out = clamp(Σ_i d_i · s_i)` where `s_i = P[output is sensitive
//! to input i]` — for AND, the probability every *other* input is 1
//! (upper bound `Π_{j≠i} hi_j`); for OR, that every other input is 0;
//! for XOR, exactly 1.
//!
//! The result deliberately over-approximates (correlated inputs and
//! reconvergent fanout can only *lower* real densities below the
//! independent-signal estimate, and intervals are hulled across
//! drivers), so a component whose estimated activity is zero provably
//! never evaluates after settling — that is lint LS0010, and the
//! per-component estimates feed `partition` vertex weights and
//! `machine::static_cost`.
//!
//! Values are quantized to `1/1024` so the lattice is finite; feedback
//! loops that creep past the height bound widen to the full interval
//! with density 1, which is always sound.

use super::seeds::InputSeeds;
use super::{solve, Analysis, Direction, Solution};
use crate::component::{CompId, Component, GateKind, NetId};
use crate::netlist::Netlist;
use crate::value::Level;

/// Quantization denominator: probabilities live on a `1/Q` grid.
pub const Q: u16 = 1024;

/// Quantized activity facts for one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetActivity {
    /// Lower bound on `P[net == One]`, in `1/Q` units. `lo > hi`
    /// encodes the empty interval (bottom).
    pub p1_lo: u16,
    /// Upper bound on `P[net == One]`, in `1/Q` units.
    pub p1_hi: u16,
    /// Transition density upper bound, in `1/Q` units.
    pub density: u16,
}

impl NetActivity {
    /// The bottom element: empty interval, no transitions.
    pub const BOTTOM: NetActivity = NetActivity {
        p1_lo: Q,
        p1_hi: 0,
        density: 0,
    };
    /// The top element: full interval, a transition every tick.
    pub const TOP: NetActivity = NetActivity {
        p1_lo: 0,
        p1_hi: Q,
        density: Q,
    };

    /// Whether the probability interval is empty (no fact yet).
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.p1_lo > self.p1_hi
    }

    /// The probability interval as floats in `[0, 1]`.
    #[must_use]
    pub fn p1(self) -> (f64, f64) {
        if self.is_empty() {
            (0.0, 1.0)
        } else {
            (
                f64::from(self.p1_lo) / f64::from(Q),
                f64::from(self.p1_hi) / f64::from(Q),
            )
        }
    }

    /// The density as a float in `[0, 1]`.
    #[must_use]
    pub fn d(self) -> f64 {
        f64::from(self.density.min(Q)) / f64::from(Q)
    }

    fn from_float(lo: f64, hi: f64, d: f64) -> NetActivity {
        // Conservative rounding: the interval only widens, the
        // density only rises.
        let q = f64::from(Q);
        NetActivity {
            p1_lo: ((lo.clamp(0.0, 1.0) * q).floor() as u16).min(Q),
            p1_hi: ((hi.clamp(0.0, 1.0) * q).ceil() as u16).min(Q),
            density: ((d.clamp(0.0, 1.0) * q).ceil() as u16).min(Q),
        }
    }

    /// Interval hull plus density max — the lattice join.
    #[must_use]
    pub fn join(self, other: NetActivity) -> NetActivity {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        NetActivity {
            p1_lo: self.p1_lo.min(other.p1_lo),
            p1_hi: self.p1_hi.max(other.p1_hi),
            density: self.density.max(other.density),
        }
    }
}

/// Float-space view of one input used by the gate algebra.
#[derive(Debug, Clone, Copy)]
struct In {
    lo: f64,
    hi: f64,
    d: f64,
}

fn input_view(v: NetActivity) -> In {
    let (lo, hi) = v.p1();
    In { lo, hi, d: v.d() }
}

/// Interval fold for XOR: evaluate `a(1-b) + b(1-a)` at the four
/// interval corners (the expression is not monotone in either
/// argument).
fn xor_interval(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    let f = |x: f64, y: f64| x * (1.0 - y) + y * (1.0 - x);
    let corners = [f(a.0, b.0), f(a.0, b.1), f(a.1, b.0), f(a.1, b.1)];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

/// Probability interval and density of a gate output given its input
/// activities, assuming signal independence (an over-approximation
/// for density by the boolean-difference argument in the module docs).
fn gate_activity(kind: GateKind, ins: &[In]) -> (f64, f64, f64) {
    match kind {
        GateKind::Buf => ins.first().map_or((0.0, 1.0, 1.0), |i| (i.lo, i.hi, i.d)),
        GateKind::Not => ins
            .first()
            .map_or((0.0, 1.0, 1.0), |i| (1.0 - i.hi, 1.0 - i.lo, i.d)),
        GateKind::And | GateKind::Nand => {
            let lo: f64 = ins.iter().map(|i| i.lo).product();
            let hi: f64 = ins.iter().map(|i| i.hi).product();
            // s_i = P[all other inputs 1] ≤ Π_{j≠i} hi_j.
            let d: f64 = ins
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    let s: f64 = ins
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, y)| y.hi)
                        .product();
                    x.d * s
                })
                .sum();
            if kind == GateKind::Nand {
                (1.0 - hi, 1.0 - lo, d)
            } else {
                (lo, hi, d)
            }
        }
        GateKind::Or | GateKind::Nor => {
            let lo = 1.0 - ins.iter().map(|i| 1.0 - i.lo).product::<f64>();
            let hi = 1.0 - ins.iter().map(|i| 1.0 - i.hi).product::<f64>();
            // s_i = P[all other inputs 0] ≤ Π_{j≠i} (1 - lo_j).
            let d: f64 = ins
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    let s: f64 = ins
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, y)| 1.0 - y.lo)
                        .product();
                    x.d * s
                })
                .sum();
            if kind == GateKind::Nor {
                (1.0 - hi, 1.0 - lo, d)
            } else {
                (lo, hi, d)
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // XOR is sensitive to every input (s_i = 1).
            let (mut lo, mut hi) = ins.first().map_or((0.0, 1.0), |i| (i.lo, i.hi));
            for i in &ins[1.min(ins.len())..] {
                let next = xor_interval((lo, hi), (i.lo, i.hi));
                lo = next.0;
                hi = next.1;
            }
            let d: f64 = ins.iter().map(|i| i.d).sum();
            if kind == GateKind::Xnor {
                (1.0 - hi, 1.0 - lo, d)
            } else {
                (lo, hi, d)
            }
        }
        GateKind::Tristate => {
            let data = ins.first().copied().unwrap_or(In {
                lo: 0.0,
                hi: 1.0,
                d: 1.0,
            });
            let en = ins.get(1).copied().unwrap_or(In {
                lo: 0.0,
                hi: 1.0,
                d: 1.0,
            });
            // Enabled: passes data; disabled: floats (unknown level),
            // so the interval is only tight when enable is pinned 1.
            let (lo, hi) = if en.lo >= 1.0 {
                (data.lo, data.hi)
            } else {
                (0.0, 1.0)
            };
            (lo, hi, data.d * en.hi + en.d)
        }
    }
}

/// The activity analysis over one netlist.
pub struct ActivityAnalysis<'a> {
    netlist: &'a Netlist,
    seeds: &'a InputSeeds,
}

impl<'a> ActivityAnalysis<'a> {
    /// Wraps a netlist and its stimulus seeds for [`solve`] — or for
    /// driving [`Analysis::transfer`] directly, which is how the
    /// engine's property tests check monotonicity.
    #[must_use]
    pub fn new(netlist: &'a Netlist, seeds: &'a InputSeeds) -> ActivityAnalysis<'a> {
        ActivityAnalysis { netlist, seeds }
    }
}

impl Analysis for ActivityAnalysis<'_> {
    type Value = NetActivity;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn num_nets(&self) -> usize {
        self.netlist.num_nets()
    }

    fn bottom(&self, _net: u32) -> NetActivity {
        NetActivity::BOTTOM
    }

    fn transfer(&self, net: u32, values: &[NetActivity]) -> NetActivity {
        let id = NetId(net);
        let mut acc = NetActivity::BOTTOM;
        let mut density_sum = 0.0f64;
        let mut terminal = false;
        let mut pinned = false;
        for &c in self.netlist.drivers(id) {
            let comp = self.netlist.component(c);
            match comp {
                Component::Input { .. } => {
                    let s = self.seeds.get(id).copied().unwrap_or_default();
                    acc = acc.join(NetActivity::from_float(s.p1_lo, s.p1_hi, 0.0));
                    density_sum += s.density;
                }
                Component::Supply { level, .. } | Component::Pull { level, .. } => {
                    // A rail settles once and never toggles. A
                    // `Supply` moreover drives at the strongest
                    // strength, so no co-driver (a switch group
                    // hanging off the rail) can ever move the
                    // resolved level: the net is pinned.
                    pinned |= matches!(comp, Component::Supply { .. });
                    let p = match level {
                        Level::One => (1.0, 1.0),
                        Level::Zero => (0.0, 0.0),
                        Level::X => (0.0, 1.0),
                    };
                    acc = acc.join(NetActivity::from_float(p.0, p.1, 0.0));
                }
                Component::Gate { kind, inputs, .. } => {
                    let ins: Vec<In> = inputs
                        .iter()
                        .map(|i| input_view(values[i.index()]))
                        .collect();
                    let (lo, hi, d) = gate_activity(*kind, &ins);
                    acc = acc.join(NetActivity::from_float(lo, hi, 0.0));
                    density_sum += d;
                }
                Component::Switch { control, a, b, .. } => {
                    terminal = true;
                    // The group can toggle when the opposite terminal
                    // or the control toggles.
                    let other = if *a == id { *b } else { *a };
                    density_sum += values[other.index()].d() + values[control.index()].d();
                }
            }
        }
        if terminal {
            // Bidirectional resolution: unknown bias, summed density.
            acc = acc.join(NetActivity::from_float(0.0, 1.0, 0.0));
        }
        if pinned {
            // Supply wins every resolution: level fixed forever.
            return NetActivity { density: 0, ..acc };
        }
        if acc.is_empty() {
            // Undriven net: floats at an unknown but constant level.
            return NetActivity::from_float(0.0, 1.0, 0.0);
        }
        NetActivity {
            density: NetActivity::from_float(0.0, 0.0, density_sum).density,
            ..acc
        }
    }

    fn join(&self, old: &NetActivity, new: &NetActivity) -> NetActivity {
        old.join(*new)
    }

    fn height(&self) -> u32 {
        // A DAG net settles in one topological visit; only feedback
        // re-visits, creeping the quantized density upward. Cut the
        // creep short and give the loop up to TOP.
        32
    }

    fn widen(&self, value: &mut NetActivity) {
        *value = NetActivity::TOP;
    }

    fn for_each_dependent(&self, net: u32, f: &mut dyn FnMut(u32)) {
        for &c in self.netlist.fanout(NetId(net)) {
            self.netlist.component(c).for_each_driven(|d| f(d.0));
        }
    }

    fn seed_order(&self) -> Vec<u32> {
        super::level_order(self.netlist, Direction::Forward)
    }
}

/// The solved activity estimate for one netlist.
#[derive(Debug, Clone)]
pub struct Activity {
    solution: Solution<NetActivity>,
}

impl Activity {
    /// Runs the analysis with the given input seeds.
    #[must_use]
    pub fn analyze(netlist: &Netlist, seeds: &InputSeeds) -> Activity {
        Activity {
            solution: solve(&ActivityAnalysis { netlist, seeds }),
        }
    }

    /// The activity facts for `net`.
    #[must_use]
    pub fn net(&self, net: NetId) -> NetActivity {
        self.solution.values[net.index()]
    }

    /// Upper bound on `net`'s transitions per tick, in `[0, 1]`.
    #[must_use]
    pub fn density(&self, net: NetId) -> f64 {
        self.solution.values[net.index()].d()
    }

    /// Upper bound on each component's evaluations per tick: the
    /// summed density of the nets its transfer function reads
    /// (clamped — one tick triggers at most one evaluation). Sources
    /// report their own output density (an `Input` evaluates on every
    /// stimulus event; rails never re-evaluate).
    #[must_use]
    pub fn component_activity(&self, netlist: &Netlist) -> Vec<f64> {
        (0..netlist.num_components())
            .map(|i| {
                let comp = netlist.component(CompId(i as u32));
                match comp {
                    Component::Input { net } => self.density(*net),
                    Component::Supply { .. } | Component::Pull { .. } => 0.0,
                    _ => {
                        let mut sum = 0.0;
                        comp.for_each_read(|r| sum += self.density(r));
                        sum.min(1.0)
                    }
                }
            })
            .collect()
    }

    /// The engine effort counters (for tests and reports).
    #[must_use]
    pub fn solution(&self) -> &Solution<NetActivity> {
        &self.solution
    }

    /// Expected-case per-net densities for *pricing*, as opposed to
    /// the sound per-net bounds the fixpoint itself carries.
    ///
    /// Two over-approximations make the fixpoint densities useless as
    /// an expectation on sequential circuits: feedback nets widen to
    /// "toggles every tick", and their full `[0, 1]` intervals drive
    /// every downstream sensitivity to 1, so whole cones price near
    /// the saturation ceiling. This pass re-propagates densities from
    /// the stimulus seeds through the same gate sensitivity algebra
    /// (keeping the fixpoint's probability intervals), but treats
    /// loops as *excitation followers*: contributions flowing between
    /// two saturated nets are attenuated to [`FEEDBACK_DAMPING`]
    /// *split across the saturated fan-in*, so every loop's gain
    /// stays below one and it relaxes onto
    /// `excitation / (1 - damping)` instead of free-running at one
    /// transition per tick. The result is an estimate, not a bound —
    /// lints keep using [`Activity::density`].
    #[must_use]
    pub fn expected_densities(&self, netlist: &Netlist, seeds: &InputSeeds) -> Vec<f64> {
        let n = netlist.num_nets();
        // Saturation by value, not by the `widened` counter: a loop
        // that sums densities (XOR-style) climbs to TOP geometrically
        // well inside the height bound without ever being widened.
        let saturated: Vec<bool> = self
            .solution
            .values
            .iter()
            .map(|&v| v == NetActivity::TOP)
            .collect();
        let mut est = vec![0.0f64; n];
        let order = super::level_order(netlist, Direction::Forward);
        // Monotone from zero (all algebra coefficients are
        // non-negative), so the relaxation converges; level order
        // settles the feed-forward part in one sweep and the damped
        // loops geometrically.
        for _ in 0..64 {
            let mut delta = 0.0f64;
            for &net in &order {
                let id = NetId(net);
                let i = id.index();
                let mut sum = 0.0;
                let mut pinned = false;
                for &c in netlist.drivers(id) {
                    let comp = netlist.component(c);
                    // Damping weight for reads feeding a saturated
                    // net: the loop's combined self-gain is capped at
                    // FEEDBACK_DAMPING by splitting it across this
                    // driver's saturated reads.
                    let w = if saturated[i] {
                        let mut k = 0usize;
                        comp.for_each_read(|m| k += usize::from(saturated[m.index()]));
                        FEEDBACK_DAMPING / k.max(1) as f64
                    } else {
                        1.0
                    };
                    let damp = |m: NetId| {
                        if saturated[i] && saturated[m.index()] {
                            w * est[m.index()]
                        } else {
                            est[m.index()]
                        }
                    };
                    match comp {
                        Component::Input { .. } => {
                            sum += seeds.get(id).copied().unwrap_or_default().density;
                        }
                        Component::Supply { .. } | Component::Pull { .. } => {
                            pinned |= matches!(comp, Component::Supply { .. });
                        }
                        Component::Gate { kind, inputs, .. } => {
                            let ins: Vec<In> = inputs
                                .iter()
                                .map(|&m| {
                                    let (lo, hi) = self.net(m).p1();
                                    In { lo, hi, d: damp(m) }
                                })
                                .collect();
                            sum += gate_activity(*kind, &ins).2;
                        }
                        Component::Switch { control, a, b, .. } => {
                            let other = if *a == id { *b } else { *a };
                            sum += damp(other) + damp(*control);
                        }
                    }
                }
                let v = if pinned { 0.0 } else { sum.min(1.0) };
                if v > est[i] {
                    delta = delta.max(v - est[i]);
                    est[i] = v;
                }
            }
            if delta < 1e-9 {
                break;
            }
        }
        est
    }
}

/// Attenuation per feedback hop in [`Activity::expected_densities`]:
/// each pass between two saturated (loop) nets multiplies the
/// incoming transition rate by this factor — most arriving events do
/// not toggle a state bit (a counter stage halves its predecessor's
/// rate; an enabled latch follows its data only while open), and a
/// loop gain below one keeps the relaxation convergent instead of
/// saturating.
pub const FEEDBACK_DAMPING: f64 = 1.0 / 3.0;

/// Per-component partitioning weights from the static activity
/// estimate, in the form [`ConnectivityGraph::build_weighted`]
/// consumes: dead components weigh 0 (as in the unweighted graph),
/// live ones `1 + round(scale * activity)` so a balanced partition
/// equalizes predicted evaluations per tick instead of component
/// count. `scale` sets the contrast between quiet and busy logic
/// (weights span `1 ..= 1 + scale`); `None` seeds fall back to the
/// unconstrained worst case.
///
/// [`ConnectivityGraph::build_weighted`]: crate::graph::ConnectivityGraph::build_weighted
#[must_use]
pub fn partition_weights(netlist: &Netlist, seeds: Option<&InputSeeds>, scale: u32) -> Vec<u32> {
    let unconstrained;
    let seeds = match seeds {
        Some(s) => s,
        None => {
            unconstrained = InputSeeds::unconstrained(netlist);
            &unconstrained
        }
    };
    let activity = Activity::analyze(netlist, seeds).component_activity(netlist);
    let live = crate::analyze::live_components(netlist);
    activity
        .iter()
        .zip(&live)
        .map(|(&a, &l)| {
            if l {
                1 + (f64::from(scale) * a.clamp(0.0, 1.0)).round() as u32
            } else {
                0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::seeds::InputSeed;
    use super::*;
    use crate::component::Delay;
    use crate::{GateKind, NetlistBuilder};

    fn seed(density: f64) -> InputSeed {
        InputSeed {
            p1_lo: 0.5,
            p1_hi: 0.5,
            density,
            min_separation: 1,
            levels: super::super::xreach::LevelSet::ALL.0,
        }
    }

    #[test]
    fn constant_cone_has_zero_activity() {
        // Supply → NOT → NOT: rails never toggle, so nothing does.
        let mut b = NetlistBuilder::new("quiet");
        let one = b.net("one");
        b.supply(one, Level::One);
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Not, &[one], x, Delay::uniform(1));
        b.gate(GateKind::Not, &[x], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let act = Activity::analyze(&n, &InputSeeds::unconstrained(&n));
        assert_eq!(act.density(y), 0.0);
        let (lo, hi) = act.net(y).p1();
        assert_eq!((lo, hi), (1.0, 1.0), "NOT(NOT(1)) is 1");
        let ca = act.component_activity(&n);
        assert!(ca.iter().all(|&a| a == 0.0), "{ca:?}");
    }

    #[test]
    fn and_gate_attenuates_density() {
        // AND(a, b) with a biased low: sensitivity to b is at most
        // hi(a), so the output toggles less than b does.
        let mut b = NetlistBuilder::new("atten");
        let a = b.input("a");
        let c = b.input("c");
        let y = b.net("y");
        b.gate(GateKind::And, &[a, c], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let mut seeds = InputSeeds::unconstrained(&n);
        seeds.set(
            a,
            InputSeed {
                p1_lo: 0.1,
                p1_hi: 0.1,
                density: 0.2,
                min_separation: 4,
                levels: 0b111,
            },
        );
        seeds.set(c, seed(0.5));
        let act = Activity::analyze(&n, &seeds);
        // d_y ≤ d_a·hi_c + d_c·hi_a = 0.2·0.5 + 0.5·0.1 = 0.15.
        assert!(act.density(y) <= 0.16, "{}", act.density(y));
        assert!(act.density(y) >= 0.14);
    }

    #[test]
    fn xor_chain_sums_density_and_stays_clamped() {
        let mut b = NetlistBuilder::new("xors");
        let mut prev = b.input("i0");
        let mut seeds_nets = vec![prev];
        for i in 1..8 {
            let inp = b.input(format!("i{i}"));
            seeds_nets.push(inp);
            let next = b.net(format!("x{i}"));
            b.gate(GateKind::Xor, &[prev, inp], next, Delay::uniform(1));
            prev = next;
        }
        b.mark_output(prev);
        let n = b.finish().unwrap();
        let mut seeds = InputSeeds::unconstrained(&n);
        for &s in &seeds_nets {
            seeds.set(s, seed(0.3));
        }
        let act = Activity::analyze(&n, &seeds);
        // Densities add through XOR but the estimate stays in [0, 1].
        assert!(
            (act.density(prev) - 1.0).abs() < 1e-9,
            "{}",
            act.density(prev)
        );
        for v in &act.solution().values {
            assert!(v.d() <= 1.0);
            let (lo, hi) = v.p1();
            assert!((0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0);
        }
    }

    #[test]
    fn feedback_widens_instead_of_diverging() {
        // An XOR fed by itself and a toggling input: the quantized
        // density creeps until widening parks the loop at TOP.
        let mut b = NetlistBuilder::new("loop");
        let a = b.input("a");
        let q = b.net("q");
        b.gate(GateKind::Xor, &[a, q], q, Delay::uniform(1));
        b.mark_output(q);
        let n = b.finish().unwrap();
        let mut seeds = InputSeeds::unconstrained(&n);
        seeds.set(a, seed(0.01));
        let act = Activity::analyze(&n, &seeds);
        assert!(act.density(q) <= 1.0);
        assert!(act.solution().widened >= 1, "loop must widen");
    }
}
