//! Ternary constant analysis on the dataflow engine.
//!
//! This is `opt::absint`'s abstract interpretation — the Kleene
//! lattice `X ⊑ 0, X ⊑ 1` with the concrete [`GateKind::evaluate`]
//! transfer functions and strength-ladder multi-driver resolution —
//! ported onto [`super::solve`] as the framework's proof of
//! generality. The topology is abstracted behind [`TernaryView`] so
//! the same analysis runs over a plain [`Netlist`] and over the
//! optimizer's mutable work graph (`opt::Work`), which is what
//! `opt::absint::interpret` now does.
//!
//! **Switch-group X-conservatism** is unchanged from the hand-rolled
//! version: a net attached to any switch channel terminal resolves
//! bidirectionally with charge retention, which a per-net analysis
//! cannot model, so such nets are pinned to `X` unless a
//! `Supply`-strength rail drives them (a supply beats every
//! through-switch contribution in the group solver too).
//!
//! The lattice has height 1 (one strict refinement, `X` to a
//! constant). `X` doubles as the engine's give-up value: the concrete
//! transfer is monotone, so widening never fires in practice, and if
//! it ever did, parking the net at `X` ("not constant") is sound.
//!
//! [`GateKind::evaluate`]: crate::component::GateKind::evaluate

use super::{solve, Analysis, Direction, Solution};
use crate::component::{Component, NetId};
use crate::netlist::Netlist;
use crate::value::{Level, Signal, Strength};

/// Read-only circuit topology as the ternary analysis needs it: who
/// drives and reads each net, and which nets resolve through switch
/// groups.
pub trait TernaryView {
    /// Number of nets.
    fn num_nets(&self) -> usize;
    /// Visits every live component that can drive `net`.
    fn for_each_driver(&self, net: u32, f: &mut dyn FnMut(&Component));
    /// Visits every live component that reads `net`.
    fn for_each_reader(&self, net: u32, f: &mut dyn FnMut(&Component));
    /// Whether `net` is attached to a switch channel terminal (member
    /// of a nontrivial bidirectional resolution group).
    fn is_terminal(&self, net: u32) -> bool;
}

impl TernaryView for Netlist {
    fn num_nets(&self) -> usize {
        Netlist::num_nets(self)
    }

    fn for_each_driver(&self, net: u32, f: &mut dyn FnMut(&Component)) {
        for &c in self.drivers(NetId(net)) {
            f(self.component(c));
        }
    }

    fn for_each_reader(&self, net: u32, f: &mut dyn FnMut(&Component)) {
        for &c in self.fanout(NetId(net)) {
            f(self.component(c));
        }
    }

    fn is_terminal(&self, net: u32) -> bool {
        // Switch channel terminals appear in the driver index (a
        // switch drives both its terminals), so this matches the
        // optimizer's attached-terminal count.
        self.drivers(NetId(net))
            .iter()
            .any(|&c| self.component(c).is_switch())
    }
}

/// The ternary constant analysis over any [`TernaryView`].
pub struct TernaryAnalysis<'a, V: TernaryView> {
    view: &'a V,
}

impl<'a, V: TernaryView> TernaryAnalysis<'a, V> {
    /// Wraps a topology view for solving.
    #[must_use]
    pub fn new(view: &'a V) -> TernaryAnalysis<'a, V> {
        TernaryAnalysis { view }
    }
}

/// The abstract signal a component contributes to the nets it drives,
/// or `None` for switches (their influence is handled by terminal
/// conservatism in the transfer function).
fn contribution(comp: &Component, values: &[Level]) -> Option<Signal> {
    match comp {
        // A primary input varies with the stimulus: strong unknown.
        Component::Input { .. } => Some(Signal::strong(Level::X)),
        Component::Pull { .. } | Component::Supply { .. } => comp.static_drive(),
        Component::Gate { kind, inputs, .. } => {
            let levels: Vec<Level> = inputs.iter().map(|i| values[i.index()]).collect();
            Some(kind.evaluate(&levels))
        }
        Component::Switch { .. } => None,
    }
}

impl<V: TernaryView> Analysis for TernaryAnalysis<'_, V> {
    type Value = Level;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn num_nets(&self) -> usize {
        self.view.num_nets()
    }

    fn bottom(&self, _net: u32) -> Level {
        Level::X
    }

    fn transfer(&self, net: u32, values: &[Level]) -> Level {
        let mut best = Signal::FLOATING;
        self.view.for_each_driver(net, &mut |comp| {
            if let Some(sig) = contribution(comp, values) {
                best = best.resolve(sig);
            }
        });
        if self.view.is_terminal(net) {
            // Group-resolved net: only a supply rail survives
            // conservatism.
            if best.strength == Strength::Supply {
                best.level
            } else {
                Level::X
            }
        } else if best.is_floating() {
            Level::X
        } else {
            best.level
        }
    }

    fn join(&self, old: &Level, new: &Level) -> Level {
        match (old, new) {
            (a, b) if a == b => *old,
            // X is the bottom: any constant refines it.
            (Level::X, _) => *new,
            // A monotone transfer never un-learns a constant; if a
            // (buggy) transfer disagreed, keep the earlier fact and
            // let widening park the net at X.
            _ => *old,
        }
    }

    fn height(&self) -> u32 {
        1
    }

    fn widen(&self, value: &mut Level) {
        *value = Level::X;
    }

    fn for_each_dependent(&self, net: u32, f: &mut dyn FnMut(u32)) {
        self.view.for_each_reader(net, &mut |comp| {
            comp.for_each_driven(|d| f(d.0));
        });
    }

    fn seed_order(&self) -> Vec<u32> {
        topo_seed(self.view)
    }
}

/// Kahn topological order of the net dependency graph induced by a
/// [`TernaryView`] (edge `m -> n` when a component reads `m` and
/// drives `n`). Nets on cycles — switch groups, feedback — are
/// appended in id order after the acyclic prefix; the worklist
/// handles their iteration.
fn topo_seed<V: TernaryView>(view: &V) -> Vec<u32> {
    let n = view.num_nets();
    let mut indeg = vec![0u32; n];
    for m in 0..n as u32 {
        view.for_each_reader(m, &mut |comp| {
            comp.for_each_driven(|d| indeg[d.index()] += 1);
        });
    }
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<u32> =
        (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    let mut emitted = vec![false; n];
    while let Some(m) = queue.pop_front() {
        if emitted[m as usize] {
            continue;
        }
        emitted[m as usize] = true;
        order.push(m);
        view.for_each_reader(m, &mut |comp| {
            comp.for_each_driven(|d| {
                let i = d.index();
                if !emitted[i] {
                    indeg[i] -= 1;
                    if indeg[i] == 0 {
                        queue.push_back(d.0);
                    }
                }
            });
        });
    }
    for i in 0..n as u32 {
        if !emitted[i as usize] {
            order.push(i);
        }
    }
    order
}

/// Solves the ternary constant analysis over a plain netlist:
/// `Zero`/`One` mean *proven constant for every stimulus and power-up
/// state*, `X` means unknown or varying.
#[must_use]
pub fn constants(netlist: &Netlist) -> Solution<Level> {
    solve(&TernaryAnalysis::new(netlist))
}

/// Solves the analysis over any view, returning the values plus the
/// round count in the Jacobi sense (the largest per-net update count
/// plus the final no-change verification) for reporting.
#[must_use]
pub fn solve_view<V: TernaryView>(view: &V) -> (Vec<Level>, u32) {
    let solution = solve(&TernaryAnalysis::new(view));
    let rounds = solution.max_changes + 1;
    (solution.values, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Delay;
    use crate::{GateKind, NetlistBuilder};

    #[test]
    fn constant_folds_through_gates() {
        // NOT(1) = 0, AND(0, input) = 0: both gate outputs constant.
        let mut b = NetlistBuilder::new("const");
        let a = b.input("a");
        let one = b.net("one");
        let inv = b.net("inv");
        let y = b.net("y");
        b.supply(one, Level::One);
        b.gate(GateKind::Not, &[one], inv, Delay::uniform(1));
        b.gate(GateKind::And, &[inv, a], y, Delay::uniform(1));
        b.mark_output(y);
        let n = b.finish().unwrap();
        let s = constants(&n);
        assert_eq!(*s.value(one), Level::One);
        assert_eq!(*s.value(inv), Level::Zero);
        assert_eq!(*s.value(y), Level::Zero);
        assert_eq!(*s.value(a), Level::X, "inputs vary");
        assert_eq!(s.widened, 0, "monotone transfer never widens");
    }

    #[test]
    fn dag_converges_with_single_updates() {
        let mut b = NetlistBuilder::new("deep");
        let one = b.net("one");
        b.supply(one, Level::One);
        let mut prev = one;
        for i in 0..16 {
            let next = b.net(format!("n{i}"));
            b.gate(GateKind::Not, &[prev], next, Delay::uniform(1));
            prev = next;
        }
        b.mark_output(prev);
        let n = b.finish().unwrap();
        let s = solve(&TernaryAnalysis::new(&n));
        // Topological seeding: every net settles on its first visit.
        assert_eq!(s.max_changes, 1);
        assert!(s.values.iter().all(|&v| v != Level::X));
    }
}
