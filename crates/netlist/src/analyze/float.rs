//! LS0004: floating and weakly-driven nets.
//!
//! The builder's hard error already rejects nets that are read but have
//! *no* driver of any kind. This pass catches the softer cases that
//! still build but rely on dynamic behaviour to hold a value:
//!
//! 1. A channel-connected group whose only "drivers" are the switches
//!    bridging its own member nets. No gate, input, pull, or supply
//!    ever injects a value, so the whole group can only ever hold `X`.
//! 2. A net outside any switch network whose drivers are all tristate
//!    gates. When every enable is off the net floats to high-impedance;
//!    a dynamic bus like this usually wants a pull or bus keeper.
//!
//! Inside a nontrivial switch group the second pattern is *not*
//! flagged: charge storage on pass-transistor nets is the working
//! principle of dynamic MOS logic, which the paper's switch-level model
//! exists to simulate.

use super::diag::{Code, Diagnostic};
use crate::component::{Component, GateKind, NetId};
use crate::graph::ChannelGroups;
use crate::netlist::Netlist;

/// Whether a driver injects a value into a net (anything but a switch
/// channel; tristates count — pattern 2 handles their enables).
fn injects_value(component: &Component) -> bool {
    !component.is_switch()
}

/// Runs the analysis, appending any findings to `out`.
pub(crate) fn check(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let groups = ChannelGroups::compute(netlist);

    // Pattern 1: switch groups with no value injection anywhere.
    for gid in 0..groups.num_groups() as u32 {
        if !groups.is_nontrivial(gid) {
            continue;
        }
        let injected = groups.members(gid).iter().any(|&net| {
            netlist
                .drivers(net)
                .iter()
                .any(|&d| injects_value(netlist.component(d)))
        });
        if !injected {
            let mut nets: Vec<NetId> = groups.members(gid).to_vec();
            nets.sort_unstable();
            out.push(
                Diagnostic::new(
                    Code::Ls0004FloatingNet,
                    format!(
                        "switch group of {} nets has no gate, input, pull, or \
                         supply driving it; it can only hold X",
                        nets.len()
                    ),
                )
                .with_components(groups.switches(gid).to_vec())
                .with_nets(nets),
            );
        }
    }

    // Pattern 2: tristate-only nets outside switch networks.
    for i in 0..netlist.num_nets() {
        let net = NetId(i as u32);
        if groups.is_nontrivial(groups.group_of(net)) {
            continue;
        }
        let drivers = netlist.drivers(net);
        if drivers.is_empty() {
            continue;
        }
        let all_tristate = drivers.iter().all(|&d| {
            matches!(
                netlist.component(d),
                Component::Gate {
                    kind: GateKind::Tristate,
                    ..
                }
            )
        });
        if all_tristate {
            out.push(
                Diagnostic::new(
                    Code::Ls0004FloatingNet,
                    format!(
                        "net is driven only by {} tristate gate(s) and floats \
                         when every enable is off; consider a pull or keeper",
                        drivers.len()
                    ),
                )
                .with_components(drivers.to_vec())
                .with_nets(vec![net]),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, Level, NetlistBuilder, SwitchKind};

    fn check_all(netlist: &Netlist) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(netlist, &mut out);
        out
    }

    #[test]
    fn driven_logic_is_clean() {
        let mut b = NetlistBuilder::new("ok");
        let a = b.input("a");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], y, Delay::default());
        assert!(check_all(&b.finish().unwrap()).is_empty());
    }

    #[test]
    fn undriven_switch_group_is_flagged() {
        // Two switches bridging three nets, none of which is injected.
        let mut b = NetlistBuilder::new("isolated");
        let ctl = b.input("ctl");
        let x = b.net("x");
        let y = b.net("y");
        let z = b.net("z");
        b.switch(SwitchKind::Nmos, ctl, x, y);
        b.switch(SwitchKind::Nmos, ctl, y, z);
        let found = check_all(&b.finish().unwrap());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, Code::Ls0004FloatingNet);
        assert_eq!(found[0].nets.len(), 3);
    }

    #[test]
    fn injected_switch_group_is_clean() {
        let mut b = NetlistBuilder::new("pass");
        let a = b.input("a");
        let ctl = b.input("ctl");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], x, Delay::default());
        b.switch(SwitchKind::Nmos, ctl, x, y);
        assert!(check_all(&b.finish().unwrap()).is_empty());
    }

    #[test]
    fn tristate_only_net_is_flagged() {
        let mut b = NetlistBuilder::new("bus");
        let d = b.input("d");
        let e = b.input("e");
        let bus = b.net("bus");
        let y = b.net("y");
        b.gate(GateKind::Tristate, &[d, e], bus, Delay::default());
        b.gate(GateKind::Not, &[bus], y, Delay::default());
        let found = check_all(&b.finish().unwrap());
        assert_eq!(found.len(), 1);
        assert!(
            found[0].message.contains("tristate"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn tristate_with_pull_is_clean() {
        let mut b = NetlistBuilder::new("kept_bus");
        let d = b.input("d");
        let e = b.input("e");
        let bus = b.net("bus");
        let y = b.net("y");
        b.gate(GateKind::Tristate, &[d, e], bus, Delay::default());
        b.pull(bus, Level::One);
        b.gate(GateKind::Not, &[bus], y, Delay::default());
        assert!(check_all(&b.finish().unwrap()).is_empty());
    }

    #[test]
    fn charge_storage_in_pass_network_is_clean() {
        // Tristate into a switch group: dynamic logic, not flagged.
        let mut b = NetlistBuilder::new("dynamic");
        let d = b.input("d");
        let e = b.input("e");
        let ctl = b.input("ctl");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Tristate, &[d, e], x, Delay::default());
        b.switch(SwitchKind::Nmos, ctl, x, y);
        assert!(check_all(&b.finish().unwrap()).is_empty());
    }
}
