//! Levelization (LS0005): topological logic depth per net.
//!
//! The paper's performance model is driven by how much logic a signal
//! edge must traverse: logic depth bounds the critical path, and its
//! distribution predicts how many event generations the machine
//! processes per input change. This pass computes, for every net, the
//! longest gate/switch path from any depth-0 source (primary inputs,
//! pulls, supplies) and exports the histogram to
//! [`crate::stats::CircuitCharacteristics`].
//!
//! Feedback is handled by condensing strongly connected components:
//! every component in a cycle gets the depth of the cycle as a whole
//! (one level for the SCC), so sequential netlists still get a finite,
//! meaningful depth instead of diverging. Depths beyond the configured
//! threshold produce an LS0005 warning — such circuits simulate, but a
//! single input change can fan into an extremely long event cascade.

use super::depgraph::{strongly_connected_components, DepGraph};
use super::diag::{Code, Diagnostic};
use crate::component::NetId;
use crate::netlist::Netlist;

/// Per-net and per-component logic depth.
#[derive(Debug, Clone)]
pub struct Levelization {
    /// Longest logic path (in gate/switch evaluations) to each net.
    net_depth: Vec<u32>,
    /// Longest logic path to (and including) each component.
    comp_depth: Vec<u32>,
    /// Whether each component lies on a feedback cycle.
    cyclic: Vec<bool>,
    /// Maximum over all net depths.
    max_depth: u32,
}

impl Levelization {
    /// Computes logic depths by longest path over the SCC condensation
    /// of the component dependency graph.
    #[must_use]
    pub fn compute(netlist: &Netlist) -> Levelization {
        let graph = DepGraph::build(netlist, |_| true);
        let sccs = strongly_connected_components(&graph.succ);
        let num_comps = netlist.num_components();
        let mut scc_of = vec![0u32; num_comps];
        for (i, scc) in sccs.iter().enumerate() {
            for &member in scc {
                scc_of[member as usize] = i as u32;
            }
        }
        let mut cyclic = vec![false; num_comps];
        for scc in &sccs {
            if super::depgraph::is_cyclic(&graph.succ, scc) {
                for &member in scc {
                    cyclic[member as usize] = true;
                }
            }
        }
        // Tarjan emits SCCs sinks-first; walk them in reverse for a
        // topological order and relax longest paths.
        let mut incoming = vec![0u32; sccs.len()];
        let mut scc_depth = vec![0u32; sccs.len()];
        let mut comp_depth = vec![0u32; num_comps];
        for i in (0..sccs.len()).rev() {
            let counts_as_level = sccs[i].iter().any(|&m| {
                let c = netlist.component(crate::component::CompId(m));
                c.is_gate() || c.is_switch()
            });
            scc_depth[i] = incoming[i] + u32::from(counts_as_level);
            for &u in &sccs[i] {
                comp_depth[u as usize] = scc_depth[i];
                for &v in &graph.succ[u as usize] {
                    let j = scc_of[v as usize] as usize;
                    if j != i {
                        incoming[j] = incoming[j].max(scc_depth[i]);
                    }
                }
            }
        }
        let net_depth: Vec<u32> = (0..netlist.num_nets())
            .map(|i| {
                netlist
                    .drivers(NetId(i as u32))
                    .iter()
                    .map(|&d| comp_depth[d.index()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let max_depth = net_depth.iter().copied().max().unwrap_or(0);
        Levelization {
            net_depth,
            comp_depth,
            cyclic,
            max_depth,
        }
    }

    /// Logic depth of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn net_depth(&self, net: NetId) -> u32 {
        self.net_depth[net.index()]
    }

    /// Logic depth of a component (including its own evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `comp` is out of range.
    #[must_use]
    pub fn comp_depth(&self, comp: crate::component::CompId) -> u32 {
        self.comp_depth[comp.index()]
    }

    /// Whether a component participates in a feedback cycle.
    ///
    /// # Panics
    ///
    /// Panics if `comp` is out of range.
    #[must_use]
    pub fn is_cyclic(&self, comp: crate::component::CompId) -> bool {
        self.cyclic[comp.index()]
    }

    /// Maximum logic depth over all nets.
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Net count per depth level, indices `0..=max_depth`.
    #[must_use]
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_depth as usize + 1];
        for &d in &self.net_depth {
            hist[d as usize] += 1;
        }
        hist
    }
}

/// Runs the analysis, appending an LS0005 warning when the maximum
/// depth exceeds `max_depth`. Returns the levelization for reuse.
pub(crate) fn check(netlist: &Netlist, max_depth: u32, out: &mut Vec<Diagnostic>) -> Levelization {
    let levels = Levelization::compute(netlist);
    if levels.max_depth() > max_depth {
        let deepest: Vec<NetId> = (0..netlist.num_nets() as u32)
            .map(NetId)
            .filter(|&n| levels.net_depth(n) == levels.max_depth())
            .collect();
        out.push(
            Diagnostic::new(
                Code::Ls0005ExcessiveDepth,
                format!(
                    "maximum logic depth {} exceeds the threshold {}; one input \
                     change can cascade through that many evaluation generations",
                    levels.max_depth(),
                    max_depth
                ),
            )
            .with_nets(deepest),
        );
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, GateKind, NetlistBuilder, SwitchKind};

    fn inverter_chain(k: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let mut prev = b.input("a");
        for i in 0..k {
            let next = b.net(format!("y{i}"));
            b.gate(GateKind::Not, &[prev], next, Delay::default());
            prev = next;
        }
        b.finish().unwrap()
    }

    #[test]
    fn chain_depth_counts_gates() {
        let n = inverter_chain(4);
        let levels = Levelization::compute(&n);
        assert_eq!(levels.max_depth(), 4);
        assert_eq!(levels.net_depth(n.find_net("a").unwrap()), 0);
        assert_eq!(levels.net_depth(n.find_net("y3").unwrap()), 4);
        // One net per depth level 0..=4.
        assert_eq!(levels.depth_histogram(), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn latch_cycle_is_one_level() {
        let mut b = NetlistBuilder::new("latch");
        let s = b.input("s");
        let r = b.input("r");
        let q = b.net("q");
        let qn = b.net("qn");
        let g1 = b.gate(GateKind::Nand, &[s, qn], q, Delay::default());
        let g2 = b.gate(GateKind::Nand, &[r, q], qn, Delay::default());
        let n = b.finish().unwrap();
        let levels = Levelization::compute(&n);
        assert_eq!(levels.max_depth(), 1);
        assert!(levels.is_cyclic(g1) && levels.is_cyclic(g2));
        assert_eq!(levels.comp_depth(g1), levels.comp_depth(g2));
    }

    #[test]
    fn switches_count_as_levels() {
        let mut b = NetlistBuilder::new("pass");
        let a = b.input("a");
        let ctl = b.input("ctl");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Not, &[a], x, Delay::default());
        b.switch(SwitchKind::Nmos, ctl, x, y);
        let n = b.finish().unwrap();
        let levels = Levelization::compute(&n);
        // NOT is level 1; the switch adds one more on `y`.
        assert!(levels.net_depth(n.find_net("y").unwrap()) >= 2);
    }

    #[test]
    fn threshold_warning_fires() {
        let n = inverter_chain(6);
        let mut out = Vec::new();
        let levels = check(&n, 4, &mut out);
        assert_eq!(levels.max_depth(), 6);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::Ls0005ExcessiveDepth);
        let mut quiet = Vec::new();
        check(&n, 6, &mut quiet);
        assert!(quiet.is_empty());
    }
}
